//! In-tree stand-in for [criterion.rs](https://github.com/bheisler/criterion.rs).
//!
//! The build environment has no crates.io access, so this crate provides
//! the subset of the criterion API the workspace's benches use —
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`], [`black_box`],
//! [`criterion_group!`] and [`criterion_main!`] — backed by a plain
//! wall-clock sampler (warm-up, then `sample_size` samples, median
//! reported). No statistics beyond min/median/max, no HTML reports, but
//! `cargo bench` runs the same bench sources unmodified and prints
//! comparable per-iteration timings.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Default number of timed samples per benchmark.
const DEFAULT_SAMPLE_SIZE: usize = 20;
/// Wall-clock budget a single sample aims for.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(25);

/// Top-level benchmark driver (stand-in for `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, DEFAULT_SAMPLE_SIZE, f);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _criterion: self,
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }
}

/// A group of related benchmarks (stand-in for criterion's group).
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benches in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one named benchmark inside the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.sample_size, f);
        self
    }

    /// Ends the group (printing nothing extra; kept for API parity).
    pub fn finish(self) {}
}

/// Passed to the closure of `bench_function`; call [`Bencher::iter`] with
/// the code under test.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `routine` (the sampler chooses `iters`).
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F>(name: &str, samples: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Calibrate: how many iterations fit in the per-sample budget?
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let iters = (TARGET_SAMPLE_TIME.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut per_iter_ns: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    per_iter_ns.sort_by(f64::total_cmp);
    let median = per_iter_ns[per_iter_ns.len() / 2];
    let min = per_iter_ns[0];
    let max = per_iter_ns[per_iter_ns.len() - 1];
    println!(
        "  {name:<40} {:>12}/iter  [{} .. {}]  ({samples} samples x {iters} iters)",
        fmt_ns(median),
        fmt_ns(min),
        fmt_ns(max),
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} us", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_and_reports() {
        let mut c = Criterion::default();
        let mut ran = 0u64;
        c.bench_function("noop", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn group_sample_size_floor() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(1);
        assert_eq!(g.sample_size, 2);
        g.finish();
    }

    #[test]
    fn ns_formatting() {
        assert_eq!(fmt_ns(12.34), "12.3 ns");
        assert_eq!(fmt_ns(12_340.0), "12.34 us");
        assert_eq!(fmt_ns(12_340_000.0), "12.34 ms");
    }
}
