//! `gcc-serve` — the multi-scene render service of the GCC reproduction.
//!
//! The renderers turn `(scene, camera)` into a frame; this crate turns
//! that into a *service*: many scenes, many concurrent clients, bounded
//! memory, and — since the session redesign — *streams* of correlated
//! views with backpressure, cancellation and latency classes. It is the
//! paper's cross-stage conditional-scheduling idea lifted one level up:
//! the schedulable unit is a frame of a stream, and what gets processed
//! when is conditioned on scene residency, priority class and deadlines:
//!
//! * [`Session`] / [`FrameStream`] (the [`session`] module) — a client
//!   opens a session per scene (with shared [`RenderOptions`] defaults)
//!   and streams view sequences through it: trajectory sweeps, orbit
//!   loops, or explicit view lists ([`StreamSpec`]). Streams deliver
//!   in order, materialize at most [`StreamConfig::window`] undelivered
//!   frames at a time (backpressure), can be cancelled mid-flight
//!   (releasing their queued work), and carry a [`Priority`] —
//!   `Interactive` preempts `Bulk` at every dispatch decision — plus an
//!   optional per-frame deadline whose misses are counted.
//! * [`LruSceneCache`] — scenes load on demand through [`SceneSource`]
//!   handles (presets, binary/JSON files via `gcc_scene::io`) and stay
//!   resident under a byte budget with least-recently-used eviction.
//!   Frames of one stream share one batch key, so correlated views stay
//!   co-scheduled on one worker's warm scratch while their scene stays
//!   hot in the cache.
//! * [`RenderService`] — a long-lived worker pool
//!   ([`gcc_parallel::WorkerPool`]) over priority-aware batching queues
//!   keyed by `(scene, schedule, resolution, priority)`; requests that
//!   agree on the key coalesce into batches a worker renders
//!   back-to-back through one reusable
//!   [`FrameScratch`](gcc_render::pipeline::FrameScratch); requests for
//!   a cold scene trigger an asynchronous load on one worker which then
//!   drains the waiting batch itself (load-then-drain), while other
//!   workers keep serving resident scenes. [`RenderService::submit`] and
//!   [`RenderService::render_blocking`] are thin shims over single-frame
//!   interactive streams.
//! * [`LodPolicy`] — deadline-aware adaptive quality: with
//!   `ServeConfig::lod` set, deadline-carrying frames dispatch through
//!   the `gcc_lod` quality ladder. A rolling per-scene cost model
//!   (EWMA keyed scene × rung × resolution) predicts each rung's cost
//!   and the worker picks the highest rung fitting the frame's
//!   remaining budget — degrading resolution (with a filtered upscale
//!   back to full size), SH degree, alpha threshold and hierarchy
//!   level instead of missing the deadline, then climbing back when
//!   headroom returns. Rung 0 is exact, so ladder-on serving stays
//!   bit-identical whenever the deadline affords it; scene hierarchies
//!   build at load time and are charged to the cache budget.
//! * [`ServeStats`] — the introspection surface: per-scene hit / miss /
//!   eviction / batch counters, per-schedule and per-priority
//!   request/frame breakdowns (separate Interactive vs Bulk latency
//!   percentiles and deadline-miss counts), stream lifecycle counters,
//!   queue depth watermarks, and the folded
//!   [`FrameStats`](gcc_render::pipeline::FrameStats) of everything
//!   rendered.
//!
//! Requests are validated at submit/open: NaN parameters, out-of-range
//! trajectory values, zero-sized ROIs, empty streams and unknown scene
//! ids come back as typed [`ServeError`]s instead of reaching a render
//! worker.
//!
//! Determinism contract: a served frame — streamed or submitted — is
//! bit-identical to calling
//! [`Renderer::render_job`](gcc_render::pipeline::Renderer::render_job)
//! directly with the same scene, resolved camera and options — scratch
//! reuse, batching, priorities and scheduling order never leak into
//! pixels (`tests/serve_parity.rs` pins this at the workspace level,
//! across schedules, priorities, thread counts and stream shapes).
//!
//! ```
//! use gcc_render::{RenderOptions, Schedule};
//! use gcc_scene::{ScenePreset, ViewSpec};
//! use gcc_serve::{
//!     RenderRequest, RenderService, SceneSource, ServeConfig, StreamConfig, StreamSpec,
//! };
//!
//! let service = RenderService::new(
//!     ServeConfig { workers: 2, ..ServeConfig::default() },
//!     [(
//!         "lego".to_string(),
//!         SceneSource::Preset { preset: ScenePreset::Lego, scale: 0.02 },
//!     )],
//! );
//! // The single-frame surface: a thin shim over a one-frame stream.
//! let frame = service
//!     .submit(RenderRequest::trajectory("lego", 0.25))
//!     .unwrap()
//!     .wait()
//!     .unwrap();
//! assert!(frame.image.width() > 0);
//! // The session surface: open once, stream a whole sweep through it.
//! let session = service
//!     .session("lego", RenderOptions::default().with_schedule(Schedule::GccHardware))
//!     .unwrap();
//! let stream = session
//!     .stream_with(
//!         StreamSpec::TrajectorySweep { t0: 0.0, t1: 0.5, frames: 3 },
//!         StreamConfig::bulk().with_window(2),
//!     )
//!     .unwrap();
//! let frames: Vec<_> = stream.map(|r| r.unwrap()).collect();
//! assert_eq!(frames.len(), 3);
//! // And posed single frames through the same session.
//! let posed = session
//!     .render_blocking(ViewSpec::look_at(
//!         gcc_math::Vec3::new(0.0, 1.0, -4.0),
//!         gcc_math::Vec3::ZERO,
//!     ))
//!     .unwrap();
//! assert!(posed.image.width() > 0);
//! assert_eq!(service.stats().completed, 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
pub mod fault;
mod service;
pub mod session;
mod source;
mod stats;

pub use cache::LruSceneCache;
pub use fault::{ChaosRenderer, FaultPlan, LoadFault};
pub use service::{
    LodPolicy, RenderHandle, RenderRequest, RenderService, ScheduleRenderers, ServeConfig,
    ShedPolicy,
};
pub use session::{FrameStream, Priority, Session, StreamConfig, StreamPoll, StreamSpec};
pub use source::{LoadError, SceneSource};
pub use stats::{
    percentile_us, LodCounters, LodDecision, PriorityCounters, SceneCounters, ScheduleCounters,
    ServeStats, StreamCounters, LOD_TRACE_WINDOW,
};

use gcc_scene::ViewError;
use std::time::Duration;

/// Errors surfaced by the serving layer.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The request named a scene id absent from the registry.
    UnknownScene(String),
    /// The request's view or options failed validation (NaN / out-of-range
    /// trajectory parameter, degenerate pose, zero-sized or out-of-bounds
    /// ROI, bad quality knobs).
    InvalidRequest(ViewError),
    /// A stream spec describing zero frames was rejected at open.
    EmptyStream,
    /// The scene's source failed to load (message carries the I/O or
    /// format error; it is a string so one failure can fan out to every
    /// stream waiting on the load).
    Load {
        /// Scene id whose load failed.
        scene: String,
        /// Human-readable cause.
        message: String,
    },
    /// The service is shutting down and accepts no new requests; also the
    /// resolution of any frame still queued — and of any stream's
    /// unissued remainder — when the service shut down (no
    /// [`RenderHandle::wait`] or [`FrameStream`] consumer blocks past
    /// shutdown).
    ShuttingDown,
    /// The worker rendering this request's batch panicked. The stream is
    /// failed instead of stranded; the worker itself is respawned with
    /// fresh state (within the service's
    /// [`RestartPolicy`](gcc_parallel::RestartPolicy) budget — past it
    /// the panic resurfaces when the service joins its pool).
    WorkerPanicked,
    /// The scene is quarantined behind the load circuit breaker: a
    /// recent load exhausted its retries (or panicked), so new requests
    /// fail fast instead of stalling a loader worker on a known-bad
    /// source. After `retry_after` the next request is admitted as a
    /// half-open probe; its load decides readmission vs re-quarantine.
    Quarantined {
        /// The quarantined scene id.
        scene: String,
        /// Remaining quarantine time at rejection.
        retry_after: Duration,
    },
    /// The request was shed by admission control: past the Bulk
    /// watermarks new Bulk streams are rejected while Interactive still
    /// admits; past the hard ceilings everything sheds. Back off at
    /// least `retry_after` before retrying.
    Overloaded {
        /// Suggested client backoff.
        retry_after: Duration,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::UnknownScene(id) => write!(f, "unknown scene '{id}'"),
            Self::InvalidRequest(e) => write!(f, "invalid request: {e}"),
            Self::EmptyStream => write!(f, "stream spec describes zero frames"),
            Self::Load { scene, message } => write!(f, "loading scene '{scene}' failed: {message}"),
            Self::ShuttingDown => write!(f, "service is shutting down"),
            Self::WorkerPanicked => write!(f, "a render worker panicked on this batch"),
            Self::Quarantined { scene, retry_after } => write!(
                f,
                "scene '{scene}' is quarantined after failed loads (retry in {retry_after:?})"
            ),
            Self::Overloaded { retry_after } => write!(
                f,
                "service is overloaded; request shed (retry in {retry_after:?})"
            ),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::InvalidRequest(e) => Some(e),
            _ => None,
        }
    }
}
