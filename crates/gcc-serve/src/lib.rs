//! `gcc-serve` — the multi-scene render service of the GCC reproduction.
//!
//! The renderers turn `(scene, camera)` into a frame; this crate turns
//! that into a *service*: many scenes, many concurrent clients, bounded
//! memory. It is the paper's cross-stage conditional-scheduling idea
//! lifted one level up — the schedulable unit is a whole frame request,
//! and what gets processed when is conditioned on which scenes are
//! resident:
//!
//! * [`LruSceneCache`] — scenes load on demand through [`SceneSource`]
//!   handles (presets, binary/JSON files via `gcc_scene::io`) and stay
//!   resident under a byte budget with least-recently-used eviction.
//! * [`RenderService`] — a long-lived worker pool
//!   ([`gcc_parallel::WorkerPool`]) over a batching queue keyed by
//!   `(scene, schedule, resolution)`: requests that agree on those three
//!   are coalesced into batches so a worker renders them back-to-back
//!   through one reusable
//!   [`FrameScratch`](gcc_render::pipeline::FrameScratch) (the
//!   trajectory-runner reuse discipline, extended from one batch to the
//!   whole worker lifetime); requests for a cold scene trigger an
//!   asynchronous load on one worker which then drains the waiting batch
//!   itself (load-then-drain), while other workers keep serving resident
//!   scenes.
//! * [`ServeStats`] — the introspection surface: per-scene hit / miss /
//!   eviction / batch counters, per-schedule request/frame breakdowns,
//!   queue depth watermarks, p50/p95 request latency, and the folded
//!   [`FrameStats`](gcc_render::pipeline::FrameStats) of everything
//!   rendered.
//!
//! Since the request-model redesign a request is a full view description:
//! a [`ViewSpec`](gcc_scene::ViewSpec) (trajectory parameter, explicit
//! pose, or orbit angle) plus [`RenderOptions`](gcc_render::RenderOptions)
//! (schedule selection, resolution override, region of interest,
//! background and quality knobs). Requests are validated at
//! [`RenderService::submit`]: NaN parameters, out-of-range trajectory
//! values, zero-sized ROIs and unknown scene ids come back as typed
//! [`ServeError`]s instead of reaching a render worker.
//!
//! Determinism contract: a served frame is bit-identical to calling
//! [`Renderer::render_job`](gcc_render::pipeline::Renderer::render_job)
//! directly with the same scene, resolved camera and options — scratch
//! reuse, batching and scheduling order never leak into pixels
//! (`tests/serve_parity.rs` pins this at the workspace level, across
//! schedules, resolutions, ROIs and explicit poses).
//!
//! ```
//! use gcc_render::{RenderOptions, Schedule};
//! use gcc_scene::{ScenePreset, ViewSpec};
//! use gcc_serve::{RenderRequest, RenderService, SceneSource, ServeConfig};
//!
//! let service = RenderService::new(
//!     ServeConfig { workers: 2, ..ServeConfig::default() },
//!     [(
//!         "lego".to_string(),
//!         SceneSource::Preset { preset: ScenePreset::Lego, scale: 0.02 },
//!     )],
//! );
//! // The historical surface: trajectory parameter, default options.
//! let frame = service
//!     .submit(RenderRequest::trajectory("lego", 0.25))
//!     .unwrap()
//!     .wait()
//!     .unwrap();
//! assert!(frame.image.width() > 0);
//! // The full request model: explicit pose, schedule and resolution.
//! let posed = RenderRequest::new(
//!     "lego",
//!     ViewSpec::look_at(gcc_math::Vec3::new(0.0, 1.0, -4.0), gcc_math::Vec3::ZERO),
//! )
//! .with_options(
//!     RenderOptions::default()
//!         .with_schedule(Schedule::GccHardware)
//!         .at_resolution(160, 120),
//! );
//! let small = service.render_blocking(posed).unwrap();
//! assert_eq!((small.image.width(), small.image.height()), (160, 120));
//! assert_eq!(service.stats().completed, 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod service;
mod source;
mod stats;

pub use cache::LruSceneCache;
pub use service::{RenderHandle, RenderRequest, RenderService, ScheduleRenderers, ServeConfig};
pub use source::SceneSource;
pub use stats::{percentile_us, SceneCounters, ScheduleCounters, ServeStats};

use gcc_scene::ViewError;

/// Errors surfaced by the serving layer.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The request named a scene id absent from the registry.
    UnknownScene(String),
    /// The request's view or options failed validation (NaN / out-of-range
    /// trajectory parameter, degenerate pose, zero-sized or out-of-bounds
    /// ROI, bad quality knobs).
    InvalidRequest(ViewError),
    /// The scene's source failed to load (message carries the I/O or
    /// format error; it is a string so one failure can fan out to every
    /// request waiting on the load).
    Load {
        /// Scene id whose load failed.
        scene: String,
        /// Human-readable cause.
        message: String,
    },
    /// The service is shutting down and accepts no new requests; also the
    /// resolution of any handle still queued when the service shut down
    /// (no [`RenderHandle::wait`] blocks past shutdown).
    ShuttingDown,
    /// The worker rendering this request's batch panicked. The waiter is
    /// failed instead of stranded; the panic itself resurfaces when the
    /// service joins its pool (shutdown/drop).
    WorkerPanicked,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::UnknownScene(id) => write!(f, "unknown scene '{id}'"),
            Self::InvalidRequest(e) => write!(f, "invalid request: {e}"),
            Self::Load { scene, message } => write!(f, "loading scene '{scene}' failed: {message}"),
            Self::ShuttingDown => write!(f, "service is shutting down"),
            Self::WorkerPanicked => write!(f, "a render worker panicked on this batch"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::InvalidRequest(e) => Some(e),
            _ => None,
        }
    }
}
