//! `gcc-serve` — the multi-scene render service of the GCC reproduction.
//!
//! The renderers turn `(scene, camera)` into a frame; this crate turns
//! that into a *service*: many scenes, many concurrent clients, bounded
//! memory. It is the paper's cross-stage conditional-scheduling idea
//! lifted one level up — the schedulable unit is a whole frame request,
//! and what gets processed when is conditioned on which scenes are
//! resident:
//!
//! * [`LruSceneCache`] — scenes load on demand through [`SceneSource`]
//!   handles (presets, binary/JSON files via `gcc_scene::io`) and stay
//!   resident under a byte budget with least-recently-used eviction.
//! * [`RenderService`] — a long-lived worker pool
//!   ([`gcc_parallel::WorkerPool`]) over a per-scene batching queue:
//!   requests for the same resident scene are coalesced into batches so a
//!   worker renders them back-to-back through one reusable
//!   [`FrameScratch`](gcc_render::pipeline::FrameScratch) (the
//!   trajectory-runner reuse discipline, extended from one batch to the
//!   whole worker lifetime); requests for a cold scene trigger an
//!   asynchronous load on one worker which then drains the waiting batch
//!   itself (load-then-drain), while other workers keep serving resident
//!   scenes.
//! * [`ServeStats`] — the introspection surface: per-scene hit / miss /
//!   eviction / batch counters, queue depth watermarks, p50/p95 request
//!   latency, and the folded
//!   [`FrameStats`](gcc_render::pipeline::FrameStats) of everything
//!   rendered.
//!
//! Determinism contract: a served frame is bit-identical to calling
//! [`Renderer::render_frame`](gcc_render::pipeline::Renderer::render_frame)
//! directly with the same scene and camera — scratch reuse, batching and
//! scheduling order never leak into pixels (`tests/serve_parity.rs` pins
//! this at the workspace level).
//!
//! ```
//! use gcc_render::pipeline::StandardRenderer;
//! use gcc_scene::{SceneConfig, ScenePreset};
//! use gcc_serve::{RenderRequest, RenderService, SceneSource, ServeConfig};
//!
//! let service = RenderService::new(
//!     ServeConfig { workers: 2, ..ServeConfig::default() },
//!     [(
//!         "lego".to_string(),
//!         SceneSource::Preset { preset: ScenePreset::Lego, scale: 0.02 },
//!     )],
//!     Box::new(StandardRenderer::reference()),
//! );
//! let frame = service
//!     .submit(RenderRequest { scene: "lego".into(), t: 0.25 })
//!     .unwrap()
//!     .wait()
//!     .unwrap();
//! assert!(frame.image.width() > 0);
//! assert_eq!(service.stats().completed, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod service;
mod source;
mod stats;

pub use cache::LruSceneCache;
pub use service::{RenderHandle, RenderRequest, RenderService, ServeConfig};
pub use source::SceneSource;
pub use stats::{percentile_us, SceneCounters, ServeStats};

/// Errors surfaced by the serving layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The request named a scene id absent from the registry.
    UnknownScene(String),
    /// The scene's source failed to load (message carries the I/O or
    /// format error; it is a string so one failure can fan out to every
    /// request waiting on the load).
    Load {
        /// Scene id whose load failed.
        scene: String,
        /// Human-readable cause.
        message: String,
    },
    /// The service is shutting down and accepts no new requests.
    ShuttingDown,
    /// The worker rendering this request's batch panicked. The waiter is
    /// failed instead of stranded; the panic itself resurfaces when the
    /// service joins its pool (shutdown/drop).
    WorkerPanicked,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::UnknownScene(id) => write!(f, "unknown scene '{id}'"),
            Self::Load { scene, message } => write!(f, "loading scene '{scene}' failed: {message}"),
            Self::ShuttingDown => write!(f, "service is shutting down"),
            Self::WorkerPanicked => write!(f, "a render worker panicked on this batch"),
        }
    }
}

impl std::error::Error for ServeError {}
