//! Sessions and frame streams: the serving API for clients that submit
//! *sequences* of correlated views instead of isolated frames.
//!
//! A real client — a headset orbiting a scene, a trajectory playback, a
//! progressive preview — does not speak one frame at a time. It opens a
//! [`Session`] (a scene plus the [`RenderOptions`] defaults all its
//! requests share), describes a whole view sequence as a [`StreamSpec`],
//! and consumes the frames through a [`FrameStream`] handle. The service
//! keeps correlated views of one scene co-scheduled: frames of one stream
//! share a batch key, so they drain back-to-back onto one worker's warm
//! `FrameScratch`, and the scene stays hot in the LRU cache for the
//! stream's whole life.
//!
//! Three properties distinguish a stream from a loop of `submit` calls:
//!
//! * **Backpressure.** The scheduler never materializes more than
//!   [`StreamConfig::window`] undelivered frames per stream — a frame is
//!   issued into the queues only when the client has consumed far enough.
//!   A slow consumer therefore costs bounded queue space and bounded
//!   frame memory, no matter how long its trajectory is.
//! * **Cancellation.** [`FrameStream::cancel`] (and dropping the handle)
//!   frees the stream's queued work immediately: undelivered queued
//!   frames are discarded, unissued frames are never materialized, and
//!   the released slots go to other clients. Frames already on a worker
//!   finish and are discarded.
//! * **Latency classes.** Each stream carries a [`Priority`] —
//!   `Interactive` work preempts `Bulk` work at every dispatch decision —
//!   and an optional per-frame deadline, observable as a deadline-miss
//!   count in `ServeStats`.
//!
//! Delivery is *in order*: frame `i` of a stream is handed out before
//! frame `i + 1` even when workers complete them out of order, and every
//! delivered frame is bit-identical to the equivalent single-frame
//! `submit` (pinned by `tests/serve_parity.rs`).

use std::collections::BTreeMap;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use gcc_render::pipeline::{Frame, RenderOptions};
use gcc_scene::{TrajectoryRunner, ViewSpec};

use crate::service::Shared;
use crate::ServeError;

/// The latency class of a stream. `Interactive` work preempts `Bulk`
/// work at every dispatch decision (a saturating interactive load can
/// therefore starve bulk streams — that is the intended contract; bulk
/// clients trade latency for throughput).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Latency-sensitive: dispatched before any bulk work.
    #[default]
    Interactive,
    /// Throughput work: dispatched only when no interactive work is
    /// runnable.
    Bulk,
}

impl Priority {
    /// Both priorities, in dispatch order.
    pub const ALL: [Priority; 2] = [Priority::Interactive, Priority::Bulk];

    /// Stable identifier (stats keys, JSON records).
    pub fn name(self) -> &'static str {
        match self {
            Self::Interactive => "interactive",
            Self::Bulk => "bulk",
        }
    }

    pub(crate) fn index(self) -> usize {
        match self {
            Self::Interactive => 0,
            Self::Bulk => 1,
        }
    }
}

impl std::fmt::Display for Priority {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A view sequence a session can stream: the serving-level counterpart
/// of `gcc_scene::TrajectoryRunner` view lists.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamSpec {
    /// `frames` views evenly sweeping the scene trajectory from `t0` to
    /// `t1`, both endpoints included
    /// ([`TrajectoryRunner::sweep_views`]).
    TrajectorySweep {
        /// Sweep start parameter (must be in `[0, 1]`).
        t0: f32,
        /// Sweep end parameter (may be below `t0` for a reverse sweep).
        t1: f32,
        /// Number of frames (zero streams are rejected at open).
        frames: usize,
    },
    /// One full orbit loop: `frames` evenly spaced angles over `[0, 2π)`
    /// at a common radius scale and height offset
    /// ([`TrajectoryRunner::orbit_views`]).
    OrbitLoop {
        /// Number of frames per loop.
        frames: usize,
        /// Multiplier on the rig radius (must be positive and finite).
        radius_scale: f32,
        /// Added to the rig's eye height.
        height_offset: f32,
    },
    /// An explicit view list (free-fly recordings, A/B comparisons).
    ViewList(Vec<ViewSpec>),
}

impl StreamSpec {
    /// A full-range trajectory sweep (`t` from 0 to 1 inclusive).
    pub fn trajectory(frames: usize) -> Self {
        Self::TrajectorySweep {
            t0: 0.0,
            t1: 1.0,
            frames,
        }
    }

    /// An orbit loop on the rig circle at native radius and height.
    pub fn orbit(frames: usize) -> Self {
        Self::OrbitLoop {
            frames,
            radius_scale: 1.0,
            height_offset: 0.0,
        }
    }

    /// Number of frames this spec describes.
    pub fn len(&self) -> usize {
        match self {
            Self::TrajectorySweep { frames, .. } | Self::OrbitLoop { frames, .. } => *frames,
            Self::ViewList(views) => views.len(),
        }
    }

    /// `true` when the spec describes no frames (rejected at open).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materializes the spec into its view list, in stream order. Streaming
    /// a spec is defined as submitting exactly these views one by one.
    pub fn views(&self) -> Vec<ViewSpec> {
        match self {
            Self::TrajectorySweep { t0, t1, frames } => {
                TrajectoryRunner::sweep_views(*t0, *t1, *frames)
            }
            Self::OrbitLoop {
                frames,
                radius_scale,
                height_offset,
            } => TrajectoryRunner::orbit_views(*frames, *radius_scale, *height_offset),
            Self::ViewList(views) => views.clone(),
        }
    }
}

/// Per-stream scheduling policy: latency class, optional per-frame
/// deadline, and the in-flight window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamConfig {
    /// The stream's latency class.
    pub priority: Priority,
    /// Optional per-frame deadline, measured from the moment the frame is
    /// *issued* into the scheduler (i.e. from when it enters the in-flight
    /// window, not from stream open — a backpressured frame's clock does
    /// not run while the client hasn't asked for it yet). A frame
    /// completing after its deadline still renders and is delivered; the
    /// miss is counted in the per-priority statistics.
    ///
    /// A deadline is also a scheduling claim: deadline-carrying work is
    /// dispatched ahead of deadline-free work *of the same priority*
    /// (earliest deadline first), so only attach one to streams that
    /// genuinely have a latency budget.
    pub deadline: Option<Duration>,
    /// Most undelivered frames the scheduler may materialize for this
    /// stream at once (queued + rendered-but-unconsumed). Values below 1
    /// are treated as 1.
    pub window: usize,
}

impl Default for StreamConfig {
    /// Interactive, no deadline, a window of 4 frames.
    fn default() -> Self {
        Self {
            priority: Priority::Interactive,
            deadline: None,
            window: 4,
        }
    }
}

impl StreamConfig {
    /// Bulk-priority defaults (throughput playback).
    pub fn bulk() -> Self {
        Self {
            priority: Priority::Bulk,
            ..Self::default()
        }
    }

    /// Sets the latency class.
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the per-frame deadline (see [`Self::deadline`]).
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the in-flight window (clamped up to 1).
    pub fn with_window(mut self, window: usize) -> Self {
        self.window = window;
        self
    }

    pub(crate) fn effective_window(&self) -> usize {
        self.window.max(1)
    }
}

/// A client's handle on one scene: the scene id plus the
/// [`RenderOptions`] defaults every request opened through it shares.
/// Opened by `RenderService::session`; sessions are cheap and clonable —
/// one per client connection is the intended shape.
#[derive(Clone)]
pub struct Session {
    pub(crate) shared: Arc<Shared>,
    pub(crate) scene: String,
    pub(crate) defaults: RenderOptions,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("scene", &self.scene)
            .field("defaults", &self.defaults)
            .finish_non_exhaustive()
    }
}

impl Session {
    /// The scene this session renders.
    pub fn scene_id(&self) -> &str {
        &self.scene
    }

    /// The options every request of this session carries.
    pub fn defaults(&self) -> &RenderOptions {
        &self.defaults
    }

    /// Opens a stream over `spec` with the default [`StreamConfig`]
    /// (interactive, window 4, no deadline).
    ///
    /// # Errors
    ///
    /// See [`Self::stream_with`].
    pub fn stream(&self, spec: StreamSpec) -> Result<FrameStream, ServeError> {
        self.stream_with(spec, StreamConfig::default())
    }

    /// Opens a stream over `spec` with an explicit scheduling policy.
    /// Frames begin rendering immediately (up to the window); consume
    /// them through the returned [`FrameStream`].
    ///
    /// # Errors
    ///
    /// [`ServeError::EmptyStream`] for a zero-frame spec,
    /// [`ServeError::InvalidRequest`] when any generated view or the
    /// session defaults fail validation, and
    /// [`ServeError::ShuttingDown`] after shutdown began.
    pub fn stream_with(
        &self,
        spec: StreamSpec,
        cfg: StreamConfig,
    ) -> Result<FrameStream, ServeError> {
        let views = spec.views();
        if views.is_empty() {
            return Err(ServeError::EmptyStream);
        }
        for view in &views {
            view.validate().map_err(ServeError::InvalidRequest)?;
        }
        Shared::open_stream(&self.shared, &self.scene, views, self.defaults.clone(), cfg)
    }

    /// Submits one frame with the session defaults — sugar for a
    /// single-view interactive stream, sharing the session's warm scene.
    ///
    /// # Errors
    ///
    /// As [`Self::stream_with`], minus [`ServeError::EmptyStream`].
    pub fn submit(&self, view: ViewSpec) -> Result<crate::RenderHandle, ServeError> {
        view.validate().map_err(ServeError::InvalidRequest)?;
        let stream = Shared::open_stream(
            &self.shared,
            &self.scene,
            vec![view],
            self.defaults.clone(),
            StreamConfig::default().with_window(1),
        )?;
        Ok(crate::RenderHandle::from_stream(stream))
    }

    /// Submit one frame and block for it.
    ///
    /// # Errors
    ///
    /// Propagates [`Self::submit`] and render-path errors.
    pub fn render_blocking(&self, view: ViewSpec) -> Result<Frame, ServeError> {
        self.submit(view)?.wait()
    }
}

/// What a non-blocking poll of a [`FrameStream`] observed.
// `Ready` deliberately carries the whole frame inline: it is handed
// straight to the caller, never stored, so boxing would only add an
// allocation to the hot poll path.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum StreamPoll {
    /// The next frame (or its per-frame error), in stream order.
    Ready(Result<Frame, ServeError>),
    /// The next frame is not rendered yet; poll again or block.
    Pending,
    /// The stream is exhausted, cancelled, or already reported its
    /// terminal error — no further frames will ever arrive.
    Done,
}

/// Where workers deliver a stream's results and clients take them from:
/// a reorder buffer plus its condvar, *outside* the service lock so
/// delivery and consumption never contend with the scheduler.
#[derive(Debug, Default)]
pub(crate) struct InboxState {
    /// Completed frames waiting for in-order delivery, by frame index.
    ready: BTreeMap<usize, Result<Frame, ServeError>>,
    /// Next index to hand to the client (== frames delivered so far).
    next: usize,
    /// Total frames of the stream.
    total: usize,
    /// Stream-killing error (scene load failure, worker panic, service
    /// shutdown), delivered once after the in-order prefix runs dry.
    terminal: Option<ServeError>,
    /// Set once the client can never receive another item (terminal
    /// delivered, all frames consumed, or cancelled).
    done: bool,
}

#[derive(Debug)]
pub(crate) struct Inbox {
    state: Mutex<InboxState>,
    ready_cv: Condvar,
}

/// Recovers a poisoned inbox lock instead of cascading the panic: the
/// poisoning thread's panic is already contained (and counted) by the
/// pool supervision, so the client-side handle must keep working. The
/// interrupted update means the reorder buffer can no longer be trusted
/// to complete the stream, so the first recovery resolves it with a
/// terminal [`ServeError::WorkerPanicked`] (sticky poison makes later
/// recoveries no-ops: the terminal is already set or consumed).
fn recover<'a>(
    lock: Result<
        std::sync::MutexGuard<'a, InboxState>,
        std::sync::PoisonError<std::sync::MutexGuard<'a, InboxState>>,
    >,
) -> std::sync::MutexGuard<'a, InboxState> {
    match lock {
        Ok(guard) => guard,
        Err(poisoned) => {
            let mut guard = poisoned.into_inner();
            if !guard.done && guard.terminal.is_none() {
                guard.terminal = Some(ServeError::WorkerPanicked);
            }
            guard
        }
    }
}

impl Inbox {
    pub(crate) fn new(total: usize) -> Arc<Self> {
        Arc::new(Self {
            state: Mutex::new(InboxState {
                total,
                ..InboxState::default()
            }),
            ready_cv: Condvar::new(),
        })
    }

    /// Worker side: deliver frame `index`'s result. A frame finishing
    /// after the stream ended (cancelled, or its terminal was already
    /// consumed) is discarded — the client can never take it, so
    /// retaining it would pin frame memory for the life of the handle.
    /// A frame arriving after a terminal was *set* but not yet consumed
    /// is kept: it may fill the gap at the delivery cursor and reach the
    /// client ahead of the terminal error.
    pub(crate) fn deliver(&self, index: usize, result: Result<Frame, ServeError>) {
        let mut st = recover(self.state.lock());
        if st.done {
            return;
        }
        st.ready.insert(index, result);
        drop(st);
        self.ready_cv.notify_all();
    }

    /// Worker/service side: kill the stream with `err`. Frames already in
    /// the in-order ready prefix still deliver first; the first gap
    /// yields `err` once, then the stream ends. Idempotent (the first
    /// terminal wins).
    pub(crate) fn fail(&self, err: ServeError) {
        let mut st = recover(self.state.lock());
        if st.terminal.is_none() && !st.done {
            st.terminal = Some(err);
        }
        drop(st);
        self.ready_cv.notify_all();
    }

    /// `true` once a `take` would not block.
    fn is_ready(&self) -> bool {
        let st = recover(self.state.lock());
        st.done || st.next >= st.total || st.terminal.is_some() || st.ready.contains_key(&st.next)
    }

    /// `Ok(Some(item))` = next in-order item, `Ok(None)` = stream over,
    /// `Err(())` = nothing available yet.
    #[allow(clippy::result_unit_err)]
    fn try_take(st: &mut InboxState) -> Result<Option<Result<Frame, ServeError>>, ()> {
        if let Some(r) = st.ready.remove(&st.next) {
            st.next += 1;
            return Ok(Some(r));
        }
        if st.done || st.next >= st.total {
            st.done = true;
            return Ok(None);
        }
        if let Some(e) = st.terminal.clone() {
            st.done = true;
            return Ok(Some(Err(e)));
        }
        Err(())
    }
}

/// The consumer half of a stream: an in-order, windowed iterator over
/// the stream's frames. See the [module docs](self) for the backpressure
/// / cancellation / priority contract.
///
/// Dropping an unfinished `FrameStream` cancels it — an abandoned stream
/// never holds queue slots.
pub struct FrameStream {
    pub(crate) shared: Arc<Shared>,
    pub(crate) id: u64,
    pub(crate) inbox: Arc<Inbox>,
    pub(crate) total: usize,
    /// Local: the stream ended (consumed, terminal seen, or cancelled) —
    /// suppresses the cancel-on-drop.
    pub(crate) finished: bool,
}

impl std::fmt::Debug for FrameStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrameStream")
            .field("id", &self.id)
            .field("total", &self.total)
            .field("finished", &self.finished)
            .finish_non_exhaustive()
    }
}

impl FrameStream {
    /// Total frames this stream describes (delivered + outstanding).
    pub fn len(&self) -> usize {
        self.total
    }

    /// `true` for a zero-frame stream (never constructed by
    /// [`Session::stream_with`], which rejects empty specs).
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Frames already handed to the client.
    pub fn delivered(&self) -> usize {
        recover(self.inbox.state.lock()).next
    }

    /// `true` once [`Self::next_frame`] would return without blocking.
    pub fn is_ready(&self) -> bool {
        self.finished || self.inbox.is_ready()
    }

    /// Blocks for the next in-order item: `Some(Ok(frame))`, a per-frame
    /// or stream-terminal `Some(Err(..))`, or `None` once the stream is
    /// over (all frames consumed, terminal already reported, or
    /// cancelled). Consuming a frame opens a window slot, which issues
    /// the next pending frame into the scheduler.
    pub fn next_frame(&mut self) -> Option<Result<Frame, ServeError>> {
        if self.finished {
            return None;
        }
        let taken = {
            let mut st = recover(self.inbox.state.lock());
            loop {
                match Inbox::try_take(&mut st) {
                    Ok(item) => break item,
                    Err(()) => {
                        st = recover(self.inbox.ready_cv.wait(st));
                    }
                }
            }
        };
        self.after_take(&taken);
        taken
    }

    /// Non-blocking poll for the next in-order item.
    pub fn try_next(&mut self) -> StreamPoll {
        self.poll_inner(None)
    }

    /// Bounded-wait poll: blocks up to `timeout` for the next item.
    pub fn next_timeout(&mut self, timeout: Duration) -> StreamPoll {
        self.poll_inner(Some(timeout))
    }

    fn poll_inner(&mut self, timeout: Option<Duration>) -> StreamPoll {
        if self.finished {
            return StreamPoll::Done;
        }
        let taken = {
            let mut st = recover(self.inbox.state.lock());
            match Inbox::try_take(&mut st) {
                Ok(item) => Some(item),
                Err(()) => match timeout {
                    None => None,
                    Some(timeout) => {
                        let (mut st, result) = match self.inbox.ready_cv.wait_timeout(st, timeout) {
                            Ok(pair) => pair,
                            Err(poisoned) => {
                                let (st, result) = poisoned.into_inner();
                                // Re-recover so the terminal is injected.
                                drop(st);
                                (recover(self.inbox.state.lock()), result)
                            }
                        };
                        // One shot after the wait: either something
                        // arrived, or we report Pending (spurious wakeups
                        // inside the window are absorbed by re-polling
                        // callers; a strict single timeout keeps
                        // `wait_timeout` bounded).
                        let _ = result;
                        Inbox::try_take(&mut st).ok()
                    }
                },
            }
        };
        match taken {
            None => StreamPoll::Pending,
            Some(item) => {
                self.after_take(&item);
                match item {
                    Some(r) => StreamPoll::Ready(r),
                    None => StreamPoll::Done,
                }
            }
        }
    }

    /// Bookkeeping after an item (or end-of-stream) was taken: refill the
    /// window, and mark the stream finished when it ended.
    fn after_take(&mut self, taken: &Option<Result<Frame, ServeError>>) {
        match taken {
            Some(Ok(_)) | Some(Err(_)) => {
                let delivered = self.delivered();
                self.shared.refill_stream(self.id, delivered);
                // A terminal error is the last item; mark the stream
                // finished so drop doesn't try to cancel it again.
                if recover(self.inbox.state.lock()).done {
                    self.finished = true;
                }
            }
            None => self.finished = true,
        }
    }

    /// Cancels the stream: queued frames are discarded, unissued frames
    /// are never materialized, and the freed slots go to other clients.
    /// Frames already on a worker finish and are discarded. After
    /// cancellation every accessor reports the stream as done
    /// ([`Self::next_frame`] returns `None` — cancellation is a client
    /// decision, not an error).
    pub fn cancel(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        {
            let mut st = recover(self.inbox.state.lock());
            st.done = true;
            st.ready.clear();
        }
        self.inbox.ready_cv.notify_all();
        self.shared.cancel_stream(self.id);
    }
}

impl Iterator for FrameStream {
    type Item = Result<Frame, ServeError>;

    /// [`Self::next_frame`]: blocking, in-order.
    fn next(&mut self) -> Option<Self::Item> {
        self.next_frame()
    }
}

impl Drop for FrameStream {
    /// An abandoned stream is cancelled so it releases its queue slots.
    fn drop(&mut self) {
        self.cancel();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_specs_materialize_the_documented_view_lists() {
        let sweep = StreamSpec::TrajectorySweep {
            t0: 0.0,
            t1: 1.0,
            frames: 3,
        };
        assert_eq!(
            sweep.views(),
            vec![
                ViewSpec::trajectory(0.0),
                ViewSpec::trajectory(0.5),
                ViewSpec::trajectory(1.0),
            ]
        );
        assert_eq!(sweep.len(), 3);
        assert!(!sweep.is_empty());
        assert_eq!(StreamSpec::trajectory(3), sweep);

        let orbit = StreamSpec::orbit(4);
        assert_eq!(orbit.len(), 4);
        assert_eq!(
            orbit.views()[1],
            ViewSpec::orbit(std::f32::consts::TAU / 4.0)
        );

        let list = StreamSpec::ViewList(vec![ViewSpec::trajectory(0.25)]);
        assert_eq!(list.views(), vec![ViewSpec::trajectory(0.25)]);
        assert!(StreamSpec::ViewList(Vec::new()).is_empty());
    }

    #[test]
    fn priorities_order_interactive_first() {
        assert!(Priority::Interactive < Priority::Bulk);
        assert_eq!(Priority::ALL[0], Priority::Interactive);
        assert_eq!(Priority::Interactive.name(), "interactive");
        assert_eq!(Priority::Bulk.to_string(), "bulk");
        assert_eq!(Priority::default(), Priority::Interactive);
    }

    #[test]
    fn stream_config_clamps_the_window() {
        assert_eq!(StreamConfig::default().effective_window(), 4);
        assert_eq!(StreamConfig::default().with_window(0).effective_window(), 1);
        let bulk = StreamConfig::bulk().with_deadline(Duration::from_millis(5));
        assert_eq!(bulk.priority, Priority::Bulk);
        assert_eq!(bulk.deadline, Some(Duration::from_millis(5)));
    }

    #[test]
    fn inbox_delivers_in_order_and_terminal_after_the_prefix() {
        let inbox = Inbox::new(3);
        inbox.deliver(1, Err(ServeError::WorkerPanicked));
        inbox.deliver(0, Err(ServeError::ShuttingDown));
        let mut st = inbox.state.lock().unwrap();
        assert!(matches!(
            Inbox::try_take(&mut st),
            Ok(Some(Err(ServeError::ShuttingDown)))
        ));
        assert!(matches!(
            Inbox::try_take(&mut st),
            Ok(Some(Err(ServeError::WorkerPanicked)))
        ));
        // Frame 2 never completed: pending, then terminal once, then done.
        assert!(Inbox::try_take(&mut st).is_err());
        drop(st);
        inbox.fail(ServeError::ShuttingDown);
        let mut st = inbox.state.lock().unwrap();
        assert!(matches!(
            Inbox::try_take(&mut st),
            Ok(Some(Err(ServeError::ShuttingDown)))
        ));
        assert!(matches!(Inbox::try_take(&mut st), Ok(None)));
    }

    #[test]
    fn poisoned_inbox_resolves_with_a_terminal_error_instead_of_cascading() {
        // A thread panicking while holding the inbox lock poisons it; the
        // client-side accessors must recover and resolve the stream with
        // WorkerPanicked rather than propagate the panic into the client.
        let inbox = Inbox::new(2);
        let poisoner = std::sync::Arc::clone(&inbox);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.state.lock().unwrap();
            panic!("worker panic while holding the inbox lock");
        })
        .join();
        assert!(inbox.state.lock().is_err(), "the lock must be poisoned");
        // The first recovery injects the terminal; the stream is ready.
        assert!(inbox.is_ready());
        let mut st = recover(inbox.state.lock());
        assert!(matches!(
            Inbox::try_take(&mut st),
            Ok(Some(Err(ServeError::WorkerPanicked)))
        ));
        assert!(matches!(Inbox::try_take(&mut st), Ok(None)));
        drop(st);
        // Later deliveries and failures recover too (and are no-ops on
        // the now-done stream) instead of panicking on the sticky poison.
        inbox.deliver(1, Err(ServeError::ShuttingDown));
        inbox.fail(ServeError::ShuttingDown);
        assert!(matches!(
            Inbox::try_take(&mut recover(inbox.state.lock())),
            Ok(None)
        ));
    }
}
