//! Scene loader handles: where a scene id's data comes from.

use std::path::PathBuf;
use std::sync::Arc;

use gcc_scene::{Scene, SceneConfig, ScenePreset};

/// A loadable scene: the registry value behind a scene id. Loading is
/// performed by cache-miss workers with no service lock held, so sources
/// must be usable from any thread (`Sync` via shared references only).
#[derive(Debug, Clone)]
pub enum SceneSource {
    /// Synthesize an in-tree preset at a count scale (deterministic —
    /// a pure function of `(preset, scale)`).
    Preset {
        /// The paper scene preset.
        preset: ScenePreset,
        /// Count scale in `(0, 100]` (see [`SceneConfig::with_scale`]).
        scale: f32,
    },
    /// Load from a scene file, sniffing the binary DRAM-image format vs
    /// JSON by content ([`gcc_scene::io::load_scene_file`]).
    File(PathBuf),
    /// An already-built scene (embedders, tests). Loading is a cheap
    /// `Arc` clone — note the cache still accounts its full byte size.
    Memory(Arc<Scene>),
    /// Test-only: panics when loaded, exercising the service's
    /// load-panic containment.
    #[cfg(test)]
    PanicsOnLoad,
}

impl SceneSource {
    /// Loads the scene. Errors are stringified so they can fan out to
    /// every request waiting on this load.
    pub fn load(&self) -> Result<Arc<Scene>, String> {
        match self {
            Self::Preset { preset, scale } => {
                if !(*scale > 0.0 && *scale <= 100.0) {
                    return Err(format!("preset scale {scale} out of range (0, 100]"));
                }
                Ok(Arc::new(preset.build(&SceneConfig::with_scale(*scale))))
            }
            Self::File(path) => gcc_scene::io::load_scene_file(path)
                .map(Arc::new)
                .map_err(|e| e.to_string()),
            Self::Memory(scene) => Ok(Arc::clone(scene)),
            #[cfg(test)]
            Self::PanicsOnLoad => panic!("scene load blew up"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_source_loads_deterministically() {
        let src = SceneSource::Preset {
            preset: ScenePreset::Lego,
            scale: 0.02,
        };
        let a = src.load().unwrap();
        let b = src.load().unwrap();
        assert_eq!(a.gaussians, b.gaussians);
        assert!(!a.is_empty());
    }

    #[test]
    fn bad_scale_is_an_error_not_a_panic() {
        let src = SceneSource::Preset {
            preset: ScenePreset::Lego,
            scale: 0.0,
        };
        assert!(src.load().is_err());
    }

    #[test]
    fn missing_file_reports_io_error() {
        let src = SceneSource::File(PathBuf::from("/nonexistent/scene.bin"));
        let err = src.load().unwrap_err();
        assert!(err.contains("i/o error"), "{err}");
    }

    #[test]
    fn memory_source_shares_the_same_scene() {
        let scene = Arc::new(ScenePreset::Palace.build(&SceneConfig::with_scale(0.02)));
        let src = SceneSource::Memory(Arc::clone(&scene));
        let loaded = src.load().unwrap();
        assert!(Arc::ptr_eq(&scene, &loaded));
    }
}
