//! Scene loader handles: where a scene id's data comes from.

use std::path::PathBuf;
use std::sync::Arc;

use gcc_scene::{Scene, SceneConfig, ScenePreset};

use crate::fault::{FaultPlan, LoadFault};

/// A classified load failure: the message that fans out to every waiter,
/// plus whether retrying the same load could plausibly succeed (see
/// [`gcc_scene::io::SceneIoError::is_retryable`] for the I/O-side
/// classification). The service's retry loop only re-attempts retryable
/// failures; fatal ones quarantine the scene immediately.
#[derive(Debug, Clone)]
pub struct LoadError {
    /// Human-readable cause.
    pub message: String,
    /// Whether a retry could plausibly succeed.
    pub retryable: bool,
}

impl LoadError {
    fn fatal(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            retryable: false,
        }
    }
}

/// A loadable scene: the registry value behind a scene id. Loading is
/// performed by cache-miss workers with no service lock held, so sources
/// must be usable from any thread (`Sync` via shared references only).
#[derive(Debug, Clone)]
pub enum SceneSource {
    /// Synthesize an in-tree preset at a count scale (deterministic —
    /// a pure function of `(preset, scale)`).
    Preset {
        /// The paper scene preset.
        preset: ScenePreset,
        /// Count scale in `(0, 100]` (see [`SceneConfig::with_scale`]).
        scale: f32,
    },
    /// Load from a scene file, sniffing the binary DRAM-image format vs
    /// JSON by content ([`gcc_scene::io::load_scene_file`]).
    File(PathBuf),
    /// An already-built scene (embedders, tests). Loading is a cheap
    /// `Arc` clone — note the cache still accounts its full byte size.
    Memory(Arc<Scene>),
    /// Fault-injection wrapper ([`SceneSource::faulty`]): consults a
    /// [`FaultPlan`] before each load attempt and fails, panics or
    /// stalls as drawn; a clean draw delegates to the inner source.
    Faulty {
        /// Label the plan draws under (conventionally the scene id).
        label: String,
        /// The real source behind the faults.
        inner: Box<SceneSource>,
        /// The shared fault schedule.
        plan: Arc<FaultPlan>,
    },
    /// Test-only: panics when loaded, exercising the service's
    /// load-panic containment.
    #[cfg(test)]
    PanicsOnLoad,
}

impl SceneSource {
    /// Wraps `inner` with fault injection under `plan` (chaos tests,
    /// `bench_serve --chaos`). The `label` keys the plan's per-scene
    /// attempt counter — pass the id the source is registered under.
    pub fn faulty(label: impl Into<String>, inner: SceneSource, plan: Arc<FaultPlan>) -> Self {
        Self::Faulty {
            label: label.into(),
            inner: Box::new(inner),
            plan,
        }
    }

    /// Loads the scene. Errors are stringified so they can fan out to
    /// every request waiting on this load.
    pub fn load(&self) -> Result<Arc<Scene>, String> {
        self.load_classified().map_err(|e| e.message)
    }

    /// [`Self::load`] with the retryable-vs-fatal classification the
    /// service's retry loop dispatches on.
    pub fn load_classified(&self) -> Result<Arc<Scene>, LoadError> {
        match self {
            Self::Preset { preset, scale } => {
                if !(*scale > 0.0 && *scale <= 100.0) {
                    // A property of the registration, not of the moment.
                    return Err(LoadError::fatal(format!(
                        "preset scale {scale} out of range (0, 100]"
                    )));
                }
                Ok(Arc::new(preset.build(&SceneConfig::with_scale(*scale))))
            }
            Self::File(path) => gcc_scene::io::load_scene_file(path)
                .map(Arc::new)
                .map_err(|e| LoadError {
                    retryable: e.is_retryable(),
                    message: e.to_string(),
                }),
            Self::Memory(scene) => Ok(Arc::clone(scene)),
            Self::Faulty { label, inner, plan } => match plan.next_load_fault(label) {
                Some(LoadFault::FailRetryable) => Err(LoadError {
                    message: format!("injected transient load failure for '{label}'"),
                    retryable: true,
                }),
                Some(LoadFault::FailFatal) => Err(LoadError::fatal(format!(
                    "injected fatal load failure for '{label}'"
                ))),
                Some(LoadFault::Panic) => panic!("injected load panic for '{label}'"),
                Some(LoadFault::Slow(delay)) => {
                    std::thread::sleep(delay);
                    inner.load_classified()
                }
                None => inner.load_classified(),
            },
            #[cfg(test)]
            Self::PanicsOnLoad => panic!("scene load blew up"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_source_loads_deterministically() {
        let src = SceneSource::Preset {
            preset: ScenePreset::Lego,
            scale: 0.02,
        };
        let a = src.load().unwrap();
        let b = src.load().unwrap();
        assert_eq!(a.gaussians, b.gaussians);
        assert!(!a.is_empty());
    }

    #[test]
    fn bad_scale_is_an_error_not_a_panic() {
        let src = SceneSource::Preset {
            preset: ScenePreset::Lego,
            scale: 0.0,
        };
        assert!(src.load().is_err());
    }

    #[test]
    fn missing_file_reports_io_error() {
        let src = SceneSource::File(PathBuf::from("/nonexistent/scene.bin"));
        let err = src.load().unwrap_err();
        assert!(err.contains("i/o error"), "{err}");
    }

    #[test]
    fn memory_source_shares_the_same_scene() {
        let scene = Arc::new(ScenePreset::Palace.build(&SceneConfig::with_scale(0.02)));
        let src = SceneSource::Memory(Arc::clone(&scene));
        let loaded = src.load().unwrap();
        assert!(Arc::ptr_eq(&scene, &loaded));
    }

    #[test]
    fn classification_matches_the_failure_kind() {
        // Missing file: fatal (the path will be just as absent on retry).
        let src = SceneSource::File(PathBuf::from("/nonexistent/scene.bin"));
        let err = src.load_classified().unwrap_err();
        assert!(!err.retryable, "{}", err.message);
        // Bad preset scale: fatal misconfiguration.
        let src = SceneSource::Preset {
            preset: ScenePreset::Lego,
            scale: -1.0,
        };
        assert!(!src.load_classified().unwrap_err().retryable);
    }

    #[test]
    fn faulty_source_follows_its_script_then_delegates() {
        use crate::fault::{FaultPlan, LoadFault};
        let scene = Arc::new(ScenePreset::Lego.build(&SceneConfig::with_scale(0.02)));
        let plan = Arc::new(FaultPlan::new(1).script_loads(
            "s",
            [
                Some(LoadFault::FailRetryable),
                Some(LoadFault::FailFatal),
                None,
            ],
        ));
        let src = SceneSource::faulty("s", SceneSource::Memory(Arc::clone(&scene)), plan);
        let e = src.load_classified().unwrap_err();
        assert!(e.retryable);
        let e = src.load_classified().unwrap_err();
        assert!(!e.retryable);
        let loaded = src.load_classified().unwrap();
        assert!(Arc::ptr_eq(&scene, &loaded));
    }

    #[test]
    fn disarmed_faulty_source_is_transparent() {
        use crate::fault::FaultPlan;
        let scene = Arc::new(ScenePreset::Lego.build(&SceneConfig::with_scale(0.02)));
        let plan = Arc::new(FaultPlan::new(2).with_retryable_load_failures(1000));
        let src = SceneSource::faulty("s", SceneSource::Memory(Arc::clone(&scene)), plan.clone());
        assert!(src.load_classified().is_err());
        plan.disarm();
        assert!(src.load_classified().is_ok());
    }
}
