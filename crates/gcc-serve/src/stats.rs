//! The service's introspection surface: counters, latency percentiles,
//! and the folded render statistics.

use std::collections::BTreeMap;

use gcc_render::pipeline::{FrameStats, Schedule};

/// Per-scene serving counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SceneCounters {
    /// Requests submitted for this scene.
    pub requests: u64,
    /// Requests whose scene was resident at submit time.
    pub hits: u64,
    /// Requests whose scene was cold at submit time.
    pub misses: u64,
    /// Times this scene was loaded from its source.
    pub loads: u64,
    /// Times this scene was evicted from the cache.
    pub evictions: u64,
    /// Frames rendered for this scene.
    pub frames: u64,
    /// Batches this scene's frames were drained in.
    pub batches: u64,
}

/// Per-schedule serving counters — the breakdown of a heterogeneous
/// workload by [`Schedule`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScheduleCounters {
    /// Requests submitted selecting this schedule.
    pub requests: u64,
    /// Frames rendered through this schedule.
    pub frames: u64,
    /// Batches drained for this schedule.
    pub batches: u64,
}

/// Linear-interpolated percentile over *sorted* microsecond samples,
/// returned in milliseconds. Empty input yields 0.
pub fn percentile_us(sorted_us: &[u64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let rank = p.clamp(0.0, 1.0) * (sorted_us.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    let us = sorted_us[lo] as f64 * (1.0 - frac) + sorted_us[hi] as f64 * frac;
    us / 1e3
}

/// A point-in-time snapshot of the service's statistics.
#[derive(Debug, Clone, Default)]
pub struct ServeStats {
    /// Per-scene counters (scene id → counters).
    pub per_scene: BTreeMap<String, SceneCounters>,
    /// Per-schedule counters (only schedules that saw requests appear).
    pub per_schedule: BTreeMap<Schedule, ScheduleCounters>,
    /// Requests completed (fulfilled or failed).
    pub completed: u64,
    /// Requests submitted but not yet drained into a batch at snapshot
    /// time (requests already in flight on a worker are not counted).
    pub queue_depth: usize,
    /// High-water mark of [`Self::queue_depth`] over the service's life.
    pub max_queue_depth: usize,
    /// Batches drained.
    pub batches: u64,
    /// Frames rendered (success path only).
    pub frames: u64,
    /// Median request latency, submit → frame, milliseconds. Percentiles
    /// are computed over a sliding window of the most recent completions
    /// (the service caps retained samples so a long-lived process does
    /// not grow without bound).
    pub latency_p50_ms: f64,
    /// 95th-percentile request latency over the same window, ms.
    pub latency_p95_ms: f64,
    /// Sum of the per-frame [`FrameStats`] of every rendered frame.
    pub frame_stats: FrameStats,
    /// Bytes resident in the scene cache at snapshot time.
    pub resident_bytes: usize,
    /// Scenes resident at snapshot time.
    pub resident_scenes: usize,
}

impl ServeStats {
    /// Total cache hits across scenes.
    pub fn hits(&self) -> u64 {
        self.per_scene.values().map(|c| c.hits).sum()
    }

    /// Total cache misses across scenes.
    pub fn misses(&self) -> u64 {
        self.per_scene.values().map(|c| c.misses).sum()
    }

    /// Total evictions across scenes.
    pub fn evictions(&self) -> u64 {
        self.per_scene.values().map(|c| c.evictions).sum()
    }

    /// Total scene loads across scenes.
    pub fn loads(&self) -> u64 {
        self.per_scene.values().map(|c| c.loads).sum()
    }

    /// Hit fraction of all classified requests (0 when none yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits() + self.misses();
        if total == 0 {
            0.0
        } else {
            self.hits() as f64 / total as f64
        }
    }

    /// Mean frames per drained batch (the coalescing factor; 0 before the
    /// first batch).
    pub fn frames_per_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.frames as f64 / self.batches as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_interpolate() {
        let us: Vec<u64> = vec![1000, 2000, 3000, 4000];
        assert!((percentile_us(&us, 0.0) - 1.0).abs() < 1e-9);
        assert!((percentile_us(&us, 1.0) - 4.0).abs() < 1e-9);
        assert!((percentile_us(&us, 0.5) - 2.5).abs() < 1e-9);
        assert!((percentile_us(&us, 0.95) - 3.85).abs() < 1e-9);
        assert_eq!(percentile_us(&[], 0.5), 0.0);
        assert!((percentile_us(&[7000], 0.95) - 7.0).abs() < 1e-9);
    }

    #[test]
    fn derived_rates_aggregate_per_scene_counters() {
        let mut stats = ServeStats::default();
        stats.per_scene.insert(
            "a".into(),
            SceneCounters {
                requests: 10,
                hits: 8,
                misses: 2,
                loads: 2,
                evictions: 1,
                frames: 10,
                batches: 4,
            },
        );
        stats.per_scene.insert(
            "b".into(),
            SceneCounters {
                requests: 2,
                hits: 0,
                misses: 2,
                loads: 2,
                evictions: 2,
                frames: 2,
                batches: 2,
            },
        );
        stats.frames = 12;
        stats.batches = 6;
        assert_eq!(stats.hits(), 8);
        assert_eq!(stats.misses(), 4);
        assert_eq!(stats.evictions(), 3);
        assert_eq!(stats.loads(), 4);
        assert!((stats.hit_rate() - 8.0 / 12.0).abs() < 1e-12);
        assert!((stats.frames_per_batch() - 2.0).abs() < 1e-12);
        assert_eq!(ServeStats::default().hit_rate(), 0.0);
        assert_eq!(ServeStats::default().frames_per_batch(), 0.0);
    }
}
