//! The service's introspection surface: counters, per-priority latency
//! percentiles, stream counters, and the folded render statistics.

use std::collections::BTreeMap;

use gcc_render::pipeline::{FrameStats, Schedule};

use crate::session::Priority;

/// Per-scene serving counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SceneCounters {
    /// Frame requests submitted for this scene (streamed frames count
    /// individually; a single-frame `submit` is a one-frame stream).
    pub requests: u64,
    /// Frames whose scene was resident when they were *issued* into the
    /// scheduler (for single-frame submits, issue == submit; a streamed
    /// frame is classified when its window slot materializes it, so a
    /// long stream opened cold counts one window of misses and then
    /// hits — `hit_rate` tracks actual cache behavior).
    pub hits: u64,
    /// Frames whose scene was cold at issue time.
    pub misses: u64,
    /// Times this scene was loaded from its source.
    pub loads: u64,
    /// Times this scene was evicted from the cache.
    pub evictions: u64,
    /// Frames rendered for this scene.
    pub frames: u64,
    /// Batches this scene's frames were drained in.
    pub batches: u64,
    /// Load attempts re-tried after a transient (retryable) failure.
    pub retries: u64,
    /// Times this scene was quarantined behind the load circuit breaker
    /// (load exhausted its retries, failed fatally, or panicked).
    pub quarantines: u64,
}

/// Per-schedule serving counters — the breakdown of a heterogeneous
/// workload by [`Schedule`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScheduleCounters {
    /// Frame requests submitted selecting this schedule.
    pub requests: u64,
    /// Frames rendered through this schedule.
    pub frames: u64,
    /// Batches drained for this schedule.
    pub batches: u64,
}

/// Per-priority serving counters and latency percentiles — the
/// observable separation of the two latency classes. `Interactive` and
/// `Bulk` keep independent latency windows, so a bulk backlog cannot
/// mask an interactive regression (and vice versa).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PriorityCounters {
    /// Frame requests submitted at this priority.
    pub requests: u64,
    /// Frames rendered at this priority.
    pub frames: u64,
    /// Requests completed (delivered or failed) at this priority.
    pub completed: u64,
    /// Frames queued (issued but not yet drained) at snapshot time.
    pub queued: usize,
    /// High-water mark of [`Self::queued`].
    pub max_queued: usize,
    /// Completed frames that carried a deadline.
    pub with_deadline: u64,
    /// Completed frames delivered after their deadline.
    pub deadline_misses: u64,
    /// Streams turned away at this class's admission watermark
    /// ([`crate::ServeError::Overloaded`] with capacity left for
    /// higher-priority traffic — under pressure Bulk rejects first).
    pub rejected: u64,
    /// Streams shed at a hard overload ceiling (all classes shed there).
    pub shed: u64,
    /// Median latency (issue → delivery) over this priority's window, ms.
    pub latency_p50_ms: f64,
    /// 95th-percentile latency over this priority's window, ms.
    pub latency_p95_ms: f64,
}

/// Stream lifecycle counters. A single-frame `submit` is a one-frame
/// stream, so it counts here too.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamCounters {
    /// Streams opened (including single-frame `submit` shims).
    pub opened: u64,
    /// Streams whose every frame was delivered to the client.
    pub completed: u64,
    /// Streams cancelled by the client (explicitly or by dropping the
    /// handle before the end).
    pub cancelled: u64,
    /// Queued frames discarded by cancellations — released queue slots
    /// that never reached a worker.
    pub frames_discarded: u64,
}

/// One adaptive-quality dispatch decision (most recent are retained in
/// [`LodCounters::recent`]): which rung a deadline-carrying frame
/// rendered at, what the cost model predicted, what the frame actually
/// cost, and how much deadline budget it had.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LodDecision {
    /// Ladder rung index the dispatcher picked (0 = full quality).
    pub rung: u32,
    /// Cost-model prediction at decision time, µs (0 = cold, no data).
    pub predicted_us: u64,
    /// Measured render (+ upscale) cost, µs.
    pub actual_us: u64,
    /// Deadline budget remaining at decision time, µs.
    pub budget_us: u64,
    /// Whether the frame still missed its deadline.
    pub missed: bool,
}

/// Adaptive-quality (LOD ladder) counters: how often the dispatcher
/// degraded, per-rung frame counts, and a trace of recent decisions.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LodCounters {
    /// Whether the service was configured with a quality ladder.
    pub enabled: bool,
    /// Frames rendered per ladder rung (index 0 = full quality). Only
    /// deadline-carrying frames are dispatched through the ladder;
    /// deadline-free frames always render at full quality and are not
    /// counted here.
    pub frames_by_rung: Vec<u64>,
    /// Ladder-dispatched frames that rendered below full quality.
    pub degraded_frames: u64,
    /// Scene-level downward rung transitions (pressure events).
    pub degradations: u64,
    /// Scene-level upward rung transitions (headroom recovered).
    pub recoveries: u64,
    /// Most recent dispatch decisions, oldest first (bounded ring).
    pub recent: Vec<LodDecision>,
}

/// How many recent LOD dispatch decisions a stats snapshot retains —
/// the bound on [`LodCounters::recent`], both in a single service's
/// snapshot and after merging snapshots across a fleet.
pub const LOD_TRACE_WINDOW: usize = 256;

impl LodCounters {
    /// Total frames dispatched through the ladder.
    pub fn ladder_frames(&self) -> u64 {
        self.frames_by_rung.iter().sum()
    }

    /// Folds another snapshot's LOD counters into this one: `enabled`
    /// ORs (any backend running the ladder counts), per-rung frames add
    /// element-wise (resizing to the longer ladder), event counters
    /// add, and the decision traces concatenate, keeping the newest
    /// [`LOD_TRACE_WINDOW`] entries.
    pub fn merge_add(&mut self, other: &Self) {
        self.enabled |= other.enabled;
        if self.frames_by_rung.len() < other.frames_by_rung.len() {
            self.frames_by_rung.resize(other.frames_by_rung.len(), 0);
        }
        for (acc, v) in self.frames_by_rung.iter_mut().zip(&other.frames_by_rung) {
            *acc += v;
        }
        self.degraded_frames += other.degraded_frames;
        self.degradations += other.degradations;
        self.recoveries += other.recoveries;
        self.recent.extend(other.recent.iter().copied());
        let excess = self.recent.len().saturating_sub(LOD_TRACE_WINDOW);
        self.recent.drain(..excess);
    }
}

/// Linear-interpolated percentile over *sorted* microsecond samples,
/// returned in milliseconds. Empty input yields 0.
pub fn percentile_us(sorted_us: &[u64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let rank = p.clamp(0.0, 1.0) * (sorted_us.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    let us = sorted_us[lo] as f64 * (1.0 - frac) + sorted_us[hi] as f64 * frac;
    us / 1e3
}

/// A point-in-time snapshot of the service's statistics.
#[derive(Debug, Clone, Default)]
pub struct ServeStats {
    /// Per-scene counters (scene id → counters).
    pub per_scene: BTreeMap<String, SceneCounters>,
    /// Per-schedule counters (only schedules that saw requests appear).
    pub per_schedule: BTreeMap<Schedule, ScheduleCounters>,
    /// Per-priority counters (only priorities that saw requests appear).
    pub per_priority: BTreeMap<Priority, PriorityCounters>,
    /// Stream lifecycle counters.
    pub streams: StreamCounters,
    /// Requests completed (fulfilled or failed).
    pub completed: u64,
    /// Frames issued but not yet drained into a batch at snapshot time
    /// (frames already in flight on a worker are not counted; frames a
    /// stream has not materialized yet — beyond its window — are not
    /// counted either).
    pub queue_depth: usize,
    /// High-water mark of [`Self::queue_depth`] over the service's life.
    pub max_queue_depth: usize,
    /// Batches drained.
    pub batches: u64,
    /// Frames rendered (success path only).
    pub frames: u64,
    /// Median request latency over both priority windows merged, ms
    /// (issue → delivery; see [`PriorityCounters`] for the split).
    pub latency_p50_ms: f64,
    /// 95th-percentile request latency over the same merged window, ms.
    pub latency_p95_ms: f64,
    /// Sum of the per-frame [`FrameStats`] of every rendered frame.
    pub frame_stats: FrameStats,
    /// Bytes resident in the scene cache at snapshot time.
    pub resident_bytes: usize,
    /// Scenes resident at snapshot time.
    pub resident_scenes: usize,
    /// Panicked workers caught and respawned with fresh scratch (the
    /// pool-supervision counter; a healthy run keeps this at 0).
    pub respawns: u64,
    /// Workers lost for good — they panicked past the restart budget and
    /// were not respawned. Non-zero means the pool is running below its
    /// configured width; `respawns > 0 && lost_workers == 0` means every
    /// panic was absorbed and the pool recovered to full width.
    pub lost_workers: u64,
    /// Scenes currently quarantined behind the load circuit breaker.
    pub quarantined_scenes: usize,
    /// Adaptive-quality (LOD ladder) counters.
    pub lod: LodCounters,
}

impl ServeStats {
    /// Total cache hits across scenes.
    pub fn hits(&self) -> u64 {
        self.per_scene.values().map(|c| c.hits).sum()
    }

    /// Total cache misses across scenes.
    pub fn misses(&self) -> u64 {
        self.per_scene.values().map(|c| c.misses).sum()
    }

    /// Total evictions across scenes.
    pub fn evictions(&self) -> u64 {
        self.per_scene.values().map(|c| c.evictions).sum()
    }

    /// Total scene loads across scenes.
    pub fn loads(&self) -> u64 {
        self.per_scene.values().map(|c| c.loads).sum()
    }

    /// Hit fraction of all classified requests (0 when none yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits() + self.misses();
        if total == 0 {
            0.0
        } else {
            self.hits() as f64 / total as f64
        }
    }

    /// Mean frames per drained batch (the coalescing factor; 0 before the
    /// first batch).
    pub fn frames_per_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.frames as f64 / self.batches as f64
        }
    }

    /// Total deadline misses across priorities.
    pub fn deadline_misses(&self) -> u64 {
        self.per_priority.values().map(|c| c.deadline_misses).sum()
    }

    /// Total streams turned away by admission control (watermark
    /// rejections plus hard-ceiling sheds), across priorities.
    pub fn turned_away(&self) -> u64 {
        self.per_priority
            .values()
            .map(|c| c.rejected + c.shed)
            .sum()
    }

    /// Total load retries across scenes.
    pub fn retries(&self) -> u64 {
        self.per_scene.values().map(|c| c.retries).sum()
    }

    /// Total quarantine events across scenes.
    pub fn quarantines(&self) -> u64 {
        self.per_scene.values().map(|c| c.quarantines).sum()
    }

    /// This priority's counters, or zeroed defaults when it saw no
    /// traffic.
    pub fn priority(&self, p: Priority) -> PriorityCounters {
        self.per_priority.get(&p).copied().unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_interpolate() {
        let us: Vec<u64> = vec![1000, 2000, 3000, 4000];
        assert!((percentile_us(&us, 0.0) - 1.0).abs() < 1e-9);
        assert!((percentile_us(&us, 1.0) - 4.0).abs() < 1e-9);
        assert!((percentile_us(&us, 0.5) - 2.5).abs() < 1e-9);
        assert!((percentile_us(&us, 0.95) - 3.85).abs() < 1e-9);
        assert_eq!(percentile_us(&[], 0.5), 0.0);
        assert!((percentile_us(&[7000], 0.95) - 7.0).abs() < 1e-9);
    }

    #[test]
    fn derived_rates_aggregate_per_scene_counters() {
        let mut stats = ServeStats::default();
        stats.per_scene.insert(
            "a".into(),
            SceneCounters {
                requests: 10,
                hits: 8,
                misses: 2,
                loads: 2,
                evictions: 1,
                frames: 10,
                batches: 4,
                ..SceneCounters::default()
            },
        );
        stats.per_scene.insert(
            "b".into(),
            SceneCounters {
                requests: 2,
                hits: 0,
                misses: 2,
                loads: 2,
                evictions: 2,
                frames: 2,
                batches: 2,
                ..SceneCounters::default()
            },
        );
        stats.frames = 12;
        stats.batches = 6;
        assert_eq!(stats.hits(), 8);
        assert_eq!(stats.misses(), 4);
        assert_eq!(stats.evictions(), 3);
        assert_eq!(stats.loads(), 4);
        assert!((stats.hit_rate() - 8.0 / 12.0).abs() < 1e-12);
        assert!((stats.frames_per_batch() - 2.0).abs() < 1e-12);
        assert_eq!(ServeStats::default().hit_rate(), 0.0);
        assert_eq!(ServeStats::default().frames_per_batch(), 0.0);
    }

    #[test]
    fn lod_counters_aggregate_per_rung_frames() {
        let lod = LodCounters {
            enabled: true,
            frames_by_rung: vec![10, 4, 1, 0],
            degraded_frames: 5,
            degradations: 2,
            recoveries: 2,
            recent: vec![LodDecision {
                rung: 1,
                predicted_us: 4000,
                actual_us: 4400,
                budget_us: 9000,
                missed: false,
            }],
        };
        assert_eq!(lod.ladder_frames(), 15);
        assert_eq!(LodCounters::default().ladder_frames(), 0);
        assert!(!ServeStats::default().lod.enabled);
    }

    #[test]
    fn lod_counters_merge_adds_and_resizes() {
        let decision = |rung: u32| LodDecision {
            rung,
            predicted_us: 1000,
            actual_us: 1100,
            budget_us: 5000,
            missed: false,
        };
        // A ladder-off backend merged with a ladder-on one: enabled ORs,
        // the rung vector takes the longer ladder, counters add.
        let mut acc = LodCounters {
            enabled: false,
            frames_by_rung: vec![3, 1],
            degraded_frames: 1,
            degradations: 1,
            recoveries: 0,
            recent: vec![decision(1)],
        };
        let other = LodCounters {
            enabled: true,
            frames_by_rung: vec![5, 2, 4],
            degraded_frames: 6,
            degradations: 3,
            recoveries: 2,
            recent: vec![decision(2), decision(0)],
        };
        acc.merge_add(&other);
        assert!(acc.enabled);
        assert_eq!(acc.frames_by_rung, vec![8, 3, 4]);
        assert_eq!(acc.degraded_frames, 7);
        assert_eq!(acc.degradations, 4);
        assert_eq!(acc.recoveries, 2);
        assert_eq!(
            acc.recent,
            vec![decision(1), decision(2), decision(0)],
            "traces concatenate oldest-first"
        );
        // The merged trace stays bounded, keeping the newest entries.
        let mut full = LodCounters {
            recent: (0..LOD_TRACE_WINDOW as u32).map(decision).collect(),
            ..LodCounters::default()
        };
        full.merge_add(&LodCounters {
            recent: vec![decision(7777)],
            ..LodCounters::default()
        });
        assert_eq!(full.recent.len(), LOD_TRACE_WINDOW);
        assert_eq!(full.recent.last().unwrap().rung, 7777);
        assert_eq!(full.recent[0].rung, 1, "oldest entry evicted first");
    }

    #[test]
    fn per_priority_accessors_default_to_zero() {
        let mut stats = ServeStats::default();
        assert_eq!(stats.deadline_misses(), 0);
        assert_eq!(
            stats.priority(Priority::Interactive),
            PriorityCounters::default()
        );
        stats.per_priority.insert(
            Priority::Bulk,
            PriorityCounters {
                requests: 5,
                deadline_misses: 2,
                with_deadline: 4,
                ..PriorityCounters::default()
            },
        );
        assert_eq!(stats.deadline_misses(), 2);
        assert_eq!(stats.priority(Priority::Bulk).requests, 5);
        assert_eq!(stats.priority(Priority::Interactive).requests, 0);
    }
}
