//! The render service: a long-lived worker pool over a per-scene
//! batching queue and the LRU scene cache.
//!
//! # Scheduling
//!
//! All coordination state lives in one mutex (`State`) with one condvar.
//! A worker's step either *plans* a job under the lock — drain a batch
//! for a resident scene, or claim a cold scene's load — and executes it
//! with the lock released, or blocks on the condvar when every pending
//! scene is already being loaded by someone else. Scenes take turns in
//! FIFO order (`order` rotates a drained-but-nonempty scene to the back),
//! so a hot scene cannot starve cold ones; within a scene, requests are
//! served in submission order.
//!
//! A cold scene is loaded by exactly one worker (the `loading` guard),
//! which then drains the first waiting batch itself — *load-then-drain* —
//! while the insert makes the scene resident for every other worker to
//! batch from in parallel. With a zero cache budget the insert evicts
//! immediately and every request degenerates to load-render-evict: the
//! naive configuration `bench_serve` compares against.
//!
//! # Scratch lifetime
//!
//! Each pool worker owns one [`FrameScratch`] for its entire lifetime —
//! across batches, scenes and cache generations — so steady-state serving
//! allocates no per-frame hot-path buffers. Served frames are
//! bit-identical to fresh-scratch direct renders (the scratch-reuse
//! contract of [`Renderer::render_frame_reusing`]).

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use gcc_parallel::{available_threads, WorkerPool, WorkerStep};
use gcc_render::pipeline::{Frame, FrameScratch, FrameStats, Renderer};
use gcc_scene::Scene;

use crate::cache::LruSceneCache;
use crate::source::SceneSource;
use crate::stats::{percentile_us, SceneCounters, ServeStats};
use crate::ServeError;

/// Service sizing and policy knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads; `0` means one per available hardware thread.
    pub workers: usize,
    /// Byte budget of the scene cache ([`Scene::approx_bytes`] units).
    /// `0` disables residency entirely (naive load-render-evict).
    pub cache_budget_bytes: usize,
    /// Most requests drained into one batch (≥ 1). `1` disables
    /// coalescing.
    pub max_batch: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 0,
            cache_budget_bytes: 256 << 20,
            max_batch: 8,
        }
    }
}

/// One frame request: a registered scene id and the trajectory parameter
/// `t ∈ [0, 1)` selecting the camera on that scene's rig.
#[derive(Debug, Clone, PartialEq)]
pub struct RenderRequest {
    /// Registered scene id.
    pub scene: String,
    /// Trajectory parameter of the camera ([`Scene::camera`]).
    pub t: f32,
}

/// The one-shot response cell a request's waiter blocks on.
#[derive(Debug, Default)]
struct Slot {
    cell: Mutex<Option<Result<Frame, ServeError>>>,
    ready: Condvar,
}

fn fulfill(slot: &Slot, result: Result<Frame, ServeError>) {
    *slot.cell.lock().expect("response slot poisoned") = Some(result);
    slot.ready.notify_all();
}

/// Waiter side of a submitted request.
#[derive(Debug)]
pub struct RenderHandle {
    slot: Arc<Slot>,
}

impl RenderHandle {
    /// Blocks until the frame is rendered (or the request failed).
    pub fn wait(self) -> Result<Frame, ServeError> {
        let mut cell = self.slot.cell.lock().expect("response slot poisoned");
        loop {
            if let Some(result) = cell.take() {
                return result;
            }
            cell = self.slot.ready.wait(cell).expect("response slot poisoned");
        }
    }

    /// `true` once the result is available ([`Self::wait`] won't block).
    pub fn is_ready(&self) -> bool {
        self.slot
            .cell
            .lock()
            .expect("response slot poisoned")
            .is_some()
    }
}

/// A queued request.
#[derive(Debug)]
struct Pending {
    t: f32,
    submitted: Instant,
    slot: Arc<Slot>,
}

/// Most latency samples retained for the percentile window. A long-lived
/// service must not accumulate per-request state without bound, and
/// `stats()` sorts a copy of this buffer — so it is a ring over the most
/// recent completions, not the full history.
const LATENCY_WINDOW: usize = 1 << 16;

/// Mutable aggregate statistics (folded under the service lock).
#[derive(Debug, Default)]
struct StatsInner {
    per_scene: BTreeMap<String, SceneCounters>,
    /// Ring buffer of recent request latencies (µs); see
    /// [`LATENCY_WINDOW`].
    latencies_us: Vec<u64>,
    /// Next overwrite position once the ring is full.
    latency_cursor: usize,
    frame_stats: FrameStats,
    completed: u64,
    batches: u64,
    frames: u64,
    max_queue_depth: usize,
}

impl StatsInner {
    fn scene(&mut self, id: &str) -> &mut SceneCounters {
        self.per_scene.entry(id.to_string()).or_default()
    }

    fn record_latency(&mut self, us: u64) {
        if self.latencies_us.len() < LATENCY_WINDOW {
            self.latencies_us.push(us);
        } else {
            self.latencies_us[self.latency_cursor] = us;
            self.latency_cursor = (self.latency_cursor + 1) % LATENCY_WINDOW;
        }
    }
}

/// All coordination state, behind the one service mutex.
#[derive(Debug)]
struct State {
    cache: LruSceneCache,
    /// Per-scene FIFO of pending requests. Invariant: a key exists here
    /// iff the id is in `order` (queues are removed when drained empty).
    queues: HashMap<String, VecDeque<Pending>>,
    /// Scene ids with pending requests, in round-robin turn order.
    order: VecDeque<String>,
    /// Scenes currently being loaded by some worker.
    loading: HashSet<String>,
    /// Requests submitted but not yet drained into a batch.
    pending: usize,
    shutdown: bool,
    stats: StatsInner,
}

/// What a worker decided to do while holding the lock.
enum Job {
    Render {
        id: String,
        scene: Arc<Scene>,
        batch: Vec<Pending>,
    },
    Load {
        id: String,
    },
}

/// Pops up to `max` requests for `id` and repairs the `order`/`queues`
/// invariant (remove when drained empty, rotate to the back otherwise).
fn take_batch(st: &mut State, id: &str, max: usize) -> Vec<Pending> {
    let mut batch = Vec::new();
    let emptied = match st.queues.get_mut(id) {
        Some(q) => {
            while batch.len() < max {
                match q.pop_front() {
                    Some(p) => batch.push(p),
                    None => break,
                }
            }
            q.is_empty()
        }
        None => return batch,
    };
    st.pending -= batch.len();
    st.order.retain(|o| o != id);
    if emptied {
        st.queues.remove(id);
    } else {
        st.order.push_back(id.to_string());
    }
    batch
}

/// Picks the next job: the first scene in turn order that is resident
/// (drain a batch) or cold and unclaimed (load it). Returns `None` when
/// every pending scene is being loaded elsewhere.
fn plan(st: &mut State, max_batch: usize) -> Option<Job> {
    for _ in 0..st.order.len() {
        let id = st.order.front().cloned()?;
        if let Some(scene) = st.cache.get(&id) {
            let batch = take_batch(st, &id, max_batch);
            return Some(Job::Render { id, scene, batch });
        }
        if !st.loading.contains(&id) {
            st.loading.insert(id.clone());
            st.order.rotate_left(1);
            return Some(Job::Load { id });
        }
        st.order.rotate_left(1);
    }
    None
}

struct Shared {
    registry: HashMap<String, SceneSource>,
    renderer: Box<dyn Renderer + Send + Sync>,
    max_batch: usize,
    state: Mutex<State>,
    work: Condvar,
}

impl Shared {
    fn step(&self, scratch: &mut FrameScratch) -> WorkerStep {
        let mut st = self.state.lock().expect("service state poisoned");
        loop {
            if let Some(job) = plan(&mut st, self.max_batch) {
                drop(st);
                match job {
                    Job::Render { id, scene, batch } => {
                        self.render_batch(&id, &scene, batch, scratch);
                    }
                    Job::Load { id } => self.load_then_drain(&id, scratch),
                }
                return WorkerStep::Continue;
            }
            if st.shutdown && st.pending == 0 && st.loading.is_empty() {
                // Wake siblings so they observe the drained shutdown too.
                self.work.notify_all();
                return WorkerStep::Stop;
            }
            st = self.work.wait(st).expect("service state poisoned");
        }
    }

    /// Renders a drained batch back-to-back through this worker's
    /// scratch. Statistics are folded in *before* any waiter is released,
    /// so a completed `wait()` is always visible in the next `stats()`
    /// snapshot. A renderer panic must not strand waiters: a drop guard
    /// fails every not-yet-fulfilled slot of the batch before the panic
    /// unwinds the worker.
    fn render_batch(
        &self,
        id: &str,
        scene: &Scene,
        batch: Vec<Pending>,
        scratch: &mut FrameScratch,
    ) {
        /// Fails the batch's remaining slots when dropped mid-panic, so
        /// `RenderHandle::wait` callers get an error instead of hanging,
        /// and best-effort counts them as completed (`try_lock`: the
        /// panic may have happened with the state lock held, and a
        /// blocking re-lock from the same thread would deadlock).
        struct PanicGuard<'a> {
            shared: &'a Shared,
            slots: Vec<Arc<Slot>>,
        }
        impl Drop for PanicGuard<'_> {
            fn drop(&mut self) {
                if !std::thread::panicking() || self.slots.is_empty() {
                    return;
                }
                if let Ok(mut st) = self.shared.state.try_lock() {
                    st.stats.completed += self.slots.len() as u64;
                }
                for slot in self.slots.drain(..) {
                    fulfill(&slot, Err(ServeError::WorkerPanicked));
                }
            }
        }

        let mut guard = PanicGuard {
            shared: self,
            slots: batch.iter().map(|p| Arc::clone(&p.slot)).collect(),
        };
        // Each frame is delivered (and its latency sampled) as soon as it
        // renders — a waiter never sits behind the rest of its batch, and
        // the published latency is submit-to-delivery. Its stats are
        // folded under a brief lock *before* the slot is fulfilled, so a
        // completed `wait()` is always visible in the next `stats()`
        // snapshot.
        for (i, p) in batch.into_iter().enumerate() {
            let cam = scene.camera(p.t);
            let frame = self
                .renderer
                .render_frame_reusing(&scene.gaussians, &cam, scratch);
            let us = p.submitted.elapsed().as_micros() as u64;
            let mut st = self.state.lock().expect("service state poisoned");
            st.stats.frame_stats.merge_add(&frame.stats);
            st.stats.frames += 1;
            st.stats.completed += 1;
            st.stats.record_latency(us);
            if i == 0 {
                st.stats.batches += 1;
            }
            let sc = st.stats.scene(id);
            sc.frames += 1;
            if i == 0 {
                sc.batches += 1;
            }
            drop(st);
            guard.slots.remove(0);
            fulfill(&p.slot, Ok(frame));
        }
    }

    /// Loads a claimed cold scene with no lock held, inserts it (evicting
    /// under the budget), then drains the first waiting batch itself.
    fn load_then_drain(&self, id: &str, scratch: &mut FrameScratch) {
        /// A panic inside `SceneSource::load` must not wedge the service:
        /// the claimed `loading` entry would otherwise never clear, making
        /// the shutdown condition unsatisfiable and stranding every waiter
        /// for this scene. Armed only around the lock-free load call, so
        /// the blocking re-lock in `drop` cannot self-deadlock.
        struct LoadGuard<'a> {
            shared: &'a Shared,
            id: &'a str,
            armed: bool,
        }
        impl Drop for LoadGuard<'_> {
            fn drop(&mut self) {
                if !self.armed || !std::thread::panicking() {
                    return;
                }
                if let Ok(mut st) = self.shared.state.lock() {
                    st.loading.remove(self.id);
                    let failed = take_batch(&mut st, self.id, usize::MAX);
                    st.stats.completed += failed.len() as u64;
                    drop(st);
                    self.shared.work.notify_all();
                    for p in failed {
                        fulfill(&p.slot, Err(ServeError::WorkerPanicked));
                    }
                }
            }
        }

        let source = self
            .registry
            .get(id)
            .expect("submit validated the scene id");
        let mut guard = LoadGuard {
            shared: self,
            id,
            armed: true,
        };
        let loaded = source.load();
        guard.armed = false;
        let mut st = self.state.lock().expect("service state poisoned");
        st.loading.remove(id);
        match loaded {
            Ok(scene) => {
                st.stats.scene(id).loads += 1;
                let evicted = st.cache.insert(id, Arc::clone(&scene));
                for victim in evicted {
                    st.stats.scene(&victim).evictions += 1;
                }
                let batch = take_batch(&mut st, id, self.max_batch);
                drop(st);
                // The scene may now be resident and the queue changed —
                // wake everyone blocked on "all pending scenes loading".
                self.work.notify_all();
                if !batch.is_empty() {
                    self.render_batch(id, &scene, batch, scratch);
                }
            }
            Err(message) => {
                let err = ServeError::Load {
                    scene: id.to_string(),
                    message,
                };
                let failed = take_batch(&mut st, id, usize::MAX);
                st.stats.completed += failed.len() as u64;
                drop(st);
                self.work.notify_all();
                for p in failed {
                    fulfill(&p.slot, Err(err.clone()));
                }
            }
        }
    }
}

/// The multi-scene render service. See the [crate docs](crate) and the
/// [module docs](self) for the scheduling model.
pub struct RenderService {
    shared: Arc<Shared>,
    workers: usize,
    pool: Option<WorkerPool>,
}

impl std::fmt::Debug for RenderService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RenderService")
            .field("workers", &self.workers)
            .field("scenes", &self.shared.registry.len())
            .finish_non_exhaustive()
    }
}

impl RenderService {
    /// Starts the worker pool over `registry` (scene id → source),
    /// rendering through `renderer`.
    ///
    /// For throughput prefer a sequential renderer (one frame per worker,
    /// the trajectory-runner composition rule); pass a parallel renderer
    /// when single-request latency matters more than aggregate rate.
    ///
    /// # Panics
    ///
    /// Panics when `cfg.max_batch` is zero.
    pub fn new(
        cfg: ServeConfig,
        registry: impl IntoIterator<Item = (String, SceneSource)>,
        renderer: Box<dyn Renderer + Send + Sync>,
    ) -> Self {
        assert!(cfg.max_batch >= 1, "max_batch must be at least 1");
        let workers = if cfg.workers == 0 {
            available_threads()
        } else {
            cfg.workers
        };
        let shared = Arc::new(Shared {
            registry: registry.into_iter().collect(),
            renderer,
            max_batch: cfg.max_batch,
            state: Mutex::new(State {
                cache: LruSceneCache::new(cfg.cache_budget_bytes),
                queues: HashMap::new(),
                order: VecDeque::new(),
                loading: HashSet::new(),
                pending: 0,
                shutdown: false,
                stats: StatsInner::default(),
            }),
            work: Condvar::new(),
        });
        let pool_shared = Arc::clone(&shared);
        let pool = WorkerPool::spawn(workers, FrameScratch::new, move |_, scratch| {
            pool_shared.step(scratch)
        });
        Self {
            shared,
            workers,
            pool: Some(pool),
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Scene ids this service can render, sorted.
    pub fn scene_ids(&self) -> Vec<String> {
        let mut ids: Vec<String> = self.shared.registry.keys().cloned().collect();
        ids.sort();
        ids
    }

    /// Enqueues a request; the returned handle blocks until its frame.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownScene`] for an unregistered id and
    /// [`ServeError::ShuttingDown`] after [`Self::shutdown`] began.
    pub fn submit(&self, req: RenderRequest) -> Result<RenderHandle, ServeError> {
        if !self.shared.registry.contains_key(&req.scene) {
            return Err(ServeError::UnknownScene(req.scene));
        }
        let slot = Arc::new(Slot::default());
        let mut st = self.shared.state.lock().expect("service state poisoned");
        if st.shutdown {
            return Err(ServeError::ShuttingDown);
        }
        let resident = st.cache.contains(&req.scene);
        let sc = st.stats.scene(&req.scene);
        sc.requests += 1;
        if resident {
            sc.hits += 1;
        } else {
            sc.misses += 1;
        }
        if !st.queues.contains_key(&req.scene) {
            st.order.push_back(req.scene.clone());
        }
        st.queues.entry(req.scene).or_default().push_back(Pending {
            t: req.t,
            submitted: Instant::now(),
            slot: Arc::clone(&slot),
        });
        st.pending += 1;
        st.stats.max_queue_depth = st.stats.max_queue_depth.max(st.pending);
        drop(st);
        self.shared.work.notify_one();
        Ok(RenderHandle { slot })
    }

    /// Convenience: submit and block for the frame.
    ///
    /// # Errors
    ///
    /// Propagates [`Self::submit`] and load errors.
    pub fn render_blocking(&self, req: RenderRequest) -> Result<Frame, ServeError> {
        self.submit(req)?.wait()
    }

    /// Snapshot of the serving statistics. The percentile sort (up to
    /// the full latency window) runs *after* the service lock is
    /// released, so a periodic metrics poll doesn't stall the scheduler.
    pub fn stats(&self) -> ServeStats {
        let st = self.shared.state.lock().expect("service state poisoned");
        let mut lat = st.stats.latencies_us.clone();
        let mut out = ServeStats {
            per_scene: st.stats.per_scene.clone(),
            completed: st.stats.completed,
            queue_depth: st.pending,
            max_queue_depth: st.stats.max_queue_depth,
            batches: st.stats.batches,
            frames: st.stats.frames,
            latency_p50_ms: 0.0,
            latency_p95_ms: 0.0,
            frame_stats: st.stats.frame_stats,
            resident_bytes: st.cache.resident_bytes(),
            resident_scenes: st.cache.len(),
        };
        drop(st);
        lat.sort_unstable();
        out.latency_p50_ms = percentile_us(&lat, 0.50);
        out.latency_p95_ms = percentile_us(&lat, 0.95);
        out
    }

    /// Graceful shutdown: stops accepting new requests, drains every
    /// pending one, joins the workers, and returns the final statistics.
    pub fn shutdown(mut self) -> ServeStats {
        self.finish();
        self.stats()
    }

    fn finish(&mut self) {
        if let Some(pool) = self.pool.take() {
            self.shared
                .state
                .lock()
                .expect("service state poisoned")
                .shutdown = true;
            self.shared.work.notify_all();
            pool.join();
        }
    }
}

impl Drop for RenderService {
    /// Dropping the service performs the same graceful drain as
    /// [`Self::shutdown`].
    fn drop(&mut self) {
        self.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcc_render::pipeline::StandardRenderer;
    use gcc_scene::{SceneConfig, ScenePreset};

    fn mem_source(preset: ScenePreset, scale: f32) -> (Arc<Scene>, SceneSource) {
        let scene = Arc::new(preset.build(&SceneConfig::with_scale(scale)));
        (Arc::clone(&scene), SceneSource::Memory(scene))
    }

    fn registry(scale: f32) -> (Vec<Arc<Scene>>, Vec<(String, SceneSource)>) {
        let mut scenes = Vec::new();
        let mut reg = Vec::new();
        for (id, preset) in [("lego", ScenePreset::Lego), ("palace", ScenePreset::Palace)] {
            let (scene, src) = mem_source(preset, scale);
            scenes.push(scene);
            reg.push((id.to_string(), src));
        }
        (scenes, reg)
    }

    #[test]
    fn served_frames_match_direct_renders() {
        let (scenes, reg) = registry(0.02);
        let service = RenderService::new(
            ServeConfig {
                workers: 3,
                ..ServeConfig::default()
            },
            reg,
            Box::new(StandardRenderer::reference()),
        );
        let reqs: Vec<RenderRequest> = (0..6)
            .map(|i| RenderRequest {
                scene: if i % 2 == 0 { "lego" } else { "palace" }.into(),
                t: i as f32 / 6.0,
            })
            .collect();
        let handles: Vec<RenderHandle> = reqs
            .iter()
            .map(|r| service.submit(r.clone()).unwrap())
            .collect();
        let direct = StandardRenderer::reference();
        for (req, handle) in reqs.iter().zip(handles) {
            let frame = handle.wait().unwrap();
            let scene = if req.scene == "lego" {
                &scenes[0]
            } else {
                &scenes[1]
            };
            let want = direct.render_frame(&scene.gaussians, &scene.camera(req.t));
            assert_eq!(frame.image, want.image, "scene {} t {}", req.scene, req.t);
            assert_eq!(frame.stats, want.stats);
        }
        let stats = service.shutdown();
        assert_eq!(stats.completed, 6);
        assert_eq!(stats.frames, 6);
        assert_eq!(stats.queue_depth, 0);
        assert!(stats.max_queue_depth >= 1);
        assert!(stats.latency_p95_ms >= stats.latency_p50_ms);
        assert_eq!(
            stats.frame_stats.total_gaussians,
            3 * (scenes[0].len() as u64 + scenes[1].len() as u64)
        );
    }

    #[test]
    fn resident_scene_loads_once_and_hits_after_warmup() {
        let (_, reg) = registry(0.02);
        let service = RenderService::new(
            ServeConfig {
                workers: 1,
                ..ServeConfig::default()
            },
            reg,
            Box::new(StandardRenderer::reference()),
        );
        // Warm the scene, then issue classified-at-submit hits.
        service
            .render_blocking(RenderRequest {
                scene: "lego".into(),
                t: 0.0,
            })
            .unwrap();
        for i in 0..4 {
            service
                .render_blocking(RenderRequest {
                    scene: "lego".into(),
                    t: i as f32 / 4.0,
                })
                .unwrap();
        }
        let stats = service.shutdown();
        let lego = &stats.per_scene["lego"];
        assert_eq!(lego.loads, 1, "resident scene must not reload");
        assert_eq!(lego.misses, 1);
        assert_eq!(lego.hits, 4);
        assert_eq!(lego.frames, 5);
        assert_eq!(stats.resident_scenes, 1);
        assert!(stats.hit_rate() > 0.7);
    }

    #[test]
    fn zero_budget_is_load_render_evict_per_request() {
        let (_, reg) = registry(0.02);
        let service = RenderService::new(
            ServeConfig {
                workers: 1,
                cache_budget_bytes: 0,
                max_batch: 1,
            },
            reg,
            Box::new(StandardRenderer::reference()),
        );
        for i in 0..3 {
            service
                .render_blocking(RenderRequest {
                    scene: "palace".into(),
                    t: i as f32 / 3.0,
                })
                .unwrap();
        }
        let stats = service.shutdown();
        let palace = &stats.per_scene["palace"];
        assert_eq!(palace.loads, 3, "naive mode reloads per request");
        assert_eq!(palace.hits, 0);
        assert_eq!(palace.evictions, 3);
        assert_eq!(stats.batches, 3);
        assert_eq!(stats.resident_scenes, 0);
    }

    #[test]
    fn unknown_scene_is_rejected_at_submit() {
        let (_, reg) = registry(0.02);
        let service = RenderService::new(
            ServeConfig {
                workers: 1,
                ..ServeConfig::default()
            },
            reg,
            Box::new(StandardRenderer::reference()),
        );
        let err = service
            .submit(RenderRequest {
                scene: "nope".into(),
                t: 0.0,
            })
            .unwrap_err();
        assert_eq!(err, ServeError::UnknownScene("nope".into()));
    }

    #[test]
    fn load_failure_fans_out_to_every_waiter() {
        let service = RenderService::new(
            ServeConfig {
                workers: 2,
                ..ServeConfig::default()
            },
            [(
                "ghost".to_string(),
                SceneSource::File("/nonexistent/ghost.bin".into()),
            )],
            Box::new(StandardRenderer::reference()),
        );
        let handles: Vec<RenderHandle> = (0..3)
            .map(|i| {
                service
                    .submit(RenderRequest {
                        scene: "ghost".into(),
                        t: i as f32 / 3.0,
                    })
                    .unwrap()
            })
            .collect();
        for h in handles {
            match h.wait() {
                Err(ServeError::Load { scene, .. }) => assert_eq!(scene, "ghost"),
                other => panic!("expected load error, got {other:?}"),
            }
        }
        let stats = service.shutdown();
        assert_eq!(stats.completed, 3);
        assert_eq!(stats.frames, 0);
    }

    #[test]
    fn shutdown_drains_pending_requests() {
        let (_, reg) = registry(0.02);
        let service = RenderService::new(
            ServeConfig {
                workers: 2,
                ..ServeConfig::default()
            },
            reg,
            Box::new(StandardRenderer::reference()),
        );
        let handles: Vec<RenderHandle> = (0..8)
            .map(|i| {
                service
                    .submit(RenderRequest {
                        scene: if i % 2 == 0 { "lego" } else { "palace" }.into(),
                        t: i as f32 / 8.0,
                    })
                    .unwrap()
            })
            .collect();
        let stats = service.shutdown();
        assert_eq!(stats.completed, 8);
        assert_eq!(stats.queue_depth, 0);
        for h in handles {
            assert!(h.is_ready());
            h.wait().unwrap();
        }
    }

    #[test]
    fn submit_after_shutdown_is_rejected() {
        let (_, reg) = registry(0.02);
        let service = RenderService::new(
            ServeConfig {
                workers: 1,
                ..ServeConfig::default()
            },
            reg,
            Box::new(StandardRenderer::reference()),
        );
        // Mark shutdown through the public path while keeping a clone of
        // shared state alive: emulate by dropping into shutdown and then
        // checking a fresh service rejects — instead, flip the flag via a
        // second service is impossible; use the internal contract:
        service.shared.state.lock().unwrap().shutdown = true;
        let err = service
            .submit(RenderRequest {
                scene: "lego".into(),
                t: 0.0,
            })
            .unwrap_err();
        assert_eq!(err, ServeError::ShuttingDown);
        // Undo so the drop-drain terminates normally.
        service.shared.state.lock().unwrap().shutdown = false;
    }

    #[test]
    fn latency_window_is_a_bounded_ring() {
        let mut s = StatsInner::default();
        for i in 0..(LATENCY_WINDOW as u64 + 10) {
            s.record_latency(i);
        }
        assert_eq!(s.latencies_us.len(), LATENCY_WINDOW);
        // The 10 oldest samples were overwritten by the newest 10.
        assert!(!s.latencies_us.contains(&9));
        assert!(s.latencies_us.contains(&(LATENCY_WINDOW as u64 + 9)));
        assert!(s.latencies_us.contains(&10));
    }

    #[test]
    fn renderer_panic_fails_waiters_instead_of_stranding_them() {
        struct AlwaysPanics;
        impl Renderer for AlwaysPanics {
            fn name(&self) -> &str {
                "always-panics"
            }
            fn render_frame(&self, _: &[gcc_core::Gaussian3D], _: &gcc_core::Camera) -> Frame {
                panic!("render blew up");
            }
        }

        let (_, reg) = registry(0.02);
        let service = RenderService::new(
            ServeConfig {
                workers: 1,
                ..ServeConfig::default()
            },
            reg,
            Box::new(AlwaysPanics),
        );
        let handle = service
            .submit(RenderRequest {
                scene: "lego".into(),
                t: 0.0,
            })
            .unwrap();
        // The waiter must be released with an error, not hang.
        assert_eq!(handle.wait().unwrap_err(), ServeError::WorkerPanicked);
        // The worker's panic resurfaces when the pool is joined.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            service.shutdown();
        }));
        assert!(outcome.is_err(), "pool join must surface the worker panic");
    }

    #[test]
    fn load_panic_fails_waiters_and_does_not_wedge_shutdown() {
        let service = RenderService::new(
            ServeConfig {
                workers: 2,
                ..ServeConfig::default()
            },
            [("boom".to_string(), SceneSource::PanicsOnLoad)],
            Box::new(StandardRenderer::reference()),
        );
        // One request: each load panic kills one worker, so a multi-shot
        // submit could strand a late request with no workers left — the
        // guard's contract is per-panic containment, not worker revival.
        let handle = service
            .submit(RenderRequest {
                scene: "boom".into(),
                t: 0.5,
            })
            .unwrap();
        assert_eq!(handle.wait().unwrap_err(), ServeError::WorkerPanicked);
        // `completed` counts the failed request, and shutdown terminates
        // (surfacing the worker panic) instead of hanging on `loading`.
        assert_eq!(service.stats().completed, 1);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            service.shutdown();
        }));
        assert!(outcome.is_err(), "pool join must surface the load panic");
    }

    #[test]
    fn max_batch_one_never_coalesces() {
        let (_, reg) = registry(0.02);
        let service = RenderService::new(
            ServeConfig {
                workers: 2,
                max_batch: 1,
                ..ServeConfig::default()
            },
            reg,
            Box::new(StandardRenderer::reference()),
        );
        let handles: Vec<RenderHandle> = (0..6)
            .map(|i| {
                service
                    .submit(RenderRequest {
                        scene: "lego".into(),
                        t: i as f32 / 6.0,
                    })
                    .unwrap()
            })
            .collect();
        for h in handles {
            h.wait().unwrap();
        }
        let stats = service.shutdown();
        assert_eq!(stats.batches, stats.frames, "max_batch=1 must not coalesce");
        assert_eq!(stats.frames, 6);
    }
}
