//! The render service: a long-lived worker pool over a batching queue
//! keyed by `(scene, schedule, resolution)`, and the LRU scene cache.
//!
//! # Request model
//!
//! A [`RenderRequest`] is a scene id, a [`ViewSpec`] (trajectory
//! parameter, explicit pose, or orbit angle) and [`RenderOptions`]
//! (schedule selection, resolution override, region of interest,
//! background and quality knobs). [`RenderService::submit`] validates the
//! request — unknown scene ids, NaN / out-of-range parameters and
//! zero-sized ROIs fail with typed [`ServeError`]s before any worker sees
//! them; ROI bounds against a scene's *native* resolution can only be
//! checked once the scene is known, so that case resolves through the
//! handle instead of panicking a worker.
//!
//! # Scheduling
//!
//! All coordination state lives in one mutex (`State`) with one condvar.
//! Queues are keyed by [`BatchKey`] — scene, schedule, resolution — so a
//! drained batch is renderable back-to-back on one worker with one
//! renderer; heterogeneous options *within* a key (different views, ROIs,
//! backgrounds, quality knobs) still coalesce because every frame carries
//! its own options through [`Renderer::render_job`]. A worker's step
//! either *plans* a job under the lock — drain a batch for a resident
//! scene, or claim a cold scene's load — and executes it with the lock
//! released, or blocks on the condvar when every pending scene is already
//! being loaded by someone else. Keys take turns in FIFO order (`order`
//! rotates a drained-but-nonempty key to the back), so a hot scene or
//! schedule cannot starve others; within a key, requests are served in
//! submission order.
//!
//! A cold scene is loaded by exactly one worker (the `loading` guard),
//! which then drains the first waiting batch itself — *load-then-drain* —
//! while the insert makes the scene resident for every other worker to
//! batch from in parallel. With a zero cache budget the insert evicts
//! immediately and every request degenerates to load-render-evict: the
//! naive configuration `bench_serve` compares against.
//!
//! # Scratch lifetime
//!
//! Each pool worker owns one [`FrameScratch`] for its entire lifetime —
//! across batches, scenes, schedules and cache generations — so
//! steady-state serving allocates no per-frame hot-path buffers. Served
//! frames are bit-identical to fresh-scratch direct renders (the
//! scratch-reuse contract of [`Renderer::render_job`]).

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use gcc_parallel::{available_threads, WorkerPool, WorkerStep};
use gcc_render::pipeline::{
    Frame, FrameScratch, FrameStats, RenderJob, RenderOptions, Renderer, Schedule,
};
use gcc_scene::{Scene, ViewError, ViewSpec};

use crate::cache::LruSceneCache;
use crate::source::SceneSource;
use crate::stats::{percentile_us, SceneCounters, ScheduleCounters, ServeStats};
use crate::ServeError;

/// Service sizing and policy knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads; `0` means one per available hardware thread.
    pub workers: usize,
    /// Byte budget of the scene cache ([`Scene::approx_bytes`] units).
    /// `0` disables residency entirely (naive load-render-evict).
    pub cache_budget_bytes: usize,
    /// Most requests drained into one batch (≥ 1). `1` disables
    /// coalescing.
    pub max_batch: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 0,
            cache_budget_bytes: 256 << 20,
            max_batch: 8,
        }
    }
}

/// One frame request: a registered scene id, the view to render, and the
/// per-request options. [`RenderRequest::trajectory`] reproduces the
/// historical `(scene, t)` surface.
#[derive(Debug, Clone, PartialEq)]
pub struct RenderRequest {
    /// Registered scene id.
    pub scene: String,
    /// The viewpoint, resolved against the scene's rig at render time.
    pub view: ViewSpec,
    /// Per-request options (schedule, resolution, ROI, quality knobs).
    pub options: RenderOptions,
}

impl RenderRequest {
    /// A request with default options.
    pub fn new(scene: impl Into<String>, view: ViewSpec) -> Self {
        Self {
            scene: scene.into(),
            view,
            options: RenderOptions::default(),
        }
    }

    /// The historical surface: trajectory parameter `t` on the scene's
    /// rig, default options.
    pub fn trajectory(scene: impl Into<String>, t: f32) -> Self {
        Self::new(scene, ViewSpec::trajectory(t))
    }

    /// Attaches options to the request.
    pub fn with_options(mut self, options: RenderOptions) -> Self {
        self.options = options;
        self
    }
}

/// The renderer table the service dispatches [`Schedule`]s through: one
/// long-lived renderer per schedule, each sequential by default (the
/// service parallelizes across requests, not inside frames).
pub struct ScheduleRenderers {
    /// Indexed in [`Schedule::ALL`] order.
    renderers: Vec<Box<dyn Renderer + Send + Sync>>,
}

impl Default for ScheduleRenderers {
    fn default() -> Self {
        Self {
            renderers: Schedule::ALL.iter().map(|s| s.renderer()).collect(),
        }
    }
}

impl std::fmt::Debug for ScheduleRenderers {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScheduleRenderers")
            .field("schedules", &Schedule::ALL)
            .finish_non_exhaustive()
    }
}

impl ScheduleRenderers {
    /// Replaces one schedule's renderer (custom configurations, tests).
    pub fn with(mut self, schedule: Schedule, renderer: Box<dyn Renderer + Send + Sync>) -> Self {
        self.renderers[Self::index(schedule)] = renderer;
        self
    }

    fn index(schedule: Schedule) -> usize {
        Schedule::ALL
            .iter()
            .position(|s| *s == schedule)
            .expect("Schedule::ALL covers every variant")
    }

    fn get(&self, schedule: Schedule) -> &(dyn Renderer + Send + Sync) {
        self.renderers[Self::index(schedule)].as_ref()
    }
}

/// The one-shot response cell a request's waiter blocks on.
#[derive(Debug, Default)]
struct Slot {
    cell: Mutex<Option<Result<Frame, ServeError>>>,
    ready: Condvar,
}

fn fulfill(slot: &Slot, result: Result<Frame, ServeError>) {
    *slot.cell.lock().expect("response slot poisoned") = Some(result);
    slot.ready.notify_all();
}

/// Waiter side of a submitted request.
#[derive(Debug)]
pub struct RenderHandle {
    slot: Arc<Slot>,
}

impl RenderHandle {
    /// Blocks until the frame is rendered (or the request failed). A
    /// handle never blocks past the service's shutdown: requests still
    /// queued when the drain finishes resolve with
    /// [`ServeError::ShuttingDown`].
    pub fn wait(self) -> Result<Frame, ServeError> {
        let mut cell = self.slot.cell.lock().expect("response slot poisoned");
        loop {
            if let Some(result) = cell.take() {
                return result;
            }
            cell = self.slot.ready.wait(cell).expect("response slot poisoned");
        }
    }

    /// `true` once the result is available ([`Self::wait`] won't block).
    pub fn is_ready(&self) -> bool {
        self.slot
            .cell
            .lock()
            .expect("response slot poisoned")
            .is_some()
    }
}

/// What a batch coalesces on: requests agreeing on all three render
/// back-to-back through one renderer and one scratch. The `resolution` is
/// the *override* (`None` = the scene's native size), so native-resolution
/// requests coalesce without knowing the scene's actual dimensions at
/// submit time.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct BatchKey {
    scene: String,
    schedule: Schedule,
    resolution: Option<(u32, u32)>,
}

/// A queued request.
#[derive(Debug)]
struct Pending {
    view: ViewSpec,
    options: RenderOptions,
    submitted: Instant,
    slot: Arc<Slot>,
}

/// Most latency samples retained for the percentile window. A long-lived
/// service must not accumulate per-request state without bound, and
/// `stats()` sorts a copy of this buffer — so it is a ring over the most
/// recent completions, not the full history.
const LATENCY_WINDOW: usize = 1 << 16;

/// Mutable aggregate statistics (folded under the service lock).
#[derive(Debug, Default)]
struct StatsInner {
    per_scene: BTreeMap<String, SceneCounters>,
    per_schedule: BTreeMap<Schedule, ScheduleCounters>,
    /// Ring buffer of recent request latencies (µs); see
    /// [`LATENCY_WINDOW`].
    latencies_us: Vec<u64>,
    /// Next overwrite position once the ring is full.
    latency_cursor: usize,
    frame_stats: FrameStats,
    completed: u64,
    batches: u64,
    frames: u64,
    max_queue_depth: usize,
}

impl StatsInner {
    fn scene(&mut self, id: &str) -> &mut SceneCounters {
        self.per_scene.entry(id.to_string()).or_default()
    }

    fn schedule(&mut self, s: Schedule) -> &mut ScheduleCounters {
        self.per_schedule.entry(s).or_default()
    }

    fn record_latency(&mut self, us: u64) {
        if self.latencies_us.len() < LATENCY_WINDOW {
            self.latencies_us.push(us);
        } else {
            self.latencies_us[self.latency_cursor] = us;
            self.latency_cursor = (self.latency_cursor + 1) % LATENCY_WINDOW;
        }
    }
}

/// All coordination state, behind the one service mutex.
#[derive(Debug)]
struct State {
    cache: LruSceneCache,
    /// Per-key FIFO of pending requests. Invariant: a key exists here
    /// iff it is in `order` (queues are removed when drained empty).
    queues: HashMap<BatchKey, VecDeque<Pending>>,
    /// Batch keys with pending requests, in round-robin turn order.
    order: VecDeque<BatchKey>,
    /// Scenes currently being loaded by some worker.
    loading: HashSet<String>,
    /// Requests submitted but not yet drained into a batch.
    pending: usize,
    shutdown: bool,
    stats: StatsInner,
}

/// What a worker decided to do while holding the lock.
enum Job {
    Render {
        key: BatchKey,
        scene: Arc<Scene>,
        batch: Vec<Pending>,
    },
    Load {
        id: String,
    },
}

/// Pops up to `max` requests for `key` and repairs the `order`/`queues`
/// invariant (remove when drained empty, rotate to the back otherwise).
fn take_batch(st: &mut State, key: &BatchKey, max: usize) -> Vec<Pending> {
    let mut batch = Vec::new();
    let emptied = match st.queues.get_mut(key) {
        Some(q) => {
            while batch.len() < max {
                match q.pop_front() {
                    Some(p) => batch.push(p),
                    None => break,
                }
            }
            q.is_empty()
        }
        None => return batch,
    };
    st.pending -= batch.len();
    st.order.retain(|o| o != key);
    if emptied {
        st.queues.remove(key);
    } else {
        st.order.push_back(key.clone());
    }
    batch
}

/// Drains *every* queue for `id`, across schedules and resolutions — the
/// load-failure and load-panic fan-out path.
fn take_all_for_scene(st: &mut State, id: &str) -> Vec<Pending> {
    let keys: Vec<BatchKey> = st
        .queues
        .keys()
        .filter(|k| k.scene == id)
        .cloned()
        .collect();
    let mut all = Vec::new();
    for key in keys {
        all.extend(take_batch(st, &key, usize::MAX));
    }
    all
}

/// Picks the next job: the first key in turn order whose scene is resident
/// (drain a batch) or cold and unclaimed (load it). Returns `None` when
/// every pending scene is being loaded elsewhere.
fn plan(st: &mut State, max_batch: usize) -> Option<Job> {
    for _ in 0..st.order.len() {
        let key = st.order.front().cloned()?;
        if let Some(scene) = st.cache.get(&key.scene) {
            let batch = take_batch(st, &key, max_batch);
            return Some(Job::Render { key, scene, batch });
        }
        if !st.loading.contains(&key.scene) {
            st.loading.insert(key.scene.clone());
            st.order.rotate_left(1);
            return Some(Job::Load { id: key.scene });
        }
        st.order.rotate_left(1);
    }
    None
}

struct Shared {
    registry: HashMap<String, SceneSource>,
    renderers: ScheduleRenderers,
    max_batch: usize,
    state: Mutex<State>,
    work: Condvar,
}

impl Shared {
    fn step(&self, scratch: &mut FrameScratch) -> WorkerStep {
        let mut st = self.state.lock().expect("service state poisoned");
        loop {
            if let Some(job) = plan(&mut st, self.max_batch) {
                drop(st);
                match job {
                    Job::Render { key, scene, batch } => {
                        self.render_batch(&key, &scene, batch, scratch);
                    }
                    Job::Load { id } => self.load_then_drain(&id, scratch),
                }
                return WorkerStep::Continue;
            }
            if st.shutdown && st.pending == 0 && st.loading.is_empty() {
                // Wake siblings so they observe the drained shutdown too.
                self.work.notify_all();
                return WorkerStep::Stop;
            }
            st = self.work.wait(st).expect("service state poisoned");
        }
    }

    /// Renders a drained batch back-to-back through this worker's
    /// scratch, with the key's schedule renderer. Statistics are folded
    /// in *before* any waiter is released, so a completed `wait()` is
    /// always visible in the next `stats()` snapshot. A renderer panic
    /// must not strand waiters: a drop guard fails every not-yet-fulfilled
    /// slot of the batch before the panic unwinds the worker.
    fn render_batch(
        &self,
        key: &BatchKey,
        scene: &Scene,
        batch: Vec<Pending>,
        scratch: &mut FrameScratch,
    ) {
        /// Fails the batch's remaining slots when dropped mid-panic, so
        /// `RenderHandle::wait` callers get an error instead of hanging,
        /// and best-effort counts them as completed (`try_lock`: the
        /// panic may have happened with the state lock held, and a
        /// blocking re-lock from the same thread would deadlock).
        struct PanicGuard<'a> {
            shared: &'a Shared,
            slots: Vec<Arc<Slot>>,
        }
        impl Drop for PanicGuard<'_> {
            fn drop(&mut self) {
                if !std::thread::panicking() || self.slots.is_empty() {
                    return;
                }
                if let Ok(mut st) = self.shared.state.try_lock() {
                    st.stats.completed += self.slots.len() as u64;
                }
                for slot in self.slots.drain(..) {
                    fulfill(&slot, Err(ServeError::WorkerPanicked));
                }
            }
        }

        let renderer = self.renderers.get(key.schedule);
        let mut guard = PanicGuard {
            shared: self,
            slots: batch.iter().map(|p| Arc::clone(&p.slot)).collect(),
        };
        {
            let mut st = self.state.lock().expect("service state poisoned");
            st.stats.batches += 1;
            st.stats.scene(&key.scene).batches += 1;
            st.stats.schedule(key.schedule).batches += 1;
        }
        // Each frame is delivered (and its latency sampled) as soon as it
        // renders — a waiter never sits behind the rest of its batch, and
        // the published latency is submit-to-delivery. Its stats are
        // folded under a brief lock *before* the slot is fulfilled, so a
        // completed `wait()` is always visible in the next `stats()`
        // snapshot.
        for p in batch {
            // Residual validation that needed the scene: ROI bounds
            // against the native resolution. Fails the one request with a
            // typed error instead of poisoning the worker.
            let cam = match scene.resolve_view(&p.view, &p.options) {
                Ok(cam) => cam,
                Err(e) => {
                    let mut st = self.state.lock().expect("service state poisoned");
                    st.stats.completed += 1;
                    drop(st);
                    guard.slots.remove(0);
                    fulfill(&p.slot, Err(ServeError::InvalidRequest(e)));
                    continue;
                }
            };
            let job = RenderJob::with_options(&scene.gaussians, &cam, p.options.clone());
            let frame = renderer.render_job(&job, scratch);
            let us = p.submitted.elapsed().as_micros() as u64;
            let mut st = self.state.lock().expect("service state poisoned");
            st.stats.frame_stats.merge_add(&frame.stats);
            st.stats.frames += 1;
            st.stats.completed += 1;
            st.stats.record_latency(us);
            st.stats.scene(&key.scene).frames += 1;
            st.stats.schedule(key.schedule).frames += 1;
            drop(st);
            guard.slots.remove(0);
            fulfill(&p.slot, Ok(frame));
        }
    }

    /// Loads a claimed cold scene with no lock held, inserts it (evicting
    /// under the budget), then drains the first waiting batch itself.
    fn load_then_drain(&self, id: &str, scratch: &mut FrameScratch) {
        /// A panic inside `SceneSource::load` must not wedge the service:
        /// the claimed `loading` entry would otherwise never clear, making
        /// the shutdown condition unsatisfiable and stranding every waiter
        /// for this scene. Armed only around the lock-free load call, so
        /// the blocking re-lock in `drop` cannot self-deadlock.
        struct LoadGuard<'a> {
            shared: &'a Shared,
            id: &'a str,
            armed: bool,
        }
        impl Drop for LoadGuard<'_> {
            fn drop(&mut self) {
                if !self.armed || !std::thread::panicking() {
                    return;
                }
                if let Ok(mut st) = self.shared.state.lock() {
                    st.loading.remove(self.id);
                    let failed = take_all_for_scene(&mut st, self.id);
                    st.stats.completed += failed.len() as u64;
                    drop(st);
                    self.shared.work.notify_all();
                    for p in failed {
                        fulfill(&p.slot, Err(ServeError::WorkerPanicked));
                    }
                }
            }
        }

        let source = self
            .registry
            .get(id)
            .expect("submit validated the scene id");
        let mut guard = LoadGuard {
            shared: self,
            id,
            armed: true,
        };
        let loaded = source.load();
        guard.armed = false;
        let mut st = self.state.lock().expect("service state poisoned");
        st.loading.remove(id);
        match loaded {
            Ok(scene) => {
                st.stats.scene(id).loads += 1;
                let evicted = st.cache.insert(id, Arc::clone(&scene));
                for victim in evicted {
                    st.stats.scene(&victim).evictions += 1;
                }
                // Drain the first waiting batch for this scene (any
                // schedule/resolution key) ourselves; the residency makes
                // the remaining keys drainable by every worker.
                let first_key = st.order.iter().find(|k| k.scene == id).cloned();
                let batch = match &first_key {
                    Some(key) => take_batch(&mut st, key, self.max_batch),
                    None => Vec::new(),
                };
                drop(st);
                // The scene may now be resident and the queue changed —
                // wake everyone blocked on "all pending scenes loading".
                self.work.notify_all();
                if let (Some(key), false) = (first_key, batch.is_empty()) {
                    self.render_batch(&key, &scene, batch, scratch);
                }
            }
            Err(message) => {
                let err = ServeError::Load {
                    scene: id.to_string(),
                    message,
                };
                let failed = take_all_for_scene(&mut st, id);
                st.stats.completed += failed.len() as u64;
                drop(st);
                self.work.notify_all();
                for p in failed {
                    fulfill(&p.slot, Err(err.clone()));
                }
            }
        }
    }
}

/// The multi-scene render service. See the [crate docs](crate) and the
/// [module docs](self) for the request model and the scheduling model.
pub struct RenderService {
    shared: Arc<Shared>,
    workers: usize,
    pool: Option<WorkerPool>,
}

impl std::fmt::Debug for RenderService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RenderService")
            .field("workers", &self.workers)
            .field("scenes", &self.shared.registry.len())
            .finish_non_exhaustive()
    }
}

impl RenderService {
    /// Starts the worker pool over `registry` (scene id → source) with
    /// the default per-[`Schedule`] renderer table
    /// ([`ScheduleRenderers::default`]: every schedule, sequential).
    ///
    /// # Panics
    ///
    /// Panics when `cfg.max_batch` is zero.
    pub fn new(
        cfg: ServeConfig,
        registry: impl IntoIterator<Item = (String, SceneSource)>,
    ) -> Self {
        Self::with_renderers(cfg, registry, ScheduleRenderers::default())
    }

    /// [`Self::new`] with an explicit renderer table — swap in parallel
    /// renderers when single-request latency matters more than aggregate
    /// rate, or custom configurations.
    ///
    /// # Panics
    ///
    /// Panics when `cfg.max_batch` is zero.
    pub fn with_renderers(
        cfg: ServeConfig,
        registry: impl IntoIterator<Item = (String, SceneSource)>,
        renderers: ScheduleRenderers,
    ) -> Self {
        assert!(cfg.max_batch >= 1, "max_batch must be at least 1");
        let workers = if cfg.workers == 0 {
            available_threads()
        } else {
            cfg.workers
        };
        let shared = Arc::new(Shared {
            registry: registry.into_iter().collect(),
            renderers,
            max_batch: cfg.max_batch,
            state: Mutex::new(State {
                cache: LruSceneCache::new(cfg.cache_budget_bytes),
                queues: HashMap::new(),
                order: VecDeque::new(),
                loading: HashSet::new(),
                pending: 0,
                shutdown: false,
                stats: StatsInner::default(),
            }),
            work: Condvar::new(),
        });
        let pool_shared = Arc::clone(&shared);
        let pool = WorkerPool::spawn(workers, FrameScratch::new, move |_, scratch| {
            pool_shared.step(scratch)
        });
        Self {
            shared,
            workers,
            pool: Some(pool),
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Scene ids this service can render, sorted.
    pub fn scene_ids(&self) -> Vec<String> {
        let mut ids: Vec<String> = self.shared.registry.keys().cloned().collect();
        ids.sort();
        ids
    }

    /// Enqueues a request; the returned handle blocks until its frame.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownScene`] for an unregistered id,
    /// [`ServeError::InvalidRequest`] for a view or options that fail
    /// validation (NaN / out-of-range trajectory `t`, degenerate pose,
    /// zero-sized ROI, out-of-range quality knobs — and, when a resolution
    /// override is present, ROI bounds), and [`ServeError::ShuttingDown`]
    /// after [`Self::shutdown`] began.
    pub fn submit(&self, req: RenderRequest) -> Result<RenderHandle, ServeError> {
        if !self.shared.registry.contains_key(&req.scene) {
            return Err(ServeError::UnknownScene(req.scene));
        }
        req.view.validate().map_err(ServeError::InvalidRequest)?;
        let full_check = match req.options.resolution {
            // Resolution known at submit: ROI bounds are checkable now.
            Some((w, h)) => req.options.validate_for(w, h),
            // Native resolution: bounds defer to render; the rest do not.
            None => req.options.validate(),
        };
        full_check.map_err(|e| ServeError::InvalidRequest(ViewError::Options(e)))?;
        let key = BatchKey {
            scene: req.scene,
            schedule: req.options.schedule,
            resolution: req.options.resolution,
        };
        let slot = Arc::new(Slot::default());
        let mut st = self.shared.state.lock().expect("service state poisoned");
        if st.shutdown {
            return Err(ServeError::ShuttingDown);
        }
        let resident = st.cache.contains(&key.scene);
        let sc = st.stats.scene(&key.scene);
        sc.requests += 1;
        if resident {
            sc.hits += 1;
        } else {
            sc.misses += 1;
        }
        st.stats.schedule(key.schedule).requests += 1;
        if !st.queues.contains_key(&key) {
            st.order.push_back(key.clone());
        }
        st.queues.entry(key).or_default().push_back(Pending {
            view: req.view,
            options: req.options,
            submitted: Instant::now(),
            slot: Arc::clone(&slot),
        });
        st.pending += 1;
        st.stats.max_queue_depth = st.stats.max_queue_depth.max(st.pending);
        drop(st);
        self.shared.work.notify_one();
        Ok(RenderHandle { slot })
    }

    /// Convenience: submit and block for the frame.
    ///
    /// # Errors
    ///
    /// Propagates [`Self::submit`] and load errors.
    pub fn render_blocking(&self, req: RenderRequest) -> Result<Frame, ServeError> {
        self.submit(req)?.wait()
    }

    /// Snapshot of the serving statistics. The percentile sort (up to
    /// the full latency window) runs *after* the service lock is
    /// released, so a periodic metrics poll doesn't stall the scheduler.
    pub fn stats(&self) -> ServeStats {
        let st = self.shared.state.lock().expect("service state poisoned");
        let mut lat = st.stats.latencies_us.clone();
        let mut out = ServeStats {
            per_scene: st.stats.per_scene.clone(),
            per_schedule: st.stats.per_schedule.clone(),
            completed: st.stats.completed,
            queue_depth: st.pending,
            max_queue_depth: st.stats.max_queue_depth,
            batches: st.stats.batches,
            frames: st.stats.frames,
            latency_p50_ms: 0.0,
            latency_p95_ms: 0.0,
            frame_stats: st.stats.frame_stats,
            resident_bytes: st.cache.resident_bytes(),
            resident_scenes: st.cache.len(),
        };
        drop(st);
        lat.sort_unstable();
        out.latency_p50_ms = percentile_us(&lat, 0.50);
        out.latency_p95_ms = percentile_us(&lat, 0.95);
        out
    }

    /// Graceful shutdown: stops accepting new requests, drains every
    /// pending one, joins the workers, and returns the final statistics.
    /// Any request the workers could no longer serve (e.g. because a
    /// worker panicked earlier) resolves with [`ServeError::ShuttingDown`]
    /// rather than leaving its handle blocked forever.
    pub fn shutdown(mut self) -> ServeStats {
        self.finish();
        self.stats()
    }

    fn finish(&mut self) {
        let Some(pool) = self.pool.take() else {
            return;
        };
        self.shared
            .state
            .lock()
            .expect("service state poisoned")
            .shutdown = true;
        self.shared.work.notify_all();
        // A worker that panicked earlier re-raises here; catch it so the
        // leftover sweep below always runs, then re-raise.
        let join = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| pool.join()));
        // The drain-to-zero shutdown path leaves nothing behind, but dead
        // workers do: fail every request still queued so no
        // `RenderHandle::wait` blocks past shutdown.
        let leftovers: Vec<Pending> = {
            let mut st = self.shared.state.lock().expect("service state poisoned");
            let mut out = Vec::new();
            for (_, q) in st.queues.drain() {
                out.extend(q);
            }
            st.order.clear();
            st.loading.clear();
            st.pending = 0;
            st.stats.completed += out.len() as u64;
            out
        };
        for p in leftovers {
            fulfill(&p.slot, Err(ServeError::ShuttingDown));
        }
        if let Err(payload) = join {
            std::panic::resume_unwind(payload);
        }
    }
}

impl Drop for RenderService {
    /// Dropping the service performs the same graceful drain as
    /// [`Self::shutdown`].
    fn drop(&mut self) {
        self.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcc_render::pipeline::{Roi, StandardRenderer};
    use gcc_scene::{SceneConfig, ScenePreset};

    fn mem_source(preset: ScenePreset, scale: f32) -> (Arc<Scene>, SceneSource) {
        let scene = Arc::new(preset.build(&SceneConfig::with_scale(scale)));
        (Arc::clone(&scene), SceneSource::Memory(scene))
    }

    fn registry(scale: f32) -> (Vec<Arc<Scene>>, Vec<(String, SceneSource)>) {
        let mut scenes = Vec::new();
        let mut reg = Vec::new();
        for (id, preset) in [("lego", ScenePreset::Lego), ("palace", ScenePreset::Palace)] {
            let (scene, src) = mem_source(preset, scale);
            scenes.push(scene);
            reg.push((id.to_string(), src));
        }
        (scenes, reg)
    }

    #[test]
    fn served_frames_match_direct_renders() {
        let (scenes, reg) = registry(0.02);
        let service = RenderService::new(
            ServeConfig {
                workers: 3,
                ..ServeConfig::default()
            },
            reg,
        );
        let reqs: Vec<RenderRequest> = (0..6)
            .map(|i| {
                RenderRequest::trajectory(
                    if i % 2 == 0 { "lego" } else { "palace" },
                    i as f32 / 6.0,
                )
            })
            .collect();
        let handles: Vec<RenderHandle> = reqs
            .iter()
            .map(|r| service.submit(r.clone()).unwrap())
            .collect();
        let direct = StandardRenderer::reference();
        for (req, handle) in reqs.iter().zip(handles) {
            let frame = handle.wait().unwrap();
            let scene = if req.scene == "lego" {
                &scenes[0]
            } else {
                &scenes[1]
            };
            let cam = scene.resolve_view(&req.view, &req.options).unwrap();
            let want = direct.render_frame(&scene.gaussians, &cam);
            assert_eq!(
                frame.image, want.image,
                "scene {} view {:?}",
                req.scene, req.view
            );
            assert_eq!(frame.stats, want.stats);
        }
        let stats = service.shutdown();
        assert_eq!(stats.completed, 6);
        assert_eq!(stats.frames, 6);
        assert_eq!(stats.queue_depth, 0);
        assert!(stats.max_queue_depth >= 1);
        assert!(stats.latency_p95_ms >= stats.latency_p50_ms);
        assert_eq!(
            stats.frame_stats.total_gaussians,
            3 * (scenes[0].len() as u64 + scenes[1].len() as u64)
        );
        // Everything ran through the default schedule.
        assert_eq!(stats.per_schedule[&Schedule::Reference].frames, 6);
        assert_eq!(stats.per_schedule[&Schedule::Reference].requests, 6);
    }

    #[test]
    fn resident_scene_loads_once_and_hits_after_warmup() {
        let (_, reg) = registry(0.02);
        let service = RenderService::new(
            ServeConfig {
                workers: 1,
                ..ServeConfig::default()
            },
            reg,
        );
        // Warm the scene, then issue classified-at-submit hits.
        service
            .render_blocking(RenderRequest::trajectory("lego", 0.0))
            .unwrap();
        for i in 0..4 {
            service
                .render_blocking(RenderRequest::trajectory("lego", i as f32 / 4.0))
                .unwrap();
        }
        let stats = service.shutdown();
        let lego = &stats.per_scene["lego"];
        assert_eq!(lego.loads, 1, "resident scene must not reload");
        assert_eq!(lego.misses, 1);
        assert_eq!(lego.hits, 4);
        assert_eq!(lego.frames, 5);
        assert_eq!(stats.resident_scenes, 1);
        assert!(stats.hit_rate() > 0.7);
    }

    #[test]
    fn zero_budget_is_load_render_evict_per_request() {
        let (_, reg) = registry(0.02);
        let service = RenderService::new(
            ServeConfig {
                workers: 1,
                cache_budget_bytes: 0,
                max_batch: 1,
            },
            reg,
        );
        for i in 0..3 {
            service
                .render_blocking(RenderRequest::trajectory("palace", i as f32 / 3.0))
                .unwrap();
        }
        let stats = service.shutdown();
        let palace = &stats.per_scene["palace"];
        assert_eq!(palace.loads, 3, "naive mode reloads per request");
        assert_eq!(palace.hits, 0);
        assert_eq!(palace.evictions, 3);
        assert_eq!(stats.batches, 3);
        assert_eq!(stats.resident_scenes, 0);
    }

    #[test]
    fn unknown_scene_is_rejected_at_submit() {
        let (_, reg) = registry(0.02);
        let service = RenderService::new(
            ServeConfig {
                workers: 1,
                ..ServeConfig::default()
            },
            reg,
        );
        let err = service
            .submit(RenderRequest::trajectory("nope", 0.0))
            .unwrap_err();
        assert_eq!(err, ServeError::UnknownScene("nope".into()));
    }

    #[test]
    fn invalid_views_and_options_are_rejected_at_submit() {
        let (_, reg) = registry(0.02);
        let service = RenderService::new(
            ServeConfig {
                workers: 1,
                ..ServeConfig::default()
            },
            reg,
        );
        // NaN trajectory parameter.
        let err = service
            .submit(RenderRequest::trajectory("lego", f32::NAN))
            .unwrap_err();
        assert!(matches!(
            err,
            ServeError::InvalidRequest(ViewError::NonFinite { field: "t" })
        ));
        // Out-of-range trajectory parameter.
        let err = service
            .submit(RenderRequest::trajectory("lego", 2.5))
            .unwrap_err();
        assert!(matches!(
            err,
            ServeError::InvalidRequest(ViewError::TrajectoryOutOfRange { .. })
        ));
        // Zero-sized ROI.
        let err = service
            .submit(
                RenderRequest::trajectory("lego", 0.5)
                    .with_options(RenderOptions::default().with_roi(Roi::new(0, 0, 0, 8))),
            )
            .unwrap_err();
        assert!(matches!(
            err,
            ServeError::InvalidRequest(ViewError::Options(gcc_render::JobError::EmptyRoi))
        ));
        // ROI out of bounds of an explicit resolution: caught at submit.
        let err = service
            .submit(
                RenderRequest::trajectory("lego", 0.5).with_options(
                    RenderOptions::default()
                        .at_resolution(64, 64)
                        .with_roi(Roi::new(32, 32, 64, 64)),
                ),
            )
            .unwrap_err();
        assert!(matches!(
            err,
            ServeError::InvalidRequest(ViewError::Options(
                gcc_render::JobError::RoiOutOfBounds { .. }
            ))
        ));
        // Degenerate pose.
        let eye = gcc_math::Vec3::new(1.0, 1.0, 1.0);
        let err = service
            .submit(RenderRequest::new("lego", ViewSpec::look_at(eye, eye)))
            .unwrap_err();
        assert!(matches!(
            err,
            ServeError::InvalidRequest(ViewError::DegeneratePose)
        ));
        // Nothing reached a worker.
        let stats = service.shutdown();
        assert_eq!(stats.completed, 0);
        assert_eq!(stats.frames, 0);
    }

    #[test]
    fn roi_against_native_resolution_resolves_through_the_handle() {
        // The scene's native size is unknown at submit; an ROI outside it
        // must come back as a typed error from wait(), not a worker panic.
        let (scenes, reg) = registry(0.02);
        let (w, h) = scenes[0].resolution;
        let service = RenderService::new(
            ServeConfig {
                workers: 1,
                ..ServeConfig::default()
            },
            reg,
        );
        let err = service
            .render_blocking(
                RenderRequest::trajectory("lego", 0.2)
                    .with_options(RenderOptions::default().with_roi(Roi::new(w - 1, h - 1, 8, 8))),
            )
            .unwrap_err();
        assert!(matches!(
            err,
            ServeError::InvalidRequest(ViewError::Options(
                gcc_render::JobError::RoiOutOfBounds { .. }
            ))
        ));
        let stats = service.shutdown();
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.frames, 0, "no frame was rendered");
    }

    #[test]
    fn heterogeneous_schedules_split_batches_and_stats() {
        let (_, reg) = registry(0.02);
        let service = RenderService::new(
            ServeConfig {
                workers: 2,
                ..ServeConfig::default()
            },
            reg,
        );
        let mut handles = Vec::new();
        for i in 0..4 {
            handles.push(
                service
                    .submit(
                        RenderRequest::trajectory("lego", i as f32 / 4.0)
                            .with_options(RenderOptions::default().with_schedule(Schedule::Gscore)),
                    )
                    .unwrap(),
            );
            handles.push(
                service
                    .submit(
                        RenderRequest::trajectory("lego", i as f32 / 4.0).with_options(
                            RenderOptions::default().with_schedule(Schedule::GccHardware),
                        ),
                    )
                    .unwrap(),
            );
        }
        for h in handles {
            h.wait().unwrap();
        }
        let stats = service.shutdown();
        assert_eq!(stats.frames, 8);
        assert_eq!(stats.per_schedule[&Schedule::Gscore].frames, 4);
        assert_eq!(stats.per_schedule[&Schedule::GccHardware].frames, 4);
        assert_eq!(stats.per_schedule[&Schedule::Gscore].requests, 4);
        assert!(stats.per_schedule[&Schedule::Gscore].batches >= 1);
        assert!(!stats.per_schedule.contains_key(&Schedule::Reference));
    }

    #[test]
    fn mixed_resolutions_coalesce_per_key() {
        // Same scene + schedule, two resolutions: batches never mix them
        // (each drained batch renders back-to-back at one size).
        let (_, reg) = registry(0.02);
        let service = RenderService::new(
            ServeConfig {
                workers: 1,
                ..ServeConfig::default()
            },
            reg,
        );
        let mut handles = Vec::new();
        for i in 0..3 {
            let t = i as f32 / 3.0;
            handles.push(
                service
                    .submit(RenderRequest::trajectory("lego", t))
                    .unwrap(),
            );
            handles.push(
                service
                    .submit(
                        RenderRequest::trajectory("lego", t)
                            .with_options(RenderOptions::default().at_resolution(64, 48)),
                    )
                    .unwrap(),
            );
        }
        let mut native = 0;
        let mut small = 0;
        for h in handles {
            let frame = h.wait().unwrap();
            if frame.image.width() == 64 {
                small += 1;
            } else {
                native += 1;
            }
        }
        assert_eq!((native, small), (3, 3));
        service.shutdown();
    }

    #[test]
    fn load_failure_fans_out_to_every_waiter() {
        let service = RenderService::new(
            ServeConfig {
                workers: 2,
                ..ServeConfig::default()
            },
            [(
                "ghost".to_string(),
                SceneSource::File("/nonexistent/ghost.bin".into()),
            )],
        );
        let handles: Vec<RenderHandle> = (0..3)
            .map(|i| {
                service
                    .submit(RenderRequest::trajectory("ghost", i as f32 / 3.0))
                    .unwrap()
            })
            .collect();
        for h in handles {
            match h.wait() {
                Err(ServeError::Load { scene, .. }) => assert_eq!(scene, "ghost"),
                other => panic!("expected load error, got {other:?}"),
            }
        }
        let stats = service.shutdown();
        assert_eq!(stats.completed, 3);
        assert_eq!(stats.frames, 0);
    }

    #[test]
    fn load_failure_fans_out_across_schedule_keys_too() {
        // Requests for the same dead scene under different schedules live
        // in different queues; the load failure must fail all of them.
        let service = RenderService::new(
            ServeConfig {
                workers: 1,
                ..ServeConfig::default()
            },
            [(
                "ghost".to_string(),
                SceneSource::File("/nonexistent/ghost.bin".into()),
            )],
        );
        let handles: Vec<RenderHandle> =
            [Schedule::Reference, Schedule::Gscore, Schedule::GccHardware]
                .into_iter()
                .map(|s| {
                    service
                        .submit(
                            RenderRequest::trajectory("ghost", 0.1)
                                .with_options(RenderOptions::default().with_schedule(s)),
                        )
                        .unwrap()
                })
                .collect();
        for h in handles {
            assert!(matches!(h.wait(), Err(ServeError::Load { .. })));
        }
        assert_eq!(service.shutdown().completed, 3);
    }

    #[test]
    fn shutdown_drains_pending_requests() {
        let (_, reg) = registry(0.02);
        let service = RenderService::new(
            ServeConfig {
                workers: 2,
                ..ServeConfig::default()
            },
            reg,
        );
        let handles: Vec<RenderHandle> = (0..8)
            .map(|i| {
                service
                    .submit(RenderRequest::trajectory(
                        if i % 2 == 0 { "lego" } else { "palace" },
                        i as f32 / 8.0,
                    ))
                    .unwrap()
            })
            .collect();
        let stats = service.shutdown();
        assert_eq!(stats.completed, 8);
        assert_eq!(stats.queue_depth, 0);
        for h in handles {
            assert!(h.is_ready());
            h.wait().unwrap();
        }
    }

    #[test]
    fn submit_after_shutdown_is_rejected() {
        let (_, reg) = registry(0.02);
        let service = RenderService::new(
            ServeConfig {
                workers: 1,
                ..ServeConfig::default()
            },
            reg,
        );
        // Flip the internal flag to emulate a shutdown in progress.
        service.shared.state.lock().unwrap().shutdown = true;
        let err = service
            .submit(RenderRequest::trajectory("lego", 0.0))
            .unwrap_err();
        assert_eq!(err, ServeError::ShuttingDown);
        // Undo so the drop-drain terminates normally.
        service.shared.state.lock().unwrap().shutdown = false;
    }

    #[test]
    fn latency_window_is_a_bounded_ring() {
        let mut s = StatsInner::default();
        for i in 0..(LATENCY_WINDOW as u64 + 10) {
            s.record_latency(i);
        }
        assert_eq!(s.latencies_us.len(), LATENCY_WINDOW);
        // The 10 oldest samples were overwritten by the newest 10.
        assert!(!s.latencies_us.contains(&9));
        assert!(s.latencies_us.contains(&(LATENCY_WINDOW as u64 + 9)));
        assert!(s.latencies_us.contains(&10));
    }

    struct AlwaysPanics;
    impl Renderer for AlwaysPanics {
        fn name(&self) -> &str {
            "always-panics"
        }
        fn render_frame(&self, _: &[gcc_core::Gaussian3D], _: &gcc_core::Camera) -> Frame {
            panic!("render blew up");
        }
    }

    #[test]
    fn renderer_panic_fails_waiters_instead_of_stranding_them() {
        let (_, reg) = registry(0.02);
        let service = RenderService::with_renderers(
            ServeConfig {
                workers: 1,
                ..ServeConfig::default()
            },
            reg,
            ScheduleRenderers::default().with(Schedule::Reference, Box::new(AlwaysPanics)),
        );
        let handle = service
            .submit(RenderRequest::trajectory("lego", 0.0))
            .unwrap();
        // The waiter must be released with an error, not hang.
        assert_eq!(handle.wait().unwrap_err(), ServeError::WorkerPanicked);
        // The worker's panic resurfaces when the pool is joined.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            service.shutdown();
        }));
        assert!(outcome.is_err(), "pool join must surface the worker panic");
    }

    #[test]
    fn wait_after_shutdown_resolves_stranded_handles() {
        // Regression: a request queued behind a worker-killing one used to
        // leave its handle blocked forever once the (dead) pool was
        // joined. The shutdown sweep must fail it instead.
        let (_, mut reg) = registry(0.02);
        reg.push(("boom".to_string(), SceneSource::PanicsOnLoad));
        let service = RenderService::new(
            ServeConfig {
                workers: 1,
                max_batch: 1,
                ..ServeConfig::default()
            },
            reg,
        );
        // First request kills the only worker during its scene load…
        let doomed = service
            .submit(RenderRequest::trajectory("boom", 0.1))
            .unwrap();
        assert_eq!(doomed.wait().unwrap_err(), ServeError::WorkerPanicked);
        // …so this one can never be served.
        let stranded = service
            .submit(RenderRequest::trajectory("lego", 0.5))
            .unwrap();
        assert!(!stranded.is_ready());
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            service.shutdown();
        }));
        assert!(outcome.is_err(), "the load panic must resurface at join");
        // The sweep resolved the stranded handle: wait() returns, with a
        // typed error.
        assert!(stranded.is_ready(), "handle must be resolved by shutdown");
        assert_eq!(stranded.wait().unwrap_err(), ServeError::ShuttingDown);
    }

    #[test]
    fn load_panic_fails_waiters_and_does_not_wedge_shutdown() {
        let service = RenderService::new(
            ServeConfig {
                workers: 2,
                ..ServeConfig::default()
            },
            [("boom".to_string(), SceneSource::PanicsOnLoad)],
        );
        // One request: each load panic kills one worker, so a multi-shot
        // submit could strand a late request with no workers left — the
        // guard's contract is per-panic containment, not worker revival.
        let handle = service
            .submit(RenderRequest::trajectory("boom", 0.5))
            .unwrap();
        assert_eq!(handle.wait().unwrap_err(), ServeError::WorkerPanicked);
        // `completed` counts the failed request, and shutdown terminates
        // (surfacing the worker panic) instead of hanging on `loading`.
        assert_eq!(service.stats().completed, 1);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            service.shutdown();
        }));
        assert!(outcome.is_err(), "pool join must surface the load panic");
    }

    #[test]
    fn max_batch_one_never_coalesces() {
        let (_, reg) = registry(0.02);
        let service = RenderService::new(
            ServeConfig {
                workers: 2,
                max_batch: 1,
                ..ServeConfig::default()
            },
            reg,
        );
        let handles: Vec<RenderHandle> = (0..6)
            .map(|i| {
                service
                    .submit(RenderRequest::trajectory("lego", i as f32 / 6.0))
                    .unwrap()
            })
            .collect();
        for h in handles {
            h.wait().unwrap();
        }
        let stats = service.shutdown();
        assert_eq!(stats.batches, stats.frames, "max_batch=1 must not coalesce");
        assert_eq!(stats.frames, 6);
    }
}
