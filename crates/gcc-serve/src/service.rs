//! The render service: a long-lived worker pool over priority-aware
//! stream queues keyed by `(scene, schedule, resolution, priority)`, and
//! the LRU scene cache.
//!
//! # Request model
//!
//! Since the session redesign *everything is a stream*: a client opens a
//! [`Session`] per scene and streams view sequences through it
//! ([`Session::stream_with`]); [`RenderService::submit`] is a thin shim
//! that opens a single-frame interactive stream and wraps it in a
//! [`RenderHandle`]. A [`RenderRequest`] is a scene id, a [`ViewSpec`]
//! and [`RenderOptions`]; validation happens before any worker sees the
//! request — unknown scene ids, NaN / out-of-range parameters and
//! zero-sized ROIs fail with typed [`ServeError`]s at submit/open; ROI
//! bounds against a scene's *native* resolution can only be checked once
//! the scene is known, so that case resolves through the stream instead
//! of panicking a worker.
//!
//! # Scheduling
//!
//! All coordination state lives in one mutex (`State`) with one condvar.
//! Queues are keyed by [`BatchKey`] — scene, schedule, resolution,
//! priority — so a drained batch is renderable back-to-back on one
//! worker with one renderer, and batches are priority-pure (interactive
//! frames never wait behind bulk frames inside one queue). A worker's
//! step either *plans* a job under the lock — drain a batch for a
//! resident scene, or claim a cold scene's load — and executes it with
//! the lock released, or blocks on the condvar when every pending scene
//! is already being loaded by someone else.
//!
//! Dispatch order replaced the old plain round-robin: the planner picks
//! the best actionable key by `(priority, earliest head deadline, FIFO
//! turn)` — `Interactive` preempts `Bulk` at every decision; within a
//! class, earliest-deadline-first, with *any* deadline outranking
//! deadline-free work (a deadline is a claim of urgency — latency
//! promises are ordered ahead of best-effort traffic, which saturating
//! deadline-carrying load can therefore starve, exactly as interactive
//! can starve bulk); the FIFO turn (a drained-but-nonempty key rotates
//! to the back) keeps keys of equal priority and deadline standing
//! fair. Within a key, frames are served in issue order.
//!
//! Frames enter the queues *lazily*: a stream materializes at most
//! `window` undelivered frames at a time (see
//! [`crate::session`]), refilled when the client consumes — the
//! backpressure that bounds queue space per client.
//!
//! A cold scene is loaded by exactly one worker (the `loading` guard),
//! which then drains the first waiting batch itself — *load-then-drain*
//! — while the insert makes the scene resident for every other worker to
//! batch from in parallel. With a zero cache budget the insert evicts
//! immediately and every request degenerates to load-render-evict: the
//! naive configuration `bench_serve` compares against.
//!
//! # Scratch lifetime
//!
//! Each pool worker owns one [`FrameScratch`] for its entire lifetime —
//! across batches, scenes, schedules, streams and cache generations — so
//! steady-state serving allocates no per-frame hot-path buffers. Served
//! frames are bit-identical to fresh-scratch direct renders (the
//! scratch-reuse contract of [`Renderer::render_job`]).

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use gcc_lod::{attach_hierarchy, CostModel, HierarchyConfig, QualityLadder};
use gcc_parallel::{available_threads, PoolHealth, RestartPolicy, WorkerPool, WorkerStep};
use gcc_render::pipeline::{
    Frame, FrameScratch, FrameStats, RenderJob, RenderOptions, Renderer, Schedule,
};
use gcc_render::upscale::upscale_bilinear;
use gcc_scene::io::RetryPolicy;
use gcc_scene::{Scene, ViewError, ViewSpec};

use crate::cache::LruSceneCache;
use crate::session::{FrameStream, Inbox, Priority, Session, StreamConfig, StreamPoll};
use crate::source::SceneSource;
use crate::stats::{
    percentile_us, LodCounters, LodDecision, PriorityCounters, SceneCounters, ScheduleCounters,
    ServeStats, StreamCounters, LOD_TRACE_WINDOW,
};
use crate::ServeError;

/// Admission-control watermarks: when new streams are turned away with
/// [`ServeError::Overloaded`]. The Bulk watermarks fire first — past
/// them new `Bulk` streams are *rejected* while `Interactive` still
/// admits (best-effort traffic is the first to go) — and the hard
/// ceilings *shed* everything. All four default to `usize::MAX`
/// (admission control off); a deployment sizes them to its queue-latency
/// budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShedPolicy {
    /// Queued-frame depth past which new Bulk streams are rejected.
    pub bulk_queue_watermark: usize,
    /// Open-stream count past which new Bulk streams are rejected.
    pub bulk_stream_watermark: usize,
    /// Queued-frame hard ceiling: past it, every new stream is shed.
    pub max_queue_depth: usize,
    /// Open-stream hard ceiling: past it, every new stream is shed.
    pub max_streams: usize,
    /// Base backoff hint attached to [`ServeError::Overloaded`]
    /// rejections. The hint a client actually receives scales with how
    /// far past its watermark the service was at rejection time (see
    /// [`ShedPolicy::retry_hint`]), so the same knob yields gentle
    /// backoff at a grazed watermark and a firm one under a pile-up.
    pub retry_after: Duration,
}

impl Default for ShedPolicy {
    fn default() -> Self {
        Self {
            bulk_queue_watermark: usize::MAX,
            bulk_stream_watermark: usize::MAX,
            max_queue_depth: usize::MAX,
            max_streams: usize::MAX,
            retry_after: Duration::from_millis(25),
        }
    }
}

impl ShedPolicy {
    /// The backoff hint for a rejection observed at `depth` against
    /// `limit`: the base [`Self::retry_after`] scaled linearly with the
    /// relative overshoot past the limit, capped at 4x the base. At the
    /// limit exactly (or under it, for the side of a compound check that
    /// did not fire) the hint is the base itself; a queue running at
    /// triple its watermark hints 3x the base. The scaling is
    /// deterministic so tests and wire clients can rely on it.
    pub fn retry_hint(&self, depth: usize, limit: usize) -> Duration {
        let over = depth.saturating_sub(limit);
        if over == 0 || limit == 0 {
            return self.retry_after;
        }
        let factor = (1.0 + over as f64 / limit as f64).min(4.0);
        self.retry_after.mul_f64(factor)
    }
}

/// Deadline-aware adaptive quality policy (DESIGN.md §14): when set on
/// [`ServeConfig::lod`], deadline-carrying frames dispatch through the
/// [`QualityLadder`] instead of always rendering at full quality. A
/// rolling per-scene cost model picks the highest rung whose predicted
/// cost (scaled by [`LodPolicy::margin`]) fits the frame's remaining
/// deadline budget, degrading resolution / SH degree / alpha culling /
/// hierarchy level under pressure and climbing back with headroom.
/// Deadline-free frames always render exactly; with `lod: None` the
/// service behaves bit-identically to pre-LOD builds.
#[derive(Debug, Clone)]
pub struct LodPolicy {
    /// The quality ladder, best rung first (rung 0 must be exact).
    pub ladder: QualityLadder,
    /// Safety factor applied to predicted cost before comparing against
    /// the deadline budget (> 1 leaves headroom for scheduling noise).
    pub margin: f64,
    /// Build a [`gcc_scene::SceneLod`] hierarchy at load time for scenes
    /// that ship without one, so the coarse rungs have levels to render
    /// from. The hierarchy is charged to the cache byte budget.
    pub build_on_load: bool,
    /// Hierarchy builder configuration used by [`Self::build_on_load`].
    pub hierarchy: HierarchyConfig,
}

impl Default for LodPolicy {
    fn default() -> Self {
        Self {
            ladder: QualityLadder::standard(),
            margin: 1.3,
            build_on_load: true,
            hierarchy: HierarchyConfig::default(),
        }
    }
}

/// Service sizing and policy knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads; `0` means one per available hardware thread.
    pub workers: usize,
    /// Byte budget of the scene cache ([`Scene::approx_bytes`] units).
    /// `0` disables residency entirely (naive load-render-evict).
    pub cache_budget_bytes: usize,
    /// Most requests drained into one batch (≥ 1). `1` disables
    /// coalescing.
    pub max_batch: usize,
    /// Worker supervision budget: panicked workers are respawned with
    /// fresh scratch within this policy; past it the panic fails fast
    /// and resurfaces when the pool is joined.
    pub restart: RestartPolicy,
    /// Retry policy for scene loads that fail *retryably* (transient
    /// I/O). Fatal failures (missing/malformed files) never retry.
    pub load_retry: RetryPolicy,
    /// How long a scene that exhausted its load retries (or whose load
    /// panicked) stays quarantined: new requests fail fast with
    /// [`ServeError::Quarantined`] until the window expires, then one
    /// request is admitted as a half-open probe. `Duration::ZERO`
    /// effectively disables the breaker (every request probes).
    pub quarantine_for: Duration,
    /// Admission-control watermarks (defaults: admission control off).
    pub shed: ShedPolicy,
    /// Deadline-aware adaptive quality (default: off — every frame
    /// renders at exact full quality).
    pub lod: Option<LodPolicy>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 0,
            cache_budget_bytes: 256 << 20,
            max_batch: 8,
            restart: RestartPolicy::default(),
            load_retry: RetryPolicy::default(),
            quarantine_for: Duration::from_secs(5),
            shed: ShedPolicy::default(),
            lod: None,
        }
    }
}

/// One frame request: a registered scene id, the view to render, and the
/// per-request options. [`RenderRequest::trajectory`] reproduces the
/// historical `(scene, t)` surface.
#[derive(Debug, Clone, PartialEq)]
pub struct RenderRequest {
    /// Registered scene id.
    pub scene: String,
    /// The viewpoint, resolved against the scene's rig at render time.
    pub view: ViewSpec,
    /// Per-request options (schedule, resolution, ROI, quality knobs).
    pub options: RenderOptions,
}

impl RenderRequest {
    /// A request with default options.
    pub fn new(scene: impl Into<String>, view: ViewSpec) -> Self {
        Self {
            scene: scene.into(),
            view,
            options: RenderOptions::default(),
        }
    }

    /// The historical surface: trajectory parameter `t` on the scene's
    /// rig, default options.
    pub fn trajectory(scene: impl Into<String>, t: f32) -> Self {
        Self::new(scene, ViewSpec::trajectory(t))
    }

    /// Attaches options to the request.
    pub fn with_options(mut self, options: RenderOptions) -> Self {
        self.options = options;
        self
    }
}

/// The renderer table the service dispatches [`Schedule`]s through: one
/// long-lived renderer per schedule, each sequential by default (the
/// service parallelizes across requests, not inside frames).
pub struct ScheduleRenderers {
    /// Indexed in [`Schedule::ALL`] order.
    renderers: Vec<Box<dyn Renderer + Send + Sync>>,
}

impl Default for ScheduleRenderers {
    fn default() -> Self {
        Self {
            renderers: Schedule::ALL.iter().map(|s| s.renderer()).collect(),
        }
    }
}

impl std::fmt::Debug for ScheduleRenderers {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScheduleRenderers")
            .field("schedules", &Schedule::ALL)
            .finish_non_exhaustive()
    }
}

impl ScheduleRenderers {
    /// Replaces one schedule's renderer (custom configurations, tests).
    pub fn with(mut self, schedule: Schedule, renderer: Box<dyn Renderer + Send + Sync>) -> Self {
        self.renderers[Self::index(schedule)] = renderer;
        self
    }

    fn index(schedule: Schedule) -> usize {
        Schedule::ALL
            .iter()
            .position(|s| *s == schedule)
            .expect("Schedule::ALL covers every variant")
    }

    fn get(&self, schedule: Schedule) -> &(dyn Renderer + Send + Sync) {
        self.renderers[Self::index(schedule)].as_ref()
    }
}

/// Waiter side of a submitted single-frame request: a handle over a
/// one-frame interactive stream. Dropping the handle without waiting
/// cancels the request (an abandoned frame releases its queue slot).
#[derive(Debug)]
pub struct RenderHandle {
    stream: FrameStream,
}

impl RenderHandle {
    pub(crate) fn from_stream(stream: FrameStream) -> Self {
        Self { stream }
    }

    /// Blocks until the frame is rendered (or the request failed). A
    /// handle never blocks past the service's shutdown: requests still
    /// queued when the drain finishes resolve with
    /// [`ServeError::ShuttingDown`].
    pub fn wait(mut self) -> Result<Frame, ServeError> {
        self.stream
            .next_frame()
            .unwrap_or(Err(ServeError::ShuttingDown))
    }

    /// Bounded-wait variant of [`Self::wait`]: blocks up to `timeout`.
    /// `Ok` carries the request's result; `Err` returns the handle on
    /// timeout so the caller can keep polling without losing the frame.
    ///
    /// # Errors
    ///
    /// `Err(self)` when the frame was not ready within `timeout`.
    pub fn wait_timeout(mut self, timeout: Duration) -> Result<Result<Frame, ServeError>, Self> {
        match self.stream.next_timeout(timeout) {
            StreamPoll::Ready(result) => Ok(result),
            StreamPoll::Done => Ok(Err(ServeError::ShuttingDown)),
            StreamPoll::Pending => Err(self),
        }
    }

    /// `true` once the result is available ([`Self::wait`] won't block).
    /// A pure poll: takes no part in the scheduler's condvar protocol, so
    /// spinning on it cannot stall workers (though [`Self::wait_timeout`]
    /// is the cheaper way to poll).
    pub fn is_ready(&self) -> bool {
        self.stream.is_ready()
    }
}

/// What a batch coalesces on: requests agreeing on all four render
/// back-to-back through one renderer and one scratch, at one priority.
/// The `resolution` is the *override* (`None` = the scene's native
/// size), so native-resolution requests coalesce without knowing the
/// scene's actual dimensions at submit time. Priority is part of the key
/// so batches are priority-pure: an interactive frame never waits behind
/// bulk frames inside one queue.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct BatchKey {
    scene: String,
    schedule: Schedule,
    resolution: Option<(u32, u32)>,
    priority: Priority,
}

/// A queued (issued) stream frame.
#[derive(Debug)]
struct Pending {
    view: ViewSpec,
    options: Arc<RenderOptions>,
    /// When the frame was issued into the scheduler (latency origin).
    submitted: Instant,
    /// Absolute deadline (issue time + the stream's deadline), if any.
    deadline: Option<Instant>,
    priority: Priority,
    stream: u64,
    index: usize,
    inbox: Arc<Inbox>,
}

/// Scheduler-side state of one open stream.
#[derive(Debug)]
struct StreamSched {
    key: BatchKey,
    views: Vec<ViewSpec>,
    options: Arc<RenderOptions>,
    deadline: Option<Duration>,
    window: usize,
    /// Frames materialized into the queues so far.
    issued: usize,
    /// Frames the client has consumed (reported by refills).
    delivered: usize,
    inbox: Arc<Inbox>,
}

/// Most latency samples retained per priority class. A long-lived
/// service must not accumulate per-request state without bound, and
/// `stats()` sorts a copy of these buffers — so each is a ring over the
/// most recent completions, not the full history.
const LATENCY_WINDOW: usize = 1 << 15;

/// Per-priority mutable statistics (folded under the service lock).
#[derive(Debug, Default)]
struct PriorityInner {
    requests: u64,
    frames: u64,
    completed: u64,
    max_queued: usize,
    with_deadline: u64,
    deadline_misses: u64,
    /// Streams turned away at the class's admission watermark.
    rejected: u64,
    /// Streams shed at a hard overload ceiling.
    shed: u64,
    /// Ring buffer of recent frame latencies (µs); see
    /// [`LATENCY_WINDOW`].
    latencies_us: Vec<u64>,
    /// Next overwrite position once the ring is full.
    latency_cursor: usize,
}

impl PriorityInner {
    fn record_latency(&mut self, us: u64) {
        if self.latencies_us.len() < LATENCY_WINDOW {
            self.latencies_us.push(us);
        } else {
            self.latencies_us[self.latency_cursor] = us;
            self.latency_cursor = (self.latency_cursor + 1) % LATENCY_WINDOW;
        }
    }
}

/// Mutable aggregate statistics (folded under the service lock).
#[derive(Debug, Default)]
struct StatsInner {
    per_scene: BTreeMap<String, SceneCounters>,
    per_schedule: BTreeMap<Schedule, ScheduleCounters>,
    per_priority: [PriorityInner; 2],
    streams: StreamCounters,
    frame_stats: FrameStats,
    completed: u64,
    batches: u64,
    frames: u64,
    max_queue_depth: usize,
}

impl StatsInner {
    fn scene(&mut self, id: &str) -> &mut SceneCounters {
        self.per_scene.entry(id.to_string()).or_default()
    }

    fn schedule(&mut self, s: Schedule) -> &mut ScheduleCounters {
        self.per_schedule.entry(s).or_default()
    }

    fn priority(&mut self, p: Priority) -> &mut PriorityInner {
        &mut self.per_priority[p.index()]
    }
}

/// Adaptive-quality bookkeeping (live only when [`ServeConfig::lod`] is
/// set; stays empty otherwise).
#[derive(Debug, Default)]
struct LodInner {
    /// Rolling per-scene ms/frame estimates.
    cost: CostModel,
    /// Frames dispatched per ladder rung.
    frames_by_rung: Vec<u64>,
    degraded_frames: u64,
    degradations: u64,
    recoveries: u64,
    /// Last rung each scene dispatched at, for transition counting.
    last_rung: HashMap<String, usize>,
    /// Bounded ring of recent decisions, oldest first.
    recent: VecDeque<LodDecision>,
}

impl LodInner {
    fn record(&mut self, scene: &str, ladder_len: usize, decision: LodDecision) {
        if self.frames_by_rung.len() < ladder_len {
            self.frames_by_rung.resize(ladder_len, 0);
        }
        let rung = decision.rung as usize;
        self.frames_by_rung[rung] += 1;
        if rung > 0 {
            self.degraded_frames += 1;
        }
        match self.last_rung.insert(scene.to_string(), rung) {
            Some(prev) if rung > prev => self.degradations += 1,
            Some(prev) if rung < prev => self.recoveries += 1,
            _ => {}
        }
        if self.recent.len() == LOD_TRACE_WINDOW {
            self.recent.pop_front();
        }
        self.recent.push_back(decision);
    }
}

/// All coordination state, behind the one service mutex.
#[derive(Debug)]
struct State {
    cache: LruSceneCache,
    /// Per-key FIFO of issued frames. Invariant: a key exists here iff
    /// it is in `order` (queues are removed when drained empty).
    queues: HashMap<BatchKey, VecDeque<Pending>>,
    /// Batch keys with pending frames, in FIFO turn order (the
    /// within-class fairness tiebreaker).
    order: VecDeque<BatchKey>,
    /// Open streams by id (removed on completion / cancel / failure).
    streams: HashMap<u64, StreamSched>,
    /// Scenes currently being loaded by some worker.
    loading: HashSet<String>,
    /// Load circuit breaker: scene id → quarantine expiry. A request for
    /// a listed scene fails fast with [`ServeError::Quarantined`] until
    /// the expiry passes; the first request after it removes the entry
    /// and proceeds as the half-open probe.
    quarantine: HashMap<String, Instant>,
    /// Frames issued but not yet drained into a batch.
    pending: usize,
    /// [`Self::pending`] split by priority class.
    pending_by_priority: [usize; 2],
    next_stream_id: u64,
    shutdown: bool,
    stats: StatsInner,
    lod: LodInner,
}

/// What a worker decided to do while holding the lock.
enum Job {
    Render {
        key: BatchKey,
        scene: Arc<Scene>,
        batch: Vec<Pending>,
    },
    Load {
        id: String,
    },
}

/// Pops up to `max` frames for `key` and repairs the `order`/`queues`
/// invariant (remove when drained empty, rotate to the back otherwise).
fn take_batch(st: &mut State, key: &BatchKey, max: usize) -> Vec<Pending> {
    let mut batch = Vec::new();
    let emptied = match st.queues.get_mut(key) {
        Some(q) => {
            while batch.len() < max {
                match q.pop_front() {
                    Some(p) => batch.push(p),
                    None => break,
                }
            }
            q.is_empty()
        }
        None => return batch,
    };
    st.pending -= batch.len();
    st.pending_by_priority[key.priority.index()] -= batch.len();
    st.order.retain(|o| o != key);
    if emptied {
        st.queues.remove(key);
    } else {
        st.order.push_back(key.clone());
    }
    batch
}

/// Drains *every* queue for `id`, across schedules, resolutions and
/// priorities — the load-failure and load-panic fan-out path.
fn take_all_for_scene(st: &mut State, id: &str) -> Vec<Pending> {
    let keys: Vec<BatchKey> = st
        .queues
        .keys()
        .filter(|k| k.scene == id)
        .cloned()
        .collect();
    let mut all = Vec::new();
    for key in keys {
        all.extend(take_batch(st, &key, usize::MAX));
    }
    all
}

/// Fails every stream behind `pendings` (scene load failure / load
/// panic): counts the swept frames completed, removes those streams'
/// scheduling entries, and returns the deduplicated inboxes to
/// terminal-fail once the lock is released. Only streams with a frame
/// queued at sweep time are failed — a stream on the same scene caught
/// *between* windows (everything issued already delivered, refill not
/// yet called) survives and retries the load on its next refill, the
/// same retry-per-request semantics single-frame submits always had;
/// it fails through this path only if the retry fails too.
fn fail_streams_of(st: &mut State, pendings: &[Pending]) -> Vec<Arc<Inbox>> {
    st.stats.completed += pendings.len() as u64;
    let mut inboxes = Vec::new();
    for p in pendings {
        st.stats.per_priority[p.priority.index()].completed += 1;
        if st.streams.remove(&p.stream).is_some() {
            inboxes.push(Arc::clone(&p.inbox));
        }
    }
    inboxes
}

/// Materializes up to `window` undelivered frames of stream `id` into
/// its key queue. Returns how many frames were issued (0 after shutdown
/// or for an unknown/complete stream). The caller owns notifying the
/// workers.
fn issue_frames(st: &mut State, id: u64, now: Instant) -> usize {
    if st.shutdown {
        return 0;
    }
    let Some(s) = st.streams.get_mut(&id) else {
        return 0;
    };
    let mut items: Vec<(ViewSpec, usize)> = Vec::new();
    while s.issued < s.views.len() && s.issued - s.delivered < s.window {
        items.push((s.views[s.issued].clone(), s.issued));
        s.issued += 1;
    }
    if items.is_empty() {
        return 0;
    }
    let key = s.key.clone();
    let options = Arc::clone(&s.options);
    let inbox = Arc::clone(&s.inbox);
    let deadline = s.deadline;
    let n = items.len();
    // Hit/miss classification is per *issued* frame, at issue time — a
    // long stream opened cold counts one window of misses, then hits
    // once its scene is resident (and misses again if it gets evicted
    // mid-stream), so `hit_rate` tracks actual cache behavior instead of
    // attributing a whole stream to its open-time residency.
    let resident = st.cache.contains(&key.scene);
    let sc = st.stats.scene(&key.scene);
    if resident {
        sc.hits += n as u64;
    } else {
        sc.misses += n as u64;
    }
    if !st.queues.contains_key(&key) {
        st.order.push_back(key.clone());
    }
    let q = st.queues.entry(key.clone()).or_default();
    for (view, index) in items {
        q.push_back(Pending {
            view,
            options: Arc::clone(&options),
            submitted: now,
            deadline: deadline.map(|d| now + d),
            priority: key.priority,
            stream: id,
            index,
            inbox: Arc::clone(&inbox),
        });
    }
    st.pending += n;
    let pi = key.priority.index();
    st.pending_by_priority[pi] += n;
    st.stats.max_queue_depth = st.stats.max_queue_depth.max(st.pending);
    st.stats.per_priority[pi].max_queued = st.stats.per_priority[pi]
        .max_queued
        .max(st.pending_by_priority[pi]);
    n
}

/// Picks the next job: the best *actionable* key — scene resident (drain
/// a batch) or cold and unclaimed (load it) — ranked by `(priority,
/// earliest head deadline, FIFO turn)`. `Interactive` always preempts
/// `Bulk`; within a class, earliest-deadline-first, and a deadline is a
/// claim of urgency: *any* deadline outranks deadline-free work of the
/// same class (so a saturating deadline-carrying load can starve
/// deadline-free peers, exactly as interactive can starve bulk — latency
/// promises are ordered ahead of best-effort work). The FIFO turn only
/// tiebreaks keys of equal priority and deadline standing. Returns
/// `None` when every pending scene is being loaded elsewhere.
fn plan(st: &mut State, max_batch: usize) -> Option<Job> {
    let mut best_rank: Option<(Priority, (bool, Option<Instant>), usize)> = None;
    let mut best: Option<(usize, bool)> = None;
    for (pos, key) in st.order.iter().enumerate() {
        let resident = st.cache.contains(&key.scene);
        if !resident && st.loading.contains(&key.scene) {
            continue;
        }
        let head_deadline = st
            .queues
            .get(key)
            .and_then(|q| q.front())
            .and_then(|p| p.deadline);
        let rank = (key.priority, (head_deadline.is_none(), head_deadline), pos);
        if best_rank.is_none_or(|b| rank < b) {
            best_rank = Some(rank);
            best = Some((pos, resident));
        }
    }
    let (pos, resident) = best?;
    let key = st.order[pos].clone();
    if resident {
        let scene = st
            .cache
            .get(&key.scene)
            .expect("planner checked residency under the same lock");
        let batch = take_batch(st, &key, max_batch);
        Some(Job::Render { key, scene, batch })
    } else {
        st.loading.insert(key.scene.clone());
        // Move the claimed key to the back so other keys get turns while
        // the load is in flight.
        st.order.retain(|k| k != &key);
        st.order.push_back(key.clone());
        Some(Job::Load { id: key.scene })
    }
}

pub(crate) struct Shared {
    pub(crate) registry: HashMap<String, SceneSource>,
    renderers: ScheduleRenderers,
    max_batch: usize,
    load_retry: RetryPolicy,
    quarantine_for: Duration,
    shed: ShedPolicy,
    lod: Option<LodPolicy>,
    state: Mutex<State>,
    work: Condvar,
}

/// The submit/open-time options check, shared by [`RenderService::session`]
/// and [`Shared::open_stream`] so the two surfaces cannot diverge: ROI
/// bounds are checkable now iff the resolution override names the frame
/// size; against a native resolution they defer to render.
fn validate_options(options: &RenderOptions) -> Result<(), ServeError> {
    match options.resolution {
        Some((w, h)) => options.validate_for(w, h),
        None => options.validate(),
    }
    .map_err(|e| ServeError::InvalidRequest(ViewError::Options(e)))
}

impl Shared {
    /// Opens a stream over pre-validated `views` (the session / submit
    /// shims validate specs before calling). Validates the options and
    /// the scene id, primes the window, and wakes workers.
    pub(crate) fn open_stream(
        shared: &Arc<Shared>,
        scene: &str,
        views: Vec<ViewSpec>,
        options: RenderOptions,
        cfg: StreamConfig,
    ) -> Result<FrameStream, ServeError> {
        if !shared.registry.contains_key(scene) {
            return Err(ServeError::UnknownScene(scene.to_string()));
        }
        validate_options(&options)?;
        let total = views.len();
        debug_assert!(total > 0, "callers reject empty view lists");
        let key = BatchKey {
            scene: scene.to_string(),
            schedule: options.schedule,
            resolution: options.resolution,
            priority: cfg.priority,
        };
        let inbox = Inbox::new(total);
        let mut st = shared.state.lock().expect("service state poisoned");
        if st.shutdown {
            return Err(ServeError::ShuttingDown);
        }
        // Circuit breaker: a quarantined scene fails fast instead of
        // queueing work a known-bad load would sweep anyway. The first
        // request past the expiry removes the entry and proceeds — the
        // half-open probe (the `loading` guard already serializes
        // concurrent probes into one load).
        if let Some(&until) = st.quarantine.get(scene) {
            let now = Instant::now();
            if now < until {
                return Err(ServeError::Quarantined {
                    scene: scene.to_string(),
                    retry_after: until - now,
                });
            }
            st.quarantine.remove(scene);
        }
        // Admission control: hard ceilings shed everything; past the
        // Bulk watermarks best-effort traffic is rejected first while
        // Interactive still admits.
        let shed = &shared.shed;
        if st.pending >= shed.max_queue_depth || st.streams.len() >= shed.max_streams {
            st.stats.priority(cfg.priority).shed += 1;
            // The hint reflects the worse of the two ceilings: the side
            // that did not fire contributes the base hint, so `max` picks
            // the overshoot that actually caused the shed.
            let retry_after = shed
                .retry_hint(st.pending, shed.max_queue_depth)
                .max(shed.retry_hint(st.streams.len(), shed.max_streams));
            return Err(ServeError::Overloaded { retry_after });
        }
        if cfg.priority == Priority::Bulk
            && (st.pending_by_priority[Priority::Bulk.index()] >= shed.bulk_queue_watermark
                || st.streams.len() >= shed.bulk_stream_watermark)
        {
            st.stats.priority(Priority::Bulk).rejected += 1;
            let retry_after = shed
                .retry_hint(
                    st.pending_by_priority[Priority::Bulk.index()],
                    shed.bulk_queue_watermark,
                )
                .max(shed.retry_hint(st.streams.len(), shed.bulk_stream_watermark));
            return Err(ServeError::Overloaded { retry_after });
        }
        let id = st.next_stream_id;
        st.next_stream_id += 1;
        st.stats.scene(scene).requests += total as u64;
        st.stats.schedule(key.schedule).requests += total as u64;
        st.stats.priority(cfg.priority).requests += total as u64;
        st.stats.streams.opened += 1;
        st.streams.insert(
            id,
            StreamSched {
                key,
                views,
                options: Arc::new(options),
                deadline: cfg.deadline,
                window: cfg.effective_window(),
                issued: 0,
                delivered: 0,
                inbox: Arc::clone(&inbox),
            },
        );
        let issued = issue_frames(&mut st, id, Instant::now());
        drop(st);
        if issued == 1 {
            shared.work.notify_one();
        } else if issued > 1 {
            shared.work.notify_all();
        }
        Ok(FrameStream {
            shared: Arc::clone(shared),
            id,
            inbox,
            total,
            finished: false,
        })
    }

    /// Client-side window refill: records the consumer's progress and
    /// issues the frames the freed window slots admit. Removes the
    /// stream's scheduling entry (and counts it completed) once every
    /// frame was delivered.
    pub(crate) fn refill_stream(&self, id: u64, delivered: usize) {
        let mut st = self.state.lock().expect("service state poisoned");
        let done = {
            let Some(s) = st.streams.get_mut(&id) else {
                return;
            };
            s.delivered = s.delivered.max(delivered);
            s.delivered >= s.views.len()
        };
        if done {
            st.streams.remove(&id);
            st.stats.streams.completed += 1;
            return;
        }
        let issued = issue_frames(&mut st, id, Instant::now());
        drop(st);
        if issued > 0 {
            self.work.notify_one();
        }
    }

    /// Client-side cancellation: discards the stream's queued frames,
    /// forgets its scheduling entry (so nothing further is issued), and
    /// wakes the workers — removing work can be the event that satisfies
    /// the shutdown drain condition.
    pub(crate) fn cancel_stream(&self, id: u64) {
        let mut st = self.state.lock().expect("service state poisoned");
        let Some(s) = st.streams.remove(&id) else {
            return;
        };
        let mut discarded = 0usize;
        if let Some(q) = st.queues.get_mut(&s.key) {
            let before = q.len();
            q.retain(|p| p.stream != id);
            discarded = before - q.len();
            if q.is_empty() {
                st.queues.remove(&s.key);
                st.order.retain(|k| k != &s.key);
            }
        }
        st.pending -= discarded;
        st.pending_by_priority[s.key.priority.index()] -= discarded;
        st.stats.streams.cancelled += 1;
        st.stats.streams.frames_discarded += discarded as u64;
        drop(st);
        self.work.notify_all();
    }

    fn step(&self, scratch: &mut FrameScratch) -> WorkerStep {
        let mut st = self.state.lock().expect("service state poisoned");
        loop {
            if let Some(job) = plan(&mut st, self.max_batch) {
                drop(st);
                match job {
                    Job::Render { key, scene, batch } => {
                        self.render_batch(&key, &scene, batch, scratch);
                    }
                    Job::Load { id } => self.load_then_drain(&id, scratch),
                }
                return WorkerStep::Continue;
            }
            if st.shutdown && st.pending == 0 && st.loading.is_empty() {
                // Wake siblings so they observe the drained shutdown too.
                self.work.notify_all();
                return WorkerStep::Stop;
            }
            st = self.work.wait(st).expect("service state poisoned");
        }
    }

    /// Renders a drained batch back-to-back through this worker's
    /// scratch, with the key's schedule renderer. Statistics are folded
    /// in *before* any result is delivered, so a completed frame is
    /// always visible in the next `stats()` snapshot. A renderer panic
    /// must not strand consumers: a drop guard terminal-fails every
    /// not-yet-delivered stream of the batch before the panic unwinds the
    /// worker.
    fn render_batch(
        &self,
        key: &BatchKey,
        scene: &Scene,
        batch: Vec<Pending>,
        scratch: &mut FrameScratch,
    ) {
        /// Fails the batch's remaining streams when dropped mid-panic, so
        /// stream consumers get an error instead of hanging, and
        /// best-effort counts the frames as completed (`try_lock`: the
        /// panic may have happened with the state lock held, and a
        /// blocking re-lock from the same thread would deadlock).
        struct PanicGuard<'a> {
            shared: &'a Shared,
            /// `(inbox, stream id, priority)` of undelivered frames, in
            /// batch order.
            remaining: Vec<(Arc<Inbox>, u64, Priority)>,
        }
        impl Drop for PanicGuard<'_> {
            fn drop(&mut self) {
                if !std::thread::panicking() || self.remaining.is_empty() {
                    return;
                }
                if let Ok(mut st) = self.shared.state.try_lock() {
                    st.stats.completed += self.remaining.len() as u64;
                    for (_, id, priority) in &self.remaining {
                        st.stats.per_priority[priority.index()].completed += 1;
                        st.streams.remove(id);
                    }
                }
                for (inbox, _, _) in self.remaining.drain(..) {
                    inbox.fail(ServeError::WorkerPanicked);
                }
            }
        }

        let renderer = self.renderers.get(key.schedule);
        let mut guard = PanicGuard {
            shared: self,
            remaining: batch
                .iter()
                .map(|p| (Arc::clone(&p.inbox), p.stream, p.priority))
                .collect(),
        };
        {
            let mut st = self.state.lock().expect("service state poisoned");
            st.stats.batches += 1;
            st.stats.scene(&key.scene).batches += 1;
            st.stats.schedule(key.schedule).batches += 1;
        }
        // Each frame is delivered (and its latency sampled) as soon as it
        // renders — a consumer never sits behind the rest of its batch,
        // and the published latency is issue-to-delivery. Its stats are
        // folded under a brief lock *before* the inbox is filled, so a
        // consumed frame is always visible in the next `stats()`
        // snapshot.
        for p in batch {
            // Residual validation that needed the scene: ROI bounds
            // against the native resolution. Fails the one frame with a
            // typed error instead of poisoning the worker; the stream
            // continues (later frames fail the same way, each in order).
            // Adaptive quality: a deadline-carrying frame under a
            // configured ladder asks the cost model for the highest rung
            // whose predicted cost (with the policy margin) fits its
            // remaining budget. Deadline-free frames — and every frame
            // when no ladder is configured — render exactly as before.
            let target = p.options.resolution.unwrap_or(scene.resolution);
            let lod_pick = match (&self.lod, p.deadline) {
                (Some(policy), Some(deadline)) => {
                    let budget = deadline.saturating_duration_since(Instant::now());
                    let budget_ms = budget.as_secs_f64() * 1e3;
                    let st = self.state.lock().expect("service state poisoned");
                    let rung = st.lod.cost.select_rung(
                        &policy.ladder,
                        &key.scene,
                        target,
                        budget_ms,
                        policy.margin,
                    );
                    let predicted = st
                        .lod
                        .cost
                        .predict(&policy.ladder, &key.scene, rung, target);
                    Some((rung, predicted, budget))
                }
                _ => None,
            };
            let rung_spec = match (&self.lod, &lod_pick) {
                (Some(policy), Some((rung, _, _))) => Some(&policy.ladder.rungs()[*rung]),
                _ => None,
            };
            let options = match rung_spec {
                Some(rung) if rung.degrades() => Arc::new(rung.apply(&p.options, target)),
                _ => Arc::clone(&p.options),
            };
            let cam = match scene.resolve_view(&p.view, &options) {
                Ok(cam) => cam,
                Err(e) => {
                    let mut st = self.state.lock().expect("service state poisoned");
                    st.stats.completed += 1;
                    st.stats.per_priority[p.priority.index()].completed += 1;
                    drop(st);
                    guard.remaining.remove(0);
                    p.inbox.deliver(p.index, Err(ServeError::InvalidRequest(e)));
                    continue;
                }
            };
            // Degraded rungs render from a coarser hierarchy level when
            // the scene ships one (missing hierarchies fall back to the
            // full cloud — cheaper knobs still apply).
            let gaussians = match rung_spec {
                Some(rung) if rung.lod_level > 0 => {
                    scene.lod.as_ref().map_or(&scene.gaussians[..], |l| {
                        l.level_gaussians(&scene.gaussians, rung.lod_level)
                    })
                }
                _ => &scene.gaussians[..],
            };
            let render_start = Instant::now();
            let job = RenderJob::with_options(gaussians, &cam, (*options).clone());
            let mut frame = renderer.render_job(&job, scratch);
            // Reduced-resolution frames are upscaled back to the request
            // size with the filtered upscale pass, so a client always
            // receives the geometry it asked for.
            if (frame.image.width(), frame.image.height()) != target && p.options.roi.is_none() {
                frame.image = upscale_bilinear(&frame.image, target.0, target.1);
            }
            let render_us = render_start.elapsed().as_micros() as u64;
            let us = p.submitted.elapsed().as_micros() as u64;
            let missed = p.deadline.is_some_and(|d| Instant::now() > d);
            let mut st = self.state.lock().expect("service state poisoned");
            if let Some(policy) = &self.lod {
                // ROI frames skip cost observation — a cropped render's
                // cost would mislabel the rung's full-frame cell. Frames
                // whose caller already reduced quality (SH clamp, alpha
                // floor) skip it too: they render cheaper than the rung's
                // nominal cost, and observing them would skew the cell
                // optimistic — rung 0 especially, where every deadline-free
                // frame lands regardless of its options.
                let caller_reduced = p.options.sh_degree.is_some_and(|d| d < 3)
                    || p.options.alpha_min.is_some_and(|a| a > 0.0);
                if p.options.roi.is_none() && !caller_reduced {
                    let rung = lod_pick.map_or(0, |(r, _, _)| r);
                    st.lod
                        .cost
                        .observe(&key.scene, rung, target, render_us as f64 / 1e3);
                }
                if let Some((rung, predicted, budget)) = lod_pick {
                    st.lod.record(
                        &key.scene,
                        policy.ladder.len(),
                        LodDecision {
                            rung: rung as u32,
                            predicted_us: predicted.map_or(0, |ms| (ms * 1e3) as u64),
                            actual_us: render_us,
                            budget_us: budget.as_micros() as u64,
                            missed,
                        },
                    );
                }
            }
            st.stats.frame_stats.merge_add(&frame.stats);
            st.stats.frames += 1;
            st.stats.completed += 1;
            st.stats.scene(&key.scene).frames += 1;
            st.stats.schedule(key.schedule).frames += 1;
            let pp = &mut st.stats.per_priority[p.priority.index()];
            pp.frames += 1;
            pp.completed += 1;
            pp.record_latency(us);
            if p.deadline.is_some() {
                pp.with_deadline += 1;
                if missed {
                    pp.deadline_misses += 1;
                }
            }
            drop(st);
            guard.remaining.remove(0);
            p.inbox.deliver(p.index, Ok(frame));
        }
    }

    /// Loads a claimed cold scene with no lock held, inserts it (evicting
    /// under the budget), then drains the first waiting batch itself.
    fn load_then_drain(&self, id: &str, scratch: &mut FrameScratch) {
        /// A panic inside `SceneSource::load` must not wedge the service:
        /// the claimed `loading` entry would otherwise never clear, making
        /// the shutdown condition unsatisfiable and stranding every stream
        /// waiting on this scene. Armed only around the lock-free load
        /// call, so the blocking re-lock in `drop` cannot self-deadlock.
        struct LoadGuard<'a> {
            shared: &'a Shared,
            id: &'a str,
            armed: bool,
        }
        impl Drop for LoadGuard<'_> {
            fn drop(&mut self) {
                if !self.armed || !std::thread::panicking() {
                    return;
                }
                if let Ok(mut st) = self.shared.state.lock() {
                    st.loading.remove(self.id);
                    // A panicking load is at least as suspect as a
                    // failing one: quarantine it so repeat requests
                    // don't keep panicking loader workers.
                    if self.shared.quarantine_for > Duration::ZERO {
                        st.quarantine.insert(
                            self.id.to_string(),
                            Instant::now() + self.shared.quarantine_for,
                        );
                        st.stats.scene(self.id).quarantines += 1;
                    }
                    let failed = take_all_for_scene(&mut st, self.id);
                    let inboxes = fail_streams_of(&mut st, &failed);
                    drop(st);
                    self.shared.work.notify_all();
                    for inbox in inboxes {
                        inbox.fail(ServeError::WorkerPanicked);
                    }
                }
            }
        }

        let source = self
            .registry
            .get(id)
            .expect("submit validated the scene id");
        let mut guard = LoadGuard {
            shared: self,
            id,
            armed: false,
        };
        // Bounded retry loop: only *retryable* failures re-attempt, with
        // the policy's deterministic backoff, no lock held while loading
        // or sleeping. Fatal failures (and exhausted budgets) fall
        // through to the quarantine + fan-out path below.
        let mut attempt = 0u32;
        let loaded = loop {
            attempt += 1;
            guard.armed = true;
            let result = source.load_classified();
            guard.armed = false;
            match result {
                Ok(scene) => break Ok(scene),
                Err(e) if e.retryable => match self.load_retry.backoff_for(attempt) {
                    Some(backoff) => {
                        let shutting_down = {
                            let mut st = self.state.lock().expect("service state poisoned");
                            st.stats.scene(id).retries += 1;
                            st.shutdown
                        };
                        if shutting_down {
                            // Don't hold the drain hostage to backoff.
                            break Err(e);
                        }
                        std::thread::sleep(backoff);
                    }
                    None => break Err(e),
                },
                Err(e) => break Err(e),
            }
        };
        // Scenes that ship without a hierarchy get one built here when
        // the LOD policy asks for it — lock-free CPU work on the freshly
        // loaded scene, before any consumer can share the Arc. The
        // hierarchy's bytes are charged to the cache budget on insert.
        let loaded = match loaded {
            Ok(mut scene) => {
                if let Some(policy) = &self.lod {
                    if policy.build_on_load && scene.lod.is_none() {
                        attach_hierarchy(Arc::make_mut(&mut scene), &policy.hierarchy);
                    }
                }
                Ok(scene)
            }
            Err(e) => Err(e),
        };
        let mut st = self.state.lock().expect("service state poisoned");
        st.loading.remove(id);
        match loaded {
            Ok(scene) => {
                st.stats.scene(id).loads += 1;
                let evicted = st.cache.insert(id, Arc::clone(&scene));
                for victim in evicted {
                    st.stats.scene(&victim).evictions += 1;
                }
                // Drain the best waiting batch for this scene (any
                // schedule/resolution key) ourselves — same `(priority,
                // earliest head deadline, FIFO turn)` rank as `plan`, so
                // the first post-load batch honors the dispatch contract
                // — while the residency makes the remaining keys
                // drainable by every worker.
                let first_key = {
                    let mut best: Option<(Priority, (bool, Option<Instant>), usize)> = None;
                    let mut bk: Option<BatchKey> = None;
                    for (pos, k) in st.order.iter().enumerate() {
                        if k.scene == id {
                            let head_deadline = st
                                .queues
                                .get(k)
                                .and_then(|q| q.front())
                                .and_then(|p| p.deadline);
                            let rank = (k.priority, (head_deadline.is_none(), head_deadline), pos);
                            if best.is_none_or(|b| rank < b) {
                                best = Some(rank);
                                bk = Some(k.clone());
                            }
                        }
                    }
                    bk
                };
                let batch = match &first_key {
                    Some(key) => take_batch(&mut st, key, self.max_batch),
                    None => Vec::new(),
                };
                drop(st);
                // The scene may now be resident and the queue changed —
                // wake everyone blocked on "all pending scenes loading".
                self.work.notify_all();
                if let (Some(key), false) = (first_key, batch.is_empty()) {
                    self.render_batch(&key, &scene, batch, scratch);
                }
            }
            Err(e) => {
                // Trip the breaker: this scene's load is known-bad (a
                // fatal error, or retries exhausted), so requests until
                // the expiry fail fast instead of re-stalling a loader.
                if self.quarantine_for > Duration::ZERO {
                    st.quarantine
                        .insert(id.to_string(), Instant::now() + self.quarantine_for);
                    st.stats.scene(id).quarantines += 1;
                }
                let err = ServeError::Load {
                    scene: id.to_string(),
                    message: e.message,
                };
                let failed = take_all_for_scene(&mut st, id);
                let inboxes = fail_streams_of(&mut st, &failed);
                drop(st);
                self.work.notify_all();
                for inbox in inboxes {
                    inbox.fail(err.clone());
                }
            }
        }
    }
}

/// The multi-scene render service. See the [crate docs](crate) and the
/// [module docs](self) for the request model and the scheduling model;
/// [`crate::session`] documents the stream API.
pub struct RenderService {
    shared: Arc<Shared>,
    workers: usize,
    pool: Option<WorkerPool>,
    /// Supervision counters, retained past the pool's join so the final
    /// [`Self::stats`] snapshot still reports respawns.
    health: Arc<PoolHealth>,
}

impl std::fmt::Debug for RenderService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RenderService")
            .field("workers", &self.workers)
            .field("scenes", &self.shared.registry.len())
            .finish_non_exhaustive()
    }
}

impl RenderService {
    /// Starts the worker pool over `registry` (scene id → source) with
    /// the default per-[`Schedule`] renderer table
    /// ([`ScheduleRenderers::default`]: every schedule, sequential).
    ///
    /// # Panics
    ///
    /// Panics when `cfg.max_batch` is zero.
    pub fn new(
        cfg: ServeConfig,
        registry: impl IntoIterator<Item = (String, SceneSource)>,
    ) -> Self {
        Self::with_renderers(cfg, registry, ScheduleRenderers::default())
    }

    /// [`Self::new`] with an explicit renderer table — swap in parallel
    /// renderers when single-request latency matters more than aggregate
    /// rate, or custom configurations.
    ///
    /// # Panics
    ///
    /// Panics when `cfg.max_batch` is zero.
    pub fn with_renderers(
        cfg: ServeConfig,
        registry: impl IntoIterator<Item = (String, SceneSource)>,
        renderers: ScheduleRenderers,
    ) -> Self {
        assert!(cfg.max_batch >= 1, "max_batch must be at least 1");
        let workers = if cfg.workers == 0 {
            available_threads()
        } else {
            cfg.workers
        };
        let shared = Arc::new(Shared {
            registry: registry.into_iter().collect(),
            renderers,
            max_batch: cfg.max_batch,
            load_retry: cfg.load_retry,
            quarantine_for: cfg.quarantine_for,
            shed: cfg.shed,
            lod: cfg.lod,
            state: Mutex::new(State {
                cache: LruSceneCache::new(cfg.cache_budget_bytes),
                queues: HashMap::new(),
                order: VecDeque::new(),
                streams: HashMap::new(),
                loading: HashSet::new(),
                quarantine: HashMap::new(),
                pending: 0,
                pending_by_priority: [0; 2],
                next_stream_id: 0,
                shutdown: false,
                stats: StatsInner::default(),
                lod: LodInner::default(),
            }),
            work: Condvar::new(),
        });
        let pool_shared = Arc::clone(&shared);
        // Supervised: a panicked worker (renderer or load panic) is
        // respawned with a fresh scratch within `cfg.restart`'s budget,
        // so the pool keeps its configured width under fault storms. The
        // panicked batch itself resolves through the step's own guards
        // (PanicGuard / LoadGuard) before the respawn.
        let pool = WorkerPool::spawn_supervised(
            workers,
            FrameScratch::new,
            move |_, scratch| pool_shared.step(scratch),
            cfg.restart,
        );
        let health = pool.health();
        Self {
            shared,
            workers,
            pool: Some(pool),
            health,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Scene ids this service can render, sorted.
    pub fn scene_ids(&self) -> Vec<String> {
        let mut ids: Vec<String> = self.shared.registry.keys().cloned().collect();
        ids.sort();
        ids
    }

    /// Opens a [`Session`] on `scene`: the handle streams and single
    /// frames are submitted through, all sharing `defaults`.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownScene`] for an unregistered id and
    /// [`ServeError::InvalidRequest`] for invalid default options.
    pub fn session(
        &self,
        scene: impl Into<String>,
        defaults: RenderOptions,
    ) -> Result<Session, ServeError> {
        let scene = scene.into();
        if !self.shared.registry.contains_key(&scene) {
            return Err(ServeError::UnknownScene(scene));
        }
        validate_options(&defaults)?;
        Ok(Session {
            shared: Arc::clone(&self.shared),
            scene,
            defaults,
        })
    }

    /// Enqueues a single-frame request; the returned handle blocks until
    /// its frame. A thin shim over a one-frame interactive stream — the
    /// session API ([`Self::session`]) is the primary surface.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownScene`] for an unregistered id,
    /// [`ServeError::InvalidRequest`] for a view or options that fail
    /// validation (NaN / out-of-range trajectory `t`, degenerate pose,
    /// zero-sized ROI, out-of-range quality knobs — and, when a resolution
    /// override is present, ROI bounds), and [`ServeError::ShuttingDown`]
    /// after [`Self::shutdown`] began.
    pub fn submit(&self, req: RenderRequest) -> Result<RenderHandle, ServeError> {
        if !self.shared.registry.contains_key(&req.scene) {
            return Err(ServeError::UnknownScene(req.scene));
        }
        req.view.validate().map_err(ServeError::InvalidRequest)?;
        let stream = Shared::open_stream(
            &self.shared,
            &req.scene,
            vec![req.view],
            req.options,
            StreamConfig::default().with_window(1),
        )?;
        Ok(RenderHandle::from_stream(stream))
    }

    /// Convenience: submit and block for the frame.
    ///
    /// # Errors
    ///
    /// Propagates [`Self::submit`] and load errors.
    pub fn render_blocking(&self, req: RenderRequest) -> Result<Frame, ServeError> {
        self.submit(req)?.wait()
    }

    /// Snapshot of the serving statistics. The percentile sorts (up to
    /// both full latency windows) run *after* the service lock is
    /// released, so a periodic metrics poll doesn't stall the scheduler.
    pub fn stats(&self) -> ServeStats {
        let st = self.shared.state.lock().expect("service state poisoned");
        let mut out = ServeStats {
            per_scene: st.stats.per_scene.clone(),
            per_schedule: st.stats.per_schedule.clone(),
            per_priority: BTreeMap::new(),
            streams: st.stats.streams,
            completed: st.stats.completed,
            queue_depth: st.pending,
            max_queue_depth: st.stats.max_queue_depth,
            batches: st.stats.batches,
            frames: st.stats.frames,
            latency_p50_ms: 0.0,
            latency_p95_ms: 0.0,
            frame_stats: st.stats.frame_stats,
            resident_bytes: st.cache.resident_bytes(),
            resident_scenes: st.cache.len(),
            respawns: self.health.restarts(),
            lost_workers: self.health.failed_workers(),
            quarantined_scenes: {
                let now = Instant::now();
                st.quarantine.values().filter(|&&until| until > now).count()
            },
            lod: LodCounters {
                enabled: self.shared.lod.is_some(),
                frames_by_rung: st.lod.frames_by_rung.clone(),
                degraded_frames: st.lod.degraded_frames,
                degradations: st.lod.degradations,
                recoveries: st.lod.recoveries,
                recent: st.lod.recent.iter().copied().collect(),
            },
        };
        let mut rings: Vec<(Priority, PriorityCounters, Vec<u64>)> = Vec::new();
        for (i, priority) in Priority::ALL.into_iter().enumerate() {
            let p = &st.stats.per_priority[i];
            if p.requests == 0 && p.completed == 0 && p.rejected == 0 && p.shed == 0 {
                continue;
            }
            rings.push((
                priority,
                PriorityCounters {
                    requests: p.requests,
                    frames: p.frames,
                    completed: p.completed,
                    queued: st.pending_by_priority[i],
                    max_queued: p.max_queued,
                    with_deadline: p.with_deadline,
                    deadline_misses: p.deadline_misses,
                    rejected: p.rejected,
                    shed: p.shed,
                    latency_p50_ms: 0.0,
                    latency_p95_ms: 0.0,
                },
                p.latencies_us.clone(),
            ));
        }
        drop(st);
        let mut merged: Vec<u64> = Vec::new();
        for (priority, mut counters, mut ring) in rings {
            ring.sort_unstable();
            counters.latency_p50_ms = percentile_us(&ring, 0.50);
            counters.latency_p95_ms = percentile_us(&ring, 0.95);
            merged.extend_from_slice(&ring);
            out.per_priority.insert(priority, counters);
        }
        merged.sort_unstable();
        out.latency_p50_ms = percentile_us(&merged, 0.50);
        out.latency_p95_ms = percentile_us(&merged, 0.95);
        out
    }

    /// Graceful shutdown: stops accepting new requests and streams,
    /// drains every *issued* frame, joins the workers, and returns the
    /// final statistics. Streams still holding unissued frames (and any
    /// request the workers could no longer serve, e.g. because a worker
    /// panicked earlier) resolve with [`ServeError::ShuttingDown`] rather
    /// than leaving their consumers blocked forever.
    pub fn shutdown(mut self) -> ServeStats {
        self.finish();
        self.stats()
    }

    fn finish(&mut self) {
        let Some(pool) = self.pool.take() else {
            return;
        };
        self.shared
            .state
            .lock()
            .expect("service state poisoned")
            .shutdown = true;
        self.shared.work.notify_all();
        // A worker that panicked earlier re-raises here; catch it so the
        // leftover sweep below always runs, then re-raise.
        let join = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| pool.join()));
        // The drain-to-zero shutdown path leaves no queued frames behind,
        // but dead workers do, and in-flight streams keep unissued frames
        // either way: terminal-fail them all so no consumer blocks past
        // shutdown. (Streams whose every frame already rendered deliver
        // those frames first — the terminal only surfaces at a gap.)
        let (leftovers, streams) = {
            let mut st = self.shared.state.lock().expect("service state poisoned");
            let mut out = Vec::new();
            for (_, q) in st.queues.drain() {
                out.extend(q);
            }
            st.order.clear();
            st.loading.clear();
            st.pending = 0;
            st.pending_by_priority = [0; 2];
            st.stats.completed += out.len() as u64;
            for p in &out {
                st.stats.per_priority[p.priority.index()].completed += 1;
            }
            let streams: Vec<StreamSched> = st.streams.drain().map(|(_, s)| s).collect();
            (out, streams)
        };
        for p in &leftovers {
            p.inbox.fail(ServeError::ShuttingDown);
        }
        for s in streams {
            s.inbox.fail(ServeError::ShuttingDown);
        }
        // A pool panic here means a worker died past the restart budget.
        // Every stream has already been resolved with a terminal error
        // above, so downgrade to a log line instead of re-panicking:
        // `finish` also runs from Drop, where a second panic while
        // unwinding would abort the whole process.
        if join.is_err() {
            eprintln!(
                "gcc-serve: a render worker died past its restart budget \
                 ({} respawns, {} failed); all streams were resolved with \
                 terminal errors before shutdown",
                self.health.restarts(),
                self.health.failed_workers()
            );
        }
    }
}

impl Drop for RenderService {
    /// Dropping the service performs the same graceful drain as
    /// [`Self::shutdown`].
    fn drop(&mut self) {
        self.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcc_render::pipeline::{Roi, StandardRenderer};
    use gcc_scene::{SceneConfig, ScenePreset};

    fn mem_source(preset: ScenePreset, scale: f32) -> (Arc<Scene>, SceneSource) {
        let scene = Arc::new(preset.build(&SceneConfig::with_scale(scale)));
        (Arc::clone(&scene), SceneSource::Memory(scene))
    }

    fn registry(scale: f32) -> (Vec<Arc<Scene>>, Vec<(String, SceneSource)>) {
        let mut scenes = Vec::new();
        let mut reg = Vec::new();
        for (id, preset) in [("lego", ScenePreset::Lego), ("palace", ScenePreset::Palace)] {
            let (scene, src) = mem_source(preset, scale);
            scenes.push(scene);
            reg.push((id.to_string(), src));
        }
        (scenes, reg)
    }

    #[test]
    fn served_frames_match_direct_renders() {
        let (scenes, reg) = registry(0.02);
        let service = RenderService::new(
            ServeConfig {
                workers: 3,
                ..ServeConfig::default()
            },
            reg,
        );
        let reqs: Vec<RenderRequest> = (0..6)
            .map(|i| {
                RenderRequest::trajectory(
                    if i % 2 == 0 { "lego" } else { "palace" },
                    i as f32 / 6.0,
                )
            })
            .collect();
        let handles: Vec<RenderHandle> = reqs
            .iter()
            .map(|r| service.submit(r.clone()).unwrap())
            .collect();
        let direct = StandardRenderer::reference();
        for (req, handle) in reqs.iter().zip(handles) {
            let frame = handle.wait().unwrap();
            let scene = if req.scene == "lego" {
                &scenes[0]
            } else {
                &scenes[1]
            };
            let cam = scene.resolve_view(&req.view, &req.options).unwrap();
            let want = direct.render_frame(&scene.gaussians, &cam);
            assert_eq!(
                frame.image, want.image,
                "scene {} view {:?}",
                req.scene, req.view
            );
            assert_eq!(frame.stats, want.stats);
        }
        let stats = service.shutdown();
        assert_eq!(stats.completed, 6);
        assert_eq!(stats.frames, 6);
        assert_eq!(stats.queue_depth, 0);
        assert!(stats.max_queue_depth >= 1);
        assert!(stats.latency_p95_ms >= stats.latency_p50_ms);
        assert_eq!(
            stats.frame_stats.total_gaussians,
            3 * (scenes[0].len() as u64 + scenes[1].len() as u64)
        );
        // Everything ran through the default schedule at interactive
        // priority, as one-frame streams.
        assert_eq!(stats.per_schedule[&Schedule::Reference].frames, 6);
        assert_eq!(stats.per_schedule[&Schedule::Reference].requests, 6);
        assert_eq!(stats.priority(Priority::Interactive).frames, 6);
        assert!(!stats.per_priority.contains_key(&Priority::Bulk));
        assert_eq!(stats.streams.opened, 6);
        assert_eq!(stats.streams.completed, 6);
        assert_eq!(stats.streams.cancelled, 0);
    }

    #[test]
    fn resident_scene_loads_once_and_hits_after_warmup() {
        let (_, reg) = registry(0.02);
        let service = RenderService::new(
            ServeConfig {
                workers: 1,
                ..ServeConfig::default()
            },
            reg,
        );
        // Warm the scene, then issue classified-at-submit hits.
        service
            .render_blocking(RenderRequest::trajectory("lego", 0.0))
            .unwrap();
        for i in 0..4 {
            service
                .render_blocking(RenderRequest::trajectory("lego", i as f32 / 4.0))
                .unwrap();
        }
        let stats = service.shutdown();
        let lego = &stats.per_scene["lego"];
        assert_eq!(lego.loads, 1, "resident scene must not reload");
        assert_eq!(lego.misses, 1);
        assert_eq!(lego.hits, 4);
        assert_eq!(lego.frames, 5);
        assert_eq!(stats.resident_scenes, 1);
        assert!(stats.hit_rate() > 0.7);
    }

    #[test]
    fn zero_budget_is_load_render_evict_per_request() {
        let (_, reg) = registry(0.02);
        let service = RenderService::new(
            ServeConfig {
                workers: 1,
                cache_budget_bytes: 0,
                max_batch: 1,
                ..ServeConfig::default()
            },
            reg,
        );
        for i in 0..3 {
            service
                .render_blocking(RenderRequest::trajectory("palace", i as f32 / 3.0))
                .unwrap();
        }
        let stats = service.shutdown();
        let palace = &stats.per_scene["palace"];
        assert_eq!(palace.loads, 3, "naive mode reloads per request");
        assert_eq!(palace.hits, 0);
        assert_eq!(palace.evictions, 3);
        assert_eq!(stats.batches, 3);
        assert_eq!(stats.resident_scenes, 0);
    }

    #[test]
    fn unknown_scene_is_rejected_at_submit() {
        let (_, reg) = registry(0.02);
        let service = RenderService::new(
            ServeConfig {
                workers: 1,
                ..ServeConfig::default()
            },
            reg,
        );
        let err = service
            .submit(RenderRequest::trajectory("nope", 0.0))
            .unwrap_err();
        assert_eq!(err, ServeError::UnknownScene("nope".into()));
        assert!(matches!(
            service.session("nope", RenderOptions::default()),
            Err(ServeError::UnknownScene(_))
        ));
    }

    #[test]
    fn invalid_views_and_options_are_rejected_at_submit() {
        let (_, reg) = registry(0.02);
        let service = RenderService::new(
            ServeConfig {
                workers: 1,
                ..ServeConfig::default()
            },
            reg,
        );
        // NaN trajectory parameter.
        let err = service
            .submit(RenderRequest::trajectory("lego", f32::NAN))
            .unwrap_err();
        assert!(matches!(
            err,
            ServeError::InvalidRequest(ViewError::NonFinite { field: "t" })
        ));
        // Out-of-range trajectory parameter.
        let err = service
            .submit(RenderRequest::trajectory("lego", 2.5))
            .unwrap_err();
        assert!(matches!(
            err,
            ServeError::InvalidRequest(ViewError::TrajectoryOutOfRange { .. })
        ));
        // Zero-sized ROI.
        let err = service
            .submit(
                RenderRequest::trajectory("lego", 0.5)
                    .with_options(RenderOptions::default().with_roi(Roi::new(0, 0, 0, 8))),
            )
            .unwrap_err();
        assert!(matches!(
            err,
            ServeError::InvalidRequest(ViewError::Options(gcc_render::JobError::EmptyRoi))
        ));
        // ROI out of bounds of an explicit resolution: caught at submit.
        let err = service
            .submit(
                RenderRequest::trajectory("lego", 0.5).with_options(
                    RenderOptions::default()
                        .at_resolution(64, 64)
                        .with_roi(Roi::new(32, 32, 64, 64)),
                ),
            )
            .unwrap_err();
        assert!(matches!(
            err,
            ServeError::InvalidRequest(ViewError::Options(
                gcc_render::JobError::RoiOutOfBounds { .. }
            ))
        ));
        // Degenerate pose.
        let eye = gcc_math::Vec3::new(1.0, 1.0, 1.0);
        let err = service
            .submit(RenderRequest::new("lego", ViewSpec::look_at(eye, eye)))
            .unwrap_err();
        assert!(matches!(
            err,
            ServeError::InvalidRequest(ViewError::DegeneratePose)
        ));
        // Nothing reached a worker.
        let stats = service.shutdown();
        assert_eq!(stats.completed, 0);
        assert_eq!(stats.frames, 0);
        assert_eq!(stats.streams.opened, 0);
    }

    #[test]
    fn roi_against_native_resolution_resolves_through_the_handle() {
        // The scene's native size is unknown at submit; an ROI outside it
        // must come back as a typed error from wait(), not a worker panic.
        let (scenes, reg) = registry(0.02);
        let (w, h) = scenes[0].resolution;
        let service = RenderService::new(
            ServeConfig {
                workers: 1,
                ..ServeConfig::default()
            },
            reg,
        );
        let err = service
            .render_blocking(
                RenderRequest::trajectory("lego", 0.2)
                    .with_options(RenderOptions::default().with_roi(Roi::new(w - 1, h - 1, 8, 8))),
            )
            .unwrap_err();
        assert!(matches!(
            err,
            ServeError::InvalidRequest(ViewError::Options(
                gcc_render::JobError::RoiOutOfBounds { .. }
            ))
        ));
        let stats = service.shutdown();
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.frames, 0, "no frame was rendered");
    }

    #[test]
    fn heterogeneous_schedules_split_batches_and_stats() {
        let (_, reg) = registry(0.02);
        let service = RenderService::new(
            ServeConfig {
                workers: 2,
                ..ServeConfig::default()
            },
            reg,
        );
        let mut handles = Vec::new();
        for i in 0..4 {
            handles.push(
                service
                    .submit(
                        RenderRequest::trajectory("lego", i as f32 / 4.0)
                            .with_options(RenderOptions::default().with_schedule(Schedule::Gscore)),
                    )
                    .unwrap(),
            );
            handles.push(
                service
                    .submit(
                        RenderRequest::trajectory("lego", i as f32 / 4.0).with_options(
                            RenderOptions::default().with_schedule(Schedule::GccHardware),
                        ),
                    )
                    .unwrap(),
            );
        }
        for h in handles {
            h.wait().unwrap();
        }
        let stats = service.shutdown();
        assert_eq!(stats.frames, 8);
        assert_eq!(stats.per_schedule[&Schedule::Gscore].frames, 4);
        assert_eq!(stats.per_schedule[&Schedule::GccHardware].frames, 4);
        assert_eq!(stats.per_schedule[&Schedule::Gscore].requests, 4);
        assert!(stats.per_schedule[&Schedule::Gscore].batches >= 1);
        assert!(!stats.per_schedule.contains_key(&Schedule::Reference));
    }

    #[test]
    fn mixed_resolutions_coalesce_per_key() {
        // Same scene + schedule, two resolutions: batches never mix them
        // (each drained batch renders back-to-back at one size).
        let (_, reg) = registry(0.02);
        let service = RenderService::new(
            ServeConfig {
                workers: 1,
                ..ServeConfig::default()
            },
            reg,
        );
        let mut handles = Vec::new();
        for i in 0..3 {
            let t = i as f32 / 3.0;
            handles.push(
                service
                    .submit(RenderRequest::trajectory("lego", t))
                    .unwrap(),
            );
            handles.push(
                service
                    .submit(
                        RenderRequest::trajectory("lego", t)
                            .with_options(RenderOptions::default().at_resolution(64, 48)),
                    )
                    .unwrap(),
            );
        }
        let mut native = 0;
        let mut small = 0;
        for h in handles {
            let frame = h.wait().unwrap();
            if frame.image.width() == 64 {
                small += 1;
            } else {
                native += 1;
            }
        }
        assert_eq!((native, small), (3, 3));
        service.shutdown();
    }

    #[test]
    fn load_failure_fans_out_to_every_waiter() {
        let service = RenderService::new(
            ServeConfig {
                workers: 2,
                ..ServeConfig::default()
            },
            [(
                "ghost".to_string(),
                SceneSource::File("/nonexistent/ghost.bin".into()),
            )],
        );
        // The fatal load failure quarantines the scene the moment a
        // worker observes it, so a submit racing it may already be
        // rejected at admission — both outcomes are the breaker working.
        let mut handles: Vec<RenderHandle> = Vec::new();
        let mut rejected = 0u64;
        for i in 0..3 {
            match service.submit(RenderRequest::trajectory("ghost", i as f32 / 3.0)) {
                Ok(h) => handles.push(h),
                Err(ServeError::Quarantined { scene, .. }) => {
                    assert_eq!(scene, "ghost");
                    rejected += 1;
                }
                Err(other) => panic!("expected admit or quarantine, got {other:?}"),
            }
        }
        let admitted = handles.len() as u64;
        assert!(admitted >= 1, "the first submit precedes any failure");
        for h in handles {
            match h.wait() {
                Err(ServeError::Load { scene, .. }) => assert_eq!(scene, "ghost"),
                other => panic!("expected load error, got {other:?}"),
            }
        }
        let stats = service.shutdown();
        assert_eq!(stats.completed + rejected, 3);
        assert_eq!(stats.completed, admitted);
        assert_eq!(stats.frames, 0);
        assert!(stats.quarantines() >= 1);
    }

    #[test]
    fn load_failure_fans_out_across_schedule_keys_too() {
        // Requests for the same dead scene under different schedules live
        // in different queues; the load failure must fail all of them.
        // Quarantine is disabled so every submit is admitted regardless
        // of how fast the first load fails.
        let service = RenderService::new(
            ServeConfig {
                workers: 1,
                quarantine_for: Duration::ZERO,
                ..ServeConfig::default()
            },
            [(
                "ghost".to_string(),
                SceneSource::File("/nonexistent/ghost.bin".into()),
            )],
        );
        let handles: Vec<RenderHandle> =
            [Schedule::Reference, Schedule::Gscore, Schedule::GccHardware]
                .into_iter()
                .map(|s| {
                    service
                        .submit(
                            RenderRequest::trajectory("ghost", 0.1)
                                .with_options(RenderOptions::default().with_schedule(s)),
                        )
                        .unwrap()
                })
                .collect();
        for h in handles {
            assert!(matches!(h.wait(), Err(ServeError::Load { .. })));
        }
        assert_eq!(service.shutdown().completed, 3);
    }

    #[test]
    fn shutdown_drains_pending_requests() {
        let (_, reg) = registry(0.02);
        let service = RenderService::new(
            ServeConfig {
                workers: 2,
                ..ServeConfig::default()
            },
            reg,
        );
        let handles: Vec<RenderHandle> = (0..8)
            .map(|i| {
                service
                    .submit(RenderRequest::trajectory(
                        if i % 2 == 0 { "lego" } else { "palace" },
                        i as f32 / 8.0,
                    ))
                    .unwrap()
            })
            .collect();
        let stats = service.shutdown();
        assert_eq!(stats.completed, 8);
        assert_eq!(stats.queue_depth, 0);
        for h in handles {
            assert!(h.is_ready());
            h.wait().unwrap();
        }
    }

    #[test]
    fn submit_after_shutdown_is_rejected() {
        let (_, reg) = registry(0.02);
        let service = RenderService::new(
            ServeConfig {
                workers: 1,
                ..ServeConfig::default()
            },
            reg,
        );
        // Flip the internal flag to emulate a shutdown in progress.
        service.shared.state.lock().unwrap().shutdown = true;
        let err = service
            .submit(RenderRequest::trajectory("lego", 0.0))
            .unwrap_err();
        assert_eq!(err, ServeError::ShuttingDown);
        // Sessions can still be opened (they are cheap handles), but
        // their streams are rejected.
        let session = service.session("lego", RenderOptions::default()).unwrap();
        assert!(matches!(
            session.stream(crate::StreamSpec::trajectory(3)),
            Err(ServeError::ShuttingDown)
        ));
        // Undo so the drop-drain terminates normally.
        service.shared.state.lock().unwrap().shutdown = false;
    }

    #[test]
    fn latency_window_is_a_bounded_ring() {
        let mut p = PriorityInner::default();
        for i in 0..(LATENCY_WINDOW as u64 + 10) {
            p.record_latency(i);
        }
        assert_eq!(p.latencies_us.len(), LATENCY_WINDOW);
        // The 10 oldest samples were overwritten by the newest 10.
        assert!(!p.latencies_us.contains(&9));
        assert!(p.latencies_us.contains(&(LATENCY_WINDOW as u64 + 9)));
        assert!(p.latencies_us.contains(&10));
    }

    struct AlwaysPanics;
    impl Renderer for AlwaysPanics {
        fn name(&self) -> &str {
            "always-panics"
        }
        fn render_frame(&self, _: &[gcc_core::Gaussian3D], _: &gcc_core::Camera) -> Frame {
            panic!("render blew up");
        }
    }

    #[test]
    fn renderer_panic_fails_waiters_then_the_respawned_worker_serves_on() {
        let (_, reg) = registry(0.02);
        let service = RenderService::with_renderers(
            ServeConfig {
                workers: 1,
                ..ServeConfig::default()
            },
            reg,
            ScheduleRenderers::default().with(Schedule::Reference, Box::new(AlwaysPanics)),
        );
        let handle = service
            .submit(RenderRequest::trajectory("lego", 0.0))
            .unwrap();
        // The waiter must be released with an error, not hang.
        assert_eq!(handle.wait().unwrap_err(), ServeError::WorkerPanicked);
        // Supervision respawned the (only) worker with fresh scratch, so
        // the service keeps serving — on a schedule that doesn't panic.
        let frame = service
            .submit(
                RenderRequest::trajectory("lego", 0.25)
                    .with_options(RenderOptions::default().with_schedule(Schedule::Gscore)),
            )
            .unwrap()
            .wait()
            .unwrap();
        assert!(frame.image.width() > 0);
        // Clean shutdown: the contained panic does not resurface at join.
        let stats = service.shutdown();
        assert!(stats.respawns >= 1, "the panic must be counted");
        assert_eq!(stats.completed, 2);
    }

    #[test]
    fn wait_after_shutdown_resolves_stranded_handles() {
        // Regression: a request queued behind a worker-killing one used to
        // leave its handle blocked forever once the (dead) pool was
        // joined. The shutdown sweep must fail it instead. `fail_fast`
        // restores the unsupervised pool (no respawns) this regression
        // needs; the join panic itself is downgraded to a log line so
        // shutdown still completes.
        let (_, mut reg) = registry(0.02);
        reg.push(("boom".to_string(), SceneSource::PanicsOnLoad));
        let service = RenderService::new(
            ServeConfig {
                workers: 1,
                max_batch: 1,
                restart: gcc_parallel::RestartPolicy::fail_fast(),
                ..ServeConfig::default()
            },
            reg,
        );
        // First request kills the only worker during its scene load…
        let doomed = service
            .submit(RenderRequest::trajectory("boom", 0.1))
            .unwrap();
        assert_eq!(doomed.wait().unwrap_err(), ServeError::WorkerPanicked);
        // …so this one can never be served.
        let stranded = service
            .submit(RenderRequest::trajectory("lego", 0.5))
            .unwrap();
        assert!(!stranded.is_ready());
        let stats = service.shutdown();
        // The sweep resolved the stranded handle: wait() returns, with a
        // typed error.
        assert!(stranded.is_ready(), "handle must be resolved by shutdown");
        assert_eq!(stranded.wait().unwrap_err(), ServeError::ShuttingDown);
        assert_eq!(stats.respawns, 0, "fail_fast must not respawn");
    }

    #[test]
    fn dropping_a_failed_service_while_panicking_does_not_abort() {
        // Drop runs `finish` too; a join panic re-raised there while the
        // thread is already unwinding would abort the whole process. The
        // downgrade must keep this a plain (catchable) single panic.
        let (_, mut reg) = registry(0.02);
        reg.push(("boom".to_string(), SceneSource::PanicsOnLoad));
        let service = RenderService::new(
            ServeConfig {
                workers: 1,
                restart: gcc_parallel::RestartPolicy::fail_fast(),
                ..ServeConfig::default()
            },
            reg,
        );
        let doomed = service
            .submit(RenderRequest::trajectory("boom", 0.1))
            .unwrap();
        assert_eq!(doomed.wait().unwrap_err(), ServeError::WorkerPanicked);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            let _service = service;
            panic!("client-side panic while the service is still alive");
        }));
        let payload = outcome.expect_err("the client panic must propagate");
        assert_eq!(
            payload.downcast_ref::<&str>().copied(),
            Some("client-side panic while the service is still alive"),
            "the original panic payload must survive the drop"
        );
    }

    #[test]
    fn load_panic_respawns_the_worker_and_quarantines_the_scene() {
        let service = RenderService::new(
            ServeConfig {
                workers: 2,
                ..ServeConfig::default()
            },
            [("boom".to_string(), SceneSource::PanicsOnLoad)],
        );
        let handle = service
            .submit(RenderRequest::trajectory("boom", 0.5))
            .unwrap();
        assert_eq!(handle.wait().unwrap_err(), ServeError::WorkerPanicked);
        // The panicking load tripped the breaker: repeat requests fail
        // fast at admission instead of re-panicking loader workers.
        match service.submit(RenderRequest::trajectory("boom", 0.6)) {
            Err(ServeError::Quarantined { scene, retry_after }) => {
                assert_eq!(scene, "boom");
                assert!(retry_after > Duration::ZERO);
            }
            other => panic!("expected quarantine, got {other:?}"),
        }
        // `completed` counts the failed request; shutdown is clean (the
        // worker was respawned, nothing resurfaces at join).
        let stats = service.shutdown();
        assert_eq!(stats.completed, 1);
        assert!(stats.respawns >= 1);
        assert_eq!(stats.quarantines(), 1);
        assert_eq!(stats.quarantined_scenes, 1);
    }

    #[test]
    fn max_batch_one_never_coalesces() {
        let (_, reg) = registry(0.02);
        let service = RenderService::new(
            ServeConfig {
                workers: 2,
                max_batch: 1,
                ..ServeConfig::default()
            },
            reg,
        );
        let handles: Vec<RenderHandle> = (0..6)
            .map(|i| {
                service
                    .submit(RenderRequest::trajectory("lego", i as f32 / 6.0))
                    .unwrap()
            })
            .collect();
        for h in handles {
            h.wait().unwrap();
        }
        let stats = service.shutdown();
        assert_eq!(stats.batches, stats.frames, "max_batch=1 must not coalesce");
        assert_eq!(stats.frames, 6);
    }

    #[test]
    fn transient_load_failures_are_retried_until_success() {
        use crate::fault::{FaultPlan, LoadFault};
        let scene = Arc::new(ScenePreset::Lego.build(&SceneConfig::with_scale(0.02)));
        let plan = Arc::new(FaultPlan::new(7).script_loads(
            "flaky",
            [
                Some(LoadFault::FailRetryable),
                Some(LoadFault::FailRetryable),
                None,
            ],
        ));
        let service = RenderService::new(
            ServeConfig {
                workers: 1,
                load_retry: RetryPolicy {
                    max_attempts: 3,
                    base_backoff: Duration::from_millis(1),
                    max_backoff: Duration::from_millis(4),
                },
                ..ServeConfig::default()
            },
            [(
                "flaky".to_string(),
                SceneSource::faulty("flaky", SceneSource::Memory(scene), plan),
            )],
        );
        let frame = service
            .submit(RenderRequest::trajectory("flaky", 0.3))
            .unwrap()
            .wait()
            .unwrap();
        assert!(frame.image.width() > 0);
        let stats = service.shutdown();
        let flaky = &stats.per_scene["flaky"];
        assert_eq!(flaky.retries, 2, "two transient failures, two retries");
        assert_eq!(flaky.loads, 1, "one successful load");
        assert_eq!(flaky.quarantines, 0, "recovered loads never quarantine");
    }

    #[test]
    fn retry_exhaustion_quarantines_the_scene() {
        use crate::fault::FaultPlan;
        let scene = Arc::new(ScenePreset::Lego.build(&SceneConfig::with_scale(0.02)));
        let plan = Arc::new(FaultPlan::new(9).with_retryable_load_failures(1000));
        let service = RenderService::new(
            ServeConfig {
                workers: 1,
                load_retry: RetryPolicy {
                    max_attempts: 2,
                    base_backoff: Duration::from_millis(1),
                    max_backoff: Duration::from_millis(1),
                },
                ..ServeConfig::default()
            },
            [(
                "down".to_string(),
                SceneSource::faulty("down", SceneSource::Memory(scene), plan),
            )],
        );
        let err = service
            .submit(RenderRequest::trajectory("down", 0.3))
            .unwrap()
            .wait()
            .unwrap_err();
        assert!(matches!(err, ServeError::Load { .. }), "{err:?}");
        assert!(matches!(
            service.submit(RenderRequest::trajectory("down", 0.4)),
            Err(ServeError::Quarantined { .. })
        ));
        let stats = service.shutdown();
        let down = &stats.per_scene["down"];
        assert_eq!(down.retries, 1, "attempt 2 is the budget's last");
        assert_eq!(down.quarantines, 1);
        assert_eq!(down.loads, 0);
        assert_eq!(stats.quarantined_scenes, 1);
    }

    #[test]
    fn quarantine_expires_into_a_half_open_probe() {
        use crate::fault::{FaultPlan, LoadFault};
        let scene = Arc::new(ScenePreset::Lego.build(&SceneConfig::with_scale(0.02)));
        // One fatal failure, then healthy: the probe after expiry readmits.
        let plan =
            Arc::new(FaultPlan::new(11).script_loads("wobbly", [Some(LoadFault::FailFatal), None]));
        let service = RenderService::new(
            ServeConfig {
                workers: 1,
                quarantine_for: Duration::from_millis(40),
                ..ServeConfig::default()
            },
            [(
                "wobbly".to_string(),
                SceneSource::faulty("wobbly", SceneSource::Memory(scene), plan),
            )],
        );
        let err = service
            .submit(RenderRequest::trajectory("wobbly", 0.1))
            .unwrap()
            .wait()
            .unwrap_err();
        assert!(matches!(err, ServeError::Load { .. }), "{err:?}");
        assert!(matches!(
            service.submit(RenderRequest::trajectory("wobbly", 0.2)),
            Err(ServeError::Quarantined { .. })
        ));
        std::thread::sleep(Duration::from_millis(60));
        // Past the expiry the next request is admitted as the probe, and
        // its (now healthy) load readmits the scene.
        let frame = service
            .submit(RenderRequest::trajectory("wobbly", 0.3))
            .unwrap()
            .wait()
            .unwrap();
        assert!(frame.image.width() > 0);
        let stats = service.shutdown();
        assert_eq!(stats.per_scene["wobbly"].quarantines, 1);
        assert_eq!(stats.quarantined_scenes, 0, "the probe readmitted it");
    }

    #[test]
    fn bulk_watermark_rejects_bulk_but_admits_interactive() {
        let (_, reg) = registry(0.02);
        let service = RenderService::new(
            ServeConfig {
                workers: 1,
                shed: ShedPolicy {
                    bulk_stream_watermark: 0,
                    ..ShedPolicy::default()
                },
                ..ServeConfig::default()
            },
            reg,
        );
        let session = service.session("lego", RenderOptions::default()).unwrap();
        match session.stream_with(
            crate::StreamSpec::trajectory(3),
            crate::StreamConfig::bulk(),
        ) {
            Err(ServeError::Overloaded { retry_after }) => {
                assert!(retry_after > Duration::ZERO);
            }
            other => panic!("expected bulk rejection, got {:?}", other.err()),
        }
        // Interactive traffic still admits past the Bulk watermark.
        let frame = service
            .submit(RenderRequest::trajectory("lego", 0.5))
            .unwrap()
            .wait()
            .unwrap();
        assert!(frame.image.width() > 0);
        let stats = service.shutdown();
        assert_eq!(stats.priority(Priority::Bulk).rejected, 1);
        assert_eq!(stats.priority(Priority::Bulk).shed, 0);
        assert_eq!(stats.priority(Priority::Interactive).rejected, 0);
        assert_eq!(stats.turned_away(), 1);
    }

    #[test]
    fn hard_ceiling_sheds_every_priority_class() {
        let (_, reg) = registry(0.02);
        let service = RenderService::new(
            ServeConfig {
                workers: 1,
                shed: ShedPolicy {
                    max_streams: 0,
                    ..ShedPolicy::default()
                },
                ..ServeConfig::default()
            },
            reg,
        );
        assert!(matches!(
            service.submit(RenderRequest::trajectory("lego", 0.1)),
            Err(ServeError::Overloaded { .. })
        ));
        let session = service.session("lego", RenderOptions::default()).unwrap();
        assert!(matches!(
            session.stream_with(
                crate::StreamSpec::trajectory(2),
                crate::StreamConfig::bulk()
            ),
            Err(ServeError::Overloaded { .. })
        ));
        let stats = service.shutdown();
        assert_eq!(stats.priority(Priority::Interactive).shed, 1);
        assert_eq!(stats.priority(Priority::Bulk).shed, 1);
        assert_eq!(stats.turned_away(), 2);
        assert_eq!(stats.streams.opened, 0);
    }

    #[test]
    fn overload_retry_hints_scale_with_the_watermark_overshoot() {
        // Pure policy math first: at the limit the base hint, linear
        // scaling past it, capped at 4x, and usize::MAX limits never
        // scale (the disabled side of a compound check).
        let shed = ShedPolicy {
            retry_after: Duration::from_millis(40),
            ..ShedPolicy::default()
        };
        assert_eq!(shed.retry_hint(5, 5), Duration::from_millis(40));
        assert_eq!(shed.retry_hint(10, 5), Duration::from_millis(80));
        assert_eq!(shed.retry_hint(1000, 5), Duration::from_millis(160));
        assert_eq!(shed.retry_hint(3, usize::MAX), Duration::from_millis(40));
        // And through the service: a configured base reaches the typed
        // rejection unscaled when the ceiling is grazed exactly.
        let (_, reg) = registry(0.02);
        let service = RenderService::new(
            ServeConfig {
                workers: 1,
                shed: ShedPolicy {
                    max_streams: 0,
                    retry_after: Duration::from_millis(75),
                    ..ShedPolicy::default()
                },
                ..ServeConfig::default()
            },
            reg,
        );
        match service.submit(RenderRequest::trajectory("lego", 0.1)) {
            Err(ServeError::Overloaded { retry_after }) => {
                assert_eq!(retry_after, Duration::from_millis(75));
            }
            other => panic!("expected a shed, got {:?}", other.err()),
        }
        service.shutdown();
    }

    #[test]
    fn seeded_fault_churn_never_leaks_loading_guards_or_budget_bytes() {
        // Property test (seeded loops stand in for proptest, as
        // everywhere in this workspace): under a random mix of healthy
        // and failing loads over a budget small enough to force eviction
        // churn, a scene failing mid-load must never leave a phantom
        // `loading` claim behind nor charge the cache's byte budget —
        // the PR 3 recency-model invariants, now under fault injection.
        use crate::fault::FaultPlan;
        use gcc_scene::rng::StdRng;
        let scene = Arc::new(ScenePreset::Lego.build(&SceneConfig::with_scale(0.02)));
        let bytes = scene.approx_bytes();
        let ids = ["a", "b", "c", "d"];
        for seed in 0..4u64 {
            // ~30% transient failures, ~15% fatal per load attempt.
            let plan = Arc::new(
                FaultPlan::new(0xC4A05 + seed)
                    .with_retryable_load_failures(300)
                    .with_fatal_load_failures(150),
            );
            let budget = 2 * bytes;
            let service = RenderService::new(
                ServeConfig {
                    workers: 2,
                    cache_budget_bytes: budget,
                    quarantine_for: Duration::from_millis(5),
                    load_retry: RetryPolicy {
                        max_attempts: 2,
                        base_backoff: Duration::from_millis(1),
                        max_backoff: Duration::from_millis(1),
                    },
                    ..ServeConfig::default()
                },
                ids.map(|id| {
                    (
                        id.to_string(),
                        SceneSource::faulty(
                            id,
                            SceneSource::Memory(Arc::clone(&scene)),
                            plan.clone(),
                        ),
                    )
                }),
            );
            let mut rng = StdRng::seed_from_u64(0xFA17 + seed);
            let (mut served, mut failed, mut quarantined) = (0u64, 0u64, 0u64);
            for i in 0..60 {
                let id = ids[rng.gen_range(0..ids.len())];
                let load_failed =
                    match service.submit(RenderRequest::trajectory(id, i as f32 / 60.0)) {
                        Ok(h) => match h.wait() {
                            Ok(_) => {
                                served += 1;
                                false
                            }
                            Err(ServeError::Load { scene, .. }) => {
                                assert_eq!(scene, id);
                                failed += 1;
                                true
                            }
                            Err(other) => panic!("unexpected wait error: {other:?} (seed {seed})"),
                        },
                        Err(ServeError::Quarantined { .. }) => {
                            quarantined += 1;
                            false
                        }
                        Err(other) => panic!("unexpected submit error: {other:?} (seed {seed})"),
                    };
                // Invariants after every resolved request: no phantom
                // load claim survives its request, a failed load is not
                // resident, and the byte budget holds through the churn.
                let st = service.shared.state.lock().unwrap();
                assert!(
                    st.loading.is_empty(),
                    "phantom loading claim: {:?} (seed {seed})",
                    st.loading
                );
                if load_failed {
                    assert!(
                        !st.cache.contains(id),
                        "failed load left '{id}' resident (seed {seed})"
                    );
                }
                assert!(
                    st.cache.resident_bytes() <= budget,
                    "budget violated: {} > {budget} (seed {seed})",
                    st.cache.resident_bytes()
                );
            }
            let stats = service.shutdown();
            assert_eq!(served + failed + quarantined, 60);
            assert_eq!(stats.completed, served + failed);
            assert!(
                served > 0 && failed > 0,
                "the storm must exercise both paths (seed {seed}: {served} served, {failed} failed)"
            );
            assert!(stats.resident_bytes <= budget);
        }
    }
}
