//! The byte-budgeted LRU scene cache.
//!
//! Residency is the serving layer's unit of conditional work: a request
//! for a resident scene is a cheap batch-drain, a request for a cold one
//! pays a load. The cache keeps total resident bytes (as accounted by
//! [`Scene::approx_bytes`]) at or under a fixed budget by evicting the
//! least-recently-*used* scene first — `get` and re-`insert` both count
//! as use. A scene larger than the whole budget is admitted transiently
//! (callers hold an `Arc` for the in-flight batch) but evicted before
//! `insert` returns, so the budget invariant `resident_bytes ≤ budget`
//! holds after every operation. A zero budget therefore degenerates to
//! the naive load-render-evict-per-request regime the serve bench uses
//! as its comparison baseline.

use std::collections::HashMap;
use std::sync::Arc;

use gcc_scene::Scene;

#[derive(Debug)]
struct CacheEntry {
    scene: Arc<Scene>,
    bytes: usize,
    last_used: u64,
}

/// Byte-budgeted LRU map from scene id to a resident [`Scene`].
#[derive(Debug)]
pub struct LruSceneCache {
    budget: usize,
    tick: u64,
    resident_bytes: usize,
    evictions: u64,
    entries: HashMap<String, CacheEntry>,
}

impl LruSceneCache {
    /// Empty cache with the given byte budget.
    pub fn new(budget_bytes: usize) -> Self {
        Self {
            budget: budget_bytes,
            tick: 0,
            resident_bytes: 0,
            evictions: 0,
            entries: HashMap::new(),
        }
    }

    /// The configured byte budget.
    pub fn budget_bytes(&self) -> usize {
        self.budget
    }

    /// Total bytes of the resident scenes (≤ budget, always).
    pub fn resident_bytes(&self) -> usize {
        self.resident_bytes
    }

    /// Number of resident scenes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Evictions performed over the cache's lifetime.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// `true` when `id` is resident (does not touch recency).
    pub fn contains(&self, id: &str) -> bool {
        self.entries.contains_key(id)
    }

    /// Resident scene ids, most recently used first.
    pub fn resident_ids(&self) -> Vec<String> {
        let mut ids: Vec<(&String, u64)> = self
            .entries
            .iter()
            .map(|(id, e)| (id, e.last_used))
            .collect();
        ids.sort_by_key(|&(_, tick)| std::cmp::Reverse(tick));
        ids.into_iter().map(|(id, _)| id.clone()).collect()
    }

    /// Looks up a resident scene, marking it most recently used.
    pub fn get(&mut self, id: &str) -> Option<Arc<Scene>> {
        self.tick += 1;
        let tick = self.tick;
        self.entries.get_mut(id).map(|e| {
            e.last_used = tick;
            Arc::clone(&e.scene)
        })
    }

    /// Inserts (or refreshes) a scene as most recently used, then evicts
    /// least-recently-used entries until the byte budget holds again.
    /// Returns the evicted ids in eviction order — possibly including
    /// `id` itself when the scene alone exceeds the whole budget.
    pub fn insert(&mut self, id: &str, scene: Arc<Scene>) -> Vec<String> {
        self.tick += 1;
        let bytes = scene.approx_bytes();
        if let Some(old) = self.entries.remove(id) {
            self.resident_bytes -= old.bytes;
        }
        self.resident_bytes += bytes;
        self.entries.insert(
            id.to_string(),
            CacheEntry {
                scene,
                bytes,
                last_used: self.tick,
            },
        );
        let mut evicted = Vec::new();
        while self.resident_bytes > self.budget {
            let victim = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(id, _)| id.clone())
                .expect("resident_bytes > 0 implies a resident entry");
            let entry = self.entries.remove(&victim).expect("victim is resident");
            self.resident_bytes -= entry.bytes;
            self.evictions += 1;
            evicted.push(victim);
        }
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcc_scene::rng::StdRng;
    use gcc_scene::{SceneConfig, ScenePreset};

    /// A scene whose `approx_bytes` is predictable enough for budget math
    /// (count scales linearly with `scale`).
    fn scene(scale: f32) -> Arc<Scene> {
        Arc::new(ScenePreset::Lego.build(&SceneConfig::with_scale(scale)))
    }

    /// Same, with an attached LOD hierarchy so `approx_bytes` includes
    /// the coarse levels the quality ladder renders from.
    fn scene_with_lod(scale: f32) -> Arc<Scene> {
        let mut s = ScenePreset::Lego.build(&SceneConfig::with_scale(scale));
        let levels = gcc_lod::attach_hierarchy(&mut s, &gcc_lod::HierarchyConfig::default());
        assert!(levels > 0, "test scene too small to build a hierarchy");
        assert!(s.approx_bytes() > scene(scale).approx_bytes());
        Arc::new(s)
    }

    #[test]
    fn get_touches_and_changes_the_victim() {
        let s = scene(0.02);
        let bytes = s.approx_bytes();
        // Budget fits exactly two of the three equal-size scenes.
        let mut cache = LruSceneCache::new(2 * bytes);
        assert!(cache.insert("a", Arc::clone(&s)).is_empty());
        assert!(cache.insert("b", Arc::clone(&s)).is_empty());
        // Touch `a`, so inserting `c` must evict `b`.
        assert!(cache.get("a").is_some());
        assert_eq!(cache.insert("c", Arc::clone(&s)), vec!["b".to_string()]);
        assert!(cache.contains("a") && cache.contains("c") && !cache.contains("b"));
        assert_eq!(cache.resident_ids(), vec!["c".to_string(), "a".to_string()]);
        assert_eq!(cache.evictions(), 1);
    }

    #[test]
    fn oversized_scene_is_evicted_immediately() {
        let s = scene(0.02);
        let mut cache = LruSceneCache::new(s.approx_bytes() - 1);
        let evicted = cache.insert("big", Arc::clone(&s));
        assert_eq!(evicted, vec!["big".to_string()]);
        assert!(cache.is_empty());
        assert_eq!(cache.resident_bytes(), 0);
    }

    #[test]
    fn zero_budget_caches_nothing() {
        let s = scene(0.02);
        let mut cache = LruSceneCache::new(0);
        assert_eq!(cache.insert("x", Arc::clone(&s)), vec!["x".to_string()]);
        assert!(cache.get("x").is_none());
    }

    #[test]
    fn reinsert_replaces_without_double_counting() {
        let s = scene(0.02);
        let bytes = s.approx_bytes();
        let mut cache = LruSceneCache::new(3 * bytes);
        cache.insert("a", Arc::clone(&s));
        cache.insert("a", Arc::clone(&s));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.resident_bytes(), bytes);
    }

    /// Reference model: a Vec in recency order (front = LRU).
    struct Model {
        budget: usize,
        entries: Vec<(String, usize)>,
    }

    impl Model {
        fn touch(&mut self, id: &str) -> bool {
            if let Some(pos) = self.entries.iter().position(|(e, _)| e == id) {
                let e = self.entries.remove(pos);
                self.entries.push(e);
                true
            } else {
                false
            }
        }

        fn insert(&mut self, id: &str, bytes: usize) -> Vec<String> {
            self.entries.retain(|(e, _)| e != id);
            self.entries.push((id.to_string(), bytes));
            let mut evicted = Vec::new();
            while self.entries.iter().map(|(_, b)| b).sum::<usize>() > self.budget {
                let (victim, _) = self.entries.remove(0);
                evicted.push(victim);
            }
            evicted
        }
    }

    #[test]
    fn random_op_sequences_match_the_reference_model() {
        // Property test (seeded loops stand in for proptest, as
        // everywhere in this workspace): under random insert/get
        // sequences over scenes of different sizes, the cache matches a
        // straightforward recency-list model and never exceeds its byte
        // budget.
        // Half the pool carries a LOD hierarchy, so the budget math is
        // exercised against hierarchy-inclusive `approx_bytes` too.
        let scenes: Vec<Arc<Scene>> = [0.02f32, 0.03, 0.05, 0.08]
            .iter()
            .enumerate()
            .map(|(i, &s)| {
                if i % 2 == 0 {
                    scene(s)
                } else {
                    scene_with_lod(s)
                }
            })
            .collect();
        let ids = ["a", "b", "c", "d", "e", "f"];
        for seed in 0..8u64 {
            let mut rng = StdRng::seed_from_u64(0xCAC4E + seed);
            let budget = match seed % 4 {
                0 => 0,
                1 => scenes[0].approx_bytes() * 2,
                2 => scenes[3].approx_bytes() + scenes[1].approx_bytes(),
                _ => usize::MAX / 2,
            };
            let mut cache = LruSceneCache::new(budget);
            let mut model = Model {
                budget,
                entries: Vec::new(),
            };
            let mut model_evictions = 0u64;
            for _ in 0..300 {
                let id = ids[rng.gen_range(0..ids.len())];
                if rng.gen::<f32>() < 0.45 {
                    let s = &scenes[rng.gen_range(0..scenes.len())];
                    let got = cache.insert(id, Arc::clone(s));
                    let want = model.insert(id, s.approx_bytes());
                    assert_eq!(got, want, "eviction order diverged (seed {seed})");
                    model_evictions += want.len() as u64;
                } else {
                    let got = cache.get(id).is_some();
                    let want = model.touch(id);
                    assert_eq!(got, want, "presence diverged (seed {seed})");
                }
                // Invariants after every operation.
                assert!(
                    cache.resident_bytes() <= budget,
                    "budget violated: {} > {budget} (seed {seed})",
                    cache.resident_bytes()
                );
                assert_eq!(cache.len(), model.entries.len());
                let model_bytes: usize = model.entries.iter().map(|(_, b)| b).sum();
                assert_eq!(cache.resident_bytes(), model_bytes);
                let mut want_ids: Vec<String> =
                    model.entries.iter().map(|(e, _)| e.clone()).collect();
                want_ids.reverse(); // model front = LRU; resident_ids() is MRU-first
                assert_eq!(
                    cache.resident_ids(),
                    want_ids,
                    "recency diverged (seed {seed})"
                );
            }
            assert_eq!(cache.evictions(), model_evictions);
        }
    }
}
