//! Deterministic fault injection for chaos-testing the serving layer.
//!
//! A [`FaultPlan`] is a *seeded schedule* of injected failures: which
//! load attempt of which scene fails (retryably or fatally), panics, or
//! stalls, and which render call panics, is a pure function of the plan's
//! seed and the attempt/call index — no wall clock, no OS randomness — so
//! a chaos run replays the same fault storm every time. Which *stream*
//! absorbs a given render panic still depends on thread scheduling; chaos
//! tests therefore assert scheduling-independent properties (every stream
//! resolves, the pool recovers, a disarmed epilogue is bit-identical)
//! rather than per-stream outcomes.
//!
//! Injection points:
//!
//! * **Loads** — wrap a registry entry with [`SceneSource::faulty`]; each
//!   load attempt consults [`FaultPlan::next_load_fault`] (scripted
//!   prefix first, then the seeded schedule).
//! * **Renders** — wrap a schedule's renderer with [`ChaosRenderer`];
//!   each render call consults [`FaultPlan::next_render_fault`].
//!
//! [`FaultPlan::disarm`] switches every subsequent draw off — the
//! fault-free epilogue a chaos test uses to prove the service recovered
//! to healthy, bit-identical serving.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use gcc_core::{Camera, Gaussian3D};
use gcc_render::pipeline::{Frame, FrameScratch, RenderJob, Renderer};

/// One injected load failure mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadFault {
    /// Fail this attempt with a transient (retryable) error.
    FailRetryable,
    /// Fail this attempt with a fatal error (retries cannot help).
    FailFatal,
    /// Panic mid-load (exercises the service's load-panic containment).
    Panic,
    /// Stall the load for the duration, then let it proceed normally.
    Slow(Duration),
}

/// Per-mille injection rates of the seeded schedule (0 = never,
/// 1000 = every draw). Rates are checked in the order `panic`, `fatal`,
/// `retryable`, `slow` against one draw per attempt, so they partition
/// the draw space: their sum must stay ≤ 1000.
#[derive(Debug, Clone, Copy, Default)]
struct Rates {
    load_panic: u32,
    load_fatal: u32,
    load_retryable: u32,
    load_slow: u32,
    render_panic: u32,
}

/// A deterministic, seeded fault schedule, shared (via `Arc`) between
/// the injection points and the test/bench driver. See the [module
/// docs](self) for the model.
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    armed: AtomicBool,
    rates: Rates,
    slow_delay: Duration,
    /// Scripted per-scene fault prefixes, consumed attempt-by-attempt
    /// before the seeded schedule takes over (`None` = attempt succeeds).
    scripts: Mutex<HashMap<String, VecDeque<Option<LoadFault>>>>,
    /// Per-scene load-attempt counters (the seeded schedule's index).
    load_attempts: Mutex<HashMap<String, u64>>,
    /// Global render-call counter (the render schedule's index).
    render_calls: AtomicU64,
    injected_load_faults: AtomicU64,
    injected_render_panics: AtomicU64,
}

impl FaultPlan {
    /// An armed plan with the given seed and no faults scheduled yet.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            armed: AtomicBool::new(true),
            rates: Rates::default(),
            slow_delay: Duration::from_millis(1),
            scripts: Mutex::new(HashMap::new()),
            load_attempts: Mutex::new(HashMap::new()),
            render_calls: AtomicU64::new(0),
            injected_load_faults: AtomicU64::new(0),
            injected_render_panics: AtomicU64::new(0),
        }
    }

    /// Schedules retryable load failures at `per_mille`/1000 of attempts.
    pub fn with_retryable_load_failures(mut self, per_mille: u32) -> Self {
        self.rates.load_retryable = per_mille;
        self.check_rates()
    }

    /// Schedules fatal load failures at `per_mille`/1000 of attempts.
    pub fn with_fatal_load_failures(mut self, per_mille: u32) -> Self {
        self.rates.load_fatal = per_mille;
        self.check_rates()
    }

    /// Schedules load panics at `per_mille`/1000 of attempts.
    pub fn with_load_panics(mut self, per_mille: u32) -> Self {
        self.rates.load_panic = per_mille;
        self.check_rates()
    }

    /// Schedules slow loads (stalled by `delay`) at `per_mille`/1000.
    pub fn with_slow_loads(mut self, per_mille: u32, delay: Duration) -> Self {
        self.rates.load_slow = per_mille;
        self.slow_delay = delay;
        self.check_rates()
    }

    /// Schedules render panics at `per_mille`/1000 of render calls.
    pub fn with_render_panics(mut self, per_mille: u32) -> Self {
        self.rates.render_panic = per_mille;
        self
    }

    /// Prepends an explicit per-attempt fault script for `scene`,
    /// consumed before the seeded schedule: attempt 1 draws `faults[0]`,
    /// and so on (`None` = that attempt succeeds). Exact sequences like
    /// *fail retryably twice, then succeed* are scripted, not seeded.
    pub fn script_loads(
        self,
        scene: impl Into<String>,
        faults: impl IntoIterator<Item = Option<LoadFault>>,
    ) -> Self {
        self.scripts
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .entry(scene.into())
            .or_default()
            .extend(faults);
        self
    }

    fn check_rates(self) -> Self {
        let r = &self.rates;
        let sum = r.load_panic + r.load_fatal + r.load_retryable + r.load_slow;
        assert!(
            sum <= 1000,
            "load fault rates sum to {sum} > 1000 per mille"
        );
        self
    }

    /// Switches every subsequent draw off: loads and renders proceed
    /// fault-free. The chaos epilogue — scripted faults still queued are
    /// kept (but not drawn) so a later [`Self::arm`] resumes the storm.
    pub fn disarm(&self) {
        self.armed.store(false, Ordering::SeqCst);
    }

    /// Re-arms a disarmed plan.
    pub fn arm(&self) {
        self.armed.store(true, Ordering::SeqCst);
    }

    /// Whether draws currently inject faults.
    pub fn is_armed(&self) -> bool {
        self.armed.load(Ordering::SeqCst)
    }

    /// Load faults actually injected so far (all kinds).
    pub fn injected_load_faults(&self) -> u64 {
        self.injected_load_faults.load(Ordering::Relaxed)
    }

    /// Render panics actually injected so far.
    pub fn injected_render_panics(&self) -> u64 {
        self.injected_render_panics.load(Ordering::Relaxed)
    }

    /// Draws the fault (if any) for the next load attempt of `scene`.
    /// Consumes the scripted prefix first, then the seeded schedule.
    /// Every call advances the scene's attempt counter, armed or not, so
    /// disarming does not shift the schedule of a later re-arm.
    pub fn next_load_fault(&self, scene: &str) -> Option<LoadFault> {
        let attempt = {
            let mut attempts = self.load_attempts.lock().unwrap_or_else(|e| e.into_inner());
            let a = attempts.entry(scene.to_string()).or_insert(0);
            *a += 1;
            *a
        };
        if !self.is_armed() {
            return None;
        }
        let scripted = {
            let mut scripts = self.scripts.lock().unwrap_or_else(|e| e.into_inner());
            match scripts.get_mut(scene) {
                Some(q) if !q.is_empty() => Some(q.pop_front().unwrap_or(None)),
                _ => None,
            }
        };
        let fault = match scripted {
            Some(f) => f,
            None => {
                let draw = per_mille_draw(self.seed, hash_str(scene) ^ attempt);
                let r = &self.rates;
                if draw < r.load_panic {
                    Some(LoadFault::Panic)
                } else if draw < r.load_panic + r.load_fatal {
                    Some(LoadFault::FailFatal)
                } else if draw < r.load_panic + r.load_fatal + r.load_retryable {
                    Some(LoadFault::FailRetryable)
                } else if draw < r.load_panic + r.load_fatal + r.load_retryable + r.load_slow {
                    Some(LoadFault::Slow(self.slow_delay))
                } else {
                    None
                }
            }
        };
        if fault.is_some() {
            self.injected_load_faults.fetch_add(1, Ordering::Relaxed);
        }
        fault
    }

    /// Draws whether the next render call panics. Advances the call
    /// counter armed or not (see [`Self::next_load_fault`]).
    pub fn next_render_fault(&self) -> bool {
        let call = self.render_calls.fetch_add(1, Ordering::Relaxed);
        if !self.is_armed() {
            return false;
        }
        let panics = per_mille_draw(self.seed, 0x9E37_79B9 ^ call) < self.rates.render_panic;
        if panics {
            self.injected_render_panics.fetch_add(1, Ordering::Relaxed);
        }
        panics
    }
}

/// SplitMix64-style draw in `0..1000`, a pure function of `(seed, index)`.
fn per_mille_draw(seed: u64, index: u64) -> u32 {
    let mut z = seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z % 1000) as u32
}

/// FNV-1a of a scene id (stable across runs, unlike `DefaultHasher`).
fn hash_str(s: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A [`Renderer`] wrapper that injects panics per the plan's render
/// schedule and otherwise delegates — frames it does render are
/// bit-identical to the inner renderer's (all entry points forward, so
/// scratch-reuse overrides of the wrapped renderer stay in effect).
pub struct ChaosRenderer {
    inner: Box<dyn Renderer + Send + Sync>,
    plan: Arc<FaultPlan>,
}

impl ChaosRenderer {
    /// Wraps `inner`, drawing on `plan` before every render call.
    pub fn new(inner: Box<dyn Renderer + Send + Sync>, plan: Arc<FaultPlan>) -> Self {
        Self { inner, plan }
    }

    fn maybe_panic(&self) {
        if self.plan.next_render_fault() {
            panic!("injected render fault");
        }
    }
}

impl std::fmt::Debug for ChaosRenderer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChaosRenderer")
            .field("inner", &self.inner.name())
            .finish_non_exhaustive()
    }
}

impl Renderer for ChaosRenderer {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn render_frame(&self, gaussians: &[Gaussian3D], cam: &Camera) -> Frame {
        self.maybe_panic();
        self.inner.render_frame(gaussians, cam)
    }

    fn render_frame_reusing(
        &self,
        gaussians: &[Gaussian3D],
        cam: &Camera,
        scratch: &mut FrameScratch,
    ) -> Frame {
        self.maybe_panic();
        self.inner.render_frame_reusing(gaussians, cam, scratch)
    }

    fn render_job(&self, job: &RenderJob<'_>, scratch: &mut FrameScratch) -> Frame {
        self.maybe_panic();
        self.inner.render_job(job, scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_schedule_is_reproducible() {
        let draw = |seed| {
            let plan = FaultPlan::new(seed)
                .with_retryable_load_failures(200)
                .with_fatal_load_failures(50)
                .with_load_panics(50)
                .with_slow_loads(100, Duration::from_millis(2))
                .with_render_panics(100);
            let loads: Vec<_> = (0..64).map(|_| plan.next_load_fault("lego")).collect();
            let renders: Vec<_> = (0..64).map(|_| plan.next_render_fault()).collect();
            (loads, renders)
        };
        assert_eq!(draw(7), draw(7), "same seed must replay the same storm");
        assert_ne!(draw(7), draw(8), "different seeds should diverge");
    }

    #[test]
    fn rates_partition_and_land_in_the_right_ballpark() {
        let plan = FaultPlan::new(42)
            .with_retryable_load_failures(300)
            .with_load_panics(100);
        let mut retryable = 0;
        let mut panics = 0;
        let mut clean = 0;
        for _ in 0..2000 {
            match plan.next_load_fault("scene") {
                Some(LoadFault::FailRetryable) => retryable += 1,
                Some(LoadFault::Panic) => panics += 1,
                None => clean += 1,
                other => panic!("unscheduled fault kind {other:?}"),
            }
        }
        assert_eq!(retryable + panics + clean, 2000);
        assert!((400..800).contains(&retryable), "retryable={retryable}");
        assert!((100..320).contains(&panics), "panics={panics}");
        assert_eq!(plan.injected_load_faults(), (retryable + panics) as u64);
    }

    #[test]
    fn scripts_run_before_the_seeded_schedule() {
        let plan = FaultPlan::new(0).script_loads(
            "s",
            [
                Some(LoadFault::FailRetryable),
                Some(LoadFault::FailRetryable),
                None,
                Some(LoadFault::FailFatal),
            ],
        );
        assert_eq!(plan.next_load_fault("s"), Some(LoadFault::FailRetryable));
        assert_eq!(plan.next_load_fault("s"), Some(LoadFault::FailRetryable));
        assert_eq!(plan.next_load_fault("s"), None);
        assert_eq!(plan.next_load_fault("s"), Some(LoadFault::FailFatal));
        // Script exhausted; zero seeded rates mean clean loads from here.
        assert_eq!(plan.next_load_fault("s"), None);
        // Other scenes never see this script.
        assert_eq!(plan.next_load_fault("other"), None);
        assert_eq!(plan.injected_load_faults(), 3);
    }

    #[test]
    fn disarming_stops_draws_but_keeps_the_schedule_position() {
        let armed = FaultPlan::new(3).with_render_panics(1000);
        assert!(armed.next_render_fault());
        armed.disarm();
        assert!(!armed.next_render_fault(), "disarmed draws never fault");
        assert!(!armed.is_armed());
        armed.arm();
        assert!(armed.next_render_fault());
        // Counter advanced through the disarmed draw: 2 injected, 3 calls.
        assert_eq!(armed.injected_render_panics(), 2);
    }

    #[test]
    #[should_panic(expected = "sum to 1001")]
    fn overfull_rates_are_rejected() {
        let _ = FaultPlan::new(0)
            .with_retryable_load_failures(900)
            .with_load_panics(101);
    }
}
