//! The rolling per-scene cost model.
//!
//! Every completed frame feeds one observation — "scene S at rung R and
//! resolution W×H took M milliseconds" — into an EWMA cell. At dispatch
//! time the scheduler asks for the highest-quality rung whose predicted
//! cost (with a safety margin) fits the frame's remaining deadline
//! budget. Rungs never measured for a scene extrapolate from that
//! scene's nearest measured rung through the ladder's nominal cost
//! ratios, so one floor-rung render of a cold scene immediately prices
//! the whole ladder and lets the dispatcher climb back up.

use crate::ladder::QualityLadder;
use std::collections::HashMap;

/// EWMA smoothing factor: weight of the newest observation.
const EWMA_ALPHA: f64 = 0.3;

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CostKey {
    scene: String,
    rung: usize,
    width: u32,
    height: u32,
}

/// Rolling ms/frame estimates keyed by scene × rung × resolution.
#[derive(Debug, Clone, Default)]
pub struct CostModel {
    cells: HashMap<CostKey, f64>,
}

impl CostModel {
    /// An empty model (every scene cold).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct (scene, rung, resolution) cells observed.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `true` when no observation has been folded in yet.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Folds one measured frame into the model.
    pub fn observe(&mut self, scene: &str, rung: usize, resolution: (u32, u32), ms: f64) {
        if !ms.is_finite() || ms < 0.0 {
            return;
        }
        let key = CostKey {
            scene: scene.to_string(),
            rung,
            width: resolution.0,
            height: resolution.1,
        };
        self.cells
            .entry(key)
            .and_modify(|v| *v += EWMA_ALPHA * (ms - *v))
            .or_insert(ms);
    }

    /// Predicted ms/frame for a scene × rung × resolution, or `None`
    /// when the scene has no observation at this resolution at all.
    /// Unmeasured rungs extrapolate from the nearest measured rung via
    /// the ladder's nominal cost ratios.
    pub fn predict(
        &self,
        ladder: &QualityLadder,
        scene: &str,
        rung: usize,
        resolution: (u32, u32),
    ) -> Option<f64> {
        let key = |r: usize| CostKey {
            scene: scene.to_string(),
            rung: r,
            width: resolution.0,
            height: resolution.1,
        };
        if let Some(v) = self.cells.get(&key(rung)) {
            return Some(*v);
        }
        let rungs = ladder.rungs();
        let target_nominal = rungs.get(rung)?.nominal_cost;
        // Nearest measured rung (ties resolve toward better quality).
        let nearest = (0..rungs.len())
            .filter(|r| self.cells.contains_key(&key(*r)))
            .min_by_key(|r| (r.abs_diff(rung), *r))?;
        let measured = self.cells[&key(nearest)];
        Some(measured * target_nominal / rungs[nearest].nominal_cost)
    }

    /// Picks the highest-quality rung whose predicted cost, scaled by
    /// `margin` (> 1 leaves headroom for scheduling noise), fits within
    /// `budget_ms`. Falls to the floor rung when nothing fits — and for
    /// cold scenes with no observations, where rendering cheap once is
    /// the only miss-proof way to start pricing the ladder.
    pub fn select_rung(
        &self,
        ladder: &QualityLadder,
        scene: &str,
        resolution: (u32, u32),
        budget_ms: f64,
        margin: f64,
    ) -> usize {
        for rung in 0..ladder.len() {
            if let Some(predicted) = self.predict(ladder, scene, rung, resolution) {
                if predicted * margin <= budget_ms {
                    return rung;
                }
            }
        }
        ladder.floor()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const RES: (u32, u32) = (640, 480);

    #[test]
    fn ewma_tracks_observations() {
        let mut m = CostModel::new();
        let ladder = QualityLadder::standard();
        m.observe("lego", 0, RES, 100.0);
        assert_eq!(m.predict(&ladder, "lego", 0, RES), Some(100.0));
        // Converges toward a shifted load level.
        for _ in 0..50 {
            m.observe("lego", 0, RES, 40.0);
        }
        let v = m.predict(&ladder, "lego", 0, RES).unwrap();
        assert!((v - 40.0).abs() < 1.0, "{v}");
    }

    #[test]
    fn unmeasured_rungs_extrapolate_through_nominal_costs() {
        let mut m = CostModel::new();
        let ladder = QualityLadder::standard();
        m.observe("lego", 0, RES, 100.0);
        // Rung 1 has nominal cost 0.40 vs rung 0's 1.0.
        let r1 = m.predict(&ladder, "lego", 1, RES).unwrap();
        assert!((r1 - 40.0).abs() < 1e-9, "{r1}");
        // From a floor measurement, rung 0 extrapolates upward.
        let mut m = CostModel::new();
        m.observe("lego", 3, RES, 10.0);
        let r0 = m.predict(&ladder, "lego", 0, RES).unwrap();
        assert!((r0 - 100.0).abs() < 1e-9, "{r0}");
    }

    #[test]
    fn prediction_is_scoped_by_scene_and_resolution() {
        let mut m = CostModel::new();
        let ladder = QualityLadder::standard();
        m.observe("lego", 0, RES, 100.0);
        assert_eq!(m.predict(&ladder, "train", 0, RES), None);
        assert_eq!(m.predict(&ladder, "lego", 0, (320, 240)), None);
    }

    #[test]
    fn selection_degrades_under_pressure_and_climbs_back() {
        let mut m = CostModel::new();
        let ladder = QualityLadder::standard();
        m.observe("lego", 0, RES, 100.0);
        // Plenty of budget: full quality.
        assert_eq!(m.select_rung(&ladder, "lego", RES, 500.0, 1.5), 0);
        // Tight budget: steps down just far enough (rung 1 ≈ 40 ms).
        assert_eq!(m.select_rung(&ladder, "lego", RES, 80.0, 1.5), 1);
        // Severe pressure: floor.
        assert_eq!(m.select_rung(&ladder, "lego", RES, 5.0, 1.5), 3);
        // Headroom returns: straight back to full quality.
        assert_eq!(m.select_rung(&ladder, "lego", RES, 1000.0, 1.5), 0);
    }

    #[test]
    fn cold_scenes_start_at_the_floor() {
        let m = CostModel::new();
        let ladder = QualityLadder::standard();
        assert_eq!(m.select_rung(&ladder, "unknown", RES, 1e9, 1.5), 3);
    }

    #[test]
    fn non_finite_and_negative_observations_are_ignored() {
        let mut m = CostModel::new();
        m.observe("lego", 0, RES, f64::NAN);
        m.observe("lego", 0, RES, f64::INFINITY);
        m.observe("lego", 0, RES, -5.0);
        assert!(m.is_empty());
    }
}
