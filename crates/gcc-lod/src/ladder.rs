//! The quality ladder: named degradation rungs built from existing
//! [`RenderOptions`] knobs plus hierarchy level selection.
//!
//! Rung 0 is always exact full quality — applying it is a no-op on the
//! request's options, so ladder-on serving renders bit-identically to
//! ladder-off whenever the deadline affords it. Every degraded rung
//! documents the worst PSNR/SSIM it is allowed to cost versus the full
//! render (`min_psnr_db` / `min_ssim`); `tests/lod_quality.rs` measures
//! the Table 2 scenes against exactly these floors and EXPERIMENTS.md
//! records the measured deltas.

use gcc_render::RenderOptions;

/// One rung of the quality ladder.
#[derive(Debug, Clone, PartialEq)]
pub struct QualityRung {
    /// Stable identifier (stats keys, bench labels, wire records).
    pub name: &'static str,
    /// Hierarchy level to render from (0 = the full cloud; levels past
    /// a scene's coarsest clamp to the coarsest).
    pub lod_level: usize,
    /// Render at `target / resolution_div`, then upscale back with the
    /// filtered upscale pass. 1 = native resolution.
    pub resolution_div: u32,
    /// SH-degree ceiling merged into the request (`min` with any
    /// caller-provided clamp).
    pub sh_degree: u8,
    /// `alpha_min` floor merged into the request (`max` with any
    /// caller-provided threshold).
    pub alpha_min: f32,
    /// Relative cost versus the full rung (1.0), used by the cost model
    /// to extrapolate unmeasured rungs from measured ones.
    pub nominal_cost: f64,
    /// Documented lower bound on PSNR (dB) versus the full-quality
    /// render of the same view.
    pub min_psnr_db: f64,
    /// Documented lower bound on SSIM versus the full-quality render.
    pub min_ssim: f64,
}

impl QualityRung {
    /// `true` for every rung except exact full quality.
    pub fn degrades(&self) -> bool {
        self.lod_level > 0 || self.resolution_div > 1 || self.sh_degree < 3 || self.alpha_min > 0.0
    }

    /// The reduced resolution this rung renders a `target`-sized frame
    /// at (clamped to at least 1×1).
    pub fn render_resolution(&self, target: (u32, u32)) -> (u32, u32) {
        let d = self.resolution_div.max(1);
        ((target.0 / d).max(1), (target.1 / d).max(1))
    }

    /// Merges this rung into a request's options for a frame whose full
    /// output size is `target`. ROI requests keep their native
    /// resolution (the ROI crop identity is pinned bit-exact and does
    /// not survive resampling); the cheaper shading knobs still apply.
    pub fn apply(&self, options: &RenderOptions, target: (u32, u32)) -> RenderOptions {
        let mut out = options.clone();
        if self.resolution_div > 1 && options.roi.is_none() {
            let (w, h) = self.render_resolution(target);
            out.resolution = Some((w, h));
        }
        if self.sh_degree < 3 {
            out.sh_degree = Some(
                out.sh_degree
                    .map_or(self.sh_degree, |d| d.min(self.sh_degree)),
            );
        }
        if self.alpha_min > 0.0 {
            out.alpha_min = Some(
                out.alpha_min
                    .map_or(self.alpha_min, |a| a.max(self.alpha_min)),
            );
        }
        out
    }
}

/// An ordered set of rungs, best quality first. Index 0 is always the
/// exact full-quality rung; the last index is the floor the dispatcher
/// falls to under pressure (and on cold-start scenes with no cost
/// observations yet).
#[derive(Debug, Clone, PartialEq)]
pub struct QualityLadder {
    rungs: Vec<QualityRung>,
}

impl QualityLadder {
    /// Builds a ladder from explicit rungs.
    ///
    /// # Panics
    ///
    /// Panics if `rungs` is empty or rung 0 degrades quality — the
    /// serving layer's parity story depends on rung 0 being exact.
    pub fn new(rungs: Vec<QualityRung>) -> Self {
        assert!(!rungs.is_empty(), "ladder needs at least one rung");
        assert!(!rungs[0].degrades(), "rung 0 must be exact full quality");
        Self { rungs }
    }

    /// The standard four-rung ladder. Nominal costs and quality floors
    /// are documented in EXPERIMENTS.md ("Quality ladder" table) from
    /// measurements on the Table 2 scenes.
    pub fn standard() -> Self {
        Self::new(vec![
            QualityRung {
                name: "full",
                lod_level: 0,
                resolution_div: 1,
                sh_degree: 3,
                alpha_min: 0.0,
                nominal_cost: 1.0,
                // Exact: applying this rung leaves the request untouched.
                min_psnr_db: 99.0,
                min_ssim: 0.999,
            },
            QualityRung {
                name: "half_res",
                lod_level: 0,
                resolution_div: 2,
                sh_degree: 3,
                alpha_min: 0.0,
                nominal_cost: 0.40,
                min_psnr_db: 21.0,
                min_ssim: 0.78,
            },
            QualityRung {
                name: "coarse",
                lod_level: 1,
                resolution_div: 2,
                sh_degree: 1,
                alpha_min: 0.003,
                nominal_cost: 0.20,
                min_psnr_db: 14.0,
                min_ssim: 0.25,
            },
            QualityRung {
                name: "floor",
                lod_level: 2,
                resolution_div: 4,
                sh_degree: 0,
                alpha_min: 0.01,
                nominal_cost: 0.10,
                min_psnr_db: 12.5,
                min_ssim: 0.12,
            },
        ])
    }

    /// The rungs, best quality first.
    pub fn rungs(&self) -> &[QualityRung] {
        &self.rungs
    }

    /// Number of rungs.
    pub fn len(&self) -> usize {
        self.rungs.len()
    }

    /// `false` always (a ladder holds at least one rung), provided for
    /// clippy's `len_without_is_empty` convention.
    pub fn is_empty(&self) -> bool {
        self.rungs.is_empty()
    }

    /// Index of the floor (cheapest) rung.
    pub fn floor(&self) -> usize {
        self.rungs.len() - 1
    }
}

impl Default for QualityLadder {
    fn default() -> Self {
        Self::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcc_render::{Roi, Schedule};

    #[test]
    fn standard_ladder_shape() {
        let ladder = QualityLadder::standard();
        assert_eq!(ladder.len(), 4);
        assert!(!ladder.rungs()[0].degrades());
        for r in &ladder.rungs()[1..] {
            assert!(r.degrades(), "{}", r.name);
        }
        // Costs decrease monotonically down the ladder; quality floors
        // loosen monotonically.
        for pair in ladder.rungs().windows(2) {
            assert!(pair[1].nominal_cost < pair[0].nominal_cost);
            assert!(pair[1].min_psnr_db <= pair[0].min_psnr_db);
            assert!(pair[1].min_ssim <= pair[0].min_ssim);
        }
        assert_eq!(ladder.floor(), 3);
    }

    #[test]
    fn rung_zero_apply_is_identity() {
        let ladder = QualityLadder::standard();
        let opts = RenderOptions::default()
            .with_schedule(Schedule::GaussianWise)
            .with_sh_degree(2);
        assert_eq!(ladder.rungs()[0].apply(&opts, (640, 480)), opts);
    }

    #[test]
    fn degraded_rungs_merge_knobs_conservatively() {
        let ladder = QualityLadder::standard();
        let rung = &ladder.rungs()[2];
        let opts = RenderOptions::default()
            .with_sh_degree(0)
            .with_alpha_min(0.05);
        let applied = rung.apply(&opts, (640, 480));
        // Caller's stricter SH clamp and alpha floor both survive.
        assert_eq!(applied.sh_degree, Some(0));
        assert_eq!(applied.alpha_min, Some(0.05));
        assert_eq!(applied.resolution, Some((320, 240)));

        let loose = RenderOptions::default();
        let applied = rung.apply(&loose, (640, 480));
        assert_eq!(applied.sh_degree, Some(1));
        assert_eq!(applied.alpha_min, Some(0.003));
    }

    #[test]
    fn roi_requests_keep_native_resolution() {
        let ladder = QualityLadder::standard();
        let rung = &ladder.rungs()[1];
        let opts = RenderOptions::default().with_roi(Roi::new(0, 0, 32, 32));
        let applied = rung.apply(&opts, (640, 480));
        assert_eq!(applied.resolution, None);
        assert_eq!(applied.roi, opts.roi);
    }

    #[test]
    fn render_resolution_clamps_to_one_pixel() {
        let ladder = QualityLadder::standard();
        let rung = &ladder.rungs()[3];
        assert_eq!(rung.render_resolution((640, 480)), (160, 120));
        assert_eq!(rung.render_resolution((2, 2)), (1, 1));
    }

    #[test]
    #[should_panic(expected = "rung 0 must be exact")]
    fn degrading_first_rung_is_rejected() {
        let mut rungs = QualityLadder::standard().rungs().to_vec();
        rungs[0].resolution_div = 2;
        let _ = QualityLadder::new(rungs);
    }
}
