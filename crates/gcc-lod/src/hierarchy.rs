//! The offline coarse-to-fine Gaussian hierarchy builder.
//!
//! Each level merges the previous level's Gaussians by voxel cell (cell
//! edge doubles per level) into single fatter Gaussians:
//!
//! * the merged **mean** is the opacity·area-weighted average of the
//!   children's means;
//! * the merged **scale** is isotropic with radius
//!   `R = max_i(|μ_i − μ| + r_i)` where `r_i` is child `i`'s largest
//!   axis — so the merged footprint *conservatively covers* every
//!   child's footprint by construction (the property test pins this);
//! * the merged **opacity** is area-compensated
//!   (`Σ α_i·r_i² / R²`, clamped to `(0, 1]`) so a cluster of small
//!   opaque splats does not turn into one huge opaque blob;
//! * the merged **SH coefficients** are the weighted average, keeping
//!   low-order color close to the cluster's mix.
//!
//! Determinism: cells are gathered in a `BTreeMap` (sorted keys) and
//! merged through the order-preserving `gcc_parallel::par_map`, so the
//! output is bit-identical for every thread count. The seed only jitters
//! the voxel-grid origin (decorrelating cell boundaries from scene
//! geometry) and is recorded in the built [`SceneLod`].

use gcc_core::{Gaussian3D, SH_FLOATS};
use gcc_math::{Quat, Vec3};
use gcc_scene::{LodLevel, Scene, SceneLod};
use std::collections::BTreeMap;

/// Configuration of [`build_hierarchy`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HierarchyConfig {
    /// Maximum coarse levels to build (the builder stops early when a
    /// level fails to strictly shrink or the cloud is already tiny).
    pub max_levels: usize,
    /// Do not coarsen below this many Gaussians.
    pub min_gaussians: usize,
    /// Voxel-grid resolution of the finest merge level: the scene's
    /// largest bounding-box extent divided into this many cells.
    pub base_cells: u32,
    /// Seed for the grid-origin jitter (recorded in the output).
    pub seed: u64,
    /// Worker threads for the merge map. Any value produces the same
    /// hierarchy; more threads just build it faster.
    pub threads: usize,
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        Self {
            max_levels: 3,
            min_gaussians: 64,
            base_cells: 48,
            seed: 0x6ccd_10d5,
            threads: 1,
        }
    }
}

/// SplitMix64 step — the repo's stock seed-expansion hash.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Unit-interval float from a SplitMix64 draw.
fn unit_f32(state: &mut u64) -> f32 {
    (splitmix64(state) >> 40) as f32 / (1u64 << 24) as f32
}

/// Builds the coarse-to-fine hierarchy for a Gaussian cloud.
///
/// Returns an empty hierarchy (no coarse levels) for clouds already at
/// or below `min_gaussians` — callers can still attach it; level
/// requests then resolve to the full cloud.
pub fn build_hierarchy(gaussians: &[Gaussian3D], cfg: &HierarchyConfig) -> SceneLod {
    let mut lod = SceneLod {
        levels: Vec::new(),
        seed: cfg.seed,
    };
    if gaussians.is_empty() {
        return lod;
    }

    // Scene bounds (means only; the conservative radius math below never
    // needs the bbox to include the splat extents).
    let mut lo = gaussians[0].mean;
    let mut hi = gaussians[0].mean;
    for g in gaussians {
        lo = Vec3::new(lo.x.min(g.mean.x), lo.y.min(g.mean.y), lo.z.min(g.mean.z));
        hi = Vec3::new(hi.x.max(g.mean.x), hi.y.max(g.mean.y), hi.z.max(g.mean.z));
    }
    let extent = (hi - lo).max_component().max(1e-6);
    let base_cell = extent / cfg.base_cells.max(1) as f32;

    let mut rng_state = cfg.seed;
    let mut prev: Vec<Gaussian3D> = Vec::new();
    for level in 0..cfg.max_levels {
        let src: &[Gaussian3D] = if level == 0 { gaussians } else { &prev };
        if src.len() <= cfg.min_gaussians {
            break;
        }
        // f32 scaling, not an integer shift: `max_levels` is an open
        // config field, and `1u32 << level` overflows past level 31.
        let cell = base_cell * 2f32.powi(level.min(127) as i32);
        // Seeded origin jitter, drawn per level in a fixed order so the
        // schedule is independent of how many levels actually build.
        let jitter = Vec3::new(
            unit_f32(&mut rng_state),
            unit_f32(&mut rng_state),
            unit_f32(&mut rng_state),
        ) * cell;
        let origin = lo - jitter;

        let mut cells: BTreeMap<(i64, i64, i64), Vec<usize>> = BTreeMap::new();
        for (i, g) in src.iter().enumerate() {
            let rel = g.mean - origin;
            let key = (
                (rel.x / cell).floor() as i64,
                (rel.y / cell).floor() as i64,
                (rel.z / cell).floor() as i64,
            );
            cells.entry(key).or_default().push(i);
        }
        if cells.len() >= src.len() {
            // This level would not strictly shrink the cloud; a coarser
            // cell next iteration would, but levels must decrease
            // monotonically from the previous one, so stop here.
            break;
        }
        let groups: Vec<Vec<usize>> = cells.into_values().collect();
        let merged =
            gcc_parallel::par_map(&groups, cfg.threads.max(1), |idxs| merge_cluster(src, idxs));
        prev = merged.clone();
        lod.levels.push(LodLevel {
            gaussians: merged,
            cell_size: cell,
        });
    }
    lod
}

/// Builds and attaches a hierarchy derived from the scene's own cloud,
/// seeding the grid jitter from the configured seed. Returns how many
/// coarse levels were built.
pub fn attach_hierarchy(scene: &mut Scene, cfg: &HierarchyConfig) -> usize {
    let lod = build_hierarchy(&scene.gaussians, cfg);
    let depth = lod.depth();
    scene.lod = Some(lod);
    depth
}

/// Merges one voxel cell's Gaussians into a single conservative proxy.
fn merge_cluster(src: &[Gaussian3D], idxs: &[usize]) -> Gaussian3D {
    debug_assert!(!idxs.is_empty());
    // Opacity·area weights: big opaque splats dominate the cluster's
    // position and color, faint dust barely shifts it.
    let mut w_sum = 0.0f32;
    let mut mean = Vec3::ZERO;
    for &i in idxs {
        let g = &src[i];
        let r = g.scale.max_component();
        let w = (g.opacity() * r * r).max(1e-12);
        w_sum += w;
        mean += g.mean * w;
    }
    mean *= 1.0 / w_sum;

    // Conservative radius: the merged footprint contains every child's.
    let mut radius = 0.0f32;
    let mut alpha_area = 0.0f32;
    for &i in idxs {
        let g = &src[i];
        let r = g.scale.max_component();
        radius = radius.max((g.mean - mean).norm() + r);
        alpha_area += g.opacity() * r * r;
    }
    let radius = radius.max(1e-6);
    // Area-compensated opacity: spreading the children's opaque area
    // over the (larger) merged footprint dims the proxy accordingly.
    let opacity = (alpha_area / (radius * radius)).clamp(1e-4, 1.0);

    let mut sh = [0.0f32; SH_FLOATS];
    for &i in idxs {
        let g = &src[i];
        let r = g.scale.max_component();
        let w = (g.opacity() * r * r).max(1e-12) / w_sum;
        for (dst, s) in sh.iter_mut().zip(g.sh.iter()) {
            *dst += s * w;
        }
    }

    Gaussian3D {
        mean,
        scale: Vec3::splat(radius),
        rot: Quat::IDENTITY,
        ln_opacity: opacity.ln(),
        sh,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcc_scene::{SceneConfig, ScenePreset};

    fn test_cloud(seed_scale: f32) -> Vec<Gaussian3D> {
        ScenePreset::Lego
            .build(&SceneConfig::with_scale(seed_scale))
            .gaussians
    }

    #[test]
    fn level_counts_strictly_decrease() {
        // Seeded property: across seeds and presets, every built level
        // holds strictly fewer Gaussians than the one below it.
        for seed in 0..6u64 {
            for preset in [ScenePreset::Lego, ScenePreset::Train] {
                let cloud = preset.build(&SceneConfig::with_scale(0.03)).gaussians;
                let cfg = HierarchyConfig {
                    seed,
                    max_levels: 4,
                    min_gaussians: 16,
                    ..HierarchyConfig::default()
                };
                let lod = build_hierarchy(&cloud, &cfg);
                assert!(lod.depth() >= 1, "seed {seed}: no levels built");
                let mut last = cloud.len();
                for (i, level) in lod.levels.iter().enumerate() {
                    assert!(
                        level.gaussians.len() < last,
                        "seed {seed} level {i}: {} !< {last}",
                        level.gaussians.len()
                    );
                    assert!(!level.gaussians.is_empty());
                    last = level.gaussians.len();
                }
            }
        }
    }

    #[test]
    fn pathological_max_levels_does_not_overflow() {
        // `max_levels` is an open config field; a value past 31 must not
        // panic the cell-size scaling (it used to be a u32 shift). The
        // strictly-shrinking break ends the build long before then, but
        // the loop bound itself has to be safe.
        let cloud = test_cloud(0.02);
        let cfg = HierarchyConfig {
            max_levels: 4000,
            min_gaussians: 1,
            ..HierarchyConfig::default()
        };
        let lod = build_hierarchy(&cloud, &cfg);
        assert!(lod.depth() >= 1);
        for level in &lod.levels {
            assert!(level.cell_size.is_finite());
        }
    }

    #[test]
    fn merged_gaussians_conservatively_cover_children() {
        // Seeded property: every child footprint (mean ± max scale) of
        // level ℓ−1 lies inside some merged footprint of level ℓ.
        for seed in [1u64, 7, 23] {
            let cloud = test_cloud(0.02);
            let cfg = HierarchyConfig {
                seed,
                min_gaussians: 16,
                ..HierarchyConfig::default()
            };
            let lod = build_hierarchy(&cloud, &cfg);
            let mut below: &[Gaussian3D] = &cloud;
            for (li, level) in lod.levels.iter().enumerate() {
                for (ci, child) in below.iter().enumerate() {
                    let r_child = child.scale.max_component();
                    let covered = level.gaussians.iter().any(|m| {
                        (child.mean - m.mean).norm() + r_child <= m.scale.max_component() + 1e-3
                    });
                    assert!(covered, "seed {seed} level {li}: child {ci} uncovered");
                }
                below = &level.gaussians;
            }
        }
    }

    #[test]
    fn build_is_deterministic_across_thread_counts() {
        let cloud = test_cloud(0.03);
        let base = HierarchyConfig {
            seed: 99,
            ..HierarchyConfig::default()
        };
        let reference = build_hierarchy(&cloud, &HierarchyConfig { threads: 1, ..base });
        for threads in [2, 3, 8] {
            let other = build_hierarchy(&cloud, &HierarchyConfig { threads, ..base });
            assert_eq!(
                reference.levels.len(),
                other.levels.len(),
                "{threads} threads"
            );
            for (a, b) in reference.levels.iter().zip(&other.levels) {
                assert_eq!(a.cell_size, b.cell_size);
                assert_eq!(a.gaussians, b.gaussians, "{threads} threads");
            }
        }
    }

    #[test]
    fn same_seed_reproduces_different_seed_may_differ() {
        let cloud = test_cloud(0.02);
        let cfg = |seed| HierarchyConfig {
            seed,
            ..HierarchyConfig::default()
        };
        let a = build_hierarchy(&cloud, &cfg(5));
        let b = build_hierarchy(&cloud, &cfg(5));
        assert_eq!(a, b);
        assert_eq!(a.seed, 5);
    }

    #[test]
    fn merged_opacity_is_dimmed_not_summed() {
        // Two small opaque splats far apart in one cell must not produce
        // a huge fully opaque blob: the area compensation dims it.
        let g = |x: f32| Gaussian3D::isotropic(Vec3::new(x, 0.0, 0.0), 0.05, 0.9, Vec3::splat(0.5));
        let merged = merge_cluster(&[g(0.0), g(2.0)], &[0, 1]);
        assert!(merged.scale.max_component() >= 1.0);
        assert!(merged.opacity() < 0.05, "opacity {}", merged.opacity());
        // A singleton cluster keeps its own opacity and radius.
        let solo = merge_cluster(&[g(0.0)], &[0]);
        assert!((solo.opacity() - 0.9).abs() < 1e-3);
        assert!((solo.scale.max_component() - 0.05).abs() < 1e-4);
    }

    #[test]
    fn empty_and_tiny_clouds_yield_no_levels() {
        let cfg = HierarchyConfig::default();
        assert_eq!(build_hierarchy(&[], &cfg).depth(), 0);
        let tiny = vec![Gaussian3D::isotropic(Vec3::ZERO, 0.1, 0.5, Vec3::splat(0.5)); 4];
        assert_eq!(build_hierarchy(&tiny, &cfg).depth(), 0);
    }

    #[test]
    fn attach_hierarchy_sets_scene_lod_and_charges_bytes() {
        let mut scene = ScenePreset::Lego.build(&SceneConfig::with_scale(0.02));
        let bare = scene.approx_bytes();
        let depth = attach_hierarchy(
            &mut scene,
            &HierarchyConfig {
                min_gaussians: 16,
                ..HierarchyConfig::default()
            },
        );
        assert!(depth >= 1);
        assert!(scene.lod.is_some());
        assert!(scene.approx_bytes() > bare);
    }
}
