//! Deadline-aware adaptive quality for the GCC serving layer.
//!
//! The GCC paper wins by *conditionally skipping work* inside a frame
//! (Gaussian-wise and cross-stage conditional processing). This crate
//! lifts the same idea to the scheduler: when a frame's deadline cannot
//! be met at full quality, degrade the frame instead of missing it.
//! Three pieces compose (DESIGN.md §14):
//!
//! * [`hierarchy`] — an offline, deterministic, seeded coarse-to-fine
//!   **Gaussian hierarchy builder**: spatial clusters merge into fatter,
//!   opacity/SH-compensated Gaussians, mip-style, one level per
//!   doubling of the merge cell. The product is a
//!   [`gcc_scene::SceneLod`] stored *with* the scene (and charged to
//!   the serve cache's byte budget via `Scene::approx_bytes`).
//! * [`ladder`] — the **quality ladder**: each [`ladder::QualityRung`]
//!   combines knobs that already exist in
//!   [`gcc_render::RenderOptions`] (SH-degree clamp, resolution
//!   override + filtered upscale, `alpha_min`) with a hierarchy level.
//!   Rung 0 is always exact full quality; every rung documents the
//!   PSNR/SSIM floor it is allowed to cost.
//! * [`cost`] — a **rolling per-scene cost model**: an EWMA of measured
//!   ms/frame keyed by scene × rung × resolution. The dispatcher asks
//!   it for the highest rung whose predicted cost fits the frame's
//!   remaining deadline budget; unmeasured rungs extrapolate through
//!   the ladder's nominal cost ratios, and a cold-start scene renders
//!   at the floor rung once rather than risk a miss.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod hierarchy;
pub mod ladder;

pub use cost::CostModel;
pub use hierarchy::{attach_hierarchy, build_hierarchy, HierarchyConfig};
pub use ladder::{QualityLadder, QualityRung};
