//! Off-chip memory model: peak-bandwidth presets and per-byte energy.
//!
//! The paper pairs both accelerators with Micron LPDDR4-3200 (51.2 GB/s)
//! and sweeps bandwidth up to LPDDR6-class in Fig. 14.

/// An off-chip DRAM configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct DramModel {
    /// Marketing name of the configuration.
    pub name: String,
    /// Peak bandwidth in GB/s.
    pub bandwidth_gbps: f64,
    /// Access energy in pJ per byte (core + I/O, LPDDR class).
    pub energy_pj_per_byte: f64,
}

impl DramModel {
    /// LPDDR4-3200, the paper's default (51.2 GB/s peak).
    pub fn lpddr4_3200() -> Self {
        Self {
            name: "LPDDR4-3200".into(),
            bandwidth_gbps: 51.2,
            energy_pj_per_byte: 25.0,
        }
    }

    /// LPDDR4X-4266.
    pub fn lpddr4x_4266() -> Self {
        Self {
            name: "LPDDR4X-4266".into(),
            bandwidth_gbps: 68.3,
            energy_pj_per_byte: 20.0,
        }
    }

    /// LPDDR5-6400.
    pub fn lpddr5_6400() -> Self {
        Self {
            name: "LPDDR5-6400".into(),
            bandwidth_gbps: 102.4,
            energy_pj_per_byte: 16.0,
        }
    }

    /// LPDDR5X-8533.
    pub fn lpddr5x_8533() -> Self {
        Self {
            name: "LPDDR5X-8533".into(),
            bandwidth_gbps: 136.5,
            energy_pj_per_byte: 14.0,
        }
    }

    /// LPDDR6-14400 (future, >220 GB/s — where GCC turns compute-bound in
    /// Fig. 14).
    pub fn lpddr6_14400() -> Self {
        Self {
            name: "LPDDR6-14400".into(),
            bandwidth_gbps: 230.4,
            energy_pj_per_byte: 12.0,
        }
    }

    /// The Fig. 14 sweep, slowest to fastest.
    pub fn sweep() -> Vec<Self> {
        vec![
            Self::lpddr4_3200(),
            Self::lpddr4x_4266(),
            Self::lpddr5_6400(),
            Self::lpddr5x_8533(),
            Self::lpddr6_14400(),
        ]
    }

    /// A custom bandwidth point (GB/s) for fine sweeps.
    ///
    /// # Panics
    ///
    /// Panics for non-positive bandwidth.
    pub fn custom(bandwidth_gbps: f64) -> Self {
        assert!(bandwidth_gbps > 0.0, "bandwidth must be positive");
        Self {
            name: format!("custom-{bandwidth_gbps:.0}GBps"),
            bandwidth_gbps,
            energy_pj_per_byte: 20.0,
        }
    }

    /// Bytes transferable per cycle at `clock_ghz`.
    pub fn bytes_per_cycle(&self, clock_ghz: f64) -> f64 {
        self.bandwidth_gbps / clock_ghz
    }

    /// Cycles to move `bytes` at `clock_ghz`, at peak utilization.
    pub fn cycles_for(&self, bytes: f64, clock_ghz: f64) -> f64 {
        bytes / self.bytes_per_cycle(clock_ghz)
    }

    /// Energy in pJ to move `bytes`.
    pub fn energy_pj(&self, bytes: f64) -> f64 {
        bytes * self.energy_pj_per_byte
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_preset_matches_paper() {
        let d = DramModel::lpddr4_3200();
        assert_eq!(d.bandwidth_gbps, 51.2);
        // At 1 GHz, 51.2 bytes move per cycle.
        assert!((d.bytes_per_cycle(1.0) - 51.2).abs() < 1e-9);
    }

    #[test]
    fn sweep_is_monotonically_faster() {
        let sweep = DramModel::sweep();
        for w in sweep.windows(2) {
            assert!(w[1].bandwidth_gbps > w[0].bandwidth_gbps);
            // Newer generations cost less energy per byte.
            assert!(w[1].energy_pj_per_byte <= w[0].energy_pj_per_byte);
        }
        assert!(sweep.last().unwrap().bandwidth_gbps > 220.0);
    }

    #[test]
    fn cycles_scale_inversely_with_bandwidth() {
        let slow = DramModel::lpddr4_3200();
        let fast = DramModel::lpddr5_6400();
        let bytes = 1e6;
        assert!(slow.cycles_for(bytes, 1.0) > fast.cycles_for(bytes, 1.0));
        assert!(
            (slow.cycles_for(bytes, 1.0) / fast.cycles_for(bytes, 1.0)
                - fast.bandwidth_gbps / slow.bandwidth_gbps)
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn energy_is_linear_in_bytes() {
        let d = DramModel::lpddr4_3200();
        assert!((d.energy_pj(100.0) - 2500.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn custom_rejects_zero() {
        let _ = DramModel::custom(0.0);
    }
}
