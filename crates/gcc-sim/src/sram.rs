//! On-chip SRAM buffer model: CACTI-P-style access energy as a function of
//! capacity (the paper models its buffers with CACTI-P at 28 nm).

/// One on-chip buffer instance.
#[derive(Debug, Clone, PartialEq)]
pub struct SramBuffer {
    /// Buffer name (Table 4 row).
    pub name: String,
    /// Capacity in KiB.
    pub size_kb: f64,
    /// Access counters (reads + writes), in 4-byte words.
    pub accesses: u64,
}

impl SramBuffer {
    /// Creates a buffer of `size_kb` KiB.
    ///
    /// # Panics
    ///
    /// Panics for non-positive capacity.
    pub fn new(name: &str, size_kb: f64) -> Self {
        assert!(size_kb > 0.0, "buffer capacity must be positive");
        Self {
            name: name.to_string(),
            size_kb,
            accesses: 0,
        }
    }

    /// CACTI-style per-access (4-byte word) energy in pJ: a wordline/
    /// bitline term growing with √capacity plus a fixed decoder/IO term.
    /// Calibrated so a 32 KB bank costs ~1.3 pJ/word and a 4 KB bank
    /// ~0.7 pJ/word at 28 nm — consistent with the paper's buffer power
    /// being a small fraction of total (Table 4: 51 mW for 190 KB).
    pub fn energy_per_access_pj(&self) -> f64 {
        0.5 + 0.15 * self.size_kb.sqrt()
    }

    /// Records `n` word accesses.
    pub fn access(&mut self, n: u64) {
        self.accesses += n;
    }

    /// Total energy spent in pJ.
    pub fn energy_pj(&self) -> f64 {
        self.accesses as f64 * self.energy_per_access_pj()
    }
}

/// Energy for `words` accesses to a buffer of `size_kb` without tracking
/// state — convenience for the analytical models.
pub fn sram_energy_pj(size_kb: f64, words: u64) -> f64 {
    let mut b = SramBuffer::new("tmp", size_kb);
    b.access(words);
    b.energy_pj()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn larger_buffers_cost_more_per_access() {
        let small = SramBuffer::new("s", 4.0);
        let big = SramBuffer::new("b", 128.0);
        assert!(big.energy_per_access_pj() > small.energy_per_access_pj());
    }

    #[test]
    fn energy_accumulates_with_accesses() {
        let mut b = SramBuffer::new("x", 32.0);
        assert_eq!(b.energy_pj(), 0.0);
        b.access(1000);
        let e1 = b.energy_pj();
        b.access(1000);
        assert!((b.energy_pj() - 2.0 * e1).abs() < 1e-9);
    }

    #[test]
    fn calibration_anchor_32kb() {
        let b = SramBuffer::new("image", 32.0);
        let e = b.energy_per_access_pj();
        assert!((1.0..2.0).contains(&e), "32KB access energy {e} pJ");
    }

    #[test]
    fn helper_matches_struct() {
        let mut b = SramBuffer::new("h", 16.0);
        b.access(500);
        assert!((sram_energy_pj(16.0, 500) - b.energy_pj()).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = SramBuffer::new("bad", 0.0);
    }
}
