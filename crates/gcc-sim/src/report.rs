//! Common simulation-report structures shared by the GSCore and GCC
//! models.

/// Timing of one pipeline phase: cycles are the max of the compute demand
/// and the memory demand (each phase is internally pipelined; the slower
/// resource bounds throughput).
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseTiming {
    /// Phase name.
    pub name: String,
    /// Cycles the compute pipeline needs.
    pub compute_cycles: f64,
    /// Bytes moved to/from DRAM during the phase.
    pub dram_bytes: f64,
    /// Cycles the DRAM needs at peak bandwidth.
    pub dram_cycles: f64,
}

impl PhaseTiming {
    /// The phase's wall-clock cycles: whichever resource is the
    /// bottleneck.
    pub fn cycles(&self) -> f64 {
        self.compute_cycles.max(self.dram_cycles)
    }

    /// `true` when DRAM is the bottleneck.
    pub fn memory_bound(&self) -> bool {
        self.dram_cycles > self.compute_cycles
    }
}

/// DRAM traffic by content class (Fig. 11(b)).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TrafficBreakdown {
    /// 3D Gaussian attribute bytes (geometry + SH).
    pub gauss3d_bytes: f64,
    /// Projected 2D Gaussian bytes (written then re-read).
    pub gauss2d_bytes: f64,
    /// Tile key-value mapping bytes.
    pub kv_bytes: f64,
    /// Other bytes (depth/group metadata, sub-view spill).
    pub other_bytes: f64,
}

impl TrafficBreakdown {
    /// Total DRAM bytes.
    pub fn total(&self) -> f64 {
        self.gauss3d_bytes + self.gauss2d_bytes + self.kv_bytes + self.other_bytes
    }
}

/// Energy by source (Fig. 12).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Off-chip memory access energy, pJ.
    pub dram_pj: f64,
    /// On-chip SRAM access energy, pJ.
    pub sram_pj: f64,
    /// Datapath (compute) energy, pJ.
    pub compute_pj: f64,
}

impl EnergyBreakdown {
    /// Total energy in pJ.
    pub fn total_pj(&self) -> f64 {
        self.dram_pj + self.sram_pj + self.compute_pj
    }

    /// Total energy in millijoules.
    pub fn total_mj(&self) -> f64 {
        self.total_pj() * 1e-9
    }
}

/// The full result of simulating one frame on one accelerator.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Accelerator name.
    pub accelerator: String,
    /// Scene name.
    pub scene: String,
    /// Per-phase timing.
    pub phases: Vec<PhaseTiming>,
    /// Total frame cycles (phases are sequential).
    pub total_cycles: f64,
    /// Clock in GHz.
    pub clock_ghz: f64,
    /// Energy breakdown.
    pub energy: EnergyBreakdown,
    /// DRAM traffic breakdown.
    pub traffic: TrafficBreakdown,
    /// Die area in mm².
    pub area_mm2: f64,
    /// Rendering computation count (alpha + blend ops), for Fig. 11(c).
    pub render_ops: f64,
}

impl SimReport {
    /// Frame time in milliseconds.
    pub fn frame_ms(&self) -> f64 {
        self.total_cycles / (self.clock_ghz * 1e9) * 1e3
    }

    /// Frames per second.
    pub fn fps(&self) -> f64 {
        1e3 / self.frame_ms()
    }

    /// Area-normalized throughput in FPS/mm² (the paper's headline
    /// comparison metric).
    pub fn fps_per_mm2(&self) -> f64 {
        self.fps() / self.area_mm2
    }

    /// Energy per frame in mJ.
    pub fn energy_per_frame_mj(&self) -> f64 {
        self.energy.total_mj()
    }

    /// Area-normalized energy metric (mJ·mm² — lower is better when
    /// comparing at equal area budget; the paper normalizes efficiency by
    /// area).
    pub fn energy_area_product(&self) -> f64 {
        self.energy_per_frame_mj() * self.area_mm2
    }

    /// Fraction of total cycles spent in the named phase.
    pub fn phase_fraction(&self, name: &str) -> f64 {
        let c: f64 = self
            .phases
            .iter()
            .filter(|p| p.name == name)
            .map(PhaseTiming::cycles)
            .sum();
        c / self.total_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> SimReport {
        SimReport {
            accelerator: "test".into(),
            scene: "scene".into(),
            phases: vec![
                PhaseTiming {
                    name: "pre".into(),
                    compute_cycles: 4e5,
                    dram_bytes: 1e6,
                    dram_cycles: 2e4,
                },
                PhaseTiming {
                    name: "render".into(),
                    compute_cycles: 6e5,
                    dram_bytes: 0.0,
                    dram_cycles: 0.0,
                },
            ],
            total_cycles: 1e6,
            clock_ghz: 1.0,
            energy: EnergyBreakdown {
                dram_pj: 5e9,
                sram_pj: 1e9,
                compute_pj: 2e9,
            },
            traffic: TrafficBreakdown::default(),
            area_mm2: 2.0,
            render_ops: 1e6,
        }
    }

    #[test]
    fn fps_from_cycles() {
        let r = report();
        // 1e6 cycles at 1 GHz = 1 ms → 1000 FPS.
        assert!((r.frame_ms() - 1.0).abs() < 1e-12);
        assert!((r.fps() - 1000.0).abs() < 1e-9);
        assert!((r.fps_per_mm2() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn phase_bottleneck_is_max_of_resources() {
        let p = PhaseTiming {
            name: "x".into(),
            compute_cycles: 100.0,
            dram_bytes: 1e4,
            dram_cycles: 300.0,
        };
        assert_eq!(p.cycles(), 300.0);
        assert!(p.memory_bound());
    }

    #[test]
    fn energy_total_sums_components() {
        let r = report();
        assert!((r.energy.total_mj() - 8.0).abs() < 1e-12);
        assert!((r.energy_per_frame_mj() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn phase_fraction() {
        let r = report();
        assert!((r.phase_fraction("pre") - 0.4).abs() < 1e-12);
        assert!((r.phase_fraction("render") - 0.6).abs() < 1e-12);
    }
}
