//! Arithmetic operation counters and 28 nm-class per-op energy constants.
//!
//! Both accelerators build their datapaths from floating-point FMAs
//! (paper §4.1, citing FPnew [25]); GCC's EXP unit is a fixed-point
//! 16-segment LUT (§4.4), GSCore's an FP16 unit.

use std::ops::{Add, AddAssign};

/// Energy per operation in pJ (28 nm, ~1 GHz signoff, datapath + local
/// control; values in the range used by accelerator papers of this class).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpEnergy {
    /// FP32 fused multiply-add.
    pub fma32_pj: f64,
    /// FP16 fused multiply-add.
    pub fma16_pj: f64,
    /// LUT-based fixed-point EXP evaluation.
    pub exp_lut_pj: f64,
    /// Iterative fused divide / square root (per result).
    pub div_sqrt_pj: f64,
    /// Comparator / small ALU op.
    pub cmp_pj: f64,
}

impl Default for OpEnergy {
    fn default() -> Self {
        Self {
            fma32_pj: 3.0,
            fma16_pj: 1.1,
            exp_lut_pj: 0.8,
            div_sqrt_pj: 9.0,
            cmp_pj: 0.25,
        }
    }
}

/// Counters for the operations a frame executes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounters {
    /// FP32 FMAs.
    pub fma32: u64,
    /// FP16 FMAs.
    pub fma16: u64,
    /// EXP evaluations.
    pub exp: u64,
    /// Divide/square-root results.
    pub div_sqrt: u64,
    /// Comparisons.
    pub cmp: u64,
}

impl OpCounters {
    /// Total dynamic energy in pJ under `e`.
    pub fn energy_pj(&self, e: &OpEnergy) -> f64 {
        self.fma32 as f64 * e.fma32_pj
            + self.fma16 as f64 * e.fma16_pj
            + self.exp as f64 * e.exp_lut_pj
            + self.div_sqrt as f64 * e.div_sqrt_pj
            + self.cmp as f64 * e.cmp_pj
    }

    /// Total operation count.
    pub fn total(&self) -> u64 {
        self.fma32 + self.fma16 + self.exp + self.div_sqrt + self.cmp
    }
}

impl Add for OpCounters {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Self {
            fma32: self.fma32 + rhs.fma32,
            fma16: self.fma16 + rhs.fma16,
            exp: self.exp + rhs.exp,
            div_sqrt: self.div_sqrt + rhs.div_sqrt,
            cmp: self.cmp + rhs.cmp,
        }
    }
}

impl AddAssign for OpCounters {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

/// Per-Gaussian FMA cost of the full projection chain (view transform,
/// covariance reconstruction, EWA product, conic) — shared by both
/// accelerator models.
pub const FMA_PER_PROJECTION: u64 = gcc_core::projection::FMA_PER_PROJECTION;

/// Per-Gaussian FMA cost of a full three-channel SH evaluation.
pub const FMA_PER_SH: u64 = gcc_core::sh::FMA_PER_EVAL;

/// Per-Gaussian divide/sqrt results in projection (NDC division, radius).
pub const DIVSQRT_PER_PROJECTION: u64 = 4;

/// FMAs per pixel for alpha evaluation (quadratic form + exponent input).
pub const FMA_PER_ALPHA: u64 = 5;

/// FMAs per pixel for blending (transmittance update + 3-channel color).
pub const FMA_PER_BLEND: u64 = 5;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_is_weighted_sum() {
        let c = OpCounters {
            fma32: 10,
            fma16: 20,
            exp: 5,
            div_sqrt: 2,
            cmp: 100,
        };
        let e = OpEnergy::default();
        let expect = 10.0 * 3.0 + 20.0 * 1.1 + 5.0 * 0.8 + 2.0 * 9.0 + 100.0 * 0.25;
        assert!((c.energy_pj(&e) - expect).abs() < 1e-9);
    }

    #[test]
    fn counters_add() {
        let a = OpCounters {
            fma32: 1,
            ..OpCounters::default()
        };
        let b = OpCounters {
            fma32: 2,
            exp: 3,
            ..OpCounters::default()
        };
        let c = a + b;
        assert_eq!(c.fma32, 3);
        assert_eq!(c.exp, 3);
        assert_eq!(c.total(), 6);
    }

    #[test]
    fn fp16_is_cheaper_than_fp32() {
        let e = OpEnergy::default();
        assert!(e.fma16_pj < e.fma32_pj);
        assert!(e.exp_lut_pj < e.fma16_pj);
    }
}
