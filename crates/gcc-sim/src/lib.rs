//! Cycle-level and energy-level models of the GCC and GSCore 3DGS
//! accelerators (paper §5), plus the DRAM/SRAM substrate and a GPU cost
//! model for the dataflow study of Fig. 15.
//!
//! Methodology mirrors the paper's: a functional renderer produces exact
//! per-frame workload statistics (Gaussians processed, bytes moved, pixels
//! evaluated — `gcc-render`), and an analytical per-module cost model
//! turns them into cycles, joules and silicon area. The paper's own
//! evaluation is driven by a cycle-validated Python simulator of the same
//! construction; area/power constants are seeded from its Table 4 and the
//! GSCore paper.
//!
//! Modules:
//!
//! * [`dram`] — bandwidth/energy presets LPDDR4-3200 … LPDDR6-14400 (Fig. 14),
//! * [`sram`] — CACTI-style on-chip buffer access energy,
//! * [`ops`] — per-operation energy (28 nm class) and op counters,
//! * [`area`] — the Table 4 area/power breakdown for GCC and GSCore totals,
//! * [`gscore`] — the baseline accelerator model (two-stage, tile-wise),
//! * [`gcc`] — the proposed accelerator model (Gaussian-wise, conditional),
//! * [`gpu`] — the roofline GPU cost model (Fig. 15).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod area;
pub mod dram;
pub mod gcc;
pub mod gpu;
pub mod gscore;
pub mod ops;
pub mod report;
pub mod scaling;
pub mod sram;

pub use report::{EnergyBreakdown, PhaseTiming, SimReport, TrafficBreakdown};
