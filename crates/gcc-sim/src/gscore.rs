//! The baseline accelerator model: GSCore (Lee et al., ASPLOS'24), as the
//! paper reproduces it — standard two-stage dataflow, OBB + tile-wise
//! rendering, 4-way projection and SH units, bitonic-16 sorting, 272 KB
//! SRAM, 3.95 mm² at 28 nm / 1 GHz.
//!
//! The model consumes exact workload statistics from the instrumented
//! tile renderer and charges per-module cycle and energy costs. Phases
//! (preprocess → sort → render) execute sequentially, each internally
//! bounded by the slower of compute and DRAM.

use crate::dram::DramModel;
use crate::ops::{
    OpCounters, OpEnergy, DIVSQRT_PER_PROJECTION, FMA_PER_ALPHA, FMA_PER_BLEND, FMA_PER_PROJECTION,
    FMA_PER_SH,
};
use crate::report::{EnergyBreakdown, PhaseTiming, SimReport, TrafficBreakdown};
use crate::sram::sram_energy_pj;
use gcc_core::{Camera, Gaussian3D};
use gcc_render::pipeline::FrameStats;
use gcc_render::standard::{render_standard, StandardConfig, StandardOutput};

/// GSCore configuration.
#[derive(Debug, Clone)]
pub struct GscoreConfig {
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Off-chip memory.
    pub dram: DramModel,
    /// Parallel culling/projection units (GSCore: 4).
    pub projection_parallelism: u32,
    /// Parallel SH units (GSCore: 4).
    pub sh_parallelism: u32,
    /// Volume-rendering lanes (GSCore: 256-pixel VRC).
    pub alpha_lanes: u32,
    /// Elements per cycle through the hierarchical bitonic sorter.
    pub sort_throughput: f64,
    /// Fixed per-(tile, Gaussian) issue overhead in cycles (fetch, setup).
    pub load_overhead_cycles: f64,
    /// DRAM bandwidth utilization for sequential streams (preprocessing
    /// reads every Gaussian record back-to-back).
    pub seq_dram_efficiency: f64,
    /// DRAM bandwidth utilization for the tile-wise rendering phase:
    /// repeated, depth-ordered random reads of 48-byte 2D records achieve
    /// a small fraction of peak (row misses + burst under-utilization) —
    /// the "high-cost, repeated DRAM accesses" of paper §5.3.
    pub scatter_dram_efficiency: f64,
}

impl Default for GscoreConfig {
    fn default() -> Self {
        Self {
            clock_ghz: 1.0,
            dram: DramModel::lpddr4_3200(),
            projection_parallelism: 4,
            sh_parallelism: 4,
            alpha_lanes: 256,
            sort_throughput: 4.0,
            load_overhead_cycles: 4.0,
            seq_dram_efficiency: 0.85,
            scatter_dram_efficiency: 0.40,
        }
    }
}

/// Byte sizes of the standard dataflow's DRAM records.
pub mod records {
    /// Full 3D Gaussian record (59 × FP32).
    pub const GAUSS3D: f64 = 236.0;
    /// Projected 2D Gaussian record (μ′, conic, color, depth, opacity,
    /// radius ≈ 12 × FP32).
    pub const GAUSS2D: f64 = 48.0;
    /// Gaussian-tile key-value pair (tile key + Gaussian index).
    pub const KV: f64 = 8.0;
}

/// Simulates one frame on the GSCore model. Returns the report plus the
/// renderer output it was derived from (image + stats), so callers can
/// reuse both.
pub fn simulate_gscore(
    gaussians: &[Gaussian3D],
    cam: &Camera,
    cfg: &GscoreConfig,
    scene_name: &str,
) -> (SimReport, StandardOutput) {
    let out = render_standard(gaussians, cam, &StandardConfig::gscore());
    let report = report_from_stats(&out.stats, cfg, scene_name);
    (report, out)
}

/// Builds the timing/energy report from unified workload statistics
/// (exposed so scaling studies can rescale the stats without
/// re-rendering). Reads the common core plus the tile-wise schedule
/// section of [`FrameStats`].
pub fn report_from_stats(s: &FrameStats, cfg: &GscoreConfig, scene_name: &str) -> SimReport {
    let n = s.total_gaussians as f64;
    let pre = s.projected as f64;
    let kv = s.kv_pairs as f64;
    let loads = s.tile_loads as f64;
    let tested = s.pixels_tested as f64;
    let blended = s.pixels_blended as f64;

    // ---- Phase 1: preprocessing (cull → project → SH for everything). --
    let proj_units = f64::from(cfg.projection_parallelism);
    let sh_units = f64::from(cfg.sh_parallelism);
    // Pipelined II=1 per unit: one Gaussian per cycle per unit per task.
    let pre_compute = n / proj_units + pre / proj_units + pre / sh_units;
    let pre_read = n * records::GAUSS3D;
    let pre_write = pre * records::GAUSS2D + kv * records::KV;
    let pre_bytes = pre_read + pre_write;

    // ---- Phase 2: sorting (per-tile depth sort of KV lists). ----
    let sort_compute = kv / cfg.sort_throughput;
    let sort_bytes = kv * records::KV; // stream KV lists back in

    // ---- Phase 3: tile-wise rendering. ----
    let lanes = f64::from(cfg.alpha_lanes);
    let alpha_cycles = (tested / lanes).max(loads); // ≥1 cycle per load
    let render_compute = loads * cfg.load_overhead_cycles + alpha_cycles;
    let render_bytes = loads * records::GAUSS2D;

    let phases = vec![
        PhaseTiming {
            name: "preprocess".into(),
            compute_cycles: pre_compute,
            dram_bytes: pre_bytes,
            dram_cycles: cfg.dram.cycles_for(pre_bytes, cfg.clock_ghz) / cfg.seq_dram_efficiency,
        },
        PhaseTiming {
            name: "sort".into(),
            compute_cycles: sort_compute,
            dram_bytes: sort_bytes,
            dram_cycles: cfg.dram.cycles_for(sort_bytes, cfg.clock_ghz) / cfg.seq_dram_efficiency,
        },
        PhaseTiming {
            name: "render".into(),
            compute_cycles: render_compute,
            dram_bytes: render_bytes,
            dram_cycles: cfg.dram.cycles_for(render_bytes, cfg.clock_ghz)
                / cfg.scatter_dram_efficiency,
        },
    ];
    let total_cycles: f64 = phases.iter().map(PhaseTiming::cycles).sum();

    // ---- Operation counts (energy). ----
    let ops = OpCounters {
        fma32: (n * 12.0) as u64 // culling view transform
            + (pre as u64) * FMA_PER_PROJECTION
            + (pre as u64) * FMA_PER_SH
            + (tested as u64) * FMA_PER_ALPHA
            + (blended as u64) * FMA_PER_BLEND,
        fma16: 0,
        exp: tested as u64, // FP16 EXP unit, modeled at LUT-class energy ×2
        div_sqrt: (pre as u64) * DIVSQRT_PER_PROJECTION,
        cmp: (kv * 16.0) as u64, // sorting comparisons
    };
    let e = OpEnergy::default();
    let compute_pj = ops.energy_pj(&e) + tested * e.exp_lut_pj; // FP16 EXP premium

    // ---- SRAM traffic: 2D Gaussian buffer + VRC state. ----
    let sram_words = loads * 12.0      // 2D record into the tile buffer
        + tested * 2.0                 // T read + alpha staging
        + blended * 4.0                // color+T update
        + kv * 2.0; // KV staging
    let sram_pj = sram_energy_pj(272.0 / 8.0, sram_words as u64);

    let traffic = TrafficBreakdown {
        gauss3d_bytes: pre_read,
        gauss2d_bytes: pre * records::GAUSS2D + render_bytes,
        kv_bytes: kv * records::KV * 2.0,
        other_bytes: 0.0,
    };

    let energy = EnergyBreakdown {
        dram_pj: cfg.dram.energy_pj(traffic.total()),
        sram_pj,
        compute_pj,
    };

    SimReport {
        accelerator: "GSCore".into(),
        scene: scene_name.to_string(),
        phases,
        total_cycles,
        clock_ghz: cfg.clock_ghz,
        energy,
        traffic,
        area_mm2: crate::area::gscore_summary().area_mm2,
        render_ops: tested * FMA_PER_ALPHA as f64 + blended * FMA_PER_BLEND as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcc_math::Vec3;

    fn tiny_workload() -> (Vec<Gaussian3D>, Camera) {
        let cam = Camera::look_at(
            Vec3::new(0.0, 0.0, -4.0),
            Vec3::ZERO,
            Vec3::new(0.0, 1.0, 0.0),
            60.0,
            128,
            96,
        );
        let gaussians = (0..200)
            .map(|i| {
                let t = i as f32 / 200.0;
                Gaussian3D::isotropic(
                    Vec3::new((t * 17.0).sin(), (t * 11.0).cos() * 0.6, t * 2.0),
                    0.08,
                    0.1f32.max(t),
                    Vec3::new(t, 1.0 - t, 0.4),
                )
            })
            .collect();
        (gaussians, cam)
    }

    #[test]
    fn report_has_three_sequential_phases() {
        let (g, cam) = tiny_workload();
        let (r, _) = simulate_gscore(&g, &cam, &GscoreConfig::default(), "tiny");
        assert_eq!(r.phases.len(), 3);
        let sum: f64 = r.phases.iter().map(PhaseTiming::cycles).sum();
        assert!((sum - r.total_cycles).abs() < 1e-6);
        assert!(r.fps() > 0.0);
    }

    #[test]
    fn preprocessing_reads_every_gaussian_fully() {
        let (g, cam) = tiny_workload();
        let (r, out) = simulate_gscore(&g, &cam, &GscoreConfig::default(), "tiny");
        // Challenge 1: all 59 floats of every Gaussian stream in.
        let expect = out.stats.total_gaussians as f64 * records::GAUSS3D;
        assert!((r.traffic.gauss3d_bytes - expect).abs() < 1e-6);
    }

    #[test]
    fn render_traffic_scales_with_tile_loads() {
        let (g, cam) = tiny_workload();
        let (r, out) = simulate_gscore(&g, &cam, &GscoreConfig::default(), "tiny");
        assert!(r.traffic.gauss2d_bytes >= out.stats.tile_loads as f64 * records::GAUSS2D);
    }

    #[test]
    fn higher_bandwidth_never_slows_the_frame() {
        let (g, cam) = tiny_workload();
        let slow = GscoreConfig::default();
        let fast = GscoreConfig {
            dram: DramModel::lpddr5_6400(),
            ..GscoreConfig::default()
        };
        let (rs, _) = simulate_gscore(&g, &cam, &slow, "tiny");
        let (rf, _) = simulate_gscore(&g, &cam, &fast, "tiny");
        assert!(rf.total_cycles <= rs.total_cycles);
    }

    #[test]
    fn energy_is_dominated_by_memory_system() {
        // Fig. 12: DRAM accesses dominate in both designs.
        let (g, cam) = tiny_workload();
        let (r, _) = simulate_gscore(&g, &cam, &GscoreConfig::default(), "tiny");
        assert!(r.energy.dram_pj > r.energy.compute_pj);
    }

    #[test]
    fn area_matches_published_gscore() {
        let (g, cam) = tiny_workload();
        let (r, _) = simulate_gscore(&g, &cam, &GscoreConfig::default(), "tiny");
        assert!((r.area_mm2 - 3.95).abs() < 1e-9);
    }
}
