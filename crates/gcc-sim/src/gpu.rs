//! A roofline-style GPU cost model for the dataflow study of paper §6
//! (Fig. 15): can the GCC dataflow simply be run on a GPU?
//!
//! The paper's findings, which this model encodes mechanistically:
//!
//! 1. On GPUs, 3DGS inference is *compute-bound* (large caches make data
//!    movement cheap), so rendering dominates and dataflows that mainly
//!    cut data movement gain little.
//! 2. The GCC dataflow implemented Gaussian-parallel needs atomic
//!    read-modify-write blending (many Gaussians write one pixel), which
//!    *increases* rendering time on a GPU despite fewer alpha
//!    evaluations.

use gcc_render::pipeline::FrameStats;

use crate::ops::{FMA_PER_ALPHA, FMA_PER_BLEND, FMA_PER_PROJECTION, FMA_PER_SH};

/// A GPU platform for the cost model.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuPlatform {
    /// Marketing name.
    pub name: String,
    /// Peak FP32 throughput in TFLOPS.
    pub tflops: f64,
    /// Sustained fraction of peak the rasterization kernels achieve.
    pub utilization: f64,
    /// Multiplier on blending cost when many threads contend on the same
    /// pixel with atomics (the Gaussian-parallel penalty of §6).
    pub atomic_penalty: f64,
}

impl GpuPlatform {
    /// NVIDIA RTX 3090 (cloud-class, 35.6 TFLOPS FP32).
    pub fn rtx3090() -> Self {
        Self {
            name: "RTX 3090".into(),
            tflops: 35.6,
            utilization: 0.25,
            atomic_penalty: 3.5,
        }
    }

    /// NVIDIA Jetson AGX Xavier (mobile-class, 1.4 TFLOPS FP32).
    pub fn jetson_xavier() -> Self {
        Self {
            name: "Jetson Xavier".into(),
            tflops: 1.4,
            utilization: 0.22,
            atomic_penalty: 4.5,
        }
    }

    /// Effective FLOP/s available to the pipeline.
    pub fn effective_flops(&self) -> f64 {
        self.tflops * 1e12 * self.utilization
    }
}

/// Per-frame execution-time breakdown (milliseconds), Fig. 15's slices.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuBreakdown {
    /// Preprocessing (cull + project + SH).
    pub preprocess_ms: f64,
    /// Gaussian→tile duplication (KV expansion) — standard dataflow only.
    pub duplicate_ms: f64,
    /// Depth sorting.
    pub sort_ms: f64,
    /// Alpha + blending.
    pub render_ms: f64,
}

impl GpuBreakdown {
    /// Total frame time in ms.
    pub fn total_ms(&self) -> f64 {
        self.preprocess_ms + self.duplicate_ms + self.sort_ms + self.render_ms
    }

    /// Frames per second.
    pub fn fps(&self) -> f64 {
        1e3 / self.total_ms()
    }
}

/// FLOPs-per-element constants for GPU kernels (includes addressing and
/// memory-latency-hiding overhead folded into an op multiplier).
const GPU_OP_OVERHEAD: f64 = 3.0;
/// Per-KV-pair duplication cost (key construction + scatter).
const FLOP_PER_KV: f64 = 24.0;
/// Per-element radix-sort cost.
const FLOP_PER_SORT: f64 = 40.0;

/// Cost of the *standard* dataflow on a GPU, from the tile-wise section
/// of the unified frame statistics.
pub fn standard_dataflow_cost(s: &FrameStats, gpu: &GpuPlatform) -> GpuBreakdown {
    let flops = gpu.effective_flops();
    let ms = |fl: f64| fl * GPU_OP_OVERHEAD / flops * 1e3;
    let n = s.total_gaussians as f64;
    let pre = s.projected as f64;
    GpuBreakdown {
        preprocess_ms: ms(n * 12.0 + pre * (FMA_PER_PROJECTION + FMA_PER_SH) as f64),
        duplicate_ms: ms(s.kv_pairs as f64 * FLOP_PER_KV),
        sort_ms: ms(s.kv_pairs as f64 * FLOP_PER_SORT),
        render_ms: ms(s.pixels_tested as f64 * FMA_PER_ALPHA as f64
            + s.pixels_blended as f64 * FMA_PER_BLEND as f64),
    }
}

/// Cost of the *GCC* dataflow on a GPU, from Gaussian-wise stats: less
/// preprocessing and no duplication, but atomic blending inflates
/// rendering (paper §6, observation 2).
pub fn gcc_dataflow_cost(s: &FrameStats, gpu: &GpuPlatform) -> GpuBreakdown {
    let flops = gpu.effective_flops();
    let ms = |fl: f64| fl * GPU_OP_OVERHEAD / flops * 1e3;
    let n = s.total_gaussians as f64;
    GpuBreakdown {
        preprocess_ms: ms(n * 12.0
            + s.geometry_loads as f64 * FMA_PER_PROJECTION as f64
            + s.sh_loads as f64 * FMA_PER_SH as f64),
        duplicate_ms: 0.0,
        sort_ms: ms(s.sort_elements as f64 * FLOP_PER_SORT),
        render_ms: ms((s.pixels_evaluated as f64 * FMA_PER_ALPHA as f64
            + s.pixels_blended as f64 * FMA_PER_BLEND as f64)
            * gpu.atomic_penalty),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn standard_stats() -> FrameStats {
        FrameStats {
            total_gaussians: 100_000,
            geometry_loads: 100_000,
            projected: 80_000,
            sh_loads: 80_000,
            rendered: 30_000,
            kv_pairs: 300_000,
            tile_loads: 250_000,
            unique_loaded: 60_000,
            pixels_tested: 20_000_000,
            pixels_tested_aabb: 30_000_000,
            pixels_tested_obb: 20_000_000,
            pixels_blended: 5_000_000,
            sort_elements: 300_000,
            tiles: 800,
            windows: 1,
            ..FrameStats::default()
        }
    }

    fn gw_stats() -> FrameStats {
        FrameStats {
            total_gaussians: 100_000,
            near_culled: 5_000,
            groups_total: 400,
            groups_processed: 250,
            groups_skipped: 150,
            geometry_loads: 60_000,
            projected: 50_000,
            sh_loads: 50_000,
            render_invocations: 32_000,
            rendered: 30_000,
            blocks_dispatched: 900_000,
            blocks_masked_skips: 300_000,
            pixels_evaluated: 8_000_000,
            alpha_lane_evals: 6_000_000,
            pixels_blended: 5_000_000,
            sort_elements: 50_000,
            windows: 6,
            ..FrameStats::default()
        }
    }

    #[test]
    fn render_dominates_on_gpu() {
        // Paper observation 1: rendering dominates GPU execution.
        let b = standard_dataflow_cost(&standard_stats(), &GpuPlatform::rtx3090());
        assert!(b.render_ms > b.preprocess_ms);
        assert!(b.render_ms > 0.4 * b.total_ms());
    }

    #[test]
    fn gcc_dataflow_increases_gpu_render_time() {
        // Paper observation 2: atomics make Gaussian-parallel rendering
        // slower even with fewer alpha evaluations.
        let gpu = GpuPlatform::rtx3090();
        let std_b = standard_dataflow_cost(&standard_stats(), &gpu);
        let gcc_b = gcc_dataflow_cost(&gw_stats(), &gpu);
        assert!(gcc_b.render_ms > std_b.render_ms);
        // But preprocessing and duplication shrink.
        assert!(gcc_b.preprocess_ms < std_b.preprocess_ms);
        assert_eq!(gcc_b.duplicate_ms, 0.0);
    }

    #[test]
    fn xavier_is_far_slower_than_3090() {
        let s = standard_stats();
        let fast = standard_dataflow_cost(&s, &GpuPlatform::rtx3090());
        let slow = standard_dataflow_cost(&s, &GpuPlatform::jetson_xavier());
        let ratio = slow.total_ms() / fast.total_ms();
        assert!(ratio > 10.0, "ratio {ratio}");
    }

    #[test]
    fn xavier_misses_the_90fps_target_at_paper_scale() {
        // Paper §6: GCC dataflow on Xavier delivers only 6-20 FPS. The
        // fixture is at repro scale (~1/10 the paper's workload), so scale
        // the per-frame work up by 10× for the absolute claim.
        let mut s = gw_stats();
        s.total_gaussians *= 10;
        s.geometry_loads *= 10;
        s.sh_loads *= 10;
        s.sort_elements *= 10;
        s.pixels_evaluated *= 10;
        s.pixels_blended *= 10;
        let b = gcc_dataflow_cost(&s, &GpuPlatform::jetson_xavier());
        assert!(b.fps() < 90.0, "fps {}", b.fps());
    }
}
