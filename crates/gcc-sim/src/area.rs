//! Silicon area and power: the paper's Table 4 breakdown for GCC and the
//! published GSCore totals, all at 28 nm / 1 GHz.

/// One hardware component's area/power contribution.
#[derive(Debug, Clone, PartialEq)]
pub struct Component {
    /// Component name (Table 4 row).
    pub name: &'static str,
    /// Area in mm².
    pub area_mm2: f64,
    /// Power in mW (dynamic + leakage at nominal activity).
    pub power_mw: f64,
    /// Configuration note (unit counts / capacities).
    pub configuration: &'static str,
}

/// The GCC compute units of Table 4.
pub fn gcc_compute_units() -> Vec<Component> {
    vec![
        Component {
            name: "RCA",
            area_mm2: 0.010,
            power_mw: 2.0,
            configuration: "4 units",
        },
        Component {
            name: "Projection Unit",
            area_mm2: 0.358,
            power_mw: 147.0,
            configuration: "2 units",
        },
        Component {
            name: "SH Unit",
            area_mm2: 0.339,
            power_mw: 141.0,
            configuration: "1 unit",
        },
        Component {
            name: "Sorting Unit",
            area_mm2: 0.010,
            power_mw: 11.0,
            configuration: "1 unit",
        },
        Component {
            name: "Alpha Unit",
            area_mm2: 0.576,
            power_mw: 266.0,
            configuration: "64 PEs",
        },
        Component {
            name: "Blending Unit",
            area_mm2: 0.382,
            power_mw: 172.0,
            configuration: "64 PEs",
        },
    ]
}

/// The GCC on-chip buffers of Table 4.
pub fn gcc_buffers() -> Vec<Component> {
    vec![
        Component {
            name: "Shared Buffer",
            area_mm2: 0.019,
            power_mw: 3.0,
            configuration: "2 x 1 x 6 KB",
        },
        Component {
            name: "SH Buffer",
            area_mm2: 0.116,
            power_mw: 10.0,
            configuration: "2 x 3 x 8 KB",
        },
        Component {
            name: "Sorted Buffer",
            area_mm2: 0.029,
            power_mw: 1.0,
            configuration: "2 x 1 x 1 KB",
        },
        Component {
            name: "Image Buffer",
            area_mm2: 0.872,
            power_mw: 37.0,
            configuration: "1 x 4 x 32 KB",
        },
    ]
}

/// Area/power summary of one accelerator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChipSummary {
    /// Total die area in mm².
    pub area_mm2: f64,
    /// Compute-unit area in mm².
    pub compute_area_mm2: f64,
    /// Buffer area in mm².
    pub buffer_area_mm2: f64,
    /// Total power in mW.
    pub power_mw: f64,
    /// Total on-chip SRAM in KB.
    pub sram_kb: f64,
}

/// GCC's totals (Table 4: 2.711 mm², 790 mW, 190 KB).
pub fn gcc_summary() -> ChipSummary {
    let cu: f64 = gcc_compute_units().iter().map(|c| c.area_mm2).sum();
    let bu: f64 = gcc_buffers().iter().map(|c| c.area_mm2).sum();
    let pw: f64 = gcc_compute_units()
        .iter()
        .chain(gcc_buffers().iter())
        .map(|c| c.power_mw)
        .sum();
    ChipSummary {
        area_mm2: cu + bu,
        compute_area_mm2: cu,
        buffer_area_mm2: bu,
        power_mw: pw,
        sram_kb: 190.0,
    }
}

/// GSCore's published totals (Table 4 bottom: 3.95 mm², 870 mW, 272 KB;
/// compute 2.70 mm² / 830 mW, buffers 1.25 mm² / 40 mW).
pub fn gscore_summary() -> ChipSummary {
    ChipSummary {
        area_mm2: 3.95,
        compute_area_mm2: 2.70,
        buffer_area_mm2: 1.25,
        power_mw: 870.0,
        sram_kb: 272.0,
    }
}

/// Image-buffer area scaling for the Fig. 13(a) design-space exploration:
/// SRAM area grows near-linearly with capacity; 128 KB is the Table 4
/// reference point (0.872 mm² for 4×32 KB).
pub fn image_buffer_area_mm2(size_kb: f64) -> f64 {
    0.872 * (size_kb / 128.0)
}

/// Alpha+Blending array area scaling for Fig. 13(b): PE-array area is
/// linear in lane count; 64 lanes is the Table 4 reference (0.958 mm²
/// for Alpha + Blending).
pub fn alpha_blend_area_mm2(lanes: u32) -> f64 {
    (0.576 + 0.382) * (f64::from(lanes) / 64.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcc_totals_match_table4() {
        let s = gcc_summary();
        assert!(
            (s.compute_area_mm2 - 1.675).abs() < 1e-9,
            "{}",
            s.compute_area_mm2
        );
        assert!(
            (s.buffer_area_mm2 - 1.036).abs() < 1e-9,
            "{}",
            s.buffer_area_mm2
        );
        assert!((s.area_mm2 - 2.711).abs() < 1e-9);
        assert!((s.power_mw - 790.0).abs() < 1e-9);
    }

    #[test]
    fn gcc_is_smaller_and_lower_power_than_gscore() {
        let gcc = gcc_summary();
        let gs = gscore_summary();
        // Paper: GCC occupies ~31% less area and slightly less power.
        assert!(gcc.area_mm2 < gs.area_mm2 * 0.75);
        assert!(gcc.power_mw < gs.power_mw);
        assert!(gcc.sram_kb < gs.sram_kb);
    }

    #[test]
    fn dse_scaling_is_monotone() {
        assert!(image_buffer_area_mm2(512.0) > image_buffer_area_mm2(128.0));
        assert!((image_buffer_area_mm2(128.0) - 0.872).abs() < 1e-12);
        assert!(alpha_blend_area_mm2(16) < alpha_blend_area_mm2(64));
        assert!((alpha_blend_area_mm2(64) - 0.958).abs() < 1e-12);
    }
}
