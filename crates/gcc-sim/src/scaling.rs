//! Workload scaling: extrapolates measured per-frame statistics to a
//! different scene scale (more Gaussians, more pixels) so absolute
//! full-scale numbers (Table 3) can be estimated from repro-scale runs.
//!
//! The scaling laws are the obvious first-order ones, applied field by
//! field to the unified [`FrameStats`]:
//!
//! * per-Gaussian quantities (loads, projections, SH, KV pairs, sort
//!   elements, group counts) scale with the Gaussian factor,
//! * per-pixel quantities (alpha evaluations, blends, blocks, tiles,
//!   windows) scale with the pixel factor,
//! * the per-Gaussian *tile/block multiplicity* is scale-invariant at
//!   matched density (DESIGN.md §7), so mixed quantities use the
//!   geometric pairing above rather than a product.
//!
//! This is an estimate, not a simulation — Table 3's caption marks the
//! extrapolated rows accordingly.

use gcc_render::pipeline::FrameStats;

/// Scale factors from the measured workload to the target workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadScale {
    /// Target Gaussian count ÷ measured Gaussian count.
    pub gaussians: f64,
    /// Target pixel count ÷ measured pixel count.
    pub pixels: f64,
}

impl WorkloadScale {
    /// Uniform scale (same factor for both axes).
    ///
    /// # Panics
    ///
    /// Panics for non-positive factors.
    pub fn uniform(f: f64) -> Self {
        Self::new(f, f)
    }

    /// Constructs a scale.
    ///
    /// # Panics
    ///
    /// Panics for non-positive factors.
    pub fn new(gaussians: f64, pixels: f64) -> Self {
        assert!(
            gaussians > 0.0 && pixels > 0.0,
            "scale factors must be positive"
        );
        Self { gaussians, pixels }
    }
}

fn sg(v: u64, f: f64) -> u64 {
    (v as f64 * f).round() as u64
}

/// Scales unified frame statistics: one function for every schedule —
/// Gaussian-axis fields by `w.gaussians`, pixel-axis fields by `w.pixels`.
///
/// Applies to **single-frame** statistics. A trajectory aggregate (summed
/// `FrameStats`, where `windows` counts frames rather than a Cmode
/// partition) must be scaled per frame before summing — the `windows > 1`
/// branch below would otherwise misread the frame count as sub-views.
pub fn scale_stats(s: &FrameStats, w: WorkloadScale) -> FrameStats {
    let g = w.gaussians;
    let p = w.pixels;
    FrameStats {
        // ---- Gaussian axis ----
        total_gaussians: sg(s.total_gaussians, g),
        geometry_loads: sg(s.geometry_loads, g),
        projected: sg(s.projected, g),
        sh_loads: sg(s.sh_loads, g),
        rendered: sg(s.rendered, g),
        render_invocations: sg(s.render_invocations, g),
        sort_elements: sg(s.sort_elements, g),
        kv_pairs: sg(s.kv_pairs, g),
        tile_loads: sg(s.tile_loads, g),
        unique_loaded: sg(s.unique_loaded, g),
        near_culled: sg(s.near_culled, g),
        groups_total: sg(s.groups_total, g),
        groups_processed: sg(s.groups_processed, g),
        groups_skipped: sg(s.groups_skipped, g),
        // ---- Pixel axis ----
        pixels_blended: sg(s.pixels_blended, p),
        // Windows track the Cmode partition: at a fixed hardware sub-view
        // size they grow with the pixel count, but a full-frame schedule
        // (windows == 1) stays one window at any resolution.
        windows: if s.windows > 1 {
            sg(s.windows, p)
        } else {
            s.windows
        },
        tiles: sg(s.tiles, p),
        pixels_tested: sg(s.pixels_tested, p),
        pixels_tested_aabb: sg(s.pixels_tested_aabb, p),
        pixels_tested_obb: sg(s.pixels_tested_obb, p),
        blocks_dispatched: sg(s.blocks_dispatched, p),
        blocks_masked_skips: sg(s.blocks_masked_skips, p),
        pixels_evaluated: sg(s.pixels_evaluated, p),
        alpha_lane_evals: sg(s.alpha_lane_evals, p),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gw_stats() -> FrameStats {
        FrameStats {
            total_gaussians: 1000,
            near_culled: 50,
            groups_total: 20,
            groups_processed: 60,
            groups_skipped: 10,
            geometry_loads: 800,
            projected: 700,
            sh_loads: 300,
            render_invocations: 280,
            rendered: 250,
            blocks_dispatched: 5_000,
            blocks_masked_skips: 1_000,
            pixels_evaluated: 320_000,
            alpha_lane_evals: 200_000,
            pixels_blended: 90_000,
            sort_elements: 700,
            windows: 6,
            ..FrameStats::default()
        }
    }

    fn tile_stats() -> FrameStats {
        FrameStats {
            total_gaussians: 1000,
            geometry_loads: 1000,
            projected: 800,
            sh_loads: 800,
            rendered: 300,
            render_invocations: 300,
            kv_pairs: 3_000,
            tile_loads: 2_500,
            unique_loaded: 600,
            pixels_tested: 400_000,
            pixels_tested_aabb: 600_000,
            pixels_tested_obb: 400_000,
            pixels_blended: 90_000,
            sort_elements: 3_000,
            tiles: 300,
            windows: 1,
            ..FrameStats::default()
        }
    }

    #[test]
    fn uniform_identity_is_a_noop() {
        let s = gw_stats();
        assert_eq!(scale_stats(&s, WorkloadScale::uniform(1.0)), s);
        let t = tile_stats();
        assert_eq!(scale_stats(&t, WorkloadScale::uniform(1.0)), t);
    }

    #[test]
    fn gaussian_axis_scales_loads_not_pixels() {
        let out = scale_stats(&gw_stats(), WorkloadScale::new(10.0, 1.0));
        assert_eq!(out.geometry_loads, 8_000);
        assert_eq!(out.sh_loads, 3_000);
        assert_eq!(out.pixels_evaluated, 320_000);
    }

    #[test]
    fn pixel_axis_scales_alpha_work() {
        let out = scale_stats(&gw_stats(), WorkloadScale::new(1.0, 4.0));
        assert_eq!(out.pixels_evaluated, 1_280_000);
        assert_eq!(out.pixels_blended, 360_000);
        assert_eq!(out.geometry_loads, 800);
    }

    #[test]
    fn tile_stats_preserve_load_multiplicity() {
        let s = tile_stats();
        let before = s.avg_loads_per_gaussian();
        let out = scale_stats(&s, WorkloadScale::uniform(9.7));
        let after = out.avg_loads_per_gaussian();
        assert!((before - after).abs() < 0.01, "{before} vs {after}");
        assert!((out.unused_fraction() - s.unused_fraction()).abs() < 0.01);
    }

    #[test]
    fn scaled_reports_scale_fps_inversely() {
        // A 10x workload should run ~10x slower through the cycle model.
        let s = gw_stats();
        let cfg = crate::gcc::GccSimConfig::default();
        let small = crate::gcc::report_from_stats(&s, 320.0 * 180.0, &cfg, "x");
        let big = crate::gcc::report_from_stats(
            &scale_stats(&s, WorkloadScale::uniform(10.0)),
            320.0 * 180.0 * 10.0,
            &cfg,
            "x",
        );
        let ratio = small.fps() / big.fps();
        assert!(
            (6.0..14.0).contains(&ratio),
            "expected ~10x slowdown, got {ratio}"
        );
    }

    #[test]
    fn full_frame_schedules_keep_one_window() {
        let out = scale_stats(&tile_stats(), WorkloadScale::new(1.0, 9.7));
        assert_eq!(out.windows, 1);
        let out = scale_stats(&gw_stats(), WorkloadScale::new(1.0, 4.0));
        assert_eq!(out.windows, 24);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scale_rejected() {
        let _ = WorkloadScale::uniform(0.0);
    }
}
