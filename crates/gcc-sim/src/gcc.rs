//! The GCC accelerator model (paper §4): Gaussian-wise rendering with
//! cross-stage conditional processing on the module set of Fig. 5 —
//! RCA grouping, a 2-way Projection Unit, a 1-way SH Unit, a bitonic-16
//! Sort Unit, an 8×8 Alpha PE array with the runtime boundary identifier,
//! a 64-FMA Blending Unit and a 128 KB Image Buffer with Compatibility
//! Mode (128×128 sub-views).
//!
//! The interleaved Stage II–IV pipeline processes one Gaussian at a time
//! through all units; with every unit pipelined, frame cycles for the
//! rendering phase equal the busiest unit's total work (plus per-Gaussian
//! issue overhead), bounded by DRAM bandwidth. Stage I (grouping) runs
//! beforehand as its own phase, reusing the MVMs and the RCA (§4.2).

use crate::dram::DramModel;
use crate::ops::{
    OpCounters, OpEnergy, DIVSQRT_PER_PROJECTION, FMA_PER_ALPHA, FMA_PER_BLEND, FMA_PER_PROJECTION,
    FMA_PER_SH,
};
use crate::report::{EnergyBreakdown, PhaseTiming, SimReport, TrafficBreakdown};
use crate::sram::sram_energy_pj;
use gcc_core::{Camera, Gaussian3D};
use gcc_render::gaussian_wise::{render_gaussian_wise, GaussianWiseConfig, GaussianWiseOutput};
use gcc_render::pipeline::FrameStats;

/// GCC simulator configuration (hardware parameters + ablation toggles).
#[derive(Debug, Clone)]
pub struct GccSimConfig {
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Off-chip memory.
    pub dram: DramModel,
    /// Parallel projection pipelines (GCC: 2, §4.6).
    pub projection_parallelism: u32,
    /// Parallel SH pipelines (GCC: 1, §5.3).
    pub sh_parallelism: u32,
    /// Alpha/Blend PE array edge (GCC: 8 ⇒ 64 lanes).
    pub block_edge: u32,
    /// Image buffer capacity in KB (GCC: 128).
    pub image_buffer_kb: f64,
    /// Bytes of on-chip state per pixel (RGB + T at FP16: 8).
    pub bytes_per_pixel: f64,
    /// Elements per cycle through the bitonic-16 sort unit.
    pub sort_throughput: f64,
    /// Per-Gaussian issue overhead in the Alpha Unit (identifier setup;
    /// the 14-cycle latency is pipelined over ≤16 in-flight Gaussians).
    pub issue_overhead_cycles: f64,
    /// Per-dispatched-block overhead (search-queue pop, status-map update,
    /// octant-mask bookkeeping — the Identifier Controller of Fig. 9).
    /// This is what makes very small PE arrays unattractive in Fig. 13(b).
    pub block_overhead_cycles: f64,
    /// Cross-stage conditional processing (ablation: `false` = GW only).
    pub cross_stage: bool,
    /// DRAM bandwidth utilization for sequential streams (Stage I position
    /// sweep).
    pub seq_dram_efficiency: f64,
    /// DRAM bandwidth utilization for the conditional Gaussian loads of
    /// the rendering phase: one-pass, group-list-ordered reads that the
    /// controller can prefetch — far friendlier than tile-wise re-reads,
    /// but not perfectly sequential.
    pub cond_dram_efficiency: f64,
    /// Cmode sub-view edge override. The repro scenes run at half the
    /// paper's linear resolution, so the default scales the paper's
    /// 128×128 operating point to 64×64, keeping the windows-per-frame
    /// ratio (and hence the sub-view termination behaviour) comparable.
    /// `None` derives the edge from the image-buffer capacity instead.
    pub subview_override: Option<u32>,
}

impl Default for GccSimConfig {
    fn default() -> Self {
        Self {
            clock_ghz: 1.0,
            dram: DramModel::lpddr4_3200(),
            projection_parallelism: 2,
            sh_parallelism: 1,
            block_edge: 8,
            image_buffer_kb: 128.0,
            bytes_per_pixel: 8.0,
            sort_throughput: 4.0,
            issue_overhead_cycles: 1.5,
            block_overhead_cycles: 0.7,
            cross_stage: true,
            seq_dram_efficiency: 0.85,
            cond_dram_efficiency: 0.78,
            subview_override: Some(64),
        }
    }
}

impl GccSimConfig {
    /// Sub-view edge implied by the image-buffer capacity: the largest
    /// power-of-two square of pixel state that fits (capped at 1024).
    /// 128 KB at 8 B/pixel → 128×128, the paper's Cmode operating point.
    pub fn subview_edge(&self) -> u32 {
        let pixels = self.image_buffer_kb * 1024.0 / self.bytes_per_pixel;
        let mut edge = 16u32;
        while f64::from((edge * 2) * (edge * 2)) <= pixels && edge < 1024 {
            edge *= 2;
        }
        edge
    }

    /// Renderer configuration implementing this hardware setup.
    pub fn renderer_config(&self, cam: &Camera) -> GaussianWiseConfig {
        let edge = self.subview_override.unwrap_or_else(|| self.subview_edge());
        let needs_cmode = cam.width > edge || cam.height > edge;
        GaussianWiseConfig {
            exp: gcc_core::alpha::ExpMode::lut(),
            block: self.block_edge,
            cross_stage: self.cross_stage,
            subview: needs_cmode.then_some(edge),
            ..GaussianWiseConfig::default()
        }
    }
}

/// Byte sizes of the GCC dataflow's DRAM records.
pub mod records {
    /// Geometry part of a Gaussian (μ, s, q, lnω = 11 × FP32).
    pub const GEOMETRY: f64 = 44.0;
    /// SH block (48 × FP32), loaded conditionally.
    pub const SH: f64 = 192.0;
    /// Position-only read for Stage I depth computation (μ = 3 × FP32).
    pub const POSITION: f64 = 12.0;
    /// Per-survivor grouping metadata written back after Stage I
    /// (ID + depth).
    pub const GROUP_META: f64 = 8.0;
    /// Final framebuffer writeout per pixel (RGB8).
    pub const PIXEL_OUT: f64 = 3.0;
}

/// Simulates one frame on the GCC model. Returns the report and the
/// renderer output it was derived from.
pub fn simulate_gcc(
    gaussians: &[Gaussian3D],
    cam: &Camera,
    cfg: &GccSimConfig,
    scene_name: &str,
) -> (SimReport, GaussianWiseOutput) {
    let out = render_gaussian_wise(gaussians, cam, &cfg.renderer_config(cam));
    let pixels = f64::from(cam.width) * f64::from(cam.height);
    let report = report_from_stats(&out.stats, pixels, cfg, scene_name);
    (report, out)
}

/// Builds the timing/energy report from unified workload statistics.
/// Reads the common core plus the Gaussian-wise schedule section of
/// [`FrameStats`].
pub fn report_from_stats(
    s: &FrameStats,
    screen_pixels: f64,
    cfg: &GccSimConfig,
    scene_name: &str,
) -> SimReport {
    let n = s.total_gaussians as f64;
    let survivors = n - s.near_culled as f64;
    let geo = s.geometry_loads as f64;
    let sh = s.sh_loads as f64;
    let sorted = s.sort_elements as f64;
    let blocks = s.blocks_dispatched as f64;
    let evaluated = s.pixels_evaluated as f64;
    let live_evals = s.alpha_lane_evals as f64;
    let blended = s.pixels_blended as f64;
    let invocations = s.render_invocations.max(1) as f64;

    // ---- Stage I: depth computation + RCA grouping. ----
    // 4 shared MVMs compute depths; the RCA makes two comparison passes
    // (coarse binning + recursive subdivision).
    let stage1_compute = n / 4.0 + survivors / 2.0;
    let stage1_bytes = n * records::POSITION + survivors * records::GROUP_META;

    // ---- Interleaved rendering (Stages II–IV), unit-by-unit totals. ----
    let proj_cycles = geo / f64::from(cfg.projection_parallelism);
    let sort_cycles = sorted / cfg.sort_throughput;
    let sh_cycles = sh / f64::from(cfg.sh_parallelism);
    let lanes = f64::from(cfg.block_edge * cfg.block_edge);
    // The PE array retires one block per cycle; blending is pipelined
    // behind alpha on its own 64-FMA array.
    let alpha_cycles = (evaluated / lanes).max(blocks)
        + blocks * cfg.block_overhead_cycles
        + invocations * cfg.issue_overhead_cycles;
    let blend_cycles = blended / lanes + blocks * 0.5;
    let render_compute = proj_cycles
        .max(sort_cycles)
        .max(sh_cycles)
        .max(alpha_cycles)
        .max(blend_cycles);
    let render_read = geo * (records::GEOMETRY + records::GROUP_META) + sh * records::SH;
    let render_write = screen_pixels * records::PIXEL_OUT;
    let render_bytes = render_read + render_write;

    let phases = vec![
        PhaseTiming {
            name: "grouping".into(),
            compute_cycles: stage1_compute,
            dram_bytes: stage1_bytes,
            dram_cycles: cfg.dram.cycles_for(stage1_bytes, cfg.clock_ghz) / cfg.seq_dram_efficiency,
        },
        PhaseTiming {
            name: "render".into(),
            compute_cycles: render_compute,
            dram_bytes: render_bytes,
            dram_cycles: cfg.dram.cycles_for(render_bytes, cfg.clock_ghz)
                / cfg.cond_dram_efficiency,
        },
    ];
    let total_cycles: f64 = phases.iter().map(PhaseTiming::cycles).sum();

    // ---- Operation counts. ----
    let projected = s.projected as f64;
    let ops = OpCounters {
        fma32: (n * 12.0) as u64 // Stage I view transforms
            + (geo as u64) * FMA_PER_PROJECTION
            + (sh as u64) * FMA_PER_SH,
        // Alpha + blending lanes run at FP16/fixed-point, and the S-map /
        // T-mask infrastructure clock-gates dead lanes (§4.4-4.5): only
        // live-lane evaluations burn datapath energy.
        fma16: (live_evals as u64) * FMA_PER_ALPHA + (blended as u64) * FMA_PER_BLEND,
        exp: live_evals as u64, // fixed-point LUT EXP
        div_sqrt: (projected as u64) * DIVSQRT_PER_PROJECTION,
        cmp: (n + sorted * 8.0) as u64, // RCA + bitonic comparisons
    };
    let e = OpEnergy::default();
    let compute_pj = ops.energy_pj(&e);

    // ---- SRAM traffic. ----
    // Image buffer: alpha reads T per evaluated pixel, blending writes
    // color+T per blended pixel (FP16 words).
    let image_words = live_evals * 1.0 + blended * 4.0;
    let shared_words = geo * 11.0 + sorted * 2.0;
    let sh_words = sh * 48.0;
    let sram_pj = sram_energy_pj(32.0, image_words as u64)
        + sram_energy_pj(6.0, shared_words as u64)
        + sram_energy_pj(8.0, sh_words as u64);

    let traffic = TrafficBreakdown {
        gauss3d_bytes: geo * records::GEOMETRY + sh * records::SH + n * records::POSITION,
        gauss2d_bytes: 0.0, // never spilled: consumed in-pipeline
        kv_bytes: 0.0,      // no tile KV structure exists
        other_bytes: survivors * records::GROUP_META + geo * records::GROUP_META + render_write,
    };

    let energy = EnergyBreakdown {
        dram_pj: cfg.dram.energy_pj(traffic.total()),
        sram_pj,
        compute_pj,
    };

    SimReport {
        accelerator: "GCC".into(),
        scene: scene_name.to_string(),
        phases,
        total_cycles,
        clock_ghz: cfg.clock_ghz,
        energy,
        traffic,
        area_mm2: crate::area::gcc_summary().area_mm2,
        render_ops: live_evals * FMA_PER_ALPHA as f64 + blended * FMA_PER_BLEND as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcc_math::Vec3;

    fn tiny_workload() -> (Vec<Gaussian3D>, Camera) {
        let cam = Camera::look_at(
            Vec3::new(0.0, 0.0, -4.0),
            Vec3::ZERO,
            Vec3::new(0.0, 1.0, 0.0),
            60.0,
            128,
            96,
        );
        let gaussians = (0..200)
            .map(|i| {
                let t = i as f32 / 200.0;
                Gaussian3D::isotropic(
                    Vec3::new((t * 17.0).sin(), (t * 11.0).cos() * 0.6, t * 2.0),
                    0.08,
                    0.1f32.max(t),
                    Vec3::new(t, 1.0 - t, 0.4),
                )
            })
            .collect();
        (gaussians, cam)
    }

    #[test]
    fn subview_edge_matches_paper_operating_point() {
        let cfg = GccSimConfig::default();
        // 128 KB at 8 B/pixel supports exactly 128×128.
        assert_eq!(cfg.subview_edge(), 128);
        let big = GccSimConfig {
            image_buffer_kb: 2048.0,
            ..GccSimConfig::default()
        };
        assert_eq!(big.subview_edge(), 512);
    }

    #[test]
    fn report_phases_and_fps() {
        let (g, cam) = tiny_workload();
        let (r, _) = simulate_gcc(&g, &cam, &GccSimConfig::default(), "tiny");
        assert_eq!(r.phases.len(), 2);
        assert!(r.fps() > 0.0);
        assert!(r.total_cycles > 0.0);
    }

    #[test]
    fn no_kv_and_no_2d_spill_traffic() {
        let (g, cam) = tiny_workload();
        let (r, _) = simulate_gcc(&g, &cam, &GccSimConfig::default(), "tiny");
        assert_eq!(r.traffic.kv_bytes, 0.0);
        assert_eq!(r.traffic.gauss2d_bytes, 0.0);
    }

    #[test]
    fn gcc_moves_less_dram_than_gscore_on_same_scene() {
        // Needs a workload dense enough that Gaussian traffic dominates
        // the fixed per-frame costs (Stage I sweep, framebuffer writeout).
        let cam = Camera::look_at(
            Vec3::new(0.0, 0.0, -4.0),
            Vec3::ZERO,
            Vec3::new(0.0, 1.0, 0.0),
            60.0,
            128,
            96,
        );
        let g: Vec<Gaussian3D> = (0..4000)
            .map(|i| {
                let t = i as f32 / 4000.0;
                Gaussian3D::isotropic(
                    Vec3::new(
                        (t * 117.0).sin() * 1.2,
                        (t * 41.0).cos() * 0.8,
                        t * 3.0 - 0.5,
                    ),
                    0.06,
                    0.05f32.max(t),
                    Vec3::new(t, 1.0 - t, 0.4),
                )
            })
            .collect();
        let (rc, _) = simulate_gcc(&g, &cam, &GccSimConfig::default(), "dense");
        let (rs, _) = crate::gscore::simulate_gscore(
            &g,
            &cam,
            &crate::gscore::GscoreConfig::default(),
            "dense",
        );
        assert!(
            rc.traffic.total() < rs.traffic.total(),
            "GCC {} vs GSCore {}",
            rc.traffic.total(),
            rs.traffic.total()
        );
    }

    #[test]
    fn cross_stage_off_costs_more_loads() {
        let (g, cam) = tiny_workload();
        let on = GccSimConfig::default();
        let off = GccSimConfig {
            cross_stage: false,
            ..GccSimConfig::default()
        };
        let (r_on, _) = simulate_gcc(&g, &cam, &on, "tiny");
        let (r_off, _) = simulate_gcc(&g, &cam, &off, "tiny");
        assert!(r_off.traffic.total() >= r_on.traffic.total());
    }

    #[test]
    fn area_matches_table4() {
        let (g, cam) = tiny_workload();
        let (r, _) = simulate_gcc(&g, &cam, &GccSimConfig::default(), "tiny");
        assert!((r.area_mm2 - 2.711).abs() < 1e-9);
    }

    #[test]
    fn bigger_alpha_array_reduces_compute_cycles() {
        let (g, cam) = tiny_workload();
        let small = GccSimConfig {
            block_edge: 4,
            ..GccSimConfig::default()
        };
        let big = GccSimConfig {
            block_edge: 16,
            ..GccSimConfig::default()
        };
        let (rs, _) = simulate_gcc(&g, &cam, &small, "tiny");
        let (rb, _) = simulate_gcc(&g, &cam, &big, "tiny");
        // Compute side shrinks with more lanes (total time may be
        // memory-bound, so compare the render phase's compute demand).
        let c_small = rs.phases[1].compute_cycles;
        let c_big = rb.phases[1].compute_cycles;
        assert!(c_big <= c_small);
    }
}
