//! Coarse-to-fine Gaussian hierarchy attached to a [`Scene`](crate::Scene).
//!
//! A [`SceneLod`] is a stack of mip-style levels: level 0 is the full
//! cloud (stored once, in `Scene::gaussians`, *not* duplicated here);
//! level `ℓ ≥ 1` replaces spatial clusters of level `ℓ-1` with single
//! fatter, opacity/SH-compensated Gaussians. The hierarchy *builder*
//! lives in the `gcc-lod` crate (it needs the parallel stack); this
//! module holds only the data type, its byte accounting, and its
//! JSON/binary codecs so scenes can carry a hierarchy through the io
//! layer and the serve cache without a dependency cycle.

use crate::json::Value;
use gcc_core::{Gaussian3D, PARAM_FLOATS};
use std::fmt::Write as _;
use std::io::{self, Read, Write};

/// One coarse level of the hierarchy.
#[derive(Debug, Clone, PartialEq)]
pub struct LodLevel {
    /// Merged Gaussians at this level (coarser ⇒ fewer, fatter).
    pub gaussians: Vec<Gaussian3D>,
    /// Edge length of the merge voxel grid that produced this level, in
    /// world units. Doubles per level.
    pub cell_size: f32,
}

impl LodLevel {
    /// Resident heap size of this level in bytes.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.gaussians.capacity() * std::mem::size_of::<Gaussian3D>()
    }
}

/// A coarse-to-fine Gaussian hierarchy: `levels[0]` is the *first coarse*
/// level (one merge step above the full cloud), `levels.last()` the
/// coarsest. Level indices exposed to callers are therefore 1-based:
/// "level 0" always means the scene's own full-resolution cloud.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SceneLod {
    /// Coarse levels, finest first. Never empty in a built hierarchy.
    pub levels: Vec<LodLevel>,
    /// Seed the builder was run with (determinism receipt).
    pub seed: u64,
}

impl SceneLod {
    /// Number of coarse levels (excludes the implicit full-quality level 0).
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// The Gaussians at hierarchy level `level`, where level 0 is the
    /// full cloud (`full` must be the scene's own `gaussians`). Levels
    /// beyond the coarsest clamp to the coarsest.
    pub fn level_gaussians<'a>(&'a self, full: &'a [Gaussian3D], level: usize) -> &'a [Gaussian3D] {
        if level == 0 || self.levels.is_empty() {
            full
        } else {
            &self.levels[(level - 1).min(self.levels.len() - 1)].gaussians
        }
    }

    /// Resident heap+inline size of the hierarchy in bytes — charged
    /// against the serve cache's byte budget via `Scene::approx_bytes`.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self
                .levels
                .iter()
                .map(LodLevel::approx_bytes)
                .sum::<usize>()
    }

    /// Appends this hierarchy as a compact JSON object to `out` (the
    /// scene JSON codec embeds it under a `"lod"` key). Floats use
    /// Rust's shortest round-trip formatting, like the scene writer.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first non-finite float (JSON has no
    /// NaN/infinity tokens).
    pub fn write_json(&self, out: &mut String) -> Result<(), String> {
        let _ = write!(out, "{{\"seed\": {}, \"levels\": [", self.seed);
        for (li, l) in self.levels.iter().enumerate() {
            if !l.cell_size.is_finite() {
                return Err(format!("non-finite cell_size in lod level {li}"));
            }
            if li > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"cell_size\": {}, \"gaussians\": [", l.cell_size);
            for (gi, g) in l.gaussians.iter().enumerate() {
                if gi > 0 {
                    out.push(',');
                }
                out.push('[');
                for (j, v) in g.to_floats().iter().enumerate() {
                    if !v.is_finite() {
                        return Err(format!(
                            "non-finite float in lod level {li} gaussian {gi} (index {j})"
                        ));
                    }
                    if j > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{v}");
                }
                out.push(']');
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        Ok(())
    }

    /// Parses the object produced by [`Self::write_json`].
    ///
    /// # Errors
    ///
    /// Returns a message describing the first schema violation.
    pub fn from_json(v: &Value) -> Result<Self, String> {
        let seed = match v.get("seed") {
            Some(Value::Num(t)) => t
                .parse::<u64>()
                .map_err(|_| format!("lod: bad seed '{t}'"))?,
            _ => return Err("lod: missing numeric 'seed'".into()),
        };
        let levels_v = v
            .get("levels")
            .and_then(Value::as_arr)
            .ok_or("lod: missing 'levels' array")?;
        let mut levels = Vec::with_capacity(levels_v.len());
        for (li, lv) in levels_v.iter().enumerate() {
            let cell_size = lv
                .get("cell_size")
                .and_then(Value::as_f32)
                .ok_or_else(|| format!("lod level {li}: bad 'cell_size'"))?;
            let gauss_v = lv
                .get("gaussians")
                .and_then(Value::as_arr)
                .ok_or_else(|| format!("lod level {li}: missing 'gaussians'"))?;
            let mut gaussians = Vec::with_capacity(gauss_v.len());
            for (gi, gv) in gauss_v.iter().enumerate() {
                let rec = gv
                    .as_arr()
                    .filter(|a| a.len() == PARAM_FLOATS)
                    .ok_or_else(|| {
                        format!("lod level {li} gaussian {gi}: not a {PARAM_FLOATS}-array")
                    })?;
                let mut floats = [0.0f32; PARAM_FLOATS];
                for (slot, item) in floats.iter_mut().zip(rec) {
                    *slot = item
                        .as_f32()
                        .ok_or_else(|| format!("lod level {li} gaussian {gi}: bad float"))?;
                }
                gaussians.push(Gaussian3D::from_floats(&floats));
            }
            levels.push(LodLevel {
                gaussians,
                cell_size,
            });
        }
        Ok(Self { levels, seed })
    }

    /// Writes the binary hierarchy section: seed, level count, then per
    /// level its cell size, count, and raw 59-float records.
    ///
    /// # Errors
    ///
    /// Propagates writer failures.
    pub fn write_binary<W: Write>(&self, w: &mut W) -> io::Result<()> {
        crate::codec::write_u64(w, self.seed)?;
        crate::codec::write_u32(w, self.levels.len() as u32)?;
        for l in &self.levels {
            crate::codec::write_f32(w, l.cell_size)?;
            crate::codec::write_u64(w, l.gaussians.len() as u64)?;
            for g in &l.gaussians {
                for f in g.to_floats() {
                    crate::codec::write_f32(w, f)?;
                }
            }
        }
        Ok(())
    }

    /// Reads the section written by [`Self::write_binary`].
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` for implausible headers, reader errors
    /// otherwise (truncation surfaces as `UnexpectedEof`).
    pub fn read_binary<R: Read>(r: &mut R) -> io::Result<Self> {
        let seed = crate::codec::read_u64(r)?;
        let n_levels = crate::codec::read_u32(r)? as usize;
        if n_levels > 64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("lod: implausible level count {n_levels}"),
            ));
        }
        let mut levels = Vec::with_capacity(n_levels);
        for _ in 0..n_levels {
            let cell_size = crate::codec::read_f32(r)?;
            let count = crate::codec::read_u64(r)? as usize;
            let mut gaussians = Vec::with_capacity(count.min(1 << 24));
            let mut f = [0.0f32; PARAM_FLOATS];
            for _ in 0..count {
                for slot in &mut f {
                    *slot = crate::codec::read_f32(r)?;
                }
                gaussians.push(Gaussian3D::from_floats(&f));
            }
            levels.push(LodLevel {
                gaussians,
                cell_size,
            });
        }
        Ok(Self { levels, seed })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcc_math::Vec3;

    fn sample_lod() -> SceneLod {
        let g = |x: f32, r: f32| {
            Gaussian3D::isotropic(Vec3::new(x, 0.0, 0.0), r, 0.8, Vec3::splat(0.5))
        };
        SceneLod {
            levels: vec![
                LodLevel {
                    gaussians: vec![g(0.0, 0.1), g(1.0, 0.2), g(2.0, 0.3)],
                    cell_size: 0.5,
                },
                LodLevel {
                    gaussians: vec![g(0.5, 0.4)],
                    cell_size: 1.0,
                },
            ],
            seed: 42,
        }
    }

    #[test]
    fn level_gaussians_clamps_and_maps_zero_to_full() {
        let lod = sample_lod();
        let full = vec![Gaussian3D::default(); 7];
        assert_eq!(lod.level_gaussians(&full, 0).len(), 7);
        assert_eq!(lod.level_gaussians(&full, 1).len(), 3);
        assert_eq!(lod.level_gaussians(&full, 2).len(), 1);
        // Beyond the coarsest clamps.
        assert_eq!(lod.level_gaussians(&full, 99).len(), 1);
    }

    #[test]
    fn approx_bytes_counts_all_levels() {
        let lod = sample_lod();
        let per_gaussian = std::mem::size_of::<Gaussian3D>();
        assert!(lod.approx_bytes() >= 4 * per_gaussian);
    }

    #[test]
    fn json_round_trip() {
        let lod = sample_lod();
        let mut doc = String::new();
        lod.write_json(&mut doc).unwrap();
        let v = crate::json::parse(&doc).unwrap();
        let back = SceneLod::from_json(&v).unwrap();
        assert_eq!(back, lod);
    }

    #[test]
    fn non_finite_floats_are_rejected_at_write_time() {
        let mut lod = sample_lod();
        lod.levels[0].gaussians[1].ln_opacity = f32::NAN;
        let mut out = String::new();
        assert!(lod.write_json(&mut out).is_err());
        let mut lod = sample_lod();
        lod.levels[1].cell_size = f32::INFINITY;
        let mut out = String::new();
        assert!(lod.write_json(&mut out).is_err());
    }

    #[test]
    fn binary_round_trip() {
        let lod = sample_lod();
        let mut buf = Vec::new();
        lod.write_binary(&mut buf).unwrap();
        let back = SceneLod::read_binary(&mut buf.as_slice()).unwrap();
        assert_eq!(back, lod);
    }

    #[test]
    fn binary_rejects_implausible_level_count() {
        let mut buf = Vec::new();
        crate::codec::write_u64(&mut buf, 0).unwrap();
        crate::codec::write_u32(&mut buf, 10_000).unwrap();
        assert!(SceneLod::read_binary(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn truncated_binary_errors_instead_of_panicking() {
        let lod = sample_lod();
        let mut buf = Vec::new();
        lod.write_binary(&mut buf).unwrap();
        buf.truncate(buf.len() - 7);
        assert!(SceneLod::read_binary(&mut buf.as_slice()).is_err());
    }
}
