//! Deterministic scene synthesis from preset parameters.
//!
//! Layout recipes per [`SceneKind`]:
//!
//! * `Object` — cluster centers inside a ball; the camera orbits outside,
//!   so the whole object stays in frustum (synthetic captures).
//! * `Outdoor` — a ground-plane sector, subject clusters and a distant
//!   background shell, angularly concentrated around the scanned
//!   direction; the camera stands at the sector's base (Tanks & Temples).
//! * `Indoor` — a wall shell plus furniture clusters inside a room; the
//!   camera stands inside (Deep Blending).
//!
//! Angular concentration uses a truncated normal on the azimuth so the
//! in-frustum fraction lands in the range the paper reports, and the
//! opacity mixture (low tail / mid band / opaque mode) reproduces the
//! effective-vs-bounding-box footprint gap of Fig. 4 / Table 1.

use crate::preset::{PresetParams, SceneKind};
use crate::rng::StdRng;
use crate::scene::{Scene, SceneConfig};
use crate::trajectory::OrbitRig;
use gcc_core::{Gaussian3D, SH_COEFFS_PER_CHANNEL, SH_FLOATS};
use gcc_math::{Quat, Vec3};

/// Builds a scene from preset parameters and a config.
pub fn build_scene(params: &PresetParams, config: &SceneConfig) -> Scene {
    let seed = config.seed.unwrap_or(params.seed);
    let mut rng = StdRng::seed_from_u64(seed);
    let count = ((params.base_count as f32 * config.scale) as usize).max(16);

    let mut gaussians = Vec::with_capacity(count);
    let cluster_centers = sample_cluster_centers(params, &mut rng);
    for _ in 0..count {
        gaussians.push(sample_gaussian(params, &cluster_centers, &mut rng));
    }

    Scene {
        name: params.name.to_string(),
        gaussians,
        resolution: params.resolution,
        fov_y_deg: params.fov_y_deg,
        rig: camera_rig(params),
        lod: None,
    }
}

/// Azimuth (radians) from a truncated normal with σ = half-angle/2,
/// clipped at ±half-angle — the angular concentration knob.
fn sample_azimuth(params: &PresetParams, rng: &mut StdRng) -> f32 {
    let half = params.sector_half_angle_deg.to_radians();
    let sigma = half * 0.5;
    for _ in 0..16 {
        let theta = normal(rng) * sigma;
        if theta.abs() <= half {
            return theta;
        }
    }
    rng.gen_range(-half..half)
}

/// Standard normal via Box–Muller.
fn normal(rng: &mut StdRng) -> f32 {
    let u1: f32 = rng.gen_range(1e-7..1.0f32);
    let u2: f32 = rng.gen_range(0.0..1.0f32);
    (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
}

/// A cluster is a surface patch: a center plus a normal along which the
/// patch is squashed (real scenes are dominated by surfaces, which is what
/// lets early termination form clean occlusion fronts).
#[derive(Debug, Clone, Copy)]
struct Cluster {
    center: Vec3,
    normal: Vec3,
}

fn sample_cluster_centers(params: &PresetParams, rng: &mut StdRng) -> Vec<Cluster> {
    let centers = sample_cluster_positions(params, rng);
    centers
        .into_iter()
        .map(|center| {
            let normal = loop {
                let n = Vec3::new(normal_dir(rng), normal_dir(rng), normal_dir(rng));
                if n.norm_sq() > 1e-6 {
                    break n.normalized();
                }
            };
            Cluster { center, normal }
        })
        .collect()
}

fn normal_dir(rng: &mut StdRng) -> f32 {
    normal(rng)
}

fn sample_cluster_positions(params: &PresetParams, rng: &mut StdRng) -> Vec<Vec3> {
    let r = params.world_radius;
    (0..params.cluster_count)
        .map(|_| match params.kind {
            SceneKind::Object => {
                // Uniform in a ball of 0.8·R.
                loop {
                    let p = Vec3::new(
                        rng.gen_range(-1.0..1.0f32),
                        rng.gen_range(-1.0..1.0f32),
                        rng.gen_range(-1.0..1.0f32),
                    );
                    if p.norm_sq() <= 1.0 {
                        break p * (0.8 * r);
                    }
                }
            }
            SceneKind::Outdoor => {
                let theta = sample_azimuth(params, rng);
                let dist = r * rng.gen_range(0.15f32..1.0).sqrt();
                Vec3::new(
                    dist * theta.cos(),
                    rng.gen_range(0.0..0.30f32) * r,
                    dist * theta.sin(),
                )
            }
            SceneKind::Indoor => {
                let theta = sample_azimuth(params, rng);
                let dist = r * rng.gen_range(0.25f32..0.9);
                Vec3::new(
                    dist * theta.cos(),
                    rng.gen_range(0.0..0.40f32) * r,
                    dist * theta.sin(),
                )
            }
        })
        .collect()
}

/// What a Gaussian stands for in the scene layout; backdrops (sky shells,
/// room walls) are forced reasonably opaque so every view ray eventually
/// terminates, as in fully reconstructed captures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    /// Part of a surface cluster.
    Surface,
    /// Ground-plane point (outdoor).
    Ground,
    /// Distant shell / wall point closing off the view.
    Backdrop,
}

fn sample_position(params: &PresetParams, clusters: &[Cluster], rng: &mut StdRng) -> (Vec3, Role) {
    let r = params.world_radius;
    let cluster_spread = params.cluster_sigma * r;
    let from_cluster = |rng: &mut StdRng| {
        let c = clusters[rng.gen_range(0..clusters.len())];
        // In-patch offset, squashed to 15% along the surface normal.
        let off = Vec3::new(
            normal(rng) * cluster_spread,
            normal(rng) * cluster_spread,
            normal(rng) * cluster_spread,
        );
        let along = c.normal * off.dot(c.normal);
        c.center + (off - along) + along * 0.15
    };
    match params.kind {
        SceneKind::Object => (from_cluster(rng), Role::Surface),
        SceneKind::Outdoor => {
            let u: f32 = rng.gen();
            if u < 0.22 {
                // Ground-plane sector.
                let theta = sample_azimuth(params, rng);
                let dist = r * rng.gen_range(0.1f32..1.0);
                (
                    Vec3::new(
                        dist * theta.cos(),
                        normal(rng) * 0.015 * r,
                        dist * theta.sin(),
                    ),
                    Role::Ground,
                )
            } else if u < 0.80 {
                (from_cluster(rng), Role::Surface)
            } else {
                // Distant backdrop shell (buildings / tree line / sky).
                let theta = sample_azimuth(params, rng) * 1.4;
                let dist = r * rng.gen_range(0.9f32..1.3);
                (
                    Vec3::new(
                        dist * theta.cos(),
                        rng.gen_range(0.0..0.75f32) * r,
                        dist * theta.sin(),
                    ),
                    Role::Backdrop,
                )
            }
        }
        SceneKind::Indoor => {
            let u: f32 = rng.gen();
            if u < 0.30 {
                // Wall shell: fixed radius, any height of the room.
                let theta = sample_azimuth(params, rng) * 1.2;
                (
                    Vec3::new(
                        r * theta.cos(),
                        rng.gen_range(0.0..0.6f32) * r,
                        r * theta.sin(),
                    ),
                    Role::Backdrop,
                )
            } else {
                (from_cluster(rng), Role::Surface)
            }
        }
    }
}

fn sample_opacity(params: &PresetParams, rng: &mut StdRng) -> f32 {
    let u: f32 = rng.gen();
    if u < params.opacity_low_frac {
        // Near-transparent tail, skewed low.
        let t: f32 = rng.gen::<f32>().powf(1.8);
        0.004 + t * (0.045 - 0.004)
    } else if u < params.opacity_low_frac + params.opacity_mid_frac {
        rng.gen_range(0.08..0.6f32)
    } else {
        // Opaque mode, skewed toward 1.
        let t: f32 = rng.gen::<f32>().powf(0.5);
        0.6 + 0.4 * t
    }
}

fn sample_scale(params: &PresetParams, size_mul: f32, rng: &mut StdRng) -> Vec3 {
    let base = size_mul * (params.log_scale_mean + params.log_scale_sigma * normal(rng)).exp();
    // Trained 3DGS splats are strongly surfel-like: two comparable in-plane
    // axes and one much thinner normal axis (ratio ~5-6× on average). The
    // thin axis makes the projected ellipses elongated, which is what makes
    // OBBs ~3× tighter than AABBs (paper Table 1).
    let in_plane = |rng: &mut StdRng| (0.35 * normal(rng)).exp();
    Vec3::new(
        base * in_plane(rng),
        base * in_plane(rng),
        base * (-1.7 + 0.5 * normal(rng)).exp(),
    )
}

fn sample_rotation(rng: &mut StdRng) -> Quat {
    // Uniform random rotation (Shoemake).
    let u1: f32 = rng.gen();
    let u2: f32 = rng.gen::<f32>() * std::f32::consts::TAU;
    let u3: f32 = rng.gen::<f32>() * std::f32::consts::TAU;
    let a = (1.0 - u1).sqrt();
    let b = u1.sqrt();
    Quat::new(a * u2.sin(), a * u2.cos(), b * u3.sin(), b * u3.cos())
}

fn sample_sh(rng: &mut StdRng) -> [f32; SH_FLOATS] {
    let mut sh = [0.0f32; SH_FLOATS];
    for c in 0..3 {
        let base = c * SH_COEFFS_PER_CHANNEL;
        // DC: colors spread around 0.5 after the +0.5 offset of Eq. 2.
        sh[base] = normal(rng) * 0.55;
        // Degree 1–3: decaying view-dependent detail.
        for l in 1..=3usize {
            let sigma = 0.15 / (l * l) as f32;
            let start = l * l;
            let end = (l + 1) * (l + 1);
            for k in start..end {
                sh[base + k] = normal(rng) * sigma;
            }
        }
    }
    sh
}

fn sample_gaussian(params: &PresetParams, clusters: &[Cluster], rng: &mut StdRng) -> Gaussian3D {
    let (position, role) = sample_position(params, clusters, rng);
    let mut opacity = sample_opacity(params, rng);
    if role == Role::Backdrop {
        // Backdrops close off every view ray: force them reasonably opaque
        // (a fully trained capture has no see-through sky or walls).
        opacity = opacity.max(rng.gen_range(0.6..1.0f32));
    }
    // Trained models pair near-transparent splats with large spatial
    // support (fog/fill Gaussians): their 3σ bounding boxes are huge while
    // their α ≥ 1/255 region is tiny — the Table 1 / Fig. 4 gap.
    let size_mul = match role {
        _ if opacity < 0.045 => 1.75,
        Role::Backdrop => 1.2,
        _ => 0.8,
    };
    Gaussian3D::new(
        position,
        sample_scale(params, size_mul, rng),
        sample_rotation(rng),
        opacity,
        sample_sh(rng),
    )
}

fn camera_rig(params: &PresetParams) -> OrbitRig {
    let r = params.world_radius;
    match params.kind {
        SceneKind::Object => OrbitRig {
            center: Vec3::ZERO,
            look_at: Vec3::ZERO,
            radius: params.camera_distance * r,
            height: 0.38 * r,
            arc: 1.0,
            phase: 0.0,
        },
        SceneKind::Outdoor | SceneKind::Indoor => OrbitRig {
            // Eye stands at the sector base (−X of the content), looking
            // into the scanned direction.
            center: Vec3::new(0.0, 0.14 * r, 0.0),
            look_at: Vec3::new(0.45 * r, 0.10 * r, 0.0),
            radius: params.camera_distance * r,
            height: 0.0,
            arc: 0.08,
            phase: std::f32::consts::PI,
        },
    }
}

#[cfg(test)]
mod tests {
    use crate::{SceneConfig, ScenePreset, ALL_PRESETS};

    #[test]
    fn determinism_same_seed_same_scene() {
        let a = ScenePreset::Train.build(&SceneConfig::with_scale(0.05));
        let b = ScenePreset::Train.build(&SceneConfig::with_scale(0.05));
        assert_eq!(a.gaussians, b.gaussians);
    }

    #[test]
    fn seed_override_changes_scene() {
        let a = ScenePreset::Train.build(&SceneConfig::with_scale(0.05));
        let mut cfg = SceneConfig::with_scale(0.05);
        cfg.seed = Some(42);
        let b = ScenePreset::Train.build(&cfg);
        assert_ne!(a.gaussians, b.gaussians);
    }

    #[test]
    fn scale_controls_count() {
        let small = ScenePreset::Truck.build(&SceneConfig::with_scale(0.01));
        let large = ScenePreset::Truck.build(&SceneConfig::with_scale(0.05));
        assert!(large.len() > 3 * small.len());
    }

    #[test]
    fn all_presets_build_and_are_valid() {
        for p in ALL_PRESETS {
            let scene = p.build(&SceneConfig::with_scale(0.02));
            assert!(!scene.is_empty(), "{p}");
            for g in &scene.gaussians {
                assert!(g.mean.is_finite(), "{p}: non-finite mean");
                assert!(g.scale.x > 0.0 && g.scale.y > 0.0 && g.scale.z > 0.0);
                let w = g.opacity();
                assert!((0.0..=1.0).contains(&w), "{p}: opacity {w}");
            }
        }
    }

    #[test]
    fn opacity_mixture_has_low_tail_and_opaque_mode() {
        let scene = ScenePreset::Drjohnson.build(&SceneConfig::with_scale(0.1));
        let n = scene.len() as f32;
        let low = scene
            .gaussians
            .iter()
            .filter(|g| g.opacity() < 0.08)
            .count() as f32;
        let high = scene.gaussians.iter().filter(|g| g.opacity() > 0.6).count() as f32;
        let p = ScenePreset::Drjohnson.params();
        // Backdrop points (walls) are forced opaque, so the low tail is
        // diluted below its nominal fraction and the opaque mode exceeds
        // its nominal fraction.
        assert!(low / n > 0.5 * p.opacity_low_frac && low / n <= p.opacity_low_frac + 0.05);
        assert!(high / n >= 1.0 - p.opacity_low_frac - p.opacity_mid_frac - 0.05);
    }

    #[test]
    fn object_scene_is_compact() {
        let p = ScenePreset::Lego.params();
        let scene = ScenePreset::Lego.build(&SceneConfig::with_scale(0.1));
        let mut inside = 0usize;
        for g in &scene.gaussians {
            if g.mean.norm() <= 1.3 * p.world_radius {
                inside += 1;
            }
        }
        assert!(inside as f32 / scene.len() as f32 > 0.95);
    }

    #[test]
    fn default_camera_sees_most_of_an_object_scene() {
        let scene = ScenePreset::Lego.build(&SceneConfig::with_scale(0.05));
        let cam = scene.default_camera();
        let visible = scene
            .gaussians
            .iter()
            .filter(|g| {
                cam.project_point(g.mean)
                    .map(|(px, _)| cam.in_bounds(px))
                    .unwrap_or(false)
            })
            .count();
        let frac = visible as f32 / scene.len() as f32;
        assert!(frac > 0.85, "object in-frustum fraction {frac}");
    }

    #[test]
    fn scan_scenes_have_out_of_frustum_content() {
        for p in [ScenePreset::Train, ScenePreset::Truck] {
            let scene = p.build(&SceneConfig::with_scale(0.05));
            let cam = scene.default_camera();
            let visible = scene
                .gaussians
                .iter()
                .filter(|g| {
                    cam.project_point(g.mean)
                        .map(|(px, _)| cam.in_bounds(px))
                        .unwrap_or(false)
                })
                .count();
            let frac = visible as f32 / scene.len() as f32;
            assert!(
                frac > 0.4 && frac < 0.92,
                "{p}: in-frustum fraction {frac} out of the plausible scan range"
            );
        }
    }

    #[test]
    fn rotations_are_normalized() {
        let scene = ScenePreset::Palace.build(&SceneConfig::with_scale(0.05));
        for g in scene.gaussians.iter().take(500) {
            assert!((g.rot.norm() - 1.0).abs() < 1e-3);
        }
    }
}
