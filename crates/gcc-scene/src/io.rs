//! Scene (de)serialization: JSON for interchange, a compact binary float
//! format for large clouds.
//!
//! The binary layout is the accelerator's DRAM image: a small header
//! followed by each Gaussian's 59-float record (see
//! [`Gaussian3D::to_floats`]), little-endian.

use crate::{OrbitRig, Scene};
use gcc_core::{Gaussian3D, PARAM_FLOATS};
use std::io::{self, Read, Write};

/// Magic bytes of the binary format.
const MAGIC: &[u8; 8] = b"GCC3DGS\0";

/// Errors from scene I/O.
#[derive(Debug)]
pub enum SceneIoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Malformed file contents.
    Format(String),
}

impl std::fmt::Display for SceneIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "i/o error: {e}"),
            Self::Format(m) => write!(f, "invalid scene file: {m}"),
        }
    }
}

impl std::error::Error for SceneIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            Self::Format(_) => None,
        }
    }
}

impl From<io::Error> for SceneIoError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

/// Serializes a scene as JSON (pretty when `pretty`).
///
/// # Errors
///
/// Returns [`SceneIoError::Format`] if serde fails (should not happen for
/// well-formed scenes).
pub fn to_json(scene: &Scene, pretty: bool) -> Result<String, SceneIoError> {
    let r = if pretty {
        serde_json::to_string_pretty(scene)
    } else {
        serde_json::to_string(scene)
    };
    r.map_err(|e| SceneIoError::Format(e.to_string()))
}

/// Parses a scene from JSON.
///
/// # Errors
///
/// Returns [`SceneIoError::Format`] for malformed JSON.
pub fn from_json(s: &str) -> Result<Scene, SceneIoError> {
    serde_json::from_str(s).map_err(|e| SceneIoError::Format(e.to_string()))
}

/// Writes the binary DRAM-image format.
///
/// # Errors
///
/// Propagates writer failures.
pub fn write_binary<W: Write>(scene: &Scene, mut w: W) -> Result<(), SceneIoError> {
    w.write_all(MAGIC)?;
    let name = scene.name.as_bytes();
    w.write_all(&(name.len() as u32).to_le_bytes())?;
    w.write_all(name)?;
    w.write_all(&scene.resolution.0.to_le_bytes())?;
    w.write_all(&scene.resolution.1.to_le_bytes())?;
    w.write_all(&scene.fov_y_deg.to_le_bytes())?;
    let rig = [
        scene.rig.center.x,
        scene.rig.center.y,
        scene.rig.center.z,
        scene.rig.look_at.x,
        scene.rig.look_at.y,
        scene.rig.look_at.z,
        scene.rig.radius,
        scene.rig.height,
        scene.rig.arc,
        scene.rig.phase,
    ];
    for v in rig {
        w.write_all(&v.to_le_bytes())?;
    }
    w.write_all(&(scene.gaussians.len() as u64).to_le_bytes())?;
    for g in &scene.gaussians {
        for v in g.to_floats() {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Reads the binary DRAM-image format.
///
/// # Errors
///
/// Returns [`SceneIoError::Format`] for bad magic/truncated payloads and
/// [`SceneIoError::Io`] for reader failures.
pub fn read_binary<R: Read>(mut r: R) -> Result<Scene, SceneIoError> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(SceneIoError::Format("bad magic".into()));
    }
    let name_len = read_u32(&mut r)? as usize;
    if name_len > 4096 {
        return Err(SceneIoError::Format(format!("name length {name_len}")));
    }
    let mut name = vec![0u8; name_len];
    r.read_exact(&mut name)?;
    let name =
        String::from_utf8(name).map_err(|_| SceneIoError::Format("non-UTF8 name".into()))?;
    let width = read_u32(&mut r)?;
    let height = read_u32(&mut r)?;
    let fov_y_deg = read_f32(&mut r)?;
    let mut rig = [0.0f32; 10];
    for v in &mut rig {
        *v = read_f32(&mut r)?;
    }
    let count = read_u64(&mut r)? as usize;
    let mut gaussians = Vec::with_capacity(count.min(1 << 24));
    let mut rec = [0.0f32; PARAM_FLOATS];
    for _ in 0..count {
        for v in &mut rec {
            *v = read_f32(&mut r)?;
        }
        gaussians.push(Gaussian3D::from_floats(&rec));
    }
    Ok(Scene {
        name,
        gaussians,
        resolution: (width, height),
        fov_y_deg,
        rig: OrbitRig {
            center: gcc_math::Vec3::new(rig[0], rig[1], rig[2]),
            look_at: gcc_math::Vec3::new(rig[3], rig[4], rig[5]),
            radius: rig[6],
            height: rig[7],
            arc: rig[8],
            phase: rig[9],
        },
    })
}

fn read_u32<R: Read>(r: &mut R) -> Result<u32, SceneIoError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64, SceneIoError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_f32<R: Read>(r: &mut R) -> Result<f32, SceneIoError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(f32::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SceneConfig, ScenePreset};

    fn small_scene() -> Scene {
        ScenePreset::Lego.build(&SceneConfig::with_scale(0.02))
    }

    #[test]
    fn json_round_trip() {
        let scene = small_scene();
        let s = to_json(&scene, false).unwrap();
        let back = from_json(&s).unwrap();
        assert_eq!(scene.name, back.name);
        assert_eq!(scene.gaussians, back.gaussians);
        assert_eq!(scene.resolution, back.resolution);
    }

    #[test]
    fn binary_round_trip() {
        let scene = small_scene();
        let mut buf = Vec::new();
        write_binary(&scene, &mut buf).unwrap();
        let back = read_binary(buf.as_slice()).unwrap();
        assert_eq!(scene.name, back.name);
        assert_eq!(scene.gaussians, back.gaussians);
        assert_eq!(scene.rig, back.rig);
    }

    #[test]
    fn binary_size_matches_59_float_records() {
        let scene = small_scene();
        let mut buf = Vec::new();
        write_binary(&scene, &mut buf).unwrap();
        let payload = scene.gaussians.len() * PARAM_FLOATS * 4;
        // Header: magic 8 + name_len 4 + name + res 8 + fov 4 + rig 40 + count 8.
        let header = 8 + 4 + scene.name.len() + 8 + 4 + 40 + 8;
        assert_eq!(buf.len(), header + payload);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = read_binary(&b"NOTASCENE_______"[..]).unwrap_err();
        assert!(matches!(err, SceneIoError::Format(_)));
    }

    #[test]
    fn truncated_payload_is_io_error() {
        let scene = small_scene();
        let mut buf = Vec::new();
        write_binary(&scene, &mut buf).unwrap();
        buf.truncate(buf.len() - 13);
        let err = read_binary(buf.as_slice()).unwrap_err();
        assert!(matches!(err, SceneIoError::Io(_)));
    }
}
