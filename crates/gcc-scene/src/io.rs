//! Scene (de)serialization: JSON for interchange, a compact binary float
//! format for large clouds.
//!
//! The binary layout is the accelerator's DRAM image: a small header
//! followed by each Gaussian's 59-float record (see
//! [`Gaussian3D::to_floats`]), little-endian.

use crate::codec;
use crate::json::{self, Value};
use crate::{OrbitRig, Scene};
use gcc_core::{Gaussian3D, PARAM_FLOATS};
use gcc_math::Vec3;
use std::fmt::Write as _;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Magic bytes of the binary format.
const MAGIC: &[u8; 8] = b"GCC3DGS\0";

/// Errors from scene I/O.
#[derive(Debug)]
pub enum SceneIoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Malformed file contents.
    Format(String),
}

impl std::fmt::Display for SceneIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "i/o error: {e}"),
            Self::Format(m) => write!(f, "invalid scene file: {m}"),
        }
    }
}

impl std::error::Error for SceneIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            Self::Format(_) => None,
        }
    }
}

impl From<io::Error> for SceneIoError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

impl SceneIoError {
    /// Whether retrying the same load could plausibly succeed.
    ///
    /// Transient I/O conditions (interrupted syscalls, timeouts, remote
    /// stores that momentarily refuse) are retryable; anything that
    /// reflects a property of the file itself — missing, unreadable by
    /// policy, or malformed ([`Self::Format`]) — is fatal, because the
    /// bytes will be exactly as bad on the next attempt. Unknown I/O
    /// kinds default to retryable: a serving layer would rather burn a
    /// few bounded retries than permanently quarantine a scene over a
    /// transient failure it could not classify.
    pub fn is_retryable(&self) -> bool {
        match self {
            Self::Format(_) => false,
            Self::Io(e) => !matches!(
                e.kind(),
                io::ErrorKind::NotFound
                    | io::ErrorKind::PermissionDenied
                    | io::ErrorKind::InvalidData
                    | io::ErrorKind::InvalidInput
                    | io::ErrorKind::Unsupported
            ),
        }
    }
}

/// Bounded-retry policy for scene loads: up to `max_attempts` tries with
/// deterministic exponential backoff (`base_backoff * 2^(attempt-1)`,
/// capped at `max_backoff`). Deterministic on purpose — no jitter — so
/// fault-injected tests replay the exact same schedule every run. The
/// policy is pure data; the serving layer owns the sleep-and-retry loop
/// (and may bail early on shutdown between attempts).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total load attempts (first try included). At least 1.
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles each retry.
    pub base_backoff: std::time::Duration,
    /// Ceiling on any single backoff sleep.
    pub max_backoff: std::time::Duration,
}

impl Default for RetryPolicy {
    /// Three attempts, 10 ms → 20 ms between them, capped at 500 ms.
    fn default() -> Self {
        Self {
            max_attempts: 3,
            base_backoff: std::time::Duration::from_millis(10),
            max_backoff: std::time::Duration::from_millis(500),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (single attempt, no backoff).
    pub fn no_retries() -> Self {
        Self {
            max_attempts: 1,
            ..Self::default()
        }
    }

    /// Backoff to sleep after failed attempt `attempt` (1-based), or
    /// `None` when the policy is exhausted and no further attempt should
    /// be made.
    pub fn backoff_for(&self, attempt: u32) -> Option<std::time::Duration> {
        if attempt >= self.max_attempts.max(1) {
            return None;
        }
        let exp = attempt.saturating_sub(1).min(32);
        let backoff = self
            .base_backoff
            .saturating_mul(1u32.checked_shl(exp).unwrap_or(u32::MAX));
        Some(backoff.min(self.max_backoff))
    }
}

/// Serializes a scene as JSON (pretty when `pretty`).
///
/// Floats are written with Rust's shortest round-trip formatting, so
/// [`from_json`] recovers bit-identical values. Each Gaussian is one
/// 59-float array in [`Gaussian3D::to_floats`] order.
///
/// # Errors
///
/// Returns [`SceneIoError::Format`] if the scene contains a non-finite
/// float (JSON has no NaN/infinity tokens, and a silent `NaN` would
/// break the round trip at parse time instead of here).
pub fn to_json(scene: &Scene, pretty: bool) -> Result<String, SceneIoError> {
    let finite = |v: f32, what: &str| {
        if v.is_finite() {
            Ok(())
        } else {
            Err(SceneIoError::Format(format!("non-finite {what}: {v}")))
        }
    };
    finite(scene.fov_y_deg, "fov_y_deg")?;
    let r = &scene.rig;
    for (v, what) in [
        (r.center.x, "rig.center"),
        (r.center.y, "rig.center"),
        (r.center.z, "rig.center"),
        (r.look_at.x, "rig.look_at"),
        (r.look_at.y, "rig.look_at"),
        (r.look_at.z, "rig.look_at"),
        (r.radius, "rig.radius"),
        (r.height, "rig.height"),
        (r.arc, "rig.arc"),
        (r.phase, "rig.phase"),
    ] {
        finite(v, what)?;
    }

    let (nl, ind, sp) = if pretty {
        ("\n", "  ", " ")
    } else {
        ("", "", "")
    };
    let mut out = String::with_capacity(scene.gaussians.len() * PARAM_FLOATS * 8 + 256);
    out.push('{');
    out.push_str(nl);

    let _ = write!(out, "{ind}\"name\":{sp}");
    json::write_str(&mut out, &scene.name);
    let _ = write!(
        out,
        ",{nl}{ind}\"resolution\":{sp}[{},{sp}{}],{nl}",
        scene.resolution.0, scene.resolution.1
    );
    let _ = write!(out, "{ind}\"fov_y_deg\":{sp}{},{nl}", scene.fov_y_deg);

    let r = &scene.rig;
    let _ = write!(
        out,
        "{ind}\"rig\":{sp}{{\"center\":{sp}[{},{sp}{},{sp}{}],{sp}\"look_at\":{sp}[{},{sp}{},{sp}{}],{sp}\
         \"radius\":{sp}{},{sp}\"height\":{sp}{},{sp}\"arc\":{sp}{},{sp}\"phase\":{sp}{}}},{nl}",
        r.center.x, r.center.y, r.center.z,
        r.look_at.x, r.look_at.y, r.look_at.z,
        r.radius, r.height, r.arc, r.phase
    );

    let _ = write!(out, "{ind}\"gaussians\":{sp}[{nl}");
    for (i, g) in scene.gaussians.iter().enumerate() {
        let _ = write!(out, "{ind}{ind}[");
        for (j, v) in g.to_floats().iter().enumerate() {
            if !v.is_finite() {
                return Err(SceneIoError::Format(format!(
                    "non-finite float in gaussian {i} (index {j}): {v}"
                )));
            }
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "{v}");
        }
        out.push(']');
        if i + 1 != scene.gaussians.len() {
            out.push(',');
        }
        out.push_str(nl);
    }
    let _ = write!(out, "{ind}]");
    if let Some(lod) = &scene.lod {
        let _ = write!(out, ",{nl}{ind}\"lod\":{sp}");
        lod.write_json(&mut out).map_err(SceneIoError::Format)?;
    }
    let _ = write!(out, "{nl}}}");
    Ok(out)
}

fn field<'v>(v: &'v Value, key: &str) -> Result<&'v Value, SceneIoError> {
    v.get(key)
        .ok_or_else(|| SceneIoError::Format(format!("missing field '{key}'")))
}

fn f32_field(v: &Value, key: &str) -> Result<f32, SceneIoError> {
    field(v, key)?
        .as_f32()
        .ok_or_else(|| SceneIoError::Format(format!("field '{key}' is not a number")))
}

fn vec3_field(v: &Value, key: &str) -> Result<Vec3, SceneIoError> {
    let arr = field(v, key)?
        .as_arr()
        .filter(|a| a.len() == 3)
        .ok_or_else(|| SceneIoError::Format(format!("field '{key}' is not a 3-array")))?;
    let mut out = [0.0f32; 3];
    for (slot, item) in out.iter_mut().zip(arr) {
        *slot = item
            .as_f32()
            .ok_or_else(|| SceneIoError::Format(format!("non-numeric '{key}' element")))?;
    }
    Ok(Vec3::new(out[0], out[1], out[2]))
}

/// Parses a scene from the JSON produced by [`to_json`].
///
/// # Errors
///
/// Returns [`SceneIoError::Format`] for malformed JSON or a wrong schema.
pub fn from_json(s: &str) -> Result<Scene, SceneIoError> {
    let doc = json::parse(s).map_err(SceneIoError::Format)?;
    let name = field(&doc, "name")?
        .as_str()
        .ok_or_else(|| SceneIoError::Format("'name' is not a string".into()))?
        .to_string();
    let res = field(&doc, "resolution")?
        .as_arr()
        .filter(|a| a.len() == 2)
        .ok_or_else(|| SceneIoError::Format("'resolution' is not a 2-array".into()))?;
    let resolution = (
        res[0]
            .as_u32()
            .ok_or_else(|| SceneIoError::Format("bad width".into()))?,
        res[1]
            .as_u32()
            .ok_or_else(|| SceneIoError::Format("bad height".into()))?,
    );
    let fov_y_deg = f32_field(&doc, "fov_y_deg")?;
    let rig_v = field(&doc, "rig")?;
    let rig = OrbitRig {
        center: vec3_field(rig_v, "center")?,
        look_at: vec3_field(rig_v, "look_at")?,
        radius: f32_field(rig_v, "radius")?,
        height: f32_field(rig_v, "height")?,
        arc: f32_field(rig_v, "arc")?,
        phase: f32_field(rig_v, "phase")?,
    };
    let gauss_v = field(&doc, "gaussians")?
        .as_arr()
        .ok_or_else(|| SceneIoError::Format("'gaussians' is not an array".into()))?;
    let mut gaussians = Vec::with_capacity(gauss_v.len());
    for (i, g) in gauss_v.iter().enumerate() {
        let rec = g
            .as_arr()
            .filter(|a| a.len() == PARAM_FLOATS)
            .ok_or_else(|| {
                SceneIoError::Format(format!("gaussian {i} is not a {PARAM_FLOATS}-array"))
            })?;
        let mut floats = [0.0f32; PARAM_FLOATS];
        for (slot, item) in floats.iter_mut().zip(rec) {
            *slot = item
                .as_f32()
                .ok_or_else(|| SceneIoError::Format(format!("gaussian {i}: bad float")))?;
        }
        gaussians.push(Gaussian3D::from_floats(&floats));
    }
    let lod = match doc.get("lod") {
        Some(v) => Some(crate::lod::SceneLod::from_json(v).map_err(SceneIoError::Format)?),
        None => None,
    };
    Ok(Scene {
        name,
        gaussians,
        resolution,
        fov_y_deg,
        rig,
        lod,
    })
}

/// Writes the binary DRAM-image format.
///
/// # Errors
///
/// Propagates writer failures.
pub fn write_binary<W: Write>(scene: &Scene, mut w: W) -> Result<(), SceneIoError> {
    w.write_all(MAGIC)?;
    codec::write_str(&mut w, &scene.name)?;
    codec::write_u32(&mut w, scene.resolution.0)?;
    codec::write_u32(&mut w, scene.resolution.1)?;
    codec::write_f32(&mut w, scene.fov_y_deg)?;
    let rig = [
        scene.rig.center.x,
        scene.rig.center.y,
        scene.rig.center.z,
        scene.rig.look_at.x,
        scene.rig.look_at.y,
        scene.rig.look_at.z,
        scene.rig.radius,
        scene.rig.height,
        scene.rig.arc,
        scene.rig.phase,
    ];
    for v in rig {
        codec::write_f32(&mut w, v)?;
    }
    codec::write_u64(&mut w, scene.gaussians.len() as u64)?;
    for g in &scene.gaussians {
        for v in g.to_floats() {
            codec::write_f32(&mut w, v)?;
        }
    }
    // Optional trailing LOD section: a presence flag, then the hierarchy.
    // Files written before the adaptive-quality subsystem simply end at
    // the last Gaussian record; the reader treats EOF here as "no lod".
    match &scene.lod {
        Some(lod) => {
            codec::write_u8(&mut w, 1)?;
            lod.write_binary(&mut w)?;
        }
        None => codec::write_u8(&mut w, 0)?,
    }
    Ok(())
}

/// Reads the binary DRAM-image format.
///
/// # Errors
///
/// Returns [`SceneIoError::Format`] for bad magic/truncated payloads and
/// [`SceneIoError::Io`] for reader failures.
pub fn read_binary<R: Read>(mut r: R) -> Result<Scene, SceneIoError> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(SceneIoError::Format("bad magic".into()));
    }
    read_binary_after_magic(&mut r)
}

/// Body of the binary format, after the 8 magic bytes were consumed.
fn read_binary_after_magic<R: Read>(r: &mut R) -> Result<Scene, SceneIoError> {
    // `read_str` would fold the cap and UTF-8 checks into one
    // `InvalidData` I/O error; the name is read by hand so both keep
    // surfacing as the historical `Format` errors.
    let name_len = codec::read_u32(r)? as usize;
    if name_len > 4096 {
        return Err(SceneIoError::Format(format!("name length {name_len}")));
    }
    let mut name = vec![0u8; name_len];
    r.read_exact(&mut name)?;
    let name = String::from_utf8(name).map_err(|_| SceneIoError::Format("non-UTF8 name".into()))?;
    let width = codec::read_u32(r)?;
    let height = codec::read_u32(r)?;
    let fov_y_deg = codec::read_f32(r)?;
    let mut rig = [0.0f32; 10];
    for v in &mut rig {
        *v = codec::read_f32(r)?;
    }
    let count = codec::read_u64(r)? as usize;
    let mut gaussians = Vec::with_capacity(count.min(1 << 24));
    let mut rec = [0.0f32; PARAM_FLOATS];
    for _ in 0..count {
        for v in &mut rec {
            *v = codec::read_f32(r)?;
        }
        gaussians.push(Gaussian3D::from_floats(&rec));
    }
    // Optional trailing LOD section. Pre-LOD files end here, so a clean
    // EOF at the flag byte means "no hierarchy"; any other flag value or
    // a truncated section is a format error.
    let lod = match codec::read_u8(r) {
        Ok(1) => Some(
            crate::lod::SceneLod::read_binary(r)
                .map_err(|e| SceneIoError::Format(format!("bad lod section: {e}")))?,
        ),
        Ok(0) => None,
        Ok(flag) => {
            return Err(SceneIoError::Format(format!("bad lod flag {flag}")));
        }
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => None,
        Err(e) => return Err(e.into()),
    };
    Ok(Scene {
        name,
        gaussians,
        resolution: (width, height),
        fov_y_deg,
        rig: OrbitRig {
            center: gcc_math::Vec3::new(rig[0], rig[1], rig[2]),
            look_at: gcc_math::Vec3::new(rig[3], rig[4], rig[5]),
            radius: rig[6],
            height: rig[7],
            arc: rig[8],
            phase: rig[9],
        },
        lod,
    })
}

/// Writes `scene` to `path` in the binary DRAM-image format (buffered).
///
/// # Errors
///
/// Propagates file-creation and write failures.
pub fn write_binary_file(scene: &Scene, path: &Path) -> Result<(), SceneIoError> {
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    write_binary(scene, &mut w)?;
    w.flush()?;
    Ok(())
}

/// Writes `scene` to `path` as (compact) JSON.
///
/// # Errors
///
/// Propagates serialization and write failures.
pub fn write_json_file(scene: &Scene, path: &Path) -> Result<(), SceneIoError> {
    let s = to_json(scene, false)?;
    std::fs::write(path, s)?;
    Ok(())
}

/// Loads a scene from `path`, sniffing the format: files starting with the
/// binary magic parse as the DRAM-image format, everything else as JSON.
/// This is the loader handle the serving layer's cache uses for on-demand
/// residency, so it must accept both interchange formats by content, not
/// by extension.
///
/// # Errors
///
/// Returns [`SceneIoError::Io`] for filesystem failures and
/// [`SceneIoError::Format`] for malformed contents in either format.
pub fn load_scene_file(path: &Path) -> Result<Scene, SceneIoError> {
    let file = std::fs::File::open(path)?;
    let mut r = BufReader::new(file);
    let mut head = [0u8; 8];
    let got = {
        // Read up to 8 bytes without failing on shorter (JSON) files;
        // retry EINTR like `read_exact` would.
        let mut filled = 0;
        while filled < head.len() {
            match r.read(&mut head[filled..]) {
                Ok(0) => break,
                Ok(n) => filled += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e.into()),
            }
        }
        filled
    };
    if got == head.len() && &head == MAGIC {
        return read_binary_after_magic(&mut r);
    }
    // Not the binary format: treat the whole file as JSON. UTF-8 is
    // validated over the full contents (a multi-byte character may span
    // the sniffed head's boundary).
    let mut bytes = head[..got].to_vec();
    r.read_to_end(&mut bytes)?;
    let text = String::from_utf8(bytes)
        .map_err(|_| SceneIoError::Format("neither binary magic nor UTF-8 JSON".into()))?;
    from_json(&text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SceneConfig, ScenePreset};

    fn small_scene() -> Scene {
        ScenePreset::Lego.build(&SceneConfig::with_scale(0.02))
    }

    #[test]
    fn json_round_trip() {
        let scene = small_scene();
        let s = to_json(&scene, false).unwrap();
        let back = from_json(&s).unwrap();
        assert_eq!(scene.name, back.name);
        assert_eq!(scene.gaussians, back.gaussians);
        assert_eq!(scene.resolution, back.resolution);
    }

    #[test]
    fn overflowing_floats_are_rejected_at_parse_time() {
        // A foreign/hand-edited document whose value saturates f32 to
        // infinity must fail parsing, mirroring the writer-side check.
        let doc = |fov: &str| {
            format!(
                "{{\"name\":\"x\",\"resolution\":[4,4],\"fov_y_deg\":{fov},\
                 \"rig\":{{\"center\":[0,0,0],\"look_at\":[0,0,1],\"radius\":1,\
                 \"height\":0,\"arc\":1,\"phase\":0}},\"gaussians\":[]}}"
            )
        };
        assert!(from_json(&doc("47")).is_ok());
        let err = from_json(&doc("1e39")).unwrap_err();
        assert!(matches!(err, SceneIoError::Format(_)), "{err}");
    }

    #[test]
    fn non_finite_scene_is_rejected_at_write_time() {
        let mut scene = small_scene();
        scene.gaussians[0].ln_opacity = f32::NAN;
        let err = to_json(&scene, false).unwrap_err();
        assert!(matches!(err, SceneIoError::Format(_)), "{err}");
        let mut scene = small_scene();
        scene.fov_y_deg = f32::INFINITY;
        assert!(to_json(&scene, false).is_err());
    }

    #[test]
    fn binary_round_trip() {
        let scene = small_scene();
        let mut buf = Vec::new();
        write_binary(&scene, &mut buf).unwrap();
        let back = read_binary(buf.as_slice()).unwrap();
        assert_eq!(scene.name, back.name);
        assert_eq!(scene.gaussians, back.gaussians);
        assert_eq!(scene.rig, back.rig);
    }

    #[test]
    fn binary_size_matches_59_float_records() {
        let scene = small_scene();
        let mut buf = Vec::new();
        write_binary(&scene, &mut buf).unwrap();
        let payload = scene.gaussians.len() * PARAM_FLOATS * 4;
        // Header: magic 8 + name_len 4 + name + res 8 + fov 4 + rig 40 + count 8.
        let header = 8 + 4 + scene.name.len() + 8 + 4 + 40 + 8;
        // Trailer: 1 lod-presence flag byte (0 here: no hierarchy).
        assert_eq!(buf.len(), header + payload + 1);
    }

    fn scene_with_lod() -> Scene {
        let mut scene = small_scene();
        let coarse: Vec<Gaussian3D> = scene.gaussians.iter().step_by(3).cloned().collect();
        let coarser: Vec<Gaussian3D> = scene.gaussians.iter().step_by(9).cloned().collect();
        scene.lod = Some(crate::lod::SceneLod {
            levels: vec![
                crate::lod::LodLevel {
                    gaussians: coarse,
                    cell_size: 0.25,
                },
                crate::lod::LodLevel {
                    gaussians: coarser,
                    cell_size: 0.5,
                },
            ],
            seed: 99,
        });
        scene
    }

    #[test]
    fn json_round_trip_preserves_lod_hierarchy() {
        let scene = scene_with_lod();
        let s = to_json(&scene, true).unwrap();
        let back = from_json(&s).unwrap();
        assert_eq!(scene.gaussians, back.gaussians);
        assert_eq!(scene.lod, back.lod);
    }

    #[test]
    fn binary_round_trip_preserves_lod_hierarchy() {
        let scene = scene_with_lod();
        let mut buf = Vec::new();
        write_binary(&scene, &mut buf).unwrap();
        let back = read_binary(buf.as_slice()).unwrap();
        assert_eq!(scene.gaussians, back.gaussians);
        assert_eq!(scene.lod, back.lod);
    }

    #[test]
    fn pre_lod_binary_files_still_load() {
        // Files written before the LOD section simply end after the last
        // Gaussian record — strip the flag byte to simulate one.
        let scene = small_scene();
        let mut buf = Vec::new();
        write_binary(&scene, &mut buf).unwrap();
        buf.truncate(buf.len() - 1);
        let back = read_binary(buf.as_slice()).unwrap();
        assert_eq!(scene.gaussians, back.gaussians);
        assert!(back.lod.is_none());
    }

    #[test]
    fn corrupt_lod_flag_is_a_format_error() {
        let scene = small_scene();
        let mut buf = Vec::new();
        write_binary(&scene, &mut buf).unwrap();
        *buf.last_mut().unwrap() = 7;
        assert!(matches!(
            read_binary(buf.as_slice()).unwrap_err(),
            SceneIoError::Format(_)
        ));
    }

    #[test]
    fn truncated_lod_section_is_a_format_error() {
        let scene = scene_with_lod();
        let mut buf = Vec::new();
        write_binary(&scene, &mut buf).unwrap();
        buf.truncate(buf.len() - 5);
        assert!(matches!(
            read_binary(buf.as_slice()).unwrap_err(),
            SceneIoError::Format(_)
        ));
    }

    #[test]
    fn file_loader_sniffs_both_formats() {
        let scene = small_scene();
        let dir = std::env::temp_dir().join(format!("gcc_io_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let bin = dir.join("scene.bin");
        let json = dir.join("scene.json");
        write_binary_file(&scene, &bin).unwrap();
        write_json_file(&scene, &json).unwrap();
        for path in [&bin, &json] {
            let back = load_scene_file(path).unwrap();
            assert_eq!(scene.name, back.name);
            assert_eq!(scene.gaussians, back.gaussians);
            assert_eq!(scene.resolution, back.resolution);
        }
        // A short garbage file is a format error, not a panic.
        let junk = dir.join("junk");
        std::fs::write(&junk, b"no").unwrap();
        assert!(matches!(
            load_scene_file(&junk).unwrap_err(),
            SceneIoError::Format(_)
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn json_sniff_survives_multibyte_char_across_the_head_boundary() {
        // A multi-byte UTF-8 character spanning the 8-byte sniff head
        // must not break format detection: validation is whole-file.
        let scene = small_scene();
        let orig = to_json(&scene, false).unwrap();
        let doc = format!("{{\"xy\":\"é\",{}", &orig[1..]);
        assert_eq!(doc.as_bytes()[7], 0xC3, "é must straddle bytes 7..9");
        let dir = std::env::temp_dir().join(format!("gcc_io_mb_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("scene.json");
        std::fs::write(&path, &doc).unwrap();
        let back = load_scene_file(&path).unwrap();
        assert_eq!(scene.gaussians, back.gaussians);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn retryability_classifies_io_kinds_and_format_errors() {
        use std::io::ErrorKind;
        // Properties of the file itself: fatal.
        assert!(!SceneIoError::Format("truncated".into()).is_retryable());
        for kind in [
            ErrorKind::NotFound,
            ErrorKind::PermissionDenied,
            ErrorKind::InvalidData,
            ErrorKind::InvalidInput,
            ErrorKind::Unsupported,
        ] {
            let e = SceneIoError::Io(io::Error::new(kind, "x"));
            assert!(!e.is_retryable(), "{kind:?} should be fatal");
        }
        // Transient conditions (and unknown kinds): retryable.
        for kind in [
            ErrorKind::Interrupted,
            ErrorKind::TimedOut,
            ErrorKind::WouldBlock,
            ErrorKind::ConnectionReset,
            ErrorKind::Other,
        ] {
            let e = SceneIoError::Io(io::Error::new(kind, "x"));
            assert!(e.is_retryable(), "{kind:?} should be retryable");
        }
    }

    #[test]
    fn retry_backoff_doubles_deterministically_and_caps() {
        use std::time::Duration;
        let p = RetryPolicy {
            max_attempts: 5,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(35),
        };
        assert_eq!(p.backoff_for(1), Some(Duration::from_millis(10)));
        assert_eq!(p.backoff_for(2), Some(Duration::from_millis(20)));
        assert_eq!(p.backoff_for(3), Some(Duration::from_millis(35))); // capped
        assert_eq!(p.backoff_for(4), Some(Duration::from_millis(35)));
        assert_eq!(p.backoff_for(5), None); // exhausted
        assert_eq!(p.backoff_for(99), None);
        // Identical inputs replay identical schedules.
        assert_eq!(p.backoff_for(2), p.backoff_for(2));
    }

    #[test]
    fn no_retries_policy_exhausts_after_one_attempt() {
        let p = RetryPolicy::no_retries();
        assert_eq!(p.max_attempts, 1);
        assert_eq!(p.backoff_for(1), None);
        // A zero max_attempts (misconfigured) still allows one attempt.
        let degenerate = RetryPolicy {
            max_attempts: 0,
            ..RetryPolicy::default()
        };
        assert_eq!(degenerate.backoff_for(1), None);
    }

    #[test]
    fn huge_attempt_numbers_do_not_overflow_backoff() {
        use std::time::Duration;
        let p = RetryPolicy {
            max_attempts: u32::MAX,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_secs(2),
        };
        // 2^(attempt-1) would overflow; the cap must still hold.
        assert_eq!(p.backoff_for(64), Some(Duration::from_secs(2)));
        assert_eq!(p.backoff_for(1000), Some(Duration::from_secs(2)));
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = load_scene_file(Path::new("/nonexistent/gcc-no-such-scene")).unwrap_err();
        assert!(matches!(err, SceneIoError::Io(_)));
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = read_binary(&b"NOTASCENE_______"[..]).unwrap_err();
        assert!(matches!(err, SceneIoError::Format(_)));
    }

    #[test]
    fn truncated_payload_is_io_error() {
        let scene = small_scene();
        let mut buf = Vec::new();
        write_binary(&scene, &mut buf).unwrap();
        buf.truncate(buf.len() - 13);
        let err = read_binary(buf.as_slice()).unwrap_err();
        assert!(matches!(err, SceneIoError::Io(_)));
    }
}
