//! Synthetic 3DGS scene generation for the GCC reproduction.
//!
//! The paper evaluates on six trained 3DGS models (Palace, Lego, Train,
//! Truck, Playroom, Drjohnson). Trained models are not redistributable, so
//! this crate synthesizes Gaussian clouds whose *pipeline-level statistics*
//! match what the paper's argument depends on (see `DESIGN.md` §1):
//!
//! * Gaussian population sizes proportional to the real scenes,
//! * in-frustum fractions of roughly 64–83% (paper Fig. 2(a)),
//! * a fat low-opacity tail plus an opaque mode, so that the effective
//!   (alpha ≥ 1/255) footprint is far smaller than the 3σ OBB/AABB
//!   footprints (paper Fig. 4, Table 1),
//! * splat sizes that overlap 3–6.5 tiles of 16×16 pixels on average
//!   (paper Fig. 2(b)),
//! * enough depth complexity for early termination to leave a majority of
//!   preprocessed Gaussians unused (paper Fig. 2(a), >60%).
//!
//! Everything is deterministic: a scene is a pure function of its preset
//! and seed.
//!
//! # Example
//!
//! ```
//! use gcc_scene::{ScenePreset, SceneConfig};
//!
//! let scene = ScenePreset::Lego.build(&SceneConfig::with_scale(0.05));
//! assert!(scene.gaussians.len() > 100);
//! let cam = scene.default_camera();
//! assert_eq!(cam.width, scene.resolution.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
pub mod codec;
pub mod io;
pub mod json;
pub mod lod;
mod preset;
pub mod rng;
mod runner;
mod scene;
mod trajectory;
mod view;

pub use lod::{LodLevel, SceneLod};
pub use preset::{PresetParams, SceneKind, ScenePreset, ALL_PRESETS};
pub use runner::{TrajectoryResult, TrajectoryRunner};
pub use scene::{Scene, SceneConfig, SceneStats};
pub use trajectory::OrbitRig;
pub use view::{ViewError, ViewSpec};
