//! A minimal JSON reader/writer for scene interchange.
//!
//! The build environment has no crates.io access, so scene JSON is handled
//! by this self-contained module instead of `serde_json`. Numbers keep
//! their raw source text ([`Value::Num`] stores the token), so an `f32`
//! written with Rust's shortest round-trip `Display` parses back to the
//! bit-identical `f32` — which is what makes the JSON round-trip tests in
//! [`crate::io`] exact.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw token text.
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member of an object by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Elements of an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// String payload.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Number parsed as `f32` (exact for tokens written from `f32`).
    ///
    /// Returns `None` for tokens whose magnitude overflows `f32` (Rust's
    /// parser saturates such tokens to infinity; JSON itself cannot
    /// represent non-finite values, so saturation is always an
    /// out-of-range input, not data).
    pub fn as_f32(&self) -> Option<f32> {
        match self {
            Value::Num(t) => t.parse().ok().filter(|v: &f32| v.is_finite()),
            _ => None,
        }
    }

    /// Number parsed as `u32`.
    pub fn as_u32(&self) -> Option<u32> {
        match self {
            Value::Num(t) => t.parse().ok(),
            _ => None,
        }
    }
}

/// Escapes and quotes a string into `out`.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a complete JSON document.
///
/// # Errors
///
/// Returns a human-readable message naming the byte offset of the problem.
pub fn parse(src: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

/// Maximum container nesting the parser accepts. Scene documents nest
/// four levels deep; the cap exists so a pathological foreign input
/// (e.g. `"[".repeat(100_000)`) returns `Err` instead of overflowing
/// the stack of this recursive-descent parser.
const MAX_DEPTH: u32 = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: u32,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let token = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-UTF8 number".to_string())?;
        // Validate now so consumers can parse infallibly later.
        token
            .parse::<f64>()
            .map_err(|_| format!("bad number '{token}' at byte {start}"))?;
        Ok(Value::Num(token.to_string()))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let code = self.hex4()?;
                            let c = match code {
                                // High surrogate: a spec-valid document
                                // encodes a supplementary-plane char as a
                                // \uHHHH\uLLLL pair.
                                0xD800..=0xDBFF => {
                                    if self.peek() != Some(b'\\') {
                                        return Err("high surrogate not followed by \\u".into());
                                    }
                                    self.pos += 1;
                                    if self.peek() != Some(b'u') {
                                        return Err("high surrogate not followed by \\u".into());
                                    }
                                    self.pos += 1;
                                    let low = self.hex4()?;
                                    if !(0xDC00..=0xDFFF).contains(&low) {
                                        return Err(format!("invalid low surrogate '{low:04x}'"));
                                    }
                                    let scalar = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(scalar)
                                        .ok_or_else(|| "bad surrogate pair".to_string())?
                                }
                                0xDC00..=0xDFFF => {
                                    return Err(format!("lone low surrogate '{code:04x}'"));
                                }
                                c => char::from_u32(c)
                                    .ok_or_else(|| format!("bad \\u escape '{c:04x}'"))?,
                            };
                            out.push(c);
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos - 1)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "non-UTF8 string".to_string())?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Reads the four hex digits of a `\u` escape (cursor past the `u`).
    fn hex4(&mut self) -> Result<u32, String> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or("truncated \\u escape")?;
        let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| format!("bad \\u escape '{hex}'"))?;
        self.pos += 4;
        Ok(code)
    }

    fn enter(&mut self) -> Result<(), String> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(format!(
                "nesting deeper than {MAX_DEPTH} at byte {}",
                self.pos
            ));
        }
        Ok(())
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        self.enter()?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            members.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        let v = parse(r#"{"a": [1, -2.5e3, true, null], "b": "x\ny"}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 4);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_u32(), Some(1));
        assert_eq!(v.get("b").unwrap().as_str(), Some("x\ny"));
    }

    #[test]
    fn f32_tokens_round_trip_exactly() {
        for x in [0.1f32, 1e-7, -3.4e38, std::f32::consts::PI, 1.0 / 3.0] {
            let doc = format!("[{x}]");
            let v = parse(&doc).unwrap();
            let back = v.as_arr().unwrap()[0].as_f32().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x}");
        }
    }

    #[test]
    fn overflowing_numbers_are_rejected_as_f32() {
        // parse::<f32> saturates 1e39/1e999 to inf; as_f32 must not let
        // that through as a "valid" number.
        for tok in ["1e39", "-1e39", "1e999"] {
            let v = parse(&format!("[{tok}]")).unwrap();
            assert_eq!(v.as_arr().unwrap()[0].as_f32(), None, "{tok}");
        }
        // Underflow to zero and f32::MAX remain accepted.
        let v = parse("[1e-60, 3.4028235e38]").unwrap();
        assert_eq!(v.as_arr().unwrap()[0].as_f32(), Some(0.0));
        assert_eq!(v.as_arr().unwrap()[1].as_f32(), Some(f32::MAX));
    }

    #[test]
    fn string_escapes_round_trip() {
        let mut out = String::new();
        write_str(&mut out, "a\"b\\c\nd\te\u{1}");
        let v = parse(&out).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nd\te\u{1}"));
    }

    #[test]
    fn surrogate_pairs_decode_and_lone_surrogates_are_rejected() {
        // U+1F600 is encoded in JSON as the surrogate pair \ud83d\ude00.
        let v = parse(r#"["\ud83d\ude00 ok"]"#).unwrap();
        assert_eq!(v.as_arr().unwrap()[0].as_str(), Some("\u{1F600} ok"));
        // Lone high, lone low, and high + non-surrogate all fail loudly.
        assert!(parse(r#"["\ud83d"]"#).is_err());
        assert!(parse(r#"["\ude00"]"#).is_err());
        assert!(parse(r#"["\ud83dx"]"#).is_err());
        assert!(parse(r#"["\ud83dA"]"#).is_err());
    }

    #[test]
    fn pathological_nesting_errors_instead_of_overflowing() {
        let deep = "[".repeat(100_000);
        let err = parse(&deep).unwrap_err();
        assert!(err.contains("nesting"), "{err}");
        // Depth within the cap still parses.
        let ok = format!("{}{}", "[".repeat(64), "]".repeat(64));
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
        assert!(parse("[1] trailing").is_err());
        assert!(parse("nope").is_err());
    }

    #[test]
    fn nested_objects_preserve_order() {
        let v = parse(r#"{"z": 1, "a": {"k": [2]}}"#).unwrap();
        if let Value::Obj(members) = &v {
            assert_eq!(members[0].0, "z");
            assert_eq!(members[1].0, "a");
        } else {
            panic!("not an object");
        }
    }
}
