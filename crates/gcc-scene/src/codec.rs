//! Shared little-endian primitive (de)serialization.
//!
//! One set of byte-order helpers for every hand-rolled binary format in
//! the workspace: the scene DRAM-image files ([`crate::io`]) and the
//! `gcc-wire` network protocol both read and write through these, so the
//! byte-order code exists exactly once. Everything is little-endian over
//! plain [`std::io::Read`] / [`std::io::Write`] — a `&mut &[u8]` works
//! as a reader for in-memory payloads, a `Vec<u8>` as a writer.
//!
//! Errors are raw [`std::io::Error`]s; format-level layers wrap them in
//! their own typed errors (e.g. `SceneIoError::Io`).

use std::io::{self, Read, Write};

/// Writes one byte.
///
/// # Errors
///
/// Propagates writer failures.
pub fn write_u8<W: Write>(w: &mut W, v: u8) -> io::Result<()> {
    w.write_all(&[v])
}

/// Writes a `u32`, little-endian.
///
/// # Errors
///
/// Propagates writer failures.
pub fn write_u32<W: Write>(w: &mut W, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

/// Writes a `u64`, little-endian.
///
/// # Errors
///
/// Propagates writer failures.
pub fn write_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

/// Writes an `f32` by its IEEE-754 bits, little-endian.
///
/// # Errors
///
/// Propagates writer failures.
pub fn write_f32<W: Write>(w: &mut W, v: f32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

/// Writes an `f64` by its IEEE-754 bits, little-endian.
///
/// # Errors
///
/// Propagates writer failures.
pub fn write_f64<W: Write>(w: &mut W, v: f64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

/// Writes a string as a `u32` byte length followed by its UTF-8 bytes.
///
/// # Errors
///
/// Propagates writer failures.
pub fn write_str<W: Write>(w: &mut W, s: &str) -> io::Result<()> {
    write_u32(w, s.len() as u32)?;
    w.write_all(s.as_bytes())
}

/// Reads one byte.
///
/// # Errors
///
/// Propagates reader failures (including `UnexpectedEof`).
pub fn read_u8<R: Read>(r: &mut R) -> io::Result<u8> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}

/// Reads a little-endian `u32`.
///
/// # Errors
///
/// Propagates reader failures (including `UnexpectedEof`).
pub fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

/// Reads a little-endian `u64`.
///
/// # Errors
///
/// Propagates reader failures (including `UnexpectedEof`).
pub fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// Reads a little-endian `f32` by its IEEE-754 bits.
///
/// # Errors
///
/// Propagates reader failures (including `UnexpectedEof`).
pub fn read_f32<R: Read>(r: &mut R) -> io::Result<f32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(f32::from_le_bytes(b))
}

/// Reads a little-endian `f64` by its IEEE-754 bits.
///
/// # Errors
///
/// Propagates reader failures (including `UnexpectedEof`).
pub fn read_f64<R: Read>(r: &mut R) -> io::Result<f64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(f64::from_le_bytes(b))
}

/// Reads a string written by [`write_str`], refusing lengths beyond
/// `max_len` so a malformed or hostile length prefix cannot force an
/// unbounded allocation.
///
/// # Errors
///
/// [`io::ErrorKind::InvalidData`] for an over-long length or non-UTF-8
/// bytes; reader failures otherwise.
pub fn read_str<R: Read>(r: &mut R, max_len: usize) -> io::Result<String> {
    let len = read_u32(r)? as usize;
    if len > max_len {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("string length {len} exceeds the cap {max_len}"),
        ));
    }
    let mut bytes = vec![0u8; len];
    r.read_exact(&mut bytes)?;
    String::from_utf8(bytes)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 string"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip_little_endian() {
        let mut buf = Vec::new();
        write_u8(&mut buf, 0xAB).unwrap();
        write_u32(&mut buf, 0x1234_5678).unwrap();
        write_u64(&mut buf, 0x1122_3344_5566_7788).unwrap();
        write_f32(&mut buf, -0.0).unwrap();
        write_f64(&mut buf, f64::MIN_POSITIVE).unwrap();
        write_str(&mut buf, "héllo").unwrap();
        // The layout is pinned, not just round-tripped: LE byte order.
        assert_eq!(&buf[1..5], &[0x78, 0x56, 0x34, 0x12]);

        let mut r = buf.as_slice();
        assert_eq!(read_u8(&mut r).unwrap(), 0xAB);
        assert_eq!(read_u32(&mut r).unwrap(), 0x1234_5678);
        assert_eq!(read_u64(&mut r).unwrap(), 0x1122_3344_5566_7788);
        // Bit-exact floats: -0.0 keeps its sign bit.
        assert_eq!(read_f32(&mut r).unwrap().to_bits(), (-0.0f32).to_bits());
        assert_eq!(read_f64(&mut r).unwrap(), f64::MIN_POSITIVE);
        assert_eq!(read_str(&mut r, 64).unwrap(), "héllo");
        assert!(r.is_empty(), "nothing left over");
    }

    #[test]
    fn nan_payloads_survive_bit_exact() {
        let nan = f32::from_bits(0x7FC0_1234);
        let mut buf = Vec::new();
        write_f32(&mut buf, nan).unwrap();
        assert_eq!(
            read_f32(&mut buf.as_slice()).unwrap().to_bits(),
            nan.to_bits()
        );
    }

    #[test]
    fn truncated_reads_are_unexpected_eof() {
        let err = read_u64(&mut [1u8, 2, 3].as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        let err = read_str(&mut [4u8, 0, 0, 0, b'x'].as_slice(), 64).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn hostile_string_lengths_and_bytes_are_invalid_data() {
        // A length past the cap must fail before allocating.
        let mut buf = Vec::new();
        write_u32(&mut buf, u32::MAX).unwrap();
        let err = read_str(&mut buf.as_slice(), 1 << 10).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // Non-UTF-8 bytes under a valid length fail too.
        let mut buf = Vec::new();
        write_u32(&mut buf, 2).unwrap();
        buf.extend_from_slice(&[0xFF, 0xFE]);
        let err = read_str(&mut buf.as_slice(), 64).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
