//! [`ViewSpec`] — first-class view requests: *what to look at*, resolved
//! against a scene into a concrete [`Camera`].
//!
//! The render pipeline consumes `(gaussians, camera, options)` jobs
//! ([`gcc_render::RenderJob`]); this module is the scene-level half of the
//! request vocabulary: a serializable-in-spirit description of a viewpoint
//! that a service can validate *before* the scene is even loaded, and
//! resolve once it is. Three forms:
//!
//! * [`ViewSpec::Trajectory`] — parameter `t` on the scene's rig (the
//!   historical `RenderRequest { scene, t }` surface),
//! * [`ViewSpec::LookAt`] — an explicit pose (headset / free-fly clients),
//! * [`ViewSpec::Orbit`] — an absolute angle on the rig circle with
//!   radius/height adjustments (turntable clients).
//!
//! [`Scene::resolve_view`] combines a spec with a request's
//! [`RenderOptions`] (output resolution override, ROI bounds check) and
//! yields the full-frame [`Camera`] the renderers consume.

use gcc_core::Camera;
use gcc_math::Vec3;
use gcc_render::{JobError, RenderOptions};

use crate::Scene;

/// A viewpoint request, resolved against a scene's rig by
/// [`Scene::resolve_view`].
#[derive(Debug, Clone, PartialEq)]
pub enum ViewSpec {
    /// Camera at trajectory parameter `t ∈ [0, 1]` on the scene's rig —
    /// one full orbit (or scan arc) as `t` sweeps the range.
    Trajectory {
        /// Trajectory parameter.
        t: f32,
    },
    /// An explicit pose: eye position looking at a target.
    LookAt {
        /// Camera position.
        eye: Vec3,
        /// Point the camera looks at.
        target: Vec3,
        /// Up direction (need not be unit length, must be non-zero).
        up: Vec3,
        /// Vertical field of view in degrees; `None` uses the scene's.
        fov_y_deg: Option<f32>,
    },
    /// An absolute angle on the scene's orbit rig, with the orbit radius
    /// scaled and the eye height offset — the turntable superset of
    /// [`ViewSpec::Trajectory`].
    Orbit {
        /// Absolute orbit angle in radians (the rig's `phase` is `0`
        /// here: `angle = 0` is the rig's phase start).
        angle: f32,
        /// Multiplier on the rig radius (must be positive and finite).
        radius_scale: f32,
        /// Added to the rig's eye height.
        height_offset: f32,
    },
}

impl ViewSpec {
    /// Trajectory view at parameter `t`.
    pub fn trajectory(t: f32) -> Self {
        Self::Trajectory { t }
    }

    /// Explicit pose with a `+y` up vector and the scene's field of view.
    pub fn look_at(eye: Vec3, target: Vec3) -> Self {
        Self::LookAt {
            eye,
            target,
            up: Vec3::new(0.0, 1.0, 0.0),
            fov_y_deg: None,
        }
    }

    /// Orbit view at an absolute angle, rig radius and height.
    pub fn orbit(angle: f32) -> Self {
        Self::Orbit {
            angle,
            radius_scale: 1.0,
            height_offset: 0.0,
        }
    }

    /// Scene-independent validation: finiteness, ranges, non-degenerate
    /// poses. A service runs this at submit time so bad requests fail
    /// with a typed error instead of poisoning a render worker.
    ///
    /// # Errors
    ///
    /// The first violated [`ViewError`].
    pub fn validate(&self) -> Result<(), ViewError> {
        match self {
            Self::Trajectory { t } => {
                if !t.is_finite() {
                    return Err(ViewError::NonFinite { field: "t" });
                }
                if !(0.0..=1.0).contains(t) {
                    return Err(ViewError::TrajectoryOutOfRange { t: *t });
                }
            }
            Self::LookAt {
                eye,
                target,
                up,
                fov_y_deg,
            } => {
                for (v, field) in [(eye, "eye"), (target, "target"), (up, "up")] {
                    if !(v.x.is_finite() && v.y.is_finite() && v.z.is_finite()) {
                        return Err(ViewError::NonFinite { field });
                    }
                }
                if (*eye - *target).norm_sq() < 1e-12 || up.norm_sq() < 1e-12 {
                    return Err(ViewError::DegeneratePose);
                }
                if let Some(fov) = fov_y_deg {
                    if !fov.is_finite() {
                        return Err(ViewError::NonFinite { field: "fov_y_deg" });
                    }
                    if !(*fov > 0.0 && *fov < 180.0) {
                        return Err(ViewError::FovOutOfRange { fov_y_deg: *fov });
                    }
                }
            }
            Self::Orbit {
                angle,
                radius_scale,
                height_offset,
            } => {
                if !angle.is_finite() {
                    return Err(ViewError::NonFinite { field: "angle" });
                }
                if !height_offset.is_finite() {
                    return Err(ViewError::NonFinite {
                        field: "height_offset",
                    });
                }
                if !radius_scale.is_finite() || *radius_scale <= 0.0 {
                    return Err(ViewError::RadiusScaleOutOfRange {
                        scale: *radius_scale,
                    });
                }
            }
        }
        Ok(())
    }
}

/// Why a view request (spec or options) was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum ViewError {
    /// A float field was NaN or infinite.
    NonFinite {
        /// Which field.
        field: &'static str,
    },
    /// Trajectory parameter outside `[0, 1]`.
    TrajectoryOutOfRange {
        /// The offending parameter.
        t: f32,
    },
    /// Eye coincides with target, or the up vector is zero.
    DegeneratePose,
    /// Field of view outside `(0, 180)` degrees.
    FovOutOfRange {
        /// The offending field of view.
        fov_y_deg: f32,
    },
    /// Orbit radius scale not a positive finite number.
    RadiusScaleOutOfRange {
        /// The offending scale.
        scale: f32,
    },
    /// The request's [`RenderOptions`] were invalid.
    Options(JobError),
}

impl std::fmt::Display for ViewError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NonFinite { field } => write!(f, "view field '{field}' is not finite"),
            Self::TrajectoryOutOfRange { t } => {
                write!(f, "trajectory parameter {t} outside [0, 1]")
            }
            Self::DegeneratePose => write!(f, "degenerate pose: eye == target or zero up vector"),
            Self::FovOutOfRange { fov_y_deg } => {
                write!(f, "field of view {fov_y_deg} outside (0, 180) degrees")
            }
            Self::RadiusScaleOutOfRange { scale } => {
                write!(f, "orbit radius scale {scale} must be positive and finite")
            }
            Self::Options(e) => write!(f, "invalid render options: {e}"),
        }
    }
}

impl std::error::Error for ViewError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Options(e) => Some(e),
            _ => None,
        }
    }
}

impl From<JobError> for ViewError {
    fn from(e: JobError) -> Self {
        Self::Options(e)
    }
}

impl Scene {
    /// Resolves a view request into the full-frame [`Camera`] the
    /// renderers consume: validates the spec and options, applies the
    /// options' resolution override (falling back to the scene's native
    /// resolution), and checks the ROI against the final frame size.
    ///
    /// # Errors
    ///
    /// [`ViewError`] when the spec or options are invalid.
    pub fn resolve_view(
        &self,
        view: &ViewSpec,
        options: &RenderOptions,
    ) -> Result<Camera, ViewError> {
        view.validate()?;
        let (w, h) = options.resolution.unwrap_or(self.resolution);
        options.validate_for(w, h)?;
        let cam = match view {
            ViewSpec::Trajectory { t } => self.rig.camera(*t, self.fov_y_deg, w, h),
            ViewSpec::LookAt {
                eye,
                target,
                up,
                fov_y_deg,
            } => Camera::look_at(
                *eye,
                *target,
                *up,
                fov_y_deg.unwrap_or(self.fov_y_deg),
                w,
                h,
            ),
            ViewSpec::Orbit {
                angle,
                radius_scale,
                height_offset,
            } => self.rig.camera_at_angle(
                *angle,
                *radius_scale,
                *height_offset,
                self.fov_y_deg,
                w,
                h,
            ),
        };
        Ok(cam)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SceneConfig, ScenePreset};
    use gcc_render::Roi;

    fn scene() -> Scene {
        ScenePreset::Lego.build(&SceneConfig::with_scale(0.02))
    }

    #[test]
    fn trajectory_spec_matches_the_legacy_camera_path() {
        let scene = scene();
        for t in [0.0f32, 0.25, 0.99, 1.0] {
            let cam = scene
                .resolve_view(&ViewSpec::trajectory(t), &RenderOptions::default())
                .unwrap();
            assert_eq!(cam, scene.camera(t), "t = {t}");
        }
    }

    #[test]
    fn trajectory_validation_rejects_nan_and_out_of_range() {
        assert_eq!(
            ViewSpec::trajectory(f32::NAN).validate(),
            Err(ViewError::NonFinite { field: "t" })
        );
        assert_eq!(
            ViewSpec::trajectory(1.5).validate(),
            Err(ViewError::TrajectoryOutOfRange { t: 1.5 })
        );
        assert_eq!(
            ViewSpec::trajectory(-0.1).validate(),
            Err(ViewError::TrajectoryOutOfRange { t: -0.1 })
        );
        assert!(ViewSpec::trajectory(1.0).validate().is_ok());
    }

    #[test]
    fn look_at_resolves_with_scene_and_override_fov() {
        let scene = scene();
        let spec = ViewSpec::look_at(Vec3::new(0.0, 1.0, -4.0), Vec3::ZERO);
        let cam = scene
            .resolve_view(&spec, &RenderOptions::default())
            .unwrap();
        assert_eq!(cam.width, scene.resolution.0);
        assert_eq!(cam.position, Vec3::new(0.0, 1.0, -4.0));
        let narrow = ViewSpec::LookAt {
            eye: Vec3::new(0.0, 1.0, -4.0),
            target: Vec3::ZERO,
            up: Vec3::new(0.0, 1.0, 0.0),
            fov_y_deg: Some(30.0),
        };
        let ncam = scene
            .resolve_view(&narrow, &RenderOptions::default())
            .unwrap();
        assert!(ncam.fy > cam.fy, "narrower fov means longer focal length");
    }

    #[test]
    fn look_at_validation_rejects_degenerate_poses() {
        let eye = Vec3::new(1.0, 2.0, 3.0);
        assert_eq!(
            ViewSpec::look_at(eye, eye).validate(),
            Err(ViewError::DegeneratePose)
        );
        let zero_up = ViewSpec::LookAt {
            eye,
            target: Vec3::ZERO,
            up: Vec3::ZERO,
            fov_y_deg: None,
        };
        assert_eq!(zero_up.validate(), Err(ViewError::DegeneratePose));
        let bad_fov = ViewSpec::LookAt {
            eye,
            target: Vec3::ZERO,
            up: Vec3::new(0.0, 1.0, 0.0),
            fov_y_deg: Some(180.0),
        };
        assert_eq!(
            bad_fov.validate(),
            Err(ViewError::FovOutOfRange { fov_y_deg: 180.0 })
        );
        let nan_eye = ViewSpec::look_at(Vec3::new(f32::NAN, 0.0, 0.0), Vec3::ZERO);
        assert_eq!(
            nan_eye.validate(),
            Err(ViewError::NonFinite { field: "eye" })
        );
    }

    #[test]
    fn orbit_spec_sits_on_the_scaled_rig_circle() {
        let scene = scene();
        let spec = ViewSpec::Orbit {
            angle: 1.0,
            radius_scale: 2.0,
            height_offset: 0.5,
        };
        let cam = scene
            .resolve_view(&spec, &RenderOptions::default())
            .unwrap();
        let center = scene.rig.center;
        let d = cam.position - center;
        let planar = (d.x * d.x + d.z * d.z).sqrt();
        assert!(
            (planar - 2.0 * scene.rig.radius).abs() < 1e-3,
            "planar distance {planar} vs scaled radius {}",
            2.0 * scene.rig.radius
        );
        assert!((d.y - (scene.rig.height + 0.5)).abs() < 1e-4);
        assert_eq!(
            ViewSpec::Orbit {
                angle: 0.0,
                radius_scale: 0.0,
                height_offset: 0.0
            }
            .validate(),
            Err(ViewError::RadiusScaleOutOfRange { scale: 0.0 })
        );
    }

    #[test]
    fn orbit_angle_zero_matches_trajectory_start() {
        let scene = scene();
        let orbit = scene
            .resolve_view(&ViewSpec::orbit(0.0), &RenderOptions::default())
            .unwrap();
        let traj = scene
            .resolve_view(&ViewSpec::trajectory(0.0), &RenderOptions::default())
            .unwrap();
        assert!((orbit.position - traj.position).norm() < 1e-4);
    }

    #[test]
    fn resolution_override_and_roi_bounds_flow_through() {
        let scene = scene();
        let opts = RenderOptions::default().at_resolution(96, 64);
        let cam = scene
            .resolve_view(&ViewSpec::trajectory(0.3), &opts)
            .unwrap();
        assert_eq!((cam.width, cam.height), (96, 64));
        // ROI valid at the override resolution, invalid at a smaller one.
        let ok = opts.clone().with_roi(Roi::new(64, 32, 32, 32));
        assert!(scene.resolve_view(&ViewSpec::trajectory(0.3), &ok).is_ok());
        let bad = RenderOptions::default()
            .at_resolution(32, 32)
            .with_roi(Roi::new(16, 16, 32, 32));
        match scene.resolve_view(&ViewSpec::trajectory(0.3), &bad) {
            Err(ViewError::Options(gcc_render::JobError::RoiOutOfBounds { .. })) => {}
            other => panic!("expected ROI bounds error, got {other:?}"),
        }
        // Zero-sized ROI is typed too.
        let empty = RenderOptions::default().with_roi(Roi::new(0, 0, 0, 0));
        assert_eq!(
            scene.resolve_view(&ViewSpec::trajectory(0.3), &empty),
            Err(ViewError::Options(gcc_render::JobError::EmptyRoi))
        );
    }
}
