//! The [`Scene`] container: a Gaussian cloud plus the camera rig it is
//! meant to be viewed with, and aggregate statistics.

use crate::lod::SceneLod;
use crate::trajectory::OrbitRig;
use gcc_core::{Camera, Gaussian3D};

/// Controls how a preset is instantiated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SceneConfig {
    /// Multiplies the preset's base Gaussian count. `1.0` is the default
    /// repro scale documented in `DESIGN.md` §7; tests typically run at
    /// `0.02`–`0.1`.
    pub scale: f32,
    /// Optional seed override (defaults to the preset's own seed).
    pub seed: Option<u64>,
}

impl Default for SceneConfig {
    fn default() -> Self {
        Self {
            scale: 1.0,
            seed: None,
        }
    }
}

impl SceneConfig {
    /// Config with a count scale factor.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < scale ≤ 100`.
    pub fn with_scale(scale: f32) -> Self {
        assert!(
            scale > 0.0 && scale <= 100.0,
            "scene scale {scale} out of range"
        );
        Self { scale, seed: None }
    }

    /// Reads `GCC_SCENE_SCALE` from the environment (used by the bench
    /// binaries), falling back to `default_scale`.
    pub fn from_env(default_scale: f32) -> Self {
        let scale = std::env::var("GCC_SCENE_SCALE")
            .ok()
            .and_then(|s| s.parse::<f32>().ok())
            .filter(|s| *s > 0.0 && *s <= 100.0)
            .unwrap_or(default_scale);
        Self::with_scale(scale)
    }
}

/// A synthesized scene: Gaussians plus viewing setup.
#[derive(Debug, Clone)]
pub struct Scene {
    /// Scene name (paper table row).
    pub name: String,
    /// The Gaussian cloud.
    pub gaussians: Vec<Gaussian3D>,
    /// Render resolution (width, height).
    pub resolution: (u32, u32),
    /// Vertical field of view in degrees.
    pub fov_y_deg: f32,
    /// Default camera trajectory.
    pub rig: OrbitRig,
    /// Optional coarse-to-fine Gaussian hierarchy for the adaptive
    /// quality ladder (built offline by `gcc-lod`, persisted with the
    /// scene). `None` means only full quality is available.
    pub lod: Option<SceneLod>,
}

impl Scene {
    /// Camera at trajectory parameter `t ∈ [0, 1)` (one full orbit).
    pub fn camera(&self, t: f32) -> Camera {
        self.rig
            .camera(t, self.fov_y_deg, self.resolution.0, self.resolution.1)
    }

    /// The evaluation viewpoint used by the single-frame experiments.
    pub fn default_camera(&self) -> Camera {
        self.camera(0.0)
    }

    /// Number of Gaussians.
    pub fn len(&self) -> usize {
        self.gaussians.len()
    }

    /// `true` when the scene holds no Gaussians.
    pub fn is_empty(&self) -> bool {
        self.gaussians.is_empty()
    }

    /// Resident heap+inline size of this scene in bytes — the accounting
    /// unit of the serving layer's byte-budgeted scene cache. Dominated by
    /// the Gaussian records; the container, the name, and any attached
    /// LOD hierarchy are included so the LRU byte-budget invariant stays
    /// honest for scenes carrying auxiliary data.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.name.capacity()
            + self.gaussians.capacity() * std::mem::size_of::<Gaussian3D>()
            + self.lod.as_ref().map_or(0, SceneLod::approx_bytes)
    }

    /// Aggregate statistics of the Gaussian population.
    pub fn stats(&self) -> SceneStats {
        let n = self.gaussians.len().max(1);
        let mut opacities: Vec<f32> = self.gaussians.iter().map(|g| g.opacity()).collect();
        opacities.sort_by(f32::total_cmp);
        let mut scales: Vec<f32> = self
            .gaussians
            .iter()
            .map(|g| g.scale.max_component())
            .collect();
        scales.sort_by(f32::total_cmp);
        let q = |v: &[f32], p: f64| {
            if v.is_empty() {
                0.0
            } else {
                v[((v.len() - 1) as f64 * p) as usize]
            }
        };
        SceneStats {
            count: self.gaussians.len(),
            opacity_mean: opacities.iter().sum::<f32>() / n as f32,
            opacity_p10: q(&opacities, 0.1),
            opacity_p50: q(&opacities, 0.5),
            opacity_p90: q(&opacities, 0.9),
            scale_p50: q(&scales, 0.5),
            scale_p90: q(&scales, 0.9),
        }
    }
}

/// Aggregate Gaussian population statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SceneStats {
    /// Total Gaussians.
    pub count: usize,
    /// Mean opacity.
    pub opacity_mean: f32,
    /// 10th-percentile opacity.
    pub opacity_p10: f32,
    /// Median opacity.
    pub opacity_p50: f32,
    /// 90th-percentile opacity.
    pub opacity_p90: f32,
    /// Median of the per-Gaussian maximum scale.
    pub scale_p50: f32,
    /// 90th percentile of the per-Gaussian maximum scale.
    pub scale_p90: f32,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ScenePreset;

    #[test]
    fn with_scale_validates() {
        let c = SceneConfig::with_scale(0.5);
        assert_eq!(c.scale, 0.5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_scale_panics() {
        let _ = SceneConfig::with_scale(0.0);
    }

    #[test]
    fn stats_reflect_population() {
        let scene = ScenePreset::Lego.build(&SceneConfig::with_scale(0.1));
        let s = scene.stats();
        assert_eq!(s.count, scene.len());
        assert!(s.opacity_p10 <= s.opacity_p50 && s.opacity_p50 <= s.opacity_p90);
        assert!(s.opacity_mean > 0.0 && s.opacity_mean < 1.0);
        assert!(s.scale_p50 <= s.scale_p90);
    }

    #[test]
    fn approx_bytes_tracks_population() {
        let small = ScenePreset::Lego.build(&SceneConfig::with_scale(0.02));
        let large = ScenePreset::Lego.build(&SceneConfig::with_scale(0.08));
        assert!(small.approx_bytes() > small.len() * std::mem::size_of::<Gaussian3D>());
        assert!(large.approx_bytes() > 2 * small.approx_bytes());
    }

    #[test]
    fn approx_bytes_charges_attached_lod_hierarchy() {
        use crate::lod::{LodLevel, SceneLod};
        let mut scene = ScenePreset::Lego.build(&SceneConfig::with_scale(0.02));
        let bare = scene.approx_bytes();
        let coarse = scene.gaussians[..scene.len() / 2].to_vec();
        let coarse_bytes = coarse.capacity() * std::mem::size_of::<Gaussian3D>();
        scene.lod = Some(SceneLod {
            levels: vec![LodLevel {
                gaussians: coarse,
                cell_size: 0.5,
            }],
            seed: 7,
        });
        assert!(
            scene.approx_bytes() >= bare + coarse_bytes,
            "hierarchy bytes must be charged: {} vs {}",
            scene.approx_bytes(),
            bare + coarse_bytes
        );
    }

    #[test]
    fn object_orbit_is_periodic_scan_arc_is_not() {
        // Object scenes orbit a full circle; scans sweep a small arc.
        let lego = ScenePreset::Lego.build(&SceneConfig::with_scale(0.02));
        let a = lego.camera(0.0);
        let b = lego.camera(1.0);
        assert!((a.position - b.position).norm() < 1e-3);

        let train = ScenePreset::Train.build(&SceneConfig::with_scale(0.02));
        let c = train.camera(0.0);
        let d = train.camera(0.5);
        assert!((c.position - d.position).norm() > 1e-3);
    }
}
