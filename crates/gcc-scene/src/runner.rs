//! Batch rendering of camera trajectories through any [`Renderer`].
//!
//! The [`TrajectoryRunner`] samples a scene's [`crate::OrbitRig`] at `n`
//! evenly spaced parameters and renders every viewpoint through one
//! renderer — the workload of the paper's headset scenario (a continuous
//! orbit at 90 FPS) and of any batch-serving deployment. Frames are
//! independent, so the runner parallelizes *across* frames with
//! [`gcc_parallel`]; frame order in the result is the trajectory order
//! regardless of the thread count, and the aggregate statistics are the
//! order-independent sum of per-frame [`FrameStats`].
//!
//! Parallelism composition: frame-level parallelism here multiplies with
//! the renderer's intra-frame parallelism. For throughput over a long
//! trajectory, prefer a sequential renderer inside a parallel runner (one
//! frame per core); for latency on a single frame, prefer the reverse.
//!
//! Each worker keeps one [`FrameScratch`] for its whole share of the
//! batch (`gcc_parallel::par_map_indexed_with`), so the hot-path buffers
//! — depth keys, radix ping-pong, footprints, CSR bins — are allocated
//! once per worker instead of once per frame. Renders are bit-identical
//! to fresh-scratch renders, so frame results stay independent of which
//! worker rendered them.

use gcc_core::Camera;
use gcc_parallel::{par_map_indexed_with, Parallelism};
use gcc_render::pipeline::{Frame, FrameScratch, FrameStats, RenderJob, RenderOptions, Renderer};

use crate::{Scene, ViewSpec};

/// Renders a scene's camera trajectory as a batch through any renderer.
#[derive(Debug, Clone)]
pub struct TrajectoryRunner {
    /// Number of evenly spaced viewpoints on the rig (`t = i / frames`).
    pub frames: usize,
    /// Frame-level parallelism policy.
    pub parallelism: Parallelism,
}

impl Default for TrajectoryRunner {
    fn default() -> Self {
        Self {
            frames: 8,
            parallelism: Parallelism::Auto,
        }
    }
}

impl TrajectoryRunner {
    /// Runner over `frames` viewpoints with automatic parallelism.
    ///
    /// # Panics
    ///
    /// Panics when `frames` is zero.
    pub fn new(frames: usize) -> Self {
        assert!(frames > 0, "a trajectory needs at least one frame");
        Self {
            frames,
            ..Self::default()
        }
    }

    /// Sets the frame-level parallelism policy.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// The view requests this runner emits, in trajectory order:
    /// [`ViewSpec::Trajectory`] at `t = i / frames`. This is the runner's
    /// half of the request-model API — pair each view with
    /// [`RenderOptions`] and any scene to get concrete render jobs.
    pub fn views(&self) -> Vec<ViewSpec> {
        (0..self.frames)
            .map(|i| ViewSpec::trajectory(i as f32 / self.frames as f32))
            .collect()
    }

    /// An endpoint-inclusive trajectory sweep: `frames` views evenly
    /// spaced from `t0` to `t1` (a single frame sits at `t0`; the last
    /// frame is exactly `t1`, and intermediate samples are clamped into
    /// `[min(t0,t1), max(t0,t1)]` so valid endpoints can never round a
    /// sample out of range). `t1 < t0` sweeps backwards. This is the
    /// view-list behind `gcc_serve`'s `TrajectorySweep` streams; unlike
    /// [`Self::views`] it hits both endpoints, which is what a playback
    /// client scrubbing a sub-range wants.
    pub fn sweep_views(t0: f32, t1: f32, frames: usize) -> Vec<ViewSpec> {
        let (lo, hi) = (t0.min(t1), t0.max(t1));
        (0..frames)
            .map(|i| {
                let t = if i == 0 {
                    t0
                } else if i + 1 == frames {
                    t1
                } else {
                    (t0 + (t1 - t0) * (i as f32 / (frames - 1) as f32)).clamp(lo, hi)
                };
                ViewSpec::trajectory(t)
            })
            .collect()
    }

    /// One full orbit loop as absolute-angle [`ViewSpec::Orbit`] views:
    /// `frames` evenly spaced angles over `[0, 2π)` (endpoint-exclusive,
    /// like [`Self::views`], so consecutive loops tile seamlessly) at a
    /// common radius scale and height offset. The view-list behind
    /// `gcc_serve`'s `OrbitLoop` streams.
    pub fn orbit_views(frames: usize, radius_scale: f32, height_offset: f32) -> Vec<ViewSpec> {
        (0..frames)
            .map(|i| ViewSpec::Orbit {
                angle: std::f32::consts::TAU * i as f32 / frames as f32,
                radius_scale,
                height_offset,
            })
            .collect()
    }

    /// The cameras this runner samples, in trajectory order.
    pub fn cameras(&self, scene: &Scene) -> Vec<Camera> {
        (0..self.frames)
            .map(|i| scene.camera(i as f32 / self.frames as f32))
            .collect()
    }

    /// Renders the whole trajectory through `renderer` with default
    /// options. Frame `i` of the result is viewpoint `t = i / frames`,
    /// independent of the thread count.
    pub fn run(&self, scene: &Scene, renderer: &dyn Renderer) -> TrajectoryResult {
        self.run_with_options(scene, renderer, &RenderOptions::default())
    }

    /// Renders the whole trajectory with per-request [`RenderOptions`]
    /// applied to every frame (resolution override, ROI, background and
    /// quality knobs). With default options this is exactly [`Self::run`].
    ///
    /// # Panics
    ///
    /// Panics when the options are invalid for this scene (direct callers
    /// get the typed error from [`Scene::resolve_view`]; the serving layer
    /// validates at submit).
    pub fn run_with_options(
        &self,
        scene: &Scene,
        renderer: &dyn Renderer,
        options: &RenderOptions,
    ) -> TrajectoryResult {
        let views = self.views();
        let cameras: Vec<Camera> = views
            .iter()
            .map(|v| {
                scene
                    .resolve_view(v, options)
                    .expect("trajectory views are valid by construction")
            })
            .collect();
        let frames = par_map_indexed_with(
            cameras.len(),
            self.parallelism.threads(),
            FrameScratch::new,
            |scratch, i| {
                renderer.render_job(
                    &RenderJob::with_options(&scene.gaussians, &cameras[i], options.clone()),
                    scratch,
                )
            },
        );
        TrajectoryResult { frames }
    }
}

/// The frames of one trajectory run, in trajectory order.
#[derive(Debug, Clone)]
pub struct TrajectoryResult {
    /// Rendered frames (image + stats per viewpoint).
    pub frames: Vec<Frame>,
}

impl TrajectoryResult {
    /// Sum of all per-frame statistics (every counter is additive across
    /// frames; `total_gaussians` etc. accumulate per-frame contributions,
    /// so divide by [`Self::len`] for per-frame means). Note that the
    /// aggregate's `windows` counts frames×windows — feed *per-frame*
    /// stats, not this sum, to `gcc_sim::scaling::scale_stats`.
    pub fn aggregate_stats(&self) -> FrameStats {
        let mut total = FrameStats::default();
        for f in &self.frames {
            total.merge_add(&f.stats);
        }
        total
    }

    /// Number of frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// `true` when the trajectory rendered no frames.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SceneConfig, ScenePreset};
    use gcc_render::pipeline::{GaussianWiseRenderer, StandardRenderer};

    fn scene() -> Scene {
        ScenePreset::Lego.build(&SceneConfig::with_scale(0.03))
    }

    #[test]
    fn trajectory_covers_requested_viewpoints() {
        let scene = scene();
        let runner = TrajectoryRunner::new(5).with_parallelism(Parallelism::Sequential);
        let cams = runner.cameras(&scene);
        assert_eq!(cams.len(), 5);
        let result = runner.run(&scene, &StandardRenderer::reference());
        assert_eq!(result.len(), 5);
        assert!(!result.is_empty());
        for f in &result.frames {
            assert_eq!(f.image.width(), scene.resolution.0);
            assert_eq!(f.stats.total_gaussians, scene.len() as u64);
        }
    }

    #[test]
    fn parallel_batch_matches_sequential_batch_exactly() {
        let scene = scene();
        let renderer = GaussianWiseRenderer::default();
        let seq = TrajectoryRunner::new(6)
            .with_parallelism(Parallelism::Sequential)
            .run(&scene, &renderer);
        let par = TrajectoryRunner::new(6)
            .with_parallelism(Parallelism::fixed(4))
            .run(&scene, &renderer);
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.frames.iter().zip(&par.frames) {
            assert_eq!(a.image, b.image);
            assert_eq!(a.stats, b.stats);
        }
        assert_eq!(seq.aggregate_stats(), par.aggregate_stats());
    }

    #[test]
    fn aggregate_sums_per_frame_counters() {
        let scene = scene();
        let runner = TrajectoryRunner::new(3).with_parallelism(Parallelism::Sequential);
        let result = runner.run(&scene, &StandardRenderer::gscore());
        let agg = result.aggregate_stats();
        let manual: u64 = result.frames.iter().map(|f| f.stats.pixels_blended).sum();
        assert_eq!(agg.pixels_blended, manual);
        assert_eq!(agg.total_gaussians, 3 * scene.len() as u64);
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn zero_frames_rejected() {
        let _ = TrajectoryRunner::new(0);
    }

    #[test]
    fn sweep_views_hit_both_endpoints_and_stay_in_range() {
        let views = TrajectoryRunner::sweep_views(0.2, 1.0, 5);
        assert_eq!(views.len(), 5);
        assert_eq!(views[0], ViewSpec::trajectory(0.2));
        assert_eq!(views[4], ViewSpec::trajectory(1.0));
        for v in &views {
            assert!(v.validate().is_ok(), "{v:?}");
        }
        // Backwards sweep and the single-frame degenerate case.
        let back = TrajectoryRunner::sweep_views(0.9, 0.1, 3);
        assert_eq!(back[0], ViewSpec::trajectory(0.9));
        assert_eq!(back[2], ViewSpec::trajectory(0.1));
        assert_eq!(
            TrajectoryRunner::sweep_views(0.4, 0.8, 1),
            vec![ViewSpec::trajectory(0.4)]
        );
        assert!(TrajectoryRunner::sweep_views(0.0, 1.0, 0).is_empty());
    }

    #[test]
    fn orbit_views_tile_the_circle_endpoint_exclusive() {
        let views = TrajectoryRunner::orbit_views(4, 1.5, -0.2);
        assert_eq!(views.len(), 4);
        for (i, v) in views.iter().enumerate() {
            match v {
                ViewSpec::Orbit {
                    angle,
                    radius_scale,
                    height_offset,
                } => {
                    let want = std::f32::consts::TAU * i as f32 / 4.0;
                    assert!((angle - want).abs() < 1e-6);
                    assert_eq!(*radius_scale, 1.5);
                    assert_eq!(*height_offset, -0.2);
                }
                other => panic!("expected orbit view, got {other:?}"),
            }
            assert!(v.validate().is_ok());
        }
    }
}
