//! Batch rendering of camera trajectories through any [`Renderer`].
//!
//! The [`TrajectoryRunner`] samples a scene's [`crate::OrbitRig`] at `n`
//! evenly spaced parameters and renders every viewpoint through one
//! renderer — the workload of the paper's headset scenario (a continuous
//! orbit at 90 FPS) and of any batch-serving deployment. Frames are
//! independent, so the runner parallelizes *across* frames with
//! [`gcc_parallel`]; frame order in the result is the trajectory order
//! regardless of the thread count, and the aggregate statistics are the
//! order-independent sum of per-frame [`FrameStats`].
//!
//! Parallelism composition: frame-level parallelism here multiplies with
//! the renderer's intra-frame parallelism. For throughput over a long
//! trajectory, prefer a sequential renderer inside a parallel runner (one
//! frame per core); for latency on a single frame, prefer the reverse.
//!
//! Each worker keeps one [`FrameScratch`] for its whole share of the
//! batch (`gcc_parallel::par_map_indexed_with`), so the hot-path buffers
//! — depth keys, radix ping-pong, footprints, CSR bins — are allocated
//! once per worker instead of once per frame. Renders are bit-identical
//! to fresh-scratch renders, so frame results stay independent of which
//! worker rendered them.

use gcc_core::Camera;
use gcc_parallel::{par_map_indexed_with, Parallelism};
use gcc_render::pipeline::{Frame, FrameScratch, FrameStats, RenderJob, RenderOptions, Renderer};

use crate::{Scene, ViewSpec};

/// Renders a scene's camera trajectory as a batch through any renderer.
#[derive(Debug, Clone)]
pub struct TrajectoryRunner {
    /// Number of evenly spaced viewpoints on the rig (`t = i / frames`).
    pub frames: usize,
    /// Frame-level parallelism policy.
    pub parallelism: Parallelism,
}

impl Default for TrajectoryRunner {
    fn default() -> Self {
        Self {
            frames: 8,
            parallelism: Parallelism::Auto,
        }
    }
}

impl TrajectoryRunner {
    /// Runner over `frames` viewpoints with automatic parallelism.
    ///
    /// # Panics
    ///
    /// Panics when `frames` is zero.
    pub fn new(frames: usize) -> Self {
        assert!(frames > 0, "a trajectory needs at least one frame");
        Self {
            frames,
            ..Self::default()
        }
    }

    /// Sets the frame-level parallelism policy.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// The view requests this runner emits, in trajectory order:
    /// [`ViewSpec::Trajectory`] at `t = i / frames`. This is the runner's
    /// half of the request-model API — pair each view with
    /// [`RenderOptions`] and any scene to get concrete render jobs.
    pub fn views(&self) -> Vec<ViewSpec> {
        (0..self.frames)
            .map(|i| ViewSpec::trajectory(i as f32 / self.frames as f32))
            .collect()
    }

    /// The cameras this runner samples, in trajectory order.
    pub fn cameras(&self, scene: &Scene) -> Vec<Camera> {
        (0..self.frames)
            .map(|i| scene.camera(i as f32 / self.frames as f32))
            .collect()
    }

    /// Renders the whole trajectory through `renderer` with default
    /// options. Frame `i` of the result is viewpoint `t = i / frames`,
    /// independent of the thread count.
    pub fn run(&self, scene: &Scene, renderer: &dyn Renderer) -> TrajectoryResult {
        self.run_with_options(scene, renderer, &RenderOptions::default())
    }

    /// Renders the whole trajectory with per-request [`RenderOptions`]
    /// applied to every frame (resolution override, ROI, background and
    /// quality knobs). With default options this is exactly [`Self::run`].
    ///
    /// # Panics
    ///
    /// Panics when the options are invalid for this scene (direct callers
    /// get the typed error from [`Scene::resolve_view`]; the serving layer
    /// validates at submit).
    pub fn run_with_options(
        &self,
        scene: &Scene,
        renderer: &dyn Renderer,
        options: &RenderOptions,
    ) -> TrajectoryResult {
        let views = self.views();
        let cameras: Vec<Camera> = views
            .iter()
            .map(|v| {
                scene
                    .resolve_view(v, options)
                    .expect("trajectory views are valid by construction")
            })
            .collect();
        let frames = par_map_indexed_with(
            cameras.len(),
            self.parallelism.threads(),
            FrameScratch::new,
            |scratch, i| {
                renderer.render_job(
                    &RenderJob::with_options(&scene.gaussians, &cameras[i], options.clone()),
                    scratch,
                )
            },
        );
        TrajectoryResult { frames }
    }
}

/// The frames of one trajectory run, in trajectory order.
#[derive(Debug, Clone)]
pub struct TrajectoryResult {
    /// Rendered frames (image + stats per viewpoint).
    pub frames: Vec<Frame>,
}

impl TrajectoryResult {
    /// Sum of all per-frame statistics (every counter is additive across
    /// frames; `total_gaussians` etc. accumulate per-frame contributions,
    /// so divide by [`Self::len`] for per-frame means). Note that the
    /// aggregate's `windows` counts frames×windows — feed *per-frame*
    /// stats, not this sum, to `gcc_sim::scaling::scale_stats`.
    pub fn aggregate_stats(&self) -> FrameStats {
        let mut total = FrameStats::default();
        for f in &self.frames {
            total.merge_add(&f.stats);
        }
        total
    }

    /// Number of frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// `true` when the trajectory rendered no frames.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SceneConfig, ScenePreset};
    use gcc_render::pipeline::{GaussianWiseRenderer, StandardRenderer};

    fn scene() -> Scene {
        ScenePreset::Lego.build(&SceneConfig::with_scale(0.03))
    }

    #[test]
    fn trajectory_covers_requested_viewpoints() {
        let scene = scene();
        let runner = TrajectoryRunner::new(5).with_parallelism(Parallelism::Sequential);
        let cams = runner.cameras(&scene);
        assert_eq!(cams.len(), 5);
        let result = runner.run(&scene, &StandardRenderer::reference());
        assert_eq!(result.len(), 5);
        assert!(!result.is_empty());
        for f in &result.frames {
            assert_eq!(f.image.width(), scene.resolution.0);
            assert_eq!(f.stats.total_gaussians, scene.len() as u64);
        }
    }

    #[test]
    fn parallel_batch_matches_sequential_batch_exactly() {
        let scene = scene();
        let renderer = GaussianWiseRenderer::default();
        let seq = TrajectoryRunner::new(6)
            .with_parallelism(Parallelism::Sequential)
            .run(&scene, &renderer);
        let par = TrajectoryRunner::new(6)
            .with_parallelism(Parallelism::fixed(4))
            .run(&scene, &renderer);
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.frames.iter().zip(&par.frames) {
            assert_eq!(a.image, b.image);
            assert_eq!(a.stats, b.stats);
        }
        assert_eq!(seq.aggregate_stats(), par.aggregate_stats());
    }

    #[test]
    fn aggregate_sums_per_frame_counters() {
        let scene = scene();
        let runner = TrajectoryRunner::new(3).with_parallelism(Parallelism::Sequential);
        let result = runner.run(&scene, &StandardRenderer::gscore());
        let agg = result.aggregate_stats();
        let manual: u64 = result.frames.iter().map(|f| f.stats.pixels_blended).sum();
        assert_eq!(agg.pixels_blended, manual);
        assert_eq!(agg.total_gaussians, 3 * scene.len() as u64);
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn zero_frames_rejected() {
        let _ = TrajectoryRunner::new(0);
    }
}
