//! Camera rigs: deterministic trajectories around / inside a scene.

use gcc_core::Camera;
use gcc_math::Vec3;

/// A circular orbit (object scenes) or inside-out pan (scans): the eye
/// moves on a circle of `radius` at height `height` around `center`,
/// always looking at `look_at`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrbitRig {
    /// Orbit center.
    pub center: Vec3,
    /// Point the camera looks at.
    pub look_at: Vec3,
    /// Orbit radius.
    pub radius: f32,
    /// Eye height above the center.
    pub height: f32,
    /// Fraction of a full circle the orbit spans (1.0 = 360°; scans use
    /// less so the camera keeps facing the reconstructed sector).
    pub arc: f32,
    /// Start angle in radians (the default evaluation viewpoint).
    pub phase: f32,
}

impl OrbitRig {
    /// Camera at parameter `t ∈ [0, 1)`.
    pub fn camera(&self, t: f32, fov_y_deg: f32, width: u32, height: u32) -> Camera {
        self.camera_at_angle(
            t * self.arc * std::f32::consts::TAU,
            1.0,
            0.0,
            fov_y_deg,
            width,
            height,
        )
    }

    /// Camera at an absolute orbit `angle` (radians past [`Self::phase`]),
    /// with the radius scaled by `radius_scale` and the eye height shifted
    /// by `height_offset` — the resolution target of
    /// [`ViewSpec::Orbit`](crate::ViewSpec::Orbit). `camera_at_angle(t ·
    /// arc · τ, 1.0, 0.0, …)` is exactly [`Self::camera`] at `t`.
    pub fn camera_at_angle(
        &self,
        angle: f32,
        radius_scale: f32,
        height_offset: f32,
        fov_y_deg: f32,
        width: u32,
        height: u32,
    ) -> Camera {
        let a = self.phase + angle;
        let eye = self.center
            + Vec3::new(
                self.radius * radius_scale * a.cos(),
                self.height + height_offset,
                self.radius * radius_scale * a.sin(),
            );
        Camera::look_at(
            eye,
            self.look_at,
            Vec3::new(0.0, 1.0, 0.0),
            fov_y_deg,
            width,
            height,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rig() -> OrbitRig {
        OrbitRig {
            center: Vec3::ZERO,
            look_at: Vec3::ZERO,
            radius: 5.0,
            height: 1.0,
            arc: 1.0,
            phase: 0.0,
        }
    }

    #[test]
    fn orbit_keeps_distance() {
        let r = rig();
        for i in 0..8 {
            let cam = r.camera(i as f32 / 8.0, 60.0, 640, 360);
            let d = (cam.position - Vec3::new(0.0, 1.0, 0.0)).norm();
            assert!((d - 5.0).abs() < 1e-3, "distance {d} at step {i}");
        }
    }

    #[test]
    fn orbit_always_faces_target() {
        let r = rig();
        for i in 0..8 {
            let cam = r.camera(i as f32 / 8.0, 60.0, 640, 360);
            // The look-at target should sit at the image center.
            let (px, depth) = cam.project_point(Vec3::ZERO).unwrap();
            assert!(depth > 0.0);
            assert!((px.x - 320.0).abs() < 1e-2);
            assert!((px.y - 180.0).abs() < 1e-2);
        }
    }

    #[test]
    fn partial_arc_restricts_sweep() {
        let mut r = rig();
        r.arc = 0.25;
        let a = r.camera(0.0, 60.0, 64, 64).position;
        let b = r.camera(0.9999, 60.0, 64, 64).position;
        // Quarter arc: endpoints are ~90° apart on the circle.
        let cos = (a - Vec3::new(0.0, 1.0, 0.0))
            .normalized()
            .dot((b - Vec3::new(0.0, 1.0, 0.0)).normalized());
        assert!(cos.abs() < 0.1, "cos {cos}");
    }
}
