//! The six benchmark scenes of the paper, as statistical presets.
//!
//! Base Gaussian counts are proportional to the published model sizes
//! (Train ≈ 1.1 M, Truck ≈ 2.6 M, Playroom ≈ 2.3 M, Drjohnson ≈ 3.3 M,
//! Lego ≈ 0.3 M, Palace ≈ 0.25 M) at a default 1/20 scale; resolutions are
//! scaled versions of the evaluation resolutions (synthetic 800², T&T
//! ≈ 980×545, Deep Blending ≈ 1264×832). `SceneConfig::scale` rescales
//! counts for quick tests or heavier runs.

use crate::scene::{Scene, SceneConfig};

/// Coarse scene layout family, controlling how the generator places
/// Gaussian clusters and the default camera.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SceneKind {
    /// Synthetic object-centric capture (Lego, Palace): a compact object
    /// at the origin, camera orbiting outside it, nearly everything in
    /// frustum.
    Object,
    /// Outdoor scan (Train, Truck): ground plane, a central subject, and a
    /// wide surrounding shell of background Gaussians, a third of which
    /// fall outside any single view.
    Outdoor,
    /// Indoor scan (Playroom, Drjohnson): room walls plus furniture
    /// clusters; the camera stands inside, so most content is in frustum.
    Indoor,
}

/// Generation parameters for one scene preset.
#[derive(Debug, Clone, PartialEq)]
pub struct PresetParams {
    /// Scene name as used in the paper's tables.
    pub name: &'static str,
    /// Layout family.
    pub kind: SceneKind,
    /// Gaussian count at `scale = 1.0`.
    pub base_count: usize,
    /// Render resolution (width, height) at `scale = 1.0` (held fixed
    /// across scales; counts scale instead).
    pub resolution: (u32, u32),
    /// Vertical field of view, degrees.
    pub fov_y_deg: f32,
    /// Overall world radius of the scene content.
    pub world_radius: f32,
    /// Number of Gaussian clusters ("objects"/surfaces).
    pub cluster_count: usize,
    /// Spatial σ of each cluster relative to `world_radius`.
    pub cluster_sigma: f32,
    /// Median of the log-normal Gaussian scale distribution (ln units,
    /// world space).
    pub log_scale_mean: f32,
    /// σ of the log-normal scale distribution.
    pub log_scale_sigma: f32,
    /// Fraction of Gaussians drawn from the near-transparent opacity tail
    /// (ω ∈ [0.004, 0.08]).
    pub opacity_low_frac: f32,
    /// Fraction drawn from the mid band (ω ∈ [0.08, 0.6]); the remainder
    /// is the opaque mode (ω ∈ [0.6, 1.0]).
    pub opacity_mid_frac: f32,
    /// Half-angle (degrees) of the content sector around the default view
    /// direction; content outside it is what frustum culling removes.
    pub sector_half_angle_deg: f32,
    /// Camera orbit radius as a multiple of `world_radius`.
    pub camera_distance: f32,
    /// Seed of the deterministic generator.
    pub seed: u64,
}

/// The six paper scenes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScenePreset {
    /// Synthetic palace model (compact, Gaussians cluster near the view
    /// center — paper §5.2).
    Palace,
    /// Synthetic-NeRF Lego bulldozer (the paper's peak-throughput scene).
    Lego,
    /// Tanks & Temples "Train" (medium outdoor).
    Train,
    /// Tanks & Temples "Truck" (large outdoor).
    Truck,
    /// Deep Blending "Playroom" (indoor).
    Playroom,
    /// Deep Blending "Drjohnson" (large indoor).
    Drjohnson,
}

/// All presets in the paper's table order.
pub const ALL_PRESETS: [ScenePreset; 6] = [
    ScenePreset::Palace,
    ScenePreset::Lego,
    ScenePreset::Train,
    ScenePreset::Truck,
    ScenePreset::Playroom,
    ScenePreset::Drjohnson,
];

impl std::fmt::Display for ScenePreset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.params().name)
    }
}

impl ScenePreset {
    /// Generation parameters of this preset.
    pub fn params(&self) -> PresetParams {
        match self {
            ScenePreset::Palace => PresetParams {
                name: "Palace",
                kind: SceneKind::Object,
                base_count: 28_000,
                resolution: (256, 256),
                fov_y_deg: 47.0,
                world_radius: 1.6,
                cluster_count: 48,
                cluster_sigma: 0.16,
                log_scale_mean: -3.6,
                log_scale_sigma: 0.55,
                opacity_low_frac: 0.38,
                opacity_mid_frac: 0.34,
                sector_half_angle_deg: 180.0,
                camera_distance: 2.4,
                seed: 0x9a1ace,
            },
            ScenePreset::Lego => PresetParams {
                name: "Lego",
                kind: SceneKind::Object,
                base_count: 34_000,
                resolution: (256, 256),
                fov_y_deg: 47.0,
                world_radius: 1.4,
                cluster_count: 64,
                cluster_sigma: 0.14,
                log_scale_mean: -3.75,
                log_scale_sigma: 0.5,
                opacity_low_frac: 0.35,
                opacity_mid_frac: 0.33,
                sector_half_angle_deg: 180.0,
                camera_distance: 2.6,
                seed: 0x1e60,
            },
            ScenePreset::Train => PresetParams {
                name: "Train",
                kind: SceneKind::Outdoor,
                base_count: 110_000,
                resolution: (320, 180),
                fov_y_deg: 52.0,
                world_radius: 10.0,
                cluster_count: 90,
                cluster_sigma: 0.08,
                log_scale_mean: -2.62,
                log_scale_sigma: 0.7,
                opacity_low_frac: 0.34,
                opacity_mid_frac: 0.12,
                sector_half_angle_deg: 108.0,
                camera_distance: 0.55,
                seed: 0x7a11,
            },
            ScenePreset::Truck => PresetParams {
                name: "Truck",
                kind: SceneKind::Outdoor,
                base_count: 260_000,
                resolution: (320, 180),
                fov_y_deg: 52.0,
                world_radius: 12.0,
                cluster_count: 140,
                cluster_sigma: 0.08,
                log_scale_mean: -2.74,
                log_scale_sigma: 0.72,
                opacity_low_frac: 0.36,
                opacity_mid_frac: 0.24,
                sector_half_angle_deg: 102.0,
                camera_distance: 0.55,
                seed: 0x7276c,
            },
            ScenePreset::Playroom => PresetParams {
                name: "Playroom",
                kind: SceneKind::Indoor,
                base_count: 230_000,
                resolution: (320, 210),
                fov_y_deg: 62.0,
                world_radius: 4.5,
                cluster_count: 110,
                cluster_sigma: 0.10,
                log_scale_mean: -3.62,
                log_scale_sigma: 0.75,
                opacity_low_frac: 0.40,
                opacity_mid_frac: 0.22,
                sector_half_angle_deg: 140.0,
                camera_distance: 0.35,
                seed: 0x91a9,
            },
            ScenePreset::Drjohnson => PresetParams {
                name: "Drjohnson",
                kind: SceneKind::Indoor,
                base_count: 330_000,
                resolution: (320, 210),
                fov_y_deg: 62.0,
                world_radius: 5.5,
                cluster_count: 150,
                cluster_sigma: 0.10,
                log_scale_mean: -3.32,
                log_scale_sigma: 0.78,
                opacity_low_frac: 0.40,
                opacity_mid_frac: 0.33,
                sector_half_angle_deg: 145.0,
                camera_distance: 0.35,
                seed: 0xd101,
            },
        }
    }

    /// Builds the scene for this preset under `config`.
    pub fn build(&self, config: &SceneConfig) -> Scene {
        crate::builder::build_scene(&self.params(), config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_presets_with_paper_names() {
        let names: Vec<&str> = ALL_PRESETS.iter().map(|p| p.params().name).collect();
        assert_eq!(
            names,
            ["Palace", "Lego", "Train", "Truck", "Playroom", "Drjohnson"]
        );
    }

    #[test]
    fn counts_are_proportional_to_published_model_sizes() {
        // Train : Truck : Playroom : Drjohnson ≈ 1.1 : 2.6 : 2.3 : 3.3.
        let train = ScenePreset::Train.params().base_count as f64;
        let truck = ScenePreset::Truck.params().base_count as f64;
        let drj = ScenePreset::Drjohnson.params().base_count as f64;
        assert!((truck / train - 2.6 / 1.1).abs() < 0.3);
        assert!((drj / train - 3.3 / 1.1).abs() < 0.4);
    }

    #[test]
    fn opacity_fractions_are_valid() {
        for p in ALL_PRESETS {
            let pa = p.params();
            assert!(
                pa.opacity_low_frac + pa.opacity_mid_frac < 1.0,
                "{}",
                pa.name
            );
            assert!(pa.opacity_low_frac > 0.0);
        }
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(ScenePreset::Lego.to_string(), "Lego");
    }
}
