//! Deterministic pseudo-random numbers for scene synthesis.
//!
//! The build environment has no crates.io access, so instead of the `rand`
//! crate the builder uses this self-contained generator: SplitMix64 for
//! seeding into xoshiro256**, the same construction rand's small RNGs use.
//! Scenes remain a pure function of `(preset, seed)`; the exact stream
//! differs from rand's `StdRng`, which only shifts which statistically
//! equivalent cloud a seed denotes.

/// The SplitMix64 output function: one full-avalanche mixing round over a
/// `u64`. Besides seeding [`StdRng`], it is the workspace's stable
/// non-cryptographic hash — `gcc-wire`'s consistent-hash shard ring folds
/// scene ids through it — so its exact output is a cross-process,
/// cross-platform contract, not an implementation detail.
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic 64-bit generator (xoshiro256**, SplitMix64-seeded) with
/// the sampling helpers the scene builder needs.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// Seeds the full 256-bit state from one `u64` via SplitMix64: state
    /// word `i` is [`splitmix64`] applied to the seed advanced `i + 1`
    /// golden-ratio increments.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = move || {
            let word = splitmix64(sm);
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            word
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform sample in `[0, 1)` with 24 bits of mantissa entropy.
    pub fn gen<T: Sample>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform sample in a half-open range.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }
}

/// Types [`StdRng::gen`] can produce.
pub trait Sample {
    /// Draws one uniform value.
    fn sample(rng: &mut StdRng) -> Self;
}

impl Sample for f32 {
    fn sample(rng: &mut StdRng) -> Self {
        // Top 24 bits → [0, 1) on the f32 lattice.
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Sample for u64 {
    fn sample(rng: &mut StdRng) -> Self {
        rng.next_u64()
    }
}

/// Ranges [`StdRng::gen_range`] can sample from.
pub trait SampleRange {
    /// Element type of the range.
    type Output;
    /// Draws one uniform value from the range.
    fn sample(self, rng: &mut StdRng) -> Self::Output;
}

impl SampleRange for std::ops::Range<f32> {
    type Output = f32;

    fn sample(self, rng: &mut StdRng) -> f32 {
        assert!(self.start < self.end, "empty range {self:?}");
        let u: f32 = rng.gen();
        let v = self.start + u * (self.end - self.start);
        // `start + u*(end-start)` can round up to exactly `end` even for
        // u < 1; pin the half-open contract by stepping such draws down
        // to the largest representable value below `end` (≥ start, since
        // the range is non-empty).
        if v < self.end {
            v
        } else {
            self.end.next_down()
        }
    }
}

impl SampleRange for std::ops::Range<usize> {
    type Output = usize;

    fn sample(self, rng: &mut StdRng) -> usize {
        assert!(self.start < self.end, "empty range {self:?}");
        // Multiply-shift bounded sampling (Lemire): the u128 widening
        // product cannot overflow for any usize span, and the residual
        // modulo bias (< span/2^64) is irrelevant at scene-builder scales.
        let span = (self.end - self.start) as u128;
        let x = u128::from(rng.next_u64());
        self.start + ((x * span) >> 64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix64_matches_the_reference_vectors() {
        // The first outputs of the reference SplitMix64 stream for seed 0
        // (state advanced once per output). Pinned because the shard ring
        // relies on this exact function across processes.
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(0x9E37_79B9_7F4A_7C15), 0x6E78_9E6A_A1B9_65F4);
        // Seeding draws its state words from the same stream.
        let rng = StdRng::seed_from_u64(0);
        assert_eq!(rng.s[0], splitmix64(0));
        assert_eq!(rng.s[1], splitmix64(0x9E37_79B9_7F4A_7C15));
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f32_samples_are_in_unit_interval_and_spread() {
        let mut rng = StdRng::seed_from_u64(99);
        let mut mean = 0.0f64;
        const N: usize = 10_000;
        for _ in 0..N {
            let v: f32 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            mean += f64::from(v);
        }
        mean /= N as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn range_sampling_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(-2.0f32..3.5);
            assert!((-2.0..3.5).contains(&v));
            let i = rng.gen_range(0usize..7);
            assert!(i < 7);
        }
    }

    #[test]
    #[cfg(target_pointer_width = "64")]
    fn usize_range_handles_spans_beyond_32_bits() {
        let mut rng = StdRng::seed_from_u64(5);
        let (start, end) = (7usize, 7 + (1usize << 33));
        let mut above_u32 = 0;
        for _ in 0..64 {
            let v = rng.gen_range(start..end);
            assert!((start..end).contains(&v), "v {v} escaped");
            if v - start > u32::MAX as usize {
                above_u32 += 1;
            }
        }
        // With a 2^33 span, about half the draws land above 2^32.
        assert!(above_u32 > 10, "only {above_u32} draws above u32::MAX");
    }

    #[test]
    fn usize_range_hits_every_bucket() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut hits = [0u32; 5];
        for _ in 0..5000 {
            hits[rng.gen_range(0usize..5)] += 1;
        }
        for (i, h) in hits.iter().enumerate() {
            assert!(*h > 700, "bucket {i} starved: {h}");
        }
    }

    #[test]
    fn f32_range_upper_bound_is_exclusive_even_under_rounding() {
        // Over a 1-ULP span, `start + u * span` rounds up to `end` for
        // roughly half of all `u` draws — the half-open contract must
        // hold anyway.
        let mut rng = StdRng::seed_from_u64(42);
        let (start, end) = (1.0f32, 1.0 + f32::EPSILON);
        for _ in 0..10_000 {
            let v = rng.gen_range(start..end);
            assert!(v >= start && v < end, "v {v} escaped [{start}, {end})");
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.gen_range(1.0f32..1.0);
    }
}
