//! Filtered upscale pass for the adaptive-quality ladder.
//!
//! The resolution rungs of the quality ladder render at a reduced
//! resolution and reconstruct the requested frame size with this pass —
//! the pure-rust stand-in for the render-low-res-then-reconstruct
//! direction of Gaussian-splat super-resolution (GSASR; SNIPPETS.md
//! 1–2), which uses a network where this uses a separable bilinear tent
//! filter. Pixel-center alignment ("half-pixel" convention) keeps the
//! reconstruction shift-free, and edges clamp rather than wrap.

use crate::image::Image;
use gcc_math::Vec3;

/// Bilinearly upscales (or downscales) `src` to `width × height` with
/// pixel-center alignment and edge clamping. A same-size call returns a
/// bit-identical copy, so a ladder rung whose divisor degenerates to 1
/// cannot perturb the frame.
///
/// # Panics
///
/// Panics for zero target dimensions (same contract as [`Image::new`]).
pub fn upscale_bilinear(src: &Image, width: u32, height: u32) -> Image {
    assert!(width > 0 && height > 0, "degenerate upscale target");
    if src.width() == width && src.height() == height {
        return src.clone();
    }
    let mut out = Image::new(width, height);
    let sx = src.width() as f32 / width as f32;
    let sy = src.height() as f32 / height as f32;
    for y in 0..height {
        // Map the target pixel center into source pixel coordinates.
        let fy = ((y as f32 + 0.5) * sy - 0.5).max(0.0);
        let y0 = (fy as u32).min(src.height() - 1);
        let y1 = (y0 + 1).min(src.height() - 1);
        let ty = fy - y0 as f32;
        for x in 0..width {
            let fx = ((x as f32 + 0.5) * sx - 0.5).max(0.0);
            let x0 = (fx as u32).min(src.width() - 1);
            let x1 = (x0 + 1).min(src.width() - 1);
            let tx = fx - x0 as f32;
            let top = lerp(src.get(x0, y0), src.get(x1, y0), tx);
            let bot = lerp(src.get(x0, y1), src.get(x1, y1), tx);
            out.set(x, y, lerp(top, bot, ty));
        }
    }
    out
}

fn lerp(a: Vec3, b: Vec3, t: f32) -> Vec3 {
    a + (b - a) * t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gradient(w: u32, h: u32) -> Image {
        let mut img = Image::new(w, h);
        for y in 0..h {
            for x in 0..w {
                img.set(
                    x,
                    y,
                    Vec3::new(
                        x as f32 / (w - 1).max(1) as f32,
                        y as f32 / (h - 1).max(1) as f32,
                        0.25,
                    ),
                );
            }
        }
        img
    }

    #[test]
    fn same_size_is_identity() {
        let img = gradient(16, 12);
        let up = upscale_bilinear(&img, 16, 12);
        assert_eq!(img, up);
    }

    #[test]
    fn constant_image_stays_constant() {
        let img = Image::filled(8, 8, Vec3::new(0.3, 0.6, 0.9));
        let up = upscale_bilinear(&img, 32, 24);
        for p in up.pixels() {
            assert!((*p - Vec3::new(0.3, 0.6, 0.9)).norm() < 1e-6);
        }
    }

    #[test]
    fn values_are_bounded_by_source_extrema() {
        // A tent filter cannot overshoot: every output channel lies
        // within the source min/max.
        let img = gradient(9, 7);
        let up = upscale_bilinear(&img, 31, 23);
        for p in up.pixels() {
            for c in [p.x, p.y, p.z] {
                assert!((0.0..=1.0).contains(&c), "overshoot {c}");
            }
        }
    }

    #[test]
    fn linear_gradient_is_reconstructed_closely() {
        // Bilinear is exact on (piecewise) linear signals away from the
        // clamped border half-pixel.
        let img = gradient(16, 16);
        let up = upscale_bilinear(&img, 64, 64);
        let mut max_err = 0.0f32;
        for y in 4..60 {
            for x in 4..60 {
                let want = Vec3::new(
                    ((x as f32 + 0.5) / 64.0 * 16.0 - 0.5) / 15.0,
                    ((y as f32 + 0.5) / 64.0 * 16.0 - 0.5) / 15.0,
                    0.25,
                );
                max_err = max_err.max((up.get(x, y) - want).norm());
            }
        }
        assert!(max_err < 1e-4, "gradient reconstruction error {max_err}");
    }

    #[test]
    fn upscale_beats_nearest_on_downsampled_detail() {
        // Reconstruction quality sanity: bilinear upscale of a 2×
        // downsample should sit closer to the original than nearest-
        // neighbor replication for a smooth signal.
        let mut img = Image::new(32, 32);
        for y in 0..32 {
            for x in 0..32 {
                let v = ((x as f32 * 0.4).sin() + (y as f32 * 0.3).cos() + 2.0) / 4.0;
                img.set(x, y, Vec3::splat(v));
            }
        }
        let half = img.downsample2();
        let bilinear = upscale_bilinear(&half, 32, 32);
        let mut nearest = Image::new(32, 32);
        for y in 0..32 {
            for x in 0..32 {
                nearest.set(x, y, half.get(x / 2, y / 2));
            }
        }
        assert!(bilinear.mse(&img) < nearest.mse(&img));
    }
}
