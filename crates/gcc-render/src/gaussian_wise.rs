//! The GCC dataflow (paper §3, Fig. 3): Gaussian-wise rendering with
//! cross-stage conditional processing, expressed as a schedule over the
//! shared [`crate::pipeline::stages`] primitives.
//!
//! Per frame:
//!
//! * **Stage I** — view depths for all Gaussians
//!   ([`stages::view_depths`]), near-plane cull at 0.2, depth grouping
//!   (near → far, ≤ 256 per group).
//! * **Per group, interleaved**: once the frame (or Cmode sub-view) is
//!   fully terminated, *all remaining groups are skipped* — no geometry
//!   load, no projection, no SH (cross-stage conditional processing).
//! * **Stage II** — position/shape projection with the opacity-aware ω-σ
//!   law ([`stages::project_one`]); the SCU culls off-screen and
//!   never-visible Gaussians.
//! * **Stage III** — SH color for surviving Gaussians only (conditional SH
//!   loading, [`stages::shade_one`]) and intra-group depth sort
//!   ([`stages::sort_by_depth`]).
//! * **Stage IV** — Algorithm 1 block traversal (8×8 PE array granularity)
//!   restricted by the transmittance mask, alpha evaluation (optionally
//!   through the fixed-point LUT-EXP), and front-to-back blending.
//!
//! Compatibility Mode (paper §4.6) partitions the image into `n × n`
//! sub-views ([`stages::partition_windows`]) rendered independently, with
//! conservative screen-space binning of Gaussians to sub-views; the
//! duplicated processing it introduces is what Fig. 6 sweeps. Sub-views
//! own disjoint pixels, so the frame engine renders them in parallel
//! ([`render_gaussian_wise_with`]) with per-window [`FrameStats`] partials
//! merged in window order — bit-identical to the sequential schedule.

use gcc_core::alpha::{ExpMode, RowAlpha};
use gcc_core::boundary::{BlockGrid, BlockTracer, MaskMode, TMask};
use gcc_core::bounds::{BoundingLaw, EffectiveTest};
use gcc_core::dispatch::{self, Backend, KernelSet};
use gcc_core::grouping::{group_by_depth, DepthGroups, GroupingConfig};
use gcc_core::{Camera, Gaussian3D, ProjectedGaussian};
use gcc_math::{Vec2, Vec3};
use gcc_parallel::{par_map_chunked, par_map_indexed, Parallelism};

use crate::pipeline::stages::{self, PixelPatch};
use crate::pipeline::{FrameScratch, FrameStats};
use crate::Image;

/// Configuration of the Gaussian-wise renderer.
#[derive(Debug, Clone)]
pub struct GaussianWiseConfig {
    /// Bounding law for the SCU (GCC: ω-σ).
    pub law: BoundingLaw,
    /// Pixel-block edge of the Alpha/Blending arrays (GCC: 8).
    pub block: u32,
    /// Exponential datapath (GCC hardware: the fixed-point LUT).
    pub exp: ExpMode,
    /// T-mask handling in the block traversal.
    pub mask_mode: MaskMode,
    /// Cross-stage conditional processing: group skipping + deferred SH
    /// loading. Disable to model the "GW only" ablation of Fig. 11(a).
    pub cross_stage: bool,
    /// Compatibility-Mode sub-view edge (e.g. 128); `None` renders the
    /// full frame as one view.
    pub subview: Option<u32>,
    /// Depth-grouping parameters; `None` scales bins to the scene size.
    pub grouping: Option<GroupingConfig>,
    /// Background color.
    pub background: Vec3,
    /// Minimum alpha a contribution needs to be blended. `0.0` keeps the
    /// pipeline's intrinsic `1/255` cutoff; higher values skip faint
    /// contributions (per-request quality knob).
    pub alpha_min: f32,
    /// SH degree clamp for color evaluation (`0..=3`; 3 = full SH).
    pub sh_degree: u8,
    /// SIMD kernel backend override. `None` (the default) uses the
    /// process-wide [`dispatch::active`] selection (runtime CPU detection,
    /// `GCC_FORCE_SCALAR` honored); `Some(b)` pins this render to backend
    /// `b` — the seam the scalar≡SIMD parity tests drive. Every backend is
    /// bit-identical, so this knob can never change the output image.
    pub backend: Option<Backend>,
}

impl Default for GaussianWiseConfig {
    fn default() -> Self {
        Self {
            law: BoundingLaw::OmegaSigma,
            block: 8,
            exp: ExpMode::Exact,
            mask_mode: MaskMode::Traverse,
            cross_stage: true,
            subview: None,
            grouping: None,
            background: Vec3::ZERO,
            alpha_min: 0.0,
            sh_degree: 3,
            backend: None,
        }
    }
}

impl GaussianWiseConfig {
    /// The GCC hardware configuration: LUT-EXP datapath, everything else
    /// as per the paper.
    pub fn gcc_hardware() -> Self {
        Self {
            exp: ExpMode::lut(),
            ..Self::default()
        }
    }

    /// The "GW only" ablation: Gaussian-wise rendering without cross-stage
    /// conditional processing.
    pub fn gw_only() -> Self {
        Self {
            cross_stage: false,
            ..Self::default()
        }
    }

    /// This configuration with a request's overrides applied (background,
    /// alpha threshold, SH degree clamp). All-`None` options return an
    /// identical configuration.
    pub fn with_options(&self, options: &crate::pipeline::RenderOptions) -> Self {
        let mut cfg = self.clone();
        if let Some(bg) = options.background {
            cfg.background = bg;
        }
        if let Some(a) = options.alpha_min {
            cfg.alpha_min = a;
        }
        if let Some(d) = options.sh_degree {
            cfg.sh_degree = d;
        }
        cfg
    }
}

/// Output of a Gaussian-wise render.
#[derive(Debug, Clone)]
pub struct GaussianWiseOutput {
    /// The rendered frame.
    pub image: Image,
    /// Unified workload statistics.
    pub stats: FrameStats,
    /// Sizes of the depth groups (diagnostics / sim input).
    pub group_sizes: Vec<u32>,
}

/// Cheap Stage-I screen information used for Cmode window binning: center
/// projection plus a conservative bounding-circle radius (center + max
/// scale only — over-covers the exact ω-σ footprint, as in paper §4.6).
struct ScreenBound {
    center: Vec2,
    radius: f32,
}

/// Everything a window worker needs, shared read-only across workers.
struct WindowContext<'a> {
    cfg: &'a GaussianWiseConfig,
    cam: &'a Camera,
    gaussians: &'a [Gaussian3D],
    groups: &'a DepthGroups,
    bounds: &'a [Option<ScreenBound>],
    /// Resolved SIMD kernel table for this render.
    kernels: &'static KernelSet,
    /// Region of interest in frame coordinates; blending (and the
    /// cross-stage termination condition) is restricted to the 8×8 blocks
    /// intersecting it. Only set under [`MaskMode::Traverse`], where block
    /// dispatch is per-block local — under `SkipAndBlock` the driver falls
    /// back to a full render + crop instead.
    roi: Option<crate::pipeline::Roi>,
}

/// What one window render produces: its pixel patch, additive stats, and
/// the Gaussians that contributed (merged by OR into the frame set).
struct WindowOutcome {
    patch: PixelPatch,
    stats: FrameStats,
    rendered: Vec<u32>,
}

/// Conservative circle-vs-window overlap test (the Cmode 2D spatial
/// binning of paper §4.6).
fn touches_window(b: &ScreenBound, win: (u32, u32, u32, u32)) -> bool {
    let (x0, y0) = (win.0 as f32, win.1 as f32);
    let (x1, y1) = ((win.0 + win.2) as f32, (win.1 + win.3) as f32);
    let cx = b.center.x.clamp(x0, x1);
    let cy = b.center.y.clamp(y0, y1);
    let d2 = (b.center.x - cx) * (b.center.x - cx) + (b.center.y - cy) * (b.center.y - cy);
    d2 <= b.radius * b.radius
}

/// Renders one (sub-)view through Stages II–IV with cross-stage
/// conditional group skipping. Pure function of its inputs — the unit of
/// parallelism of the Gaussian-wise schedule under Compatibility Mode.
fn render_window(ctx: &WindowContext<'_>, win: (u32, u32, u32, u32)) -> WindowOutcome {
    let cfg = ctx.cfg;
    // The alpha kernels implement exactly `ExpMode::Exact`; the LUT
    // datapath keeps the per-pixel loop.
    let exact = matches!(cfg.exp, ExpMode::Exact);
    let subcam = ctx.cam.sub_view(win.0, win.1, win.2, win.3);
    let grid = BlockGrid::new(cfg.block, win.2, win.3);
    let mut tracer = BlockTracer::new(grid);
    let mut tmask = TMask::new(&grid);
    // Block-level ROI restriction: block rects are window-local, the ROI
    // is frame-global.
    let block_in_roi = |b: usize| match &ctx.roi {
        None => true,
        Some(r) => {
            let (bx0, by0, bx1, by1) = grid.block_rect(b);
            r.intersects(
                i64::from(win.0) + i64::from(bx0),
                i64::from(win.1) + i64::from(by0),
                i64::from(win.0) + i64::from(bx1),
                i64::from(win.1) + i64::from(by1),
            )
        }
    };
    // The rendering-termination condition counts only ROI blocks: once
    // they all terminate, deeper groups can no longer change an ROI pixel
    // (a terminated block's pixels reject every blend), so the
    // cross-stage skip stays crop-exact.
    let mut live_blocks = (0..grid.block_count()).filter(|&b| block_in_roi(b)).count();
    let mut patch = PixelPatch::new(win.0, win.1, win.2, win.3);
    let mut stats = FrameStats::default();
    let mut rendered = Vec::new();
    let mut blocks_buf: Vec<usize> = Vec::new();
    let mut survivors: Vec<ProjectedGaussian> = Vec::new();
    // One batch reused across Gaussians: each Gaussian's live pixels over
    // its whole dispatched block list feed a single alpha-kernel pass
    // instead of one ≤8 px row at a time. `block_segs` remembers which
    // segment range belongs to which block for the per-block sweep.
    let mut batch = dispatch::AlphaBatch::new();
    let mut block_segs: Vec<(usize, usize, usize)> = Vec::new();

    for group in ctx.groups.iter() {
        // Cross-stage conditional skip: the rendering termination
        // condition is met for this (sub-)view, so every deeper group
        // is bypassed entirely.
        if cfg.cross_stage && live_blocks == 0 {
            stats.groups_skipped += 1;
            continue;
        }
        stats.groups_processed += 1;

        // ---- Stage II: projection + SCU, member by member. ----
        survivors.clear();
        for &id in &group.members {
            let Some(bound) = &ctx.bounds[id as usize] else {
                continue;
            };
            if !touches_window(bound, win) {
                continue;
            }
            stats.geometry_loads += 1;
            if let Some(p) = stages::project_one(&ctx.gaussians[id as usize], id, &subcam, cfg.law)
            {
                survivors.push(p);
            }
        }
        stats.projected += survivors.len() as u64;
        if !cfg.cross_stage {
            // GW-only ablation: SH is loaded for every in-frustum
            // Gaussian up front, as in the standard pipeline.
            stats.sh_loads += survivors.len() as u64;
        }

        // ---- Stage III: intra-group sort + conditional SH. ----
        stats.sort_elements += survivors.len() as u64;
        stages::sort_by_depth(&mut survivors);
        for p in survivors.iter_mut() {
            // ---- Stage IV: boundary identification + blending. ----
            // Alpha evaluation needs only geometry (μ′, Σ′⁻¹, lnω);
            // color is consumed first at blending. Under cross-stage
            // conditional processing the 48-float SH block is
            // therefore fetched only once the runtime identifier
            // confirms the Gaussian touches a live block — "only the
            // Gaussians that contribute to the final RGB values" are
            // fully preprocessed (paper §1, Fig. 1 "Conditional
            // Loading").
            let test = EffectiveTest::new(p.mean2d, p.conic, p.opacity);
            let tr = tracer.trace(&test, Some(&tmask), cfg.mask_mode, &mut blocks_buf);
            stats.blocks_dispatched += tr.blocks_dispatched;
            stats.blocks_masked_skips += tr.blocks_masked;
            stats.pixels_evaluated += tr.pixels_evaluated;
            // ROI restriction: blend only blocks that overlap the region
            // (a no-op without one). Blocks are blended independently, so
            // skipping the rest cannot change an ROI pixel.
            if ctx.roi.is_some() {
                blocks_buf.retain(|&b| block_in_roi(b));
            }

            if cfg.cross_stage {
                if blocks_buf.is_empty() {
                    continue;
                }
                stats.sh_loads += 1;
            }
            stages::shade_one_deg(p, &ctx.gaussians[p.id as usize], &subcam, cfg.sh_degree);

            let mut contributed = false;
            if exact {
                // Kernel path, phase 1: record every block row's powers
                // branchlessly across the Gaussian's *entire* dispatched
                // block list — blocks are disjoint pixel sets, so one
                // kernel pass covers the whole footprint; liveness is
                // re-read in the sweep (a pixel's termination state can't
                // change before this Gaussian's own blend reaches it).
                // Per-block span ranges are snapshotted so the sweep can
                // keep block-local `all_terminated` logic.
                batch.clear();
                block_segs.clear();
                for &b in &blocks_buf {
                    let (bx0, by0, bx1, by1) = grid.block_rect(b);
                    let s0 = batch.seg_count();
                    for y in by0..by1 {
                        let mut alpha_row = RowAlpha::new(p, bx0, y);
                        batch.collect_row(&mut alpha_row, y, bx0, (bx1 - bx0) as usize);
                    }
                    block_segs.push((b, s0, batch.seg_count()));
                }
                // Phases 2+3: one dispatched alpha-kernel pass (scalar or
                // SIMD, bit-identical), then the per-pixel blend sweep.
                // Sound because this Gaussian touches each pixel once. The
                // `alpha_lane_evals` counter keeps its per-pixel meaning
                // (evaluations the hardware Alpha Unit performs, i.e.
                // non-terminated lanes).
                batch.eval(ctx.kernels);
                let pw = patch.w as usize;
                let px = patch.states_mut();
                for &(b, s0, s1) in &block_segs {
                    let mut all_terminated = true;
                    for (y, x, alphas) in batch.segments_in(s0..s1) {
                        let off = y as usize * pw + x as usize;
                        for (st, &a) in px[off..off + alphas.len()].iter_mut().zip(alphas) {
                            if st.terminated() {
                                continue;
                            }
                            stats.alpha_lane_evals += 1;
                            if a > cfg.alpha_min {
                                st.blend(a, p.color);
                                stats.pixels_blended += 1;
                                contributed = true;
                            }
                            if !st.terminated() {
                                all_terminated = false;
                            }
                        }
                    }
                    if all_terminated && !tmask.is_set(b) {
                        tmask.set(b);
                        live_blocks -= 1;
                    }
                }
            } else {
                for &b in &blocks_buf {
                    let (bx0, by0, bx1, by1) = grid.block_rect(b);
                    let mut all_terminated = true;
                    for y in by0..by1 {
                        // Row-incremental alpha across the 8-px block row:
                        // the conic quadratic form runs once, then two
                        // adds/pixel.
                        let mut alpha_row = RowAlpha::new(p, bx0, y);
                        let row = patch.row_mut(y as u32);
                        for st in &mut row[bx0 as usize..bx1 as usize] {
                            if st.terminated() {
                                alpha_row.advance();
                                continue;
                            }
                            stats.alpha_lane_evals += 1;
                            let a = alpha_row.alpha(&cfg.exp);
                            if a > cfg.alpha_min {
                                st.blend(a, p.color);
                                stats.pixels_blended += 1;
                                contributed = true;
                            }
                            if !st.terminated() {
                                all_terminated = false;
                            }
                            alpha_row.advance();
                        }
                    }
                    if all_terminated && !tmask.is_set(b) {
                        tmask.set(b);
                        live_blocks -= 1;
                    }
                }
            }
            if contributed {
                stats.render_invocations += 1;
                rendered.push(p.id);
            }
        }
    }

    WindowOutcome {
        patch,
        stats,
        rendered,
    }
}

/// Renders a frame with the GCC Gaussian-wise dataflow, sequentially (the
/// reference schedule).
pub fn render_gaussian_wise(
    gaussians: &[Gaussian3D],
    cam: &Camera,
    cfg: &GaussianWiseConfig,
) -> GaussianWiseOutput {
    render_gaussian_wise_with(gaussians, cam, cfg, Parallelism::Sequential)
}

/// Renders a frame with the Gaussian-wise dataflow on the parallel frame
/// engine: Stage I is chunk-parallel over Gaussians and Stages II–IV are
/// parallel over Compatibility-Mode sub-views (a full-frame render has a
/// single window and stays on one worker). Image and statistics are
/// bit-identical to [`render_gaussian_wise`] for every `parallelism`
/// policy.
pub fn render_gaussian_wise_with(
    gaussians: &[Gaussian3D],
    cam: &Camera,
    cfg: &GaussianWiseConfig,
    parallelism: Parallelism,
) -> GaussianWiseOutput {
    render_gaussian_wise_scratch(gaussians, cam, cfg, parallelism, &mut FrameScratch::new())
}

/// [`render_gaussian_wise_with`] reusing caller-owned scratch (the Stage I
/// depth buffer) — the batch-render entry point. Output is bit-identical
/// whatever the scratch previously held.
pub fn render_gaussian_wise_scratch(
    gaussians: &[Gaussian3D],
    cam: &Camera,
    cfg: &GaussianWiseConfig,
    parallelism: Parallelism,
    scratch: &mut FrameScratch,
) -> GaussianWiseOutput {
    render_gaussian_wise_job(gaussians, cam, cfg, None, parallelism, scratch)
}

/// The request-model entry point: [`render_gaussian_wise_scratch`] with an
/// optional region of interest, bit-identical to cropping the full-frame
/// render. Under [`MaskMode::Traverse`] (the default) the restriction is
/// real work reduction: only the Cmode windows and 8×8 blocks intersecting
/// the ROI are blended, and the cross-stage termination condition counts
/// only ROI blocks. Under [`MaskMode::SkipAndBlock`] the T-mask gates
/// traversal *reachability*, so a pre-masked ROI would change which blocks
/// a Gaussian reaches — the render falls back to the full frame plus a
/// crop to preserve the bit-identity contract.
pub fn render_gaussian_wise_job(
    gaussians: &[Gaussian3D],
    cam: &Camera,
    cfg: &GaussianWiseConfig,
    roi: Option<crate::pipeline::Roi>,
    parallelism: Parallelism,
    scratch: &mut FrameScratch,
) -> GaussianWiseOutput {
    if let (Some(r), MaskMode::SkipAndBlock) = (&roi, cfg.mask_mode) {
        let full = render_gaussian_wise_job(gaussians, cam, cfg, None, parallelism, scratch);
        return GaussianWiseOutput {
            image: crate::pipeline::crop_image(&full.image, r),
            stats: full.stats,
            group_sizes: full.group_sizes,
        };
    }
    let threads = parallelism.threads();
    let (w, h) = (cam.width, cam.height);

    // ---- Stage I: depths + grouping (global, once per frame). ----
    stages::view_depths_into(gaussians, cam, threads, &mut scratch.depths);
    let depths = &scratch.depths;
    let grouping = cfg
        .grouping
        .unwrap_or_else(|| GroupingConfig::for_count(gaussians.len()));
    let groups: DepthGroups = group_by_depth(depths, &grouping);
    let group_sizes: Vec<u32> = groups
        .groups
        .iter()
        .map(|g| g.members.len() as u32)
        .collect();

    // ---- Cmode window partition + conservative screen bounds. ----
    // ROI restriction at window granularity: windows are independent, so
    // only those overlapping the region run at all.
    let mut windows = stages::partition_windows(w, h, cfg.subview);
    if let Some(r) = &roi {
        windows.retain(|&(x, y, ww, wh)| {
            r.intersects(
                i64::from(x),
                i64::from(y),
                i64::from(x) + i64::from(ww),
                i64::from(y) + i64::from(wh),
            )
        });
    }
    let focal = cam.fx.max(cam.fy);
    let bounds: Vec<Option<ScreenBound>> = par_map_chunked(gaussians, threads, |i, g| {
        let z = depths[i];
        if z < gcc_core::NEAR_DEPTH {
            return None;
        }
        let (px, _) = cam.project_point(g.mean)?;
        let radius = 6.0 * g.scale.max_component() * focal / z + 4.0;
        Some(ScreenBound { center: px, radius })
    });

    let mut stats = FrameStats {
        total_gaussians: gaussians.len() as u64,
        near_culled: u64::from(groups.near_culled),
        groups_total: groups.groups.len() as u64,
        windows: windows.len() as u64,
        ..FrameStats::default()
    };

    // ---- Stages II–IV, parallel over windows. ----
    let kernels: &'static KernelSet = match cfg.backend {
        Some(b) => dispatch::kernel_set(b).expect("configured SIMD backend unsupported on host"),
        None => dispatch::active(),
    };
    let ctx = WindowContext {
        cfg,
        cam,
        gaussians,
        groups: &groups,
        bounds: &bounds,
        kernels,
        roi,
    };
    let outcomes = par_map_indexed(windows.len(), threads, |wi| {
        render_window(&ctx, windows[wi])
    });

    // ---- Merge in window order: patches are disjoint, counters additive,
    // contributor sets OR-combined. ----
    // A fresh PixelState resolves to exactly the background (T = 1, no
    // color), so the frame is pre-filled directly (windows tile the whole
    // image; the fill is only visible if a window produces no patch).
    let (out_w, out_h, origin_x, origin_y) = match &roi {
        Some(r) => (r.width, r.height, r.x0, r.y0),
        None => (w, h, 0, 0),
    };
    let mut image = Image::filled(out_w, out_h, cfg.background);
    let mut rendered_anywhere = vec![false; gaussians.len()];
    for outcome in &outcomes {
        stats.merge_add(&outcome.stats);
        outcome
            .patch
            .resolve_into_clipped(&mut image, cfg.background, origin_x, origin_y);
        for &id in &outcome.rendered {
            rendered_anywhere[id as usize] = true;
        }
    }
    stats.rendered = rendered_anywhere.iter().filter(|&&b| b).count() as u64;

    GaussianWiseOutput {
        image,
        stats,
        group_sizes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::standard::render_reference;

    fn test_cam() -> Camera {
        Camera::look_at(
            Vec3::new(0.0, 0.0, -4.0),
            Vec3::ZERO,
            Vec3::new(0.0, 1.0, 0.0),
            60.0,
            128,
            96,
        )
    }

    fn colored_cloud(n: usize) -> Vec<Gaussian3D> {
        (0..n)
            .map(|i| {
                let t = i as f32 / n as f32;
                Gaussian3D::isotropic(
                    Vec3::new((t * 13.0).sin() * 0.8, (t * 7.0).cos() * 0.5, t * 2.0 - 0.5),
                    0.06 + 0.1 * t,
                    0.05f32.max(t),
                    Vec3::new(t, 1.0 - t, 0.5 + 0.4 * (t * 31.0).sin()),
                )
            })
            .collect()
    }

    #[test]
    fn single_gaussian_matches_reference_pipeline() {
        let cam = test_cam();
        let g = vec![Gaussian3D::isotropic(
            Vec3::ZERO,
            0.15,
            0.95,
            Vec3::new(0.9, 0.1, 0.2),
        )];
        let gw = render_gaussian_wise(&g, &cam, &GaussianWiseConfig::default());
        let std_out = render_reference(&g, &cam);
        let diff = gw.image.max_abs_diff(&std_out.image);
        assert!(diff < 1e-4, "max diff {diff}");
    }

    #[test]
    fn cloud_matches_reference_within_tolerance() {
        // Both pipelines blend in global depth order, so results should
        // agree except for boundary-law differences below the 1/255 cutoff.
        let cam = test_cam();
        let cloud = colored_cloud(120);
        let gw = render_gaussian_wise(&cloud, &cam, &GaussianWiseConfig::default());
        let std_out = render_reference(&cloud, &cam);
        let mse = gw.image.mse(&std_out.image);
        assert!(mse < 1e-5, "MSE {mse}");
    }

    #[test]
    fn cmode_render_is_equivalent_to_full_frame() {
        let cam = test_cam();
        let cloud = colored_cloud(100);
        let full = render_gaussian_wise(&cloud, &cam, &GaussianWiseConfig::default());
        let cfg = GaussianWiseConfig {
            subview: Some(32),
            ..GaussianWiseConfig::default()
        };
        let tiled = render_gaussian_wise(&cloud, &cam, &cfg);
        let diff = tiled.image.max_abs_diff(&full.image);
        assert!(diff < 1e-4, "Cmode changed the image by {diff}");
        assert!(tiled.stats.windows > 1);
        // Sub-views duplicate work (Fig. 6): invocations ≥ unique rendered.
        assert!(tiled.stats.render_invocations >= tiled.stats.rendered);
        assert!(tiled.stats.geometry_loads >= full.stats.geometry_loads);
    }

    #[test]
    fn parallel_windows_reproduce_sequential_render_exactly() {
        let cam = test_cam();
        let cloud = colored_cloud(150);
        let cfg = GaussianWiseConfig {
            subview: Some(32),
            ..GaussianWiseConfig::default()
        };
        let seq = render_gaussian_wise(&cloud, &cam, &cfg);
        for threads in [2, 4, 7] {
            let par = render_gaussian_wise_with(&cloud, &cam, &cfg, Parallelism::fixed(threads));
            assert_eq!(seq.image, par.image, "threads={threads}");
            assert_eq!(seq.stats, par.stats, "threads={threads}");
            assert_eq!(seq.group_sizes, par.group_sizes, "threads={threads}");
        }
    }

    #[test]
    fn cross_stage_reduces_loads_on_occluded_scene() {
        let cam = test_cam();
        // Five stacked opaque walls covering the whole frustum at depth 2,
        // with a large cloud behind them that early termination hides.
        let mut cloud = Vec::new();
        for layer in 0..5 {
            let z = -2.0 + 0.01 * layer as f32;
            let mut ix = 0;
            while ix < 17 {
                let mut iy = 0;
                while iy < 13 {
                    cloud.push(Gaussian3D::isotropic(
                        Vec3::new(-2.4 + 0.3 * ix as f32, -1.8 + 0.3 * iy as f32, z),
                        0.5,
                        0.99,
                        Vec3::new(0.8, 0.2, 0.1),
                    ));
                    iy += 1;
                }
                ix += 1;
            }
        }
        for i in 0..400 {
            let t = i as f32 / 400.0;
            // Occluded background at z≈2 (depth 6).
            cloud.push(Gaussian3D::isotropic(
                Vec3::new(
                    (t * 23.0).fract() * 2.0 - 1.0,
                    (t * 5.0).fract() * 1.4 - 0.7,
                    2.0,
                ),
                0.1,
                0.8,
                Vec3::new(0.1, 0.8, 0.3),
            ));
        }
        let cc = render_gaussian_wise(&cloud, &cam, &GaussianWiseConfig::default());
        let gw = render_gaussian_wise(&cloud, &cam, &GaussianWiseConfig::gw_only());
        assert!(
            cc.stats.groups_skipped > 0,
            "expected group skipping on a fully occluded frame"
        );
        assert!(
            cc.stats.geometry_loads < gw.stats.geometry_loads,
            "CC {} vs GW {}",
            cc.stats.geometry_loads,
            gw.stats.geometry_loads
        );
        assert!(cc.stats.sh_loads < gw.stats.sh_loads);
        // And the images agree: skipped work was invisible anyway.
        let diff = cc.image.max_abs_diff(&gw.image);
        assert!(diff < 5e-3, "CC changed the image by {diff}");
    }

    #[test]
    fn lut_exp_image_is_close_to_exact() {
        let cam = test_cam();
        let cloud = colored_cloud(80);
        let exact = render_gaussian_wise(&cloud, &cam, &GaussianWiseConfig::default());
        let lut = render_gaussian_wise(&cloud, &cam, &GaussianWiseConfig::gcc_hardware());
        let mse = exact.image.mse(&lut.image);
        // <1% LUT error keeps images visually identical (Table 2).
        assert!(mse < 1e-4, "LUT MSE {mse}");
    }

    #[test]
    fn stats_are_internally_consistent() {
        let cam = test_cam();
        let cloud = colored_cloud(150);
        let out = render_gaussian_wise(&cloud, &cam, &GaussianWiseConfig::default());
        let s = &out.stats;
        assert_eq!(s.total_gaussians, 150);
        assert!(s.projected <= s.geometry_loads);
        assert!(s.sh_loads <= s.projected);
        assert!(s.rendered <= s.projected);
        assert!(s.render_invocations >= s.rendered);
        assert!(s.pixels_blended <= s.pixels_evaluated);
        assert_eq!(s.groups_processed + s.groups_skipped, s.groups_total);
        assert_eq!(s.windows, 1);
    }

    #[test]
    fn empty_scene_is_background() {
        let cam = test_cam();
        let cfg = GaussianWiseConfig {
            background: Vec3::new(0.1, 0.2, 0.3),
            ..GaussianWiseConfig::default()
        };
        let out = render_gaussian_wise(&[], &cam, &cfg);
        assert_eq!(out.image.get(5, 5), Vec3::new(0.1, 0.2, 0.3));
        assert_eq!(out.stats.rendered, 0);
    }
}
