//! A linear-RGB `f32` framebuffer with PPM export.

use gcc_math::Vec3;
use std::io::{self, Write};
use std::path::Path;

/// An RGB image with `f32` channels in `[0, 1]` (values outside the range
/// are clamped on export).
#[derive(Debug, Clone, PartialEq)]
pub struct Image {
    width: u32,
    height: u32,
    data: Vec<Vec3>,
}

impl Image {
    /// Black image of the given size.
    ///
    /// # Panics
    ///
    /// Panics for zero-sized images.
    pub fn new(width: u32, height: u32) -> Self {
        Self::filled(width, height, Vec3::ZERO)
    }

    /// Image filled with a constant color.
    ///
    /// # Panics
    ///
    /// Panics for zero-sized images.
    pub fn filled(width: u32, height: u32, color: Vec3) -> Self {
        assert!(width > 0 && height > 0, "degenerate image size");
        Self {
            width,
            height,
            data: vec![color; (width as usize) * (height as usize)],
        }
    }

    /// Image width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Total pixels.
    pub fn pixel_count(&self) -> usize {
        self.data.len()
    }

    /// Pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn get(&self, x: u32, y: u32) -> Vec3 {
        assert!(x < self.width && y < self.height, "pixel ({x},{y}) oob");
        self.data[(y * self.width + x) as usize]
    }

    /// Sets pixel `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn set(&mut self, x: u32, y: u32, c: Vec3) {
        assert!(x < self.width && y < self.height, "pixel ({x},{y}) oob");
        self.data[(y * self.width + x) as usize] = c;
    }

    /// Raw pixel slice, row-major.
    pub fn pixels(&self) -> &[Vec3] {
        &self.data
    }

    /// Mutable raw pixel slice, row-major.
    pub fn pixels_mut(&mut self) -> &mut [Vec3] {
        &mut self.data
    }

    /// Mean color over the image.
    pub fn mean(&self) -> Vec3 {
        let mut acc = Vec3::ZERO;
        for p in &self.data {
            acc += *p;
        }
        acc / self.data.len() as f32
    }

    /// Mean squared error against another image of the same size.
    ///
    /// # Panics
    ///
    /// Panics on size mismatch.
    pub fn mse(&self, other: &Image) -> f64 {
        assert_eq!(
            (self.width, self.height),
            (other.width, other.height),
            "image size mismatch"
        );
        let mut acc = 0.0f64;
        for (a, b) in self.data.iter().zip(other.data.iter()) {
            let d = *a - *b;
            acc += f64::from(d.norm_sq()) / 3.0;
        }
        acc / self.data.len() as f64
    }

    /// Maximum per-channel absolute difference.
    ///
    /// # Panics
    ///
    /// Panics on size mismatch.
    pub fn max_abs_diff(&self, other: &Image) -> f32 {
        assert_eq!((self.width, self.height), (other.width, other.height));
        let mut worst = 0.0f32;
        for (a, b) in self.data.iter().zip(other.data.iter()) {
            let d = *a - *b;
            worst = worst.max(d.x.abs()).max(d.y.abs()).max(d.z.abs());
        }
        worst
    }

    /// Encodes as binary PPM (P6, 8-bit).
    pub fn to_ppm(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.data.len() * 3 + 32);
        out.extend_from_slice(format!("P6\n{} {}\n255\n", self.width, self.height).as_bytes());
        for p in &self.data {
            for c in [p.x, p.y, p.z] {
                out.push((c.clamp(0.0, 1.0) * 255.0).round() as u8);
            }
        }
        out
    }

    /// Writes a PPM file.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save_ppm<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(&self.to_ppm())
    }

    /// Downsamples by 2× (box filter), used by the multi-scale perceptual
    /// metric. Odd trailing rows/columns are dropped.
    ///
    /// # Panics
    ///
    /// Panics if the image is smaller than 2×2.
    pub fn downsample2(&self) -> Image {
        assert!(self.width >= 2 && self.height >= 2, "too small to halve");
        let (w, h) = (self.width / 2, self.height / 2);
        let mut out = Image::new(w, h);
        for y in 0..h {
            for x in 0..w {
                let acc = self.get(2 * x, 2 * y)
                    + self.get(2 * x + 1, 2 * y)
                    + self.get(2 * x, 2 * y + 1)
                    + self.get(2 * x + 1, 2 * y + 1);
                out.set(x, y, acc * 0.25);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let mut img = Image::new(4, 3);
        assert_eq!(img.pixel_count(), 12);
        img.set(3, 2, Vec3::new(1.0, 0.5, 0.25));
        assert_eq!(img.get(3, 2), Vec3::new(1.0, 0.5, 0.25));
        assert_eq!(img.get(0, 0), Vec3::ZERO);
    }

    #[test]
    #[should_panic(expected = "oob")]
    fn out_of_bounds_get_panics() {
        let img = Image::new(2, 2);
        let _ = img.get(2, 0);
    }

    #[test]
    fn mse_of_identical_images_is_zero() {
        let img = Image::filled(8, 8, Vec3::splat(0.3));
        assert_eq!(img.mse(&img), 0.0);
    }

    #[test]
    fn mse_of_known_offset() {
        let a = Image::filled(4, 4, Vec3::splat(0.5));
        let b = Image::filled(4, 4, Vec3::splat(0.6));
        assert!((a.mse(&b) - 0.01).abs() < 1e-6);
    }

    #[test]
    fn ppm_header_and_size() {
        let img = Image::new(5, 7);
        let ppm = img.to_ppm();
        assert!(ppm.starts_with(b"P6\n5 7\n255\n"));
        assert_eq!(ppm.len(), b"P6\n5 7\n255\n".len() + 5 * 7 * 3);
    }

    #[test]
    fn ppm_clamps_out_of_range() {
        let img = Image::filled(1, 1, Vec3::new(2.0, -1.0, 0.5));
        let ppm = img.to_ppm();
        let px = &ppm[ppm.len() - 3..];
        assert_eq!(px, &[255u8, 0, 128]);
    }

    #[test]
    fn downsample_halves_and_averages() {
        let mut img = Image::new(4, 4);
        img.set(0, 0, Vec3::splat(1.0));
        let down = img.downsample2();
        assert_eq!(down.width(), 2);
        assert_eq!(down.get(0, 0), Vec3::splat(0.25));
        assert_eq!(down.get(1, 1), Vec3::ZERO);
    }

    #[test]
    fn mean_is_average() {
        let mut img = Image::new(2, 1);
        img.set(0, 0, Vec3::splat(1.0));
        assert_eq!(img.mean(), Vec3::splat(0.5));
    }
}
