//! The standard (decoupled, tile-wise) 3DGS dataflow — the pipeline used by
//! the GPU implementation and by all prior accelerators including GSCore
//! (paper §2.2, Fig. 1 top).
//!
//! Two sequential stages, both expressed over the shared
//! [`crate::pipeline::stages`] primitives:
//!
//! 1. **Preprocess**: every Gaussian is frustum-culled, projected (Eq. 1)
//!    and SH-colored (Eq. 2) — regardless of whether rendering will use it
//!    ([`stages::project_and_shade_all`]).
//! 2. **Render**: survivors are ordered front-to-back **once globally**
//!    ([`stages::global_depth_order_into`]: monotone depth keys + one
//!    stable LSD radix sort) and binned to 16×16 tiles in that order into
//!    a flat CSR layout ([`stages::TileBins`]), so every tile bin is born
//!    depth-sorted — the GSCore-shaped "ordering is one global key sort"
//!    formulation, replacing the historical per-tile comparison sorts.
//!    Pixels are blended front-to-back with early termination and
//!    row-incremental alpha evaluation ([`RowAlpha`]). A Gaussian
//!    overlapping `k` tiles is loaded `k` times (the Fig. 2(b)
//!    redundancy).
//!
//! Tiles own disjoint pixel rectangles, so the frame engine renders them
//! in parallel ([`render_standard_with`]): each worker blends into its own
//! [`stages::PixelPatch`] and reports an additive [`FrameStats`] partial;
//! the driver merges patches and partials in tile order, which makes the
//! parallel render bit-identical to the sequential one.
//!
//! The renderer is instrumented to produce every statistic the paper's
//! motivation section and evaluation need (Fig. 2, Table 1, Fig. 11/12
//! traffic inputs), reported through the unified [`FrameStats`] view.
//! `sort_elements` keeps its historical meaning — elements through the
//! per-tile depth-ordering stage (= KV pairs) — even though the ordering
//! work now happens once globally; the simulator's sort-cost models are
//! calibrated against that definition.

use gcc_core::alpha::{EffectiveSpanWalker, ExpMode, RowAlpha};
use gcc_core::bounds::{BoundingLaw, Obb, PixelRect};
use gcc_core::dispatch::{self, Backend, KernelSet};
use gcc_core::{Camera, Gaussian3D, ProjectedGaussian};
use gcc_math::Vec3;
use gcc_parallel::{par_map_chunked, par_map_indexed, Parallelism};

use crate::pipeline::stages::{self, PixelPatch};
use crate::pipeline::{FrameScratch, FrameStats};
use crate::Image;

/// Which footprint limits per-pixel alpha evaluation inside a tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Footprint {
    /// Axis-aligned bounding box (the GPU rasterizer).
    Aabb,
    /// Oriented bounding box (GSCore's tightened footprint).
    Obb,
}

/// Configuration of the standard pipeline.
#[derive(Debug, Clone)]
pub struct StandardConfig {
    /// Tile edge in pixels (16 in the paper).
    pub tile_size: u32,
    /// Bounding law for binning and culling (3σ for GPU/GSCore).
    pub law: BoundingLaw,
    /// Per-pixel footprint test.
    pub footprint: Footprint,
    /// Exponential datapath.
    pub exp: ExpMode,
    /// Background color composited behind the splats.
    pub background: Vec3,
    /// Minimum alpha a contribution needs to be blended. `0.0` keeps the
    /// pipeline's intrinsic `1/255` cutoff; higher values skip faint
    /// contributions (per-request quality knob).
    pub alpha_min: f32,
    /// SH degree clamp for color evaluation (`0..=3`; 3 = full SH).
    pub sh_degree: u8,
    /// SIMD kernel backend override. `None` (the default) uses the
    /// process-wide [`dispatch::active`] selection (runtime CPU detection,
    /// `GCC_FORCE_SCALAR` honored); `Some(b)` pins this render to backend
    /// `b` — the seam the scalar≡SIMD parity tests drive. Every backend is
    /// bit-identical, so this knob can never change the output image.
    pub backend: Option<Backend>,
}

impl Default for StandardConfig {
    fn default() -> Self {
        Self {
            tile_size: 16,
            law: BoundingLaw::ThreeSigma,
            footprint: Footprint::Aabb,
            exp: ExpMode::Exact,
            background: Vec3::ZERO,
            alpha_min: 0.0,
            sh_degree: 3,
            backend: None,
        }
    }
}

impl StandardConfig {
    /// GSCore's configuration: OBB footprint, otherwise the standard
    /// two-stage pipeline.
    pub fn gscore() -> Self {
        Self {
            footprint: Footprint::Obb,
            ..Self::default()
        }
    }

    /// This configuration with a request's overrides applied (background,
    /// alpha threshold, SH degree clamp). All-`None` options return an
    /// identical configuration.
    pub fn with_options(&self, options: &crate::pipeline::RenderOptions) -> Self {
        let mut cfg = self.clone();
        if let Some(bg) = options.background {
            cfg.background = bg;
        }
        if let Some(a) = options.alpha_min {
            cfg.alpha_min = a;
        }
        if let Some(d) = options.sh_degree {
            cfg.sh_degree = d;
        }
        cfg
    }
}

/// Output of a standard-dataflow render.
#[derive(Debug, Clone)]
pub struct StandardOutput {
    /// The rendered frame.
    pub image: Image,
    /// Unified workload statistics.
    pub stats: FrameStats,
    /// Projected Gaussians in scene order (preprocessing output, useful
    /// for downstream analysis).
    pub projected: Vec<ProjectedGaussian>,
    /// Gaussians per tile (row-major tile grid), for sort-cost models.
    pub tile_gaussian_counts: Vec<u32>,
}

/// Everything a tile worker needs, shared read-only across workers.
struct TileContext<'a> {
    cfg: &'a StandardConfig,
    projected: &'a [ProjectedGaussian],
    obbs: &'a [Option<Obb>],
    rects: &'a [PixelRect],
    width: u32,
    height: u32,
    tiles_x: u32,
    /// Resolved SIMD kernel table for this render.
    kernels: &'static KernelSet,
}

/// What one tile render produces: its pixel patch, additive stats, and
/// the Gaussians it loaded/rendered (merged by OR into the frame sets).
struct TileOutcome {
    patch: PixelPatch,
    stats: FrameStats,
    loaded: Vec<u32>,
    rendered: Vec<u32>,
}

/// Renders one tile: its bin arrives depth-sorted (born that way from the
/// global ordering + CSR fill), so the worker goes straight to blending
/// front-to-back with per-tile early termination. Pure function of its
/// inputs — the unit of parallelism of the standard schedule.
fn render_tile(ctx: &TileContext<'_>, tile: usize, bin: &[u32]) -> TileOutcome {
    let ts = ctx.cfg.tile_size;
    // The alpha kernels implement exactly `ExpMode::Exact`; the LUT
    // datapath keeps the per-pixel loop.
    let exact = matches!(ctx.cfg.exp, ExpMode::Exact);
    let tx = (tile as u32) % ctx.tiles_x;
    let ty = (tile as u32) / ctx.tiles_x;
    let x0 = (tx * ts) as i32;
    let y0 = (ty * ts) as i32;
    let x1 = ((tx + 1) * ts).min(ctx.width) as i32;
    let y1 = ((ty + 1) * ts).min(ctx.height) as i32;
    let mut patch = PixelPatch::new(x0 as u32, y0 as u32, (x1 - x0) as u32, (y1 - y0) as u32);

    let mut stats = FrameStats::default();
    // Elements through the depth-ordering stage for this tile. The
    // ordering now happens once globally, but the per-tile sort workload
    // definition (= this tile's KV pairs) is what the simulator's
    // sort-cost models consume, so it is preserved verbatim.
    stats.sort_elements += bin.len() as u64;

    let mut loaded = Vec::new();
    let mut rendered = Vec::new();
    let mut active = ((x1 - x0) * (y1 - y0)) as i64;
    // One batch reused across the whole bin: a Gaussian's live pixels over
    // its entire tile footprint feed a single alpha-kernel pass, so the
    // vector width is the footprint (up to 16×16), not one ≤16 px row.
    let mut batch = dispatch::AlphaBatch::new();
    for &idx in bin {
        if active <= 0 {
            // Tile fully terminated: the remaining KV pairs are never
            // loaded (GSCore's per-tile early termination).
            break;
        }
        let p = &ctx.projected[idx as usize];
        stats.tile_loads += 1;
        loaded.push(idx);

        let rect = &ctx.rects[idx as usize];
        let rx0 = rect.x0.max(x0);
        let ry0 = rect.y0.max(y0);
        let rx1 = rect.x1.min(x1);
        let ry1 = rect.y1.min(y1);
        if rx0 >= rx1 || ry0 >= ry1 {
            continue;
        }
        let obb = ctx.obbs[idx as usize].as_ref();
        let mut obb_walker = obb.map(|o| o.span_walker(rx0, rx1, ry0));
        let mut alpha_spans = EffectiveSpanWalker::new(p, rx0, rx1, ry0);
        let mut contributed = false;
        batch.clear();
        for y in ry0..ry1 {
            // Row-analytic work restriction: the footprint tests and the
            // alpha cutoff are solved per row by forward-differenced span
            // walkers (adds per row, no divisions), so the pixel loop
            // walks only the span that can contribute. Counters keep
            // their per-pixel semantics via bulk adds; pixels inside the
            // span still run the exact incremental evaluation.
            stats.pixels_tested_aabb += (rx1 - rx0) as u64;
            let obb_span = obb_walker.as_mut().map(|w| w.next_span());
            if let Some((ox0, ox1)) = obb_span {
                stats.pixels_tested_obb += (ox1 - ox0) as u64;
            }
            let (ex0, ex1) = alpha_spans.next_span();
            let (sx0, sx1) = match ctx.cfg.footprint {
                Footprint::Aabb => {
                    stats.pixels_tested += (rx1 - rx0) as u64;
                    (ex0, ex1)
                }
                Footprint::Obb => {
                    let (ox0, ox1) = obb_span.unwrap_or((rx0, rx0));
                    stats.pixels_tested += (ox1 - ox0) as u64;
                    (ex0.max(ox0), ex1.min(ox1))
                }
            };
            if sx0 >= sx1 {
                continue;
            }
            // Row-incremental evaluation inside the span: the conic
            // quadratic form runs once, then two adds per pixel.
            let mut alpha_row = RowAlpha::new(p, sx0, y);
            if exact {
                // Kernel path, phase 1: record the whole span's powers
                // branchlessly (liveness is re-read in the sweep — a
                // pixel's termination state can't change before this
                // Gaussian's own blend reaches it); alphas are evaluated
                // after the row loop in one kernel pass over the whole
                // footprint.
                batch.collect_row(&mut alpha_row, y, sx0, (sx1 - sx0) as usize);
            } else {
                let row = patch.row_mut((y - y0) as u32);
                let span = &mut row[(sx0 - x0) as usize..(sx1 - x0) as usize];
                for st in span {
                    if !st.terminated() {
                        let a = alpha_row.alpha(&ctx.cfg.exp);
                        if a > ctx.cfg.alpha_min {
                            st.blend(a, p.color);
                            stats.pixels_blended += 1;
                            contributed = true;
                            if st.terminated() {
                                active -= 1;
                            }
                        }
                    }
                    alpha_row.advance();
                }
            }
        }
        if !batch.is_empty() {
            // Phases 2+3: one dispatched alpha-kernel pass (scalar or
            // SIMD, bit-identical), then sweep the spans back into their
            // pixels with the per-pixel loop's exact liveness/blend/stats
            // logic (terminated pixels' alphas are discarded unread).
            // Sound because this Gaussian touches each pixel once: the
            // blends here cannot invalidate phase 1's termination reads.
            batch.eval(ctx.kernels);
            let pw = (x1 - x0) as usize;
            let px = patch.states_mut();
            for (y, x, alphas) in batch.segments() {
                let off = (y - y0) as usize * pw + (x - x0) as usize;
                for (st, &a) in px[off..off + alphas.len()].iter_mut().zip(alphas) {
                    if st.terminated() {
                        continue;
                    }
                    if a > ctx.cfg.alpha_min {
                        st.blend(a, p.color);
                        stats.pixels_blended += 1;
                        contributed = true;
                        if st.terminated() {
                            active -= 1;
                        }
                    }
                }
            }
        }
        if contributed {
            rendered.push(idx);
        }
    }

    TileOutcome {
        patch,
        stats,
        loaded,
        rendered,
    }
}

/// Renders a frame with the standard two-stage tile-wise dataflow,
/// sequentially (the reference schedule).
pub fn render_standard(
    gaussians: &[Gaussian3D],
    cam: &Camera,
    cfg: &StandardConfig,
) -> StandardOutput {
    render_standard_with(gaussians, cam, cfg, Parallelism::Sequential)
}

/// Renders a frame with the standard dataflow on the parallel frame
/// engine: preprocessing is chunk-parallel over Gaussians and rendering is
/// parallel over tiles. Image and statistics are bit-identical to
/// [`render_standard`] for every `parallelism` policy.
pub fn render_standard_with(
    gaussians: &[Gaussian3D],
    cam: &Camera,
    cfg: &StandardConfig,
    parallelism: Parallelism,
) -> StandardOutput {
    render_standard_scratch(gaussians, cam, cfg, parallelism, &mut FrameScratch::new())
}

/// [`render_standard_with`] reusing caller-owned scratch buffers (depth
/// keys, radix ping-pong, footprints, CSR bins) — the batch-render entry
/// point. Output is bit-identical whatever the scratch previously held.
pub fn render_standard_scratch(
    gaussians: &[Gaussian3D],
    cam: &Camera,
    cfg: &StandardConfig,
    parallelism: Parallelism,
    scratch: &mut FrameScratch,
) -> StandardOutput {
    render_standard_job(gaussians, cam, cfg, None, parallelism, scratch)
}

/// The request-model entry point: [`render_standard_scratch`] with an
/// optional region of interest. An ROI render keeps full-frame arithmetic
/// (projection, global ordering, binning are unchanged) and renders only
/// the tiles intersecting the ROI — every tile is a pure function of the
/// global depth order, so the output is bit-identical to cropping the
/// full-frame render. Work counters cover only the processed tiles;
/// grid-level fields (`tiles`, `kv_pairs`, the per-tile counts) keep their
/// full-frame definitions.
pub fn render_standard_job(
    gaussians: &[Gaussian3D],
    cam: &Camera,
    cfg: &StandardConfig,
    roi: Option<crate::pipeline::Roi>,
    parallelism: Parallelism,
    scratch: &mut FrameScratch,
) -> StandardOutput {
    let threads = parallelism.threads();
    let (w, h) = (cam.width, cam.height);
    let ts = cfg.tile_size;
    let tiles_x = w.div_ceil(ts);
    let tiles_y = h.div_ceil(ts);
    let n_tiles = (tiles_x * tiles_y) as usize;
    let kernels: &'static KernelSet = match cfg.backend {
        Some(b) => dispatch::kernel_set(b).expect("configured SIMD backend unsupported on host"),
        None => dispatch::active(),
    };

    // ---- Stage 1: preprocess everything (the paper's Challenge 1). ----
    // Cull + project first, then pack the survivors' hot fields into the
    // SoA scratch arrays so the batched SH, depth-key and footprint
    // stages stream flat `f32` slices (and can vectorize). Bit-identical
    // to the historical fused project+shade pass: per-survivor arithmetic
    // is unchanged, only the iteration shape moved.
    let mut projected = stages::project_all(gaussians, cam, cfg.law, threads);
    scratch.soa.pack(&projected, gaussians, cam);
    debug_assert_eq!(scratch.soa.len(), projected.len());
    stages::shade_all_soa(
        &mut projected,
        gaussians,
        &scratch.soa.dir_x,
        &scratch.soa.dir_y,
        &scratch.soa.dir_z,
        cfg.sh_degree,
        threads,
        kernels,
    );
    let projected = projected;

    let mut stats = FrameStats {
        total_gaussians: gaussians.len() as u64,
        // The standard dataflow streams every record once in preprocessing
        // and fetches SH for every in-frustum Gaussian up front.
        geometry_loads: gaussians.len() as u64,
        projected: projected.len() as u64,
        sh_loads: projected.len() as u64,
        tiles: n_tiles as u64,
        windows: 1,
        ..FrameStats::default()
    };

    // Precompute OBBs once per projected Gaussian (used for footprint
    // and/or the Table 1 OBB column).
    let obbs: Vec<Option<Obb>> = par_map_chunked(&projected, threads, |_, p| {
        Obb::from_cov(p.mean2d, p.cov2d, cfg.law, p.opacity)
    });

    // ---- Global depth ordering: one radix sort over monotone keys,
    // generated from the flat SoA depth array by the dispatched kernel. ----
    stages::footprint_rects_soa_into(
        &scratch.soa.mean_x,
        &scratch.soa.mean_y,
        &scratch.soa.radius,
        w,
        h,
        threads,
        &mut scratch.rects,
    );
    stages::global_depth_order_soa(
        &scratch.soa.depth,
        threads,
        &mut scratch.keys,
        &mut scratch.order,
        &mut scratch.radix,
        kernels,
    );

    // ---- Binning: Gaussian → tile KV pairs, CSR, born depth-sorted. ----
    stats.kv_pairs = scratch
        .bins
        .build(&scratch.rects, &scratch.order, ts, tiles_x, n_tiles);
    let tile_gaussian_counts: Vec<u32> = (0..n_tiles).map(|t| scratch.bins.count(t)).collect();

    // ---- Stage 2: tile-wise rendering, parallel over tiles. ----
    let ctx = TileContext {
        cfg,
        projected: &projected,
        obbs: &obbs,
        rects: &scratch.rects,
        width: w,
        height: h,
        tiles_x,
        kernels,
    };
    let bins = &scratch.bins;
    // ROI restriction: only tiles whose pixel rectangle intersects the
    // region run (each tile is pure, so skipping the rest cannot change
    // the ROI pixels).
    let in_roi = |t: usize| match &roi {
        None => true,
        Some(r) => {
            let tx = (t as u32) % tiles_x;
            let ty = (t as u32) / tiles_x;
            r.intersects(
                i64::from(tx * ts),
                i64::from(ty * ts),
                i64::from(((tx + 1) * ts).min(w)),
                i64::from(((ty + 1) * ts).min(h)),
            )
        }
    };
    let occupied: Vec<usize> = (0..n_tiles)
        .filter(|&t| bins.count(t) > 0 && in_roi(t))
        .collect();
    let outcomes = par_map_indexed(occupied.len(), threads, |k| {
        let t = occupied[k];
        render_tile(&ctx, t, bins.bin(t))
    });

    // ---- Merge in tile order: patches are disjoint, counters additive,
    // loaded/rendered sets OR-combined — all order-insensitive, so the
    // merge reproduces the sequential render exactly. ----
    // A fresh PixelState resolves to exactly the background (T = 1, no
    // color), so unoccupied tiles are pre-filled directly.
    let (out_w, out_h, origin_x, origin_y) = match &roi {
        Some(r) => (r.width, r.height, r.x0, r.y0),
        None => (w, h, 0, 0),
    };
    let mut image = Image::filled(out_w, out_h, cfg.background);
    let mut loaded = vec![false; projected.len()];
    let mut rendered = vec![false; projected.len()];
    for outcome in &outcomes {
        stats.merge_add(&outcome.stats);
        outcome
            .patch
            .resolve_into_clipped(&mut image, cfg.background, origin_x, origin_y);
        for &idx in &outcome.loaded {
            loaded[idx as usize] = true;
        }
        for &idx in &outcome.rendered {
            rendered[idx as usize] = true;
        }
    }
    stats.unique_loaded = loaded.iter().filter(|&&b| b).count() as u64;
    stats.rendered = rendered.iter().filter(|&&b| b).count() as u64;
    // Single window: every contributor is invoked exactly once.
    stats.render_invocations = stats.rendered;

    StandardOutput {
        image,
        stats,
        projected,
        tile_gaussian_counts,
    }
}

/// The "GPU" reference render of Table 2: exact arithmetic, AABB footprint,
/// 3σ law, black background.
pub fn render_reference(gaussians: &[Gaussian3D], cam: &Camera) -> StandardOutput {
    render_standard(gaussians, cam, &StandardConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcc_math::Vec3;

    fn test_cam() -> Camera {
        Camera::look_at(
            Vec3::new(0.0, 0.0, -4.0),
            Vec3::ZERO,
            Vec3::new(0.0, 1.0, 0.0),
            60.0,
            128,
            96,
        )
    }

    fn one_gaussian() -> Vec<Gaussian3D> {
        vec![Gaussian3D::isotropic(
            Vec3::ZERO,
            0.15,
            0.95,
            Vec3::new(1.0, 0.0, 0.0),
        )]
    }

    #[test]
    fn single_gaussian_renders_red_center() {
        let cam = test_cam();
        let out = render_reference(&one_gaussian(), &cam);
        let center = out.image.get(64, 48);
        assert!(center.x > 0.8, "center {center:?}");
        assert!(center.y < 0.05);
        // Far corner stays background.
        assert_eq!(out.image.get(0, 0), Vec3::ZERO);
        assert_eq!(out.stats.projected, 1);
        assert_eq!(out.stats.rendered, 1);
    }

    #[test]
    fn occluded_gaussian_is_preprocessed_but_not_rendered() {
        let cam = test_cam();
        // Opaque front disc fully covering a farther one.
        let front = Gaussian3D::isotropic(Vec3::ZERO, 0.4, 0.999, Vec3::new(1.0, 0.0, 0.0));
        let back = Gaussian3D::isotropic(
            Vec3::new(0.0, 0.0, 1.0),
            0.05,
            0.9,
            Vec3::new(0.0, 1.0, 0.0),
        );
        // Blend enough copies of the front to guarantee termination.
        let gaussians = vec![front.clone(), front.clone(), front.clone(), front, back];
        let out = render_reference(&gaussians, &cam);
        assert_eq!(out.stats.projected, 5);
        assert!(
            out.stats.rendered < 5,
            "back Gaussian should be terminated away (rendered {})",
            out.stats.rendered
        );
        let center = out.image.get(64, 48);
        assert!(center.x > 0.9 && center.y < 0.01, "center {center:?}");
    }

    #[test]
    fn kv_pairs_count_tile_overlap() {
        let cam = test_cam();
        let out = render_reference(&one_gaussian(), &cam);
        // A 0.15-radius Gaussian at 4m with f≈83px: radius ≈ 3σ·0.15·83/4
        // ≈ 9px ⇒ ≥ 2×2 tiles once straddling a boundary; at least 1.
        assert!(out.stats.kv_pairs >= 1);
        assert_eq!(
            out.stats.kv_pairs,
            out.tile_gaussian_counts
                .iter()
                .map(|&c| u64::from(c))
                .sum::<u64>()
        );
    }

    #[test]
    fn big_gaussian_is_loaded_once_per_tile() {
        let cam = test_cam();
        let g = vec![Gaussian3D::isotropic(
            Vec3::ZERO,
            0.8,
            0.5,
            Vec3::new(0.2, 0.2, 0.9),
        )];
        let out = render_reference(&g, &cam);
        assert!(out.stats.kv_pairs > 4, "kv {}", out.stats.kv_pairs);
        assert_eq!(out.stats.tile_loads, out.stats.kv_pairs);
        assert_eq!(out.stats.unique_loaded, 1);
        assert!(out.stats.avg_loads_per_gaussian() > 4.0);
    }

    #[test]
    fn obb_footprint_tests_fewer_pixels_same_image() {
        let cam = test_cam();
        // An anisotropic diagonal Gaussian where OBB ≪ AABB.
        let g = vec![Gaussian3D::new(
            Vec3::ZERO,
            Vec3::new(0.6, 0.02, 0.02),
            gcc_math::Quat::from_axis_angle(Vec3::new(0.0, 0.0, 1.0), 0.8),
            0.9,
            {
                let mut sh = [0.0f32; 48];
                sh[0] = 1.0;
                sh
            },
        )];
        let aabb_out = render_standard(&g, &cam, &StandardConfig::default());
        let obb_out = render_standard(&g, &cam, &StandardConfig::gscore());
        assert!(
            obb_out.stats.pixels_tested < aabb_out.stats.pixels_tested,
            "OBB {} vs AABB {}",
            obb_out.stats.pixels_tested,
            aabb_out.stats.pixels_tested
        );
        // At ω = 0.9 the effective (α ≥ 1/255) ellipse slightly exceeds the
        // 3σ OBB (Fig. 4(a)), so the OBB clips a fringe whose alpha is at
        // most ω·e^{-9/2} ≈ 0.010 — images agree to that bound.
        assert!(aabb_out.image.max_abs_diff(&obb_out.image) < 0.015);
        assert!(obb_out.stats.pixels_blended <= aabb_out.stats.pixels_blended);
    }

    #[test]
    fn table1_column_ordering_holds() {
        let cam = test_cam();
        let mut gaussians = Vec::new();
        // A mix of opacities, as in real scenes.
        for i in 0..40 {
            let t = i as f32 / 40.0;
            gaussians.push(Gaussian3D::isotropic(
                Vec3::new(t * 2.0 - 1.0, (t * 7.0).sin() * 0.5, t),
                0.1 + 0.1 * t,
                (0.01f32).max(t * t),
                Vec3::new(t, 1.0 - t, 0.5),
            ));
        }
        let out = render_reference(&gaussians, &cam);
        assert!(out.stats.pixels_tested_aabb >= out.stats.pixels_tested_obb);
        assert!(out.stats.pixels_tested_obb >= out.stats.pixels_blended);
    }

    #[test]
    fn empty_scene_renders_background() {
        let cam = test_cam();
        let cfg = StandardConfig {
            background: Vec3::new(0.2, 0.3, 0.4),
            ..StandardConfig::default()
        };
        let out = render_standard(&[], &cam, &cfg);
        assert_eq!(out.image.get(10, 10), Vec3::new(0.2, 0.3, 0.4));
        assert_eq!(out.stats.projected, 0);
    }

    #[test]
    fn unused_fraction_definition() {
        let s = FrameStats {
            projected: 10,
            rendered: 4,
            ..FrameStats::default()
        };
        assert!((s.unused_fraction() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn parallel_tiles_reproduce_sequential_render_exactly() {
        let cam = test_cam();
        let mut gaussians = Vec::new();
        for i in 0..250 {
            let t = i as f32 / 250.0;
            gaussians.push(Gaussian3D::isotropic(
                Vec3::new((t * 19.0).sin(), (t * 13.0).cos() * 0.6, t * 2.0 - 0.3),
                0.05 + 0.1 * t,
                0.05f32.max(t),
                Vec3::new(t, 1.0 - t, 0.4),
            ));
        }
        let seq = render_standard(&gaussians, &cam, &StandardConfig::default());
        for threads in [2, 4, 7] {
            let par = render_standard_with(
                &gaussians,
                &cam,
                &StandardConfig::default(),
                Parallelism::fixed(threads),
            );
            assert_eq!(seq.image, par.image, "threads={threads}");
            assert_eq!(seq.stats, par.stats, "threads={threads}");
        }
    }
}
