//! The standard (decoupled, tile-wise) 3DGS dataflow — the pipeline used by
//! the GPU implementation and by all prior accelerators including GSCore
//! (paper §2.2, Fig. 1 top).
//!
//! Two sequential stages:
//!
//! 1. **Preprocess**: every Gaussian is frustum-culled, projected (Eq. 1)
//!    and SH-colored (Eq. 2) — regardless of whether rendering will use it.
//! 2. **Render**: projected Gaussians are binned to 16×16 tiles by their
//!    footprint, each tile's list is depth-sorted, and pixels are blended
//!    front-to-back with early termination. A Gaussian overlapping `k`
//!    tiles is loaded `k` times (the Fig. 2(b) redundancy).
//!
//! The renderer is instrumented to produce every statistic the paper's
//! motivation section and evaluation need (Fig. 2, Table 1, Fig. 11/12
//! traffic inputs).

use gcc_core::alpha::{gaussian_alpha, ExpMode, PixelState};
use gcc_core::bounds::{BoundingLaw, Obb, PixelRect};
use gcc_core::projection::{map_color, project_gaussian};
use gcc_core::{Camera, Gaussian3D, ProjectedGaussian};
use gcc_math::Vec3;
use serde::{Deserialize, Serialize};

use crate::Image;

/// Which footprint limits per-pixel alpha evaluation inside a tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Footprint {
    /// Axis-aligned bounding box (the GPU rasterizer).
    Aabb,
    /// Oriented bounding box (GSCore's tightened footprint).
    Obb,
}

/// Configuration of the standard pipeline.
#[derive(Debug, Clone)]
pub struct StandardConfig {
    /// Tile edge in pixels (16 in the paper).
    pub tile_size: u32,
    /// Bounding law for binning and culling (3σ for GPU/GSCore).
    pub law: BoundingLaw,
    /// Per-pixel footprint test.
    pub footprint: Footprint,
    /// Exponential datapath.
    pub exp: ExpMode,
    /// Background color composited behind the splats.
    pub background: Vec3,
}

impl Default for StandardConfig {
    fn default() -> Self {
        Self {
            tile_size: 16,
            law: BoundingLaw::ThreeSigma,
            footprint: Footprint::Aabb,
            exp: ExpMode::Exact,
            background: Vec3::ZERO,
        }
    }
}

impl StandardConfig {
    /// GSCore's configuration: OBB footprint, otherwise the standard
    /// two-stage pipeline.
    pub fn gscore() -> Self {
        Self {
            footprint: Footprint::Obb,
            ..Self::default()
        }
    }
}

/// Workload statistics of one standard-dataflow frame.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StandardStats {
    /// Gaussians in the scene.
    pub total_gaussians: u64,
    /// Gaussians surviving frustum cull + projection ("In Frustum" /
    /// "preprocessed" in Fig. 2(a)).
    pub preprocessed: u64,
    /// Gaussians that contributed at least one blended pixel
    /// ("Rendered" in Fig. 2(a)).
    pub rendered: u64,
    /// Gaussian-tile key-value pairs created at binning.
    pub kv_pairs: u64,
    /// Gaussian loads during rendering (pairs actually processed before
    /// their tile terminated) — the numerator of Fig. 2(b).
    pub tile_loads: u64,
    /// Unique Gaussians processed during rendering — the denominator of
    /// Fig. 2(b).
    pub unique_loaded: u64,
    /// Alpha evaluations the configured footprint performed.
    pub pixels_tested: u64,
    /// Alpha evaluations an AABB footprint would perform on the same
    /// workload (Table 1 "AABB").
    pub pixels_tested_aabb: u64,
    /// Alpha evaluations an OBB footprint would perform (Table 1 "OBB").
    pub pixels_tested_obb: u64,
    /// Pixel blends actually applied (alpha ≥ 1/255, pixel not terminated;
    /// Table 1 "Rendered").
    pub pixels_blended: u64,
    /// Total elements across per-tile sort lists (sorting workload).
    pub sort_elements: u64,
    /// Number of image tiles.
    pub tiles: u64,
}

impl StandardStats {
    /// Average tile loads per unique Gaussian (Fig. 2(b)).
    pub fn avg_loads_per_gaussian(&self) -> f64 {
        if self.unique_loaded == 0 {
            0.0
        } else {
            self.tile_loads as f64 / self.unique_loaded as f64
        }
    }

    /// Fraction of preprocessed Gaussians never used by rendering
    /// (the paper's ">60% unused" motivation).
    pub fn unused_fraction(&self) -> f64 {
        if self.preprocessed == 0 {
            0.0
        } else {
            1.0 - self.rendered as f64 / self.preprocessed as f64
        }
    }
}

/// Output of a standard-dataflow render.
#[derive(Debug, Clone)]
pub struct StandardOutput {
    /// The rendered frame.
    pub image: Image,
    /// Workload statistics.
    pub stats: StandardStats,
    /// Projected Gaussians in scene order (preprocessing output, useful
    /// for downstream analysis).
    pub projected: Vec<ProjectedGaussian>,
    /// Gaussians per tile (row-major tile grid), for sort-cost models.
    pub tile_gaussian_counts: Vec<u32>,
}

/// Renders a frame with the standard two-stage tile-wise dataflow.
pub fn render_standard(
    gaussians: &[Gaussian3D],
    cam: &Camera,
    cfg: &StandardConfig,
) -> StandardOutput {
    let (w, h) = (cam.width, cam.height);
    let ts = cfg.tile_size;
    let tiles_x = w.div_ceil(ts);
    let tiles_y = h.div_ceil(ts);
    let n_tiles = (tiles_x * tiles_y) as usize;

    let mut stats = StandardStats {
        total_gaussians: gaussians.len() as u64,
        tiles: n_tiles as u64,
        ..StandardStats::default()
    };

    // ---- Stage 1: preprocess everything (the paper's Challenge 1). ----
    let mut projected: Vec<ProjectedGaussian> = Vec::new();
    for (i, g) in gaussians.iter().enumerate() {
        if let Some(mut p) = project_gaussian(g, i as u32, cam, cfg.law) {
            map_color(&mut p, g, cam);
            projected.push(p);
        }
    }
    stats.preprocessed = projected.len() as u64;

    // Precompute OBBs once per projected Gaussian (used for footprint
    // and/or the Table 1 OBB column).
    let obbs: Vec<Option<Obb>> = projected
        .iter()
        .map(|p| Obb::from_cov(p.mean2d, p.cov2d, cfg.law, p.opacity))
        .collect();

    // ---- Binning: Gaussian → tile key-value pairs. ----
    let mut bins: Vec<Vec<u32>> = vec![Vec::new(); n_tiles];
    for (idx, p) in projected.iter().enumerate() {
        let rect = PixelRect::from_circle(p.mean2d, p.radius, w, h);
        if rect.is_empty() {
            continue;
        }
        let (tx0, ty0, tx1, ty1) = rect.tile_range(ts);
        for ty in ty0..ty1 {
            for tx in tx0..tx1 {
                bins[(ty * tiles_x + tx) as usize].push(idx as u32);
                stats.kv_pairs += 1;
            }
        }
    }
    let tile_gaussian_counts: Vec<u32> = bins.iter().map(|b| b.len() as u32).collect();

    // ---- Stage 2: tile-wise rendering in scanline order. ----
    let mut states = vec![PixelState::new(); (w * h) as usize];
    let mut loaded = vec![false; projected.len()];
    let mut rendered = vec![false; projected.len()];

    for (t, bin) in bins.iter_mut().enumerate() {
        if bin.is_empty() {
            continue;
        }
        stats.sort_elements += bin.len() as u64;
        bin.sort_by(|&a, &b| projected[a as usize].depth.total_cmp(&projected[b as usize].depth));

        let tx = (t as u32) % tiles_x;
        let ty = (t as u32) / tiles_x;
        let x0 = (tx * ts) as i32;
        let y0 = (ty * ts) as i32;
        let x1 = ((tx + 1) * ts).min(w) as i32;
        let y1 = ((ty + 1) * ts).min(h) as i32;

        let mut active = ((x1 - x0) * (y1 - y0)) as i64;
        for &idx in bin.iter() {
            if active <= 0 {
                // Tile fully terminated: the remaining KV pairs are never
                // loaded (GSCore's per-tile early termination).
                break;
            }
            let p = &projected[idx as usize];
            stats.tile_loads += 1;
            loaded[idx as usize] = true;

            let rect = PixelRect::from_circle(p.mean2d, p.radius, w, h);
            let rx0 = rect.x0.max(x0);
            let ry0 = rect.y0.max(y0);
            let rx1 = rect.x1.min(x1);
            let ry1 = rect.y1.min(y1);
            if rx0 >= rx1 || ry0 >= ry1 {
                continue;
            }
            let obb = obbs[idx as usize];
            for y in ry0..ry1 {
                for x in rx0..rx1 {
                    stats.pixels_tested_aabb += 1;
                    let in_obb = obb.map(|o| o.contains(x, y)).unwrap_or(false);
                    if in_obb {
                        stats.pixels_tested_obb += 1;
                    }
                    let evaluate = match cfg.footprint {
                        Footprint::Aabb => true,
                        Footprint::Obb => in_obb,
                    };
                    if !evaluate {
                        continue;
                    }
                    stats.pixels_tested += 1;
                    let st = &mut states[(y as u32 * w + x as u32) as usize];
                    if st.terminated() {
                        continue;
                    }
                    let a = gaussian_alpha(p, x, y, &cfg.exp);
                    if a > 0.0 {
                        st.blend(a, p.color);
                        stats.pixels_blended += 1;
                        rendered[idx as usize] = true;
                        if st.terminated() {
                            active -= 1;
                        }
                    }
                }
            }
        }
    }

    stats.unique_loaded = loaded.iter().filter(|&&b| b).count() as u64;
    stats.rendered = rendered.iter().filter(|&&b| b).count() as u64;

    let mut image = Image::new(w, h);
    for y in 0..h {
        for x in 0..w {
            image.set(x, y, states[(y * w + x) as usize].resolve(cfg.background));
        }
    }

    StandardOutput {
        image,
        stats,
        projected,
        tile_gaussian_counts,
    }
}

/// The "GPU" reference render of Table 2: exact arithmetic, AABB footprint,
/// 3σ law, black background.
pub fn render_reference(gaussians: &[Gaussian3D], cam: &Camera) -> StandardOutput {
    render_standard(gaussians, cam, &StandardConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcc_math::Vec3;

    fn test_cam() -> Camera {
        Camera::look_at(
            Vec3::new(0.0, 0.0, -4.0),
            Vec3::ZERO,
            Vec3::new(0.0, 1.0, 0.0),
            60.0,
            128,
            96,
        )
    }

    fn one_gaussian() -> Vec<Gaussian3D> {
        vec![Gaussian3D::isotropic(
            Vec3::ZERO,
            0.15,
            0.95,
            Vec3::new(1.0, 0.0, 0.0),
        )]
    }

    #[test]
    fn single_gaussian_renders_red_center() {
        let cam = test_cam();
        let out = render_reference(&one_gaussian(), &cam);
        let center = out.image.get(64, 48);
        assert!(center.x > 0.8, "center {center:?}");
        assert!(center.y < 0.05);
        // Far corner stays background.
        assert_eq!(out.image.get(0, 0), Vec3::ZERO);
        assert_eq!(out.stats.preprocessed, 1);
        assert_eq!(out.stats.rendered, 1);
    }

    #[test]
    fn occluded_gaussian_is_preprocessed_but_not_rendered() {
        let cam = test_cam();
        // Opaque front disc fully covering a farther one.
        let front = Gaussian3D::isotropic(Vec3::ZERO, 0.4, 0.999, Vec3::new(1.0, 0.0, 0.0));
        let back = Gaussian3D::isotropic(
            Vec3::new(0.0, 0.0, 1.0),
            0.05,
            0.9,
            Vec3::new(0.0, 1.0, 0.0),
        );
        // Blend enough copies of the front to guarantee termination.
        let gaussians = vec![front.clone(), front.clone(), front.clone(), front, back];
        let out = render_reference(&gaussians, &cam);
        assert_eq!(out.stats.preprocessed, 5);
        assert!(
            out.stats.rendered < 5,
            "back Gaussian should be terminated away (rendered {})",
            out.stats.rendered
        );
        let center = out.image.get(64, 48);
        assert!(center.x > 0.9 && center.y < 0.01, "center {center:?}");
    }

    #[test]
    fn kv_pairs_count_tile_overlap() {
        let cam = test_cam();
        let out = render_reference(&one_gaussian(), &cam);
        // A 0.15-radius Gaussian at 4m with f≈83px: radius ≈ 3σ·0.15·83/4
        // ≈ 9px ⇒ ≥ 2×2 tiles once straddling a boundary; at least 1.
        assert!(out.stats.kv_pairs >= 1);
        assert_eq!(
            out.stats.kv_pairs,
            out.tile_gaussian_counts.iter().map(|&c| u64::from(c)).sum::<u64>()
        );
    }

    #[test]
    fn big_gaussian_is_loaded_once_per_tile() {
        let cam = test_cam();
        let g = vec![Gaussian3D::isotropic(
            Vec3::ZERO,
            0.8,
            0.5,
            Vec3::new(0.2, 0.2, 0.9),
        )];
        let out = render_reference(&g, &cam);
        assert!(out.stats.kv_pairs > 4, "kv {}", out.stats.kv_pairs);
        assert_eq!(out.stats.tile_loads, out.stats.kv_pairs);
        assert_eq!(out.stats.unique_loaded, 1);
        assert!(out.stats.avg_loads_per_gaussian() > 4.0);
    }

    #[test]
    fn obb_footprint_tests_fewer_pixels_same_image() {
        let cam = test_cam();
        // An anisotropic diagonal Gaussian where OBB ≪ AABB.
        let g = vec![Gaussian3D::new(
            Vec3::ZERO,
            Vec3::new(0.6, 0.02, 0.02),
            gcc_math::Quat::from_axis_angle(Vec3::new(0.0, 0.0, 1.0), 0.8),
            0.9,
            {
                let mut sh = [0.0f32; 48];
                sh[0] = 1.0;
                sh
            },
        )];
        let aabb_out = render_standard(&g, &cam, &StandardConfig::default());
        let obb_out = render_standard(&g, &cam, &StandardConfig::gscore());
        assert!(
            obb_out.stats.pixels_tested < aabb_out.stats.pixels_tested,
            "OBB {} vs AABB {}",
            obb_out.stats.pixels_tested,
            aabb_out.stats.pixels_tested
        );
        // At ω = 0.9 the effective (α ≥ 1/255) ellipse slightly exceeds the
        // 3σ OBB (Fig. 4(a)), so the OBB clips a fringe whose alpha is at
        // most ω·e^{-9/2} ≈ 0.010 — images agree to that bound.
        assert!(aabb_out.image.max_abs_diff(&obb_out.image) < 0.015);
        assert!(obb_out.stats.pixels_blended <= aabb_out.stats.pixels_blended);
    }

    #[test]
    fn table1_column_ordering_holds() {
        let cam = test_cam();
        let mut gaussians = Vec::new();
        // A mix of opacities, as in real scenes.
        for i in 0..40 {
            let t = i as f32 / 40.0;
            gaussians.push(Gaussian3D::isotropic(
                Vec3::new(t * 2.0 - 1.0, (t * 7.0).sin() * 0.5, t),
                0.1 + 0.1 * t,
                (0.01f32).max(t * t),
                Vec3::new(t, 1.0 - t, 0.5),
            ));
        }
        let out = render_reference(&gaussians, &cam);
        assert!(out.stats.pixels_tested_aabb >= out.stats.pixels_tested_obb);
        assert!(out.stats.pixels_tested_obb >= out.stats.pixels_blended);
    }

    #[test]
    fn empty_scene_renders_background() {
        let cam = test_cam();
        let cfg = StandardConfig {
            background: Vec3::new(0.2, 0.3, 0.4),
            ..StandardConfig::default()
        };
        let out = render_standard(&[], &cam, &cfg);
        assert_eq!(out.image.get(10, 10), Vec3::new(0.2, 0.3, 0.4));
        assert_eq!(out.stats.preprocessed, 0);
    }

    #[test]
    fn unused_fraction_definition() {
        let s = StandardStats {
            preprocessed: 10,
            rendered: 4,
            ..StandardStats::default()
        };
        assert!((s.unused_fraction() - 0.6).abs() < 1e-12);
    }
}
