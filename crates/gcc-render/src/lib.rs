//! Software renderers for both 3DGS dataflows of the GCC paper, unified
//! behind the stage-based frame pipeline, plus image-quality metrics.
//!
//! The crate is layered:
//!
//! * [`pipeline`] — the architecture seam: the [`pipeline::Renderer`]
//!   trait (one frame → [`Image`] + unified [`pipeline::FrameStats`]),
//!   the shared stage primitives ([`pipeline::stages`]: cull, project,
//!   SH, depth sort, window partitioning, pixel patches), and the
//!   parallel frame engine that renders tiles / Cmode sub-views across
//!   threads with bit-for-bit deterministic merges.
//! * [`standard`] — the conventional decoupled "preprocess-then-render"
//!   schedule with tile-wise (16×16) rendering, as used by the GPU
//!   reference and GSCore. Fully instrumented: it reports the
//!   projected/rendered Gaussian counts of Fig. 2(a), the per-Gaussian
//!   tile-load multiplicity of Fig. 2(b), and the AABB/OBB/effective
//!   pixel-work numbers of Table 1.
//! * [`gaussian_wise`] — the GCC schedule: Stage I depth grouping,
//!   interleaved (cross-stage conditional) preprocessing and rendering,
//!   ω-σ culling, per-group sorting, Algorithm 1 block traversal with
//!   T-mask, and Compatibility-Mode sub-view partitioning (Fig. 6).
//! * the "GPU reference" — [`standard::render_reference`], the exact
//!   arithmetic configuration used as the quality anchor of Table 2.
//!
//! [`quality`] provides PSNR / SSIM, the perceptual-distance proxy standing
//! in for LPIPS, and the pseudo-ground-truth anchoring described in
//! `DESIGN.md` §1.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gaussian_wise;
mod image;
pub mod pipeline;
pub mod quality;
pub mod standard;
pub mod upscale;

pub use image::Image;
pub use pipeline::{
    Frame, FrameStats, GaussianWiseRenderer, JobError, RenderJob, RenderOptions, Renderer, Roi,
    Schedule, StandardRenderer,
};
