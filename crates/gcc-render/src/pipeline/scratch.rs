//! Reusable per-frame working memory for the hot path.
//!
//! A frame render needs several transient buffers — depth keys, the radix
//! ping-pong arrays, footprint rectangles, CSR tile bins, Stage I depths.
//! Allocating them per frame is pure overhead in batch workloads (a
//! trajectory render re-creates them hundreds of times), so they live in
//! one [`FrameScratch`] that callers thread through
//! [`crate::pipeline::Renderer::render_frame_reusing`]. The trajectory
//! runner keeps one scratch per worker thread.
//!
//! A scratch is *pure capacity*: every buffer is rebuilt from scratch each
//! frame, so render output never depends on what a previous frame left
//! behind — reusing a scratch is bit-identical to using a fresh one
//! (tests pin this).

use gcc_core::bounds::PixelRect;

use super::stages::TileBins;

/// Reusable working memory for one frame render. See the module docs.
#[derive(Debug, Clone, Default)]
pub struct FrameScratch {
    /// Monotone depth keys of the projected survivors.
    pub(crate) keys: Vec<u32>,
    /// Global front-to-back survivor order.
    pub(crate) order: Vec<u32>,
    /// Radix-sort ping-pong buffer.
    pub(crate) radix: Vec<u32>,
    /// Screen-clipped AABB footprints, scene order.
    pub(crate) rects: Vec<PixelRect>,
    /// CSR tile bins.
    pub(crate) bins: TileBins,
    /// Stage I view depths (Gaussian-wise schedule).
    pub(crate) depths: Vec<f32>,
}

impl FrameScratch {
    /// Empty scratch; buffers grow to steady-state capacity on the first
    /// frame and are reused afterwards.
    pub fn new() -> Self {
        Self::default()
    }
}
