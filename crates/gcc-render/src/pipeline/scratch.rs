//! Reusable per-frame working memory for the hot path.
//!
//! A frame render needs several transient buffers — depth keys, the radix
//! ping-pong arrays, footprint rectangles, CSR tile bins, Stage I depths.
//! Allocating them per frame is pure overhead in batch workloads (a
//! trajectory render re-creates them hundreds of times), so they live in
//! one [`FrameScratch`] that callers thread through
//! [`crate::pipeline::Renderer::render_frame_reusing`]. The trajectory
//! runner keeps one scratch per worker thread.
//!
//! A scratch is *pure capacity*: every buffer is rebuilt from scratch each
//! frame, so render output never depends on what a previous frame left
//! behind — reusing a scratch is bit-identical to using a fresh one
//! (tests pin this).

use gcc_core::bounds::PixelRect;
use gcc_core::{Camera, Gaussian3D, ProjectedGaussian};

use super::stages::TileBins;

/// Struct-of-arrays view of the post-cull survivors: the per-survivor
/// fields the vectorized stages stream over, packed into contiguous
/// parallel `f32` arrays so the SIMD kernels ([`gcc_core::dispatch`])
/// consume flat slices instead of strided [`ProjectedGaussian`] records.
///
/// Index `i` in every array refers to survivor `i` of the packed
/// projection list. SH coefficients are deliberately *not* packed here:
/// the kernels gather them in place from the source records by survivor
/// id (see [`gcc_core::dispatch::ShColorsFn`]) — copying 48 floats per
/// survivor per frame costs more than the evaluation saves.
#[derive(Debug, Clone, Default)]
pub(crate) struct SurvivorSoa {
    /// View-space depths (depth-key generation).
    pub(crate) depth: Vec<f32>,
    /// View-direction x components (SH evaluation).
    pub(crate) dir_x: Vec<f32>,
    /// View-direction y components (SH evaluation).
    pub(crate) dir_y: Vec<f32>,
    /// View-direction z components (SH evaluation).
    pub(crate) dir_z: Vec<f32>,
    /// Projected center x in pixels (footprint rects).
    pub(crate) mean_x: Vec<f32>,
    /// Projected center y in pixels (footprint rects).
    pub(crate) mean_y: Vec<f32>,
    /// Bounding radii in pixels (footprint rects).
    pub(crate) radius: Vec<f32>,
}

impl SurvivorSoa {
    /// Number of packed survivors.
    pub(crate) fn len(&self) -> usize {
        self.depth.len()
    }

    /// Rebuilds every array from the packed survivor list: depths, means
    /// and radii are copied out of the projection records, and the
    /// per-survivor view directions are computed once here (shared by
    /// every SH backend, so direction arithmetic can never diverge
    /// between scalar and SIMD).
    pub(crate) fn pack(
        &mut self,
        projected: &[ProjectedGaussian],
        gaussians: &[Gaussian3D],
        cam: &Camera,
    ) {
        let n = projected.len();
        self.depth.clear();
        self.mean_x.clear();
        self.mean_y.clear();
        self.radius.clear();
        self.dir_x.clear();
        self.dir_y.clear();
        self.dir_z.clear();
        self.depth.reserve(n);
        self.mean_x.reserve(n);
        self.mean_y.reserve(n);
        self.radius.reserve(n);
        self.dir_x.reserve(n);
        self.dir_y.reserve(n);
        self.dir_z.reserve(n);
        for p in projected {
            let g = &gaussians[p.id as usize];
            self.depth.push(p.depth);
            self.mean_x.push(p.mean2d.x);
            self.mean_y.push(p.mean2d.y);
            self.radius.push(p.radius);
            let dir = cam.view_dir(g.mean);
            self.dir_x.push(dir.x);
            self.dir_y.push(dir.y);
            self.dir_z.push(dir.z);
        }
    }
}

/// Reusable working memory for one frame render. See the module docs.
#[derive(Debug, Clone, Default)]
pub struct FrameScratch {
    /// Monotone depth keys of the projected survivors.
    pub(crate) keys: Vec<u32>,
    /// Global front-to-back survivor order.
    pub(crate) order: Vec<u32>,
    /// Radix-sort ping-pong buffer.
    pub(crate) radix: Vec<u32>,
    /// Screen-clipped AABB footprints, scene order.
    pub(crate) rects: Vec<PixelRect>,
    /// CSR tile bins.
    pub(crate) bins: TileBins,
    /// Stage I view depths (Gaussian-wise schedule).
    pub(crate) depths: Vec<f32>,
    /// SoA survivor fields streamed by the vectorized stages.
    pub(crate) soa: SurvivorSoa,
}

impl FrameScratch {
    /// Empty scratch; buffers grow to steady-state capacity on the first
    /// frame and are reused afterwards.
    pub fn new() -> Self {
        Self::default()
    }
}
