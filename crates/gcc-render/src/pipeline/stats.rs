//! The unified per-frame workload statistics every renderer reports.
//!
//! `FrameStats` is one flat struct covering both schedules: a **common
//! core** every schedule fills (loads, projections, SH fetches, blends,
//! sort workload) plus **schedule sections** whose counters are zero when
//! the schedule doesn't produce them (tile KV pairs for the tile-wise
//! path, depth-group and block-traversal counters for the Gaussian-wise
//! path). Simulators and scaling laws consume this one type; a renderer
//! added later (e.g. a GSCore-style hierarchical tile schedule) plugs into
//! `gcc-sim` by filling the sections its cost model reads.
//!
//! All counters are additive across disjoint work units (tiles, windows,
//! frames), which is what lets the parallel engine merge per-worker
//! partials with [`FrameStats::merge_add`] and reproduce single-threaded
//! counts exactly.

/// Unified workload statistics of one rendered frame (or, summed, of a
/// trajectory of frames).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrameStats {
    // ---- Common core (every schedule) ----
    /// Gaussians in the scene.
    pub total_gaussians: u64,
    /// Gaussian geometry records streamed from memory. The standard
    /// schedule reads every record once in preprocessing; the
    /// Gaussian-wise schedule loads conditionally (Cmode duplicates
    /// counted).
    pub geometry_loads: u64,
    /// Gaussians surviving cull + projection (the standard schedule's
    /// "preprocessed" count, the Gaussian-wise SCU survivors).
    pub projected: u64,
    /// SH color records streamed from memory (standard: one per projected
    /// Gaussian, up front; Gaussian-wise: conditional, post-boundary).
    pub sh_loads: u64,
    /// Unique Gaussians that contributed at least one blended pixel.
    pub rendered: u64,
    /// Per-work-unit contributing Gaussians: equals [`Self::rendered`] for
    /// single-window schedules, counts sub-view duplicates under Cmode
    /// (Fig. 6 "Rendering Invocations").
    pub render_invocations: u64,
    /// Blends actually applied (alpha ≥ 1/255 on a live pixel).
    pub pixels_blended: u64,
    /// Total elements through depth sorting (per-tile lists or per-group
    /// sorts).
    pub sort_elements: u64,
    /// Rendering windows: 1 for full-frame schedules, the sub-view count
    /// under Compatibility Mode.
    pub windows: u64,

    // ---- Tile-wise schedule section ----
    /// Image tiles in the tile grid.
    pub tiles: u64,
    /// Gaussian-tile key-value pairs created at binning.
    pub kv_pairs: u64,
    /// Gaussian loads during tile rendering (pairs processed before their
    /// tile terminated) — the numerator of Fig. 2(b).
    pub tile_loads: u64,
    /// Unique Gaussians loaded by at least one tile — the denominator of
    /// Fig. 2(b).
    pub unique_loaded: u64,
    /// Alpha evaluations the configured footprint performed.
    pub pixels_tested: u64,
    /// Alpha evaluations an AABB footprint would perform on the same
    /// workload (Table 1 "AABB").
    pub pixels_tested_aabb: u64,
    /// Alpha evaluations an OBB footprint would perform (Table 1 "OBB").
    pub pixels_tested_obb: u64,

    // ---- Gaussian-wise schedule section ----
    /// Stage I near-plane culls.
    pub near_culled: u64,
    /// Depth groups in the global structure.
    pub groups_total: u64,
    /// (window, group) units entered.
    pub groups_processed: u64,
    /// (window, group) units skipped by cross-stage termination.
    pub groups_skipped: u64,
    /// Pixel blocks dispatched to the alpha PE array.
    pub blocks_dispatched: u64,
    /// Dispatch skips due to the transmittance mask.
    pub blocks_masked_skips: u64,
    /// Alpha-lane evaluations dispatched to the PE array (all in-bounds
    /// lanes of dispatched blocks — the *throughput* cost).
    pub pixels_evaluated: u64,
    /// Alpha evaluations on live (non-terminated) lanes — the *energy*
    /// cost after S-map/T-mask clock gating.
    pub alpha_lane_evals: u64,
}

impl FrameStats {
    /// Average tile loads per unique Gaussian (Fig. 2(b)); zero for
    /// schedules without tile re-loads.
    pub fn avg_loads_per_gaussian(&self) -> f64 {
        if self.unique_loaded == 0 {
            0.0
        } else {
            self.tile_loads as f64 / self.unique_loaded as f64
        }
    }

    /// Fraction of projected Gaussians never used by rendering (the
    /// paper's ">60% unused" motivation).
    pub fn unused_fraction(&self) -> f64 {
        if self.projected == 0 {
            0.0
        } else {
            1.0 - self.rendered as f64 / self.projected as f64
        }
    }

    /// Geometry records loaded per scene Gaussian: the preprocessing
    /// reduction delivered by conditional processing (1.0 means every
    /// record streamed once).
    pub fn geometry_load_fraction(&self) -> f64 {
        if self.total_gaussians == 0 {
            0.0
        } else {
            self.geometry_loads as f64 / self.total_gaussians as f64
        }
    }

    /// Adds every counter of `other` into `self`.
    ///
    /// This is the parallel engine's merge: additive over disjoint work
    /// units and associative, so any merge tree over per-worker partials
    /// reproduces the sequential counts bit-for-bit. Frame-global fields
    /// (`total_gaussians`, `tiles`, `groups_total`, `windows`, …) must be
    /// set exactly once — conventionally in the frame-level base stats,
    /// with worker partials leaving them zero.
    pub fn merge_add(&mut self, other: &FrameStats) {
        let Self {
            total_gaussians,
            geometry_loads,
            projected,
            sh_loads,
            rendered,
            render_invocations,
            pixels_blended,
            sort_elements,
            windows,
            tiles,
            kv_pairs,
            tile_loads,
            unique_loaded,
            pixels_tested,
            pixels_tested_aabb,
            pixels_tested_obb,
            near_culled,
            groups_total,
            groups_processed,
            groups_skipped,
            blocks_dispatched,
            blocks_masked_skips,
            pixels_evaluated,
            alpha_lane_evals,
        } = other;
        self.total_gaussians += total_gaussians;
        self.geometry_loads += geometry_loads;
        self.projected += projected;
        self.sh_loads += sh_loads;
        self.rendered += rendered;
        self.render_invocations += render_invocations;
        self.pixels_blended += pixels_blended;
        self.sort_elements += sort_elements;
        self.windows += windows;
        self.tiles += tiles;
        self.kv_pairs += kv_pairs;
        self.tile_loads += tile_loads;
        self.unique_loaded += unique_loaded;
        self.pixels_tested += pixels_tested;
        self.pixels_tested_aabb += pixels_tested_aabb;
        self.pixels_tested_obb += pixels_tested_obb;
        self.near_culled += near_culled;
        self.groups_total += groups_total;
        self.groups_processed += groups_processed;
        self.groups_skipped += groups_skipped;
        self.blocks_dispatched += blocks_dispatched;
        self.blocks_masked_skips += blocks_masked_skips;
        self.pixels_evaluated += pixels_evaluated;
        self.alpha_lane_evals += alpha_lane_evals;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unused_fraction_definition() {
        let s = FrameStats {
            projected: 10,
            rendered: 4,
            ..FrameStats::default()
        };
        assert!((s.unused_fraction() - 0.6).abs() < 1e-12);
        assert_eq!(FrameStats::default().unused_fraction(), 0.0);
    }

    #[test]
    fn loads_per_gaussian_definition() {
        let s = FrameStats {
            tile_loads: 12,
            unique_loaded: 4,
            ..FrameStats::default()
        };
        assert!((s.avg_loads_per_gaussian() - 3.0).abs() < 1e-12);
        assert_eq!(FrameStats::default().avg_loads_per_gaussian(), 0.0);
    }

    #[test]
    fn geometry_load_fraction_definition() {
        let s = FrameStats {
            total_gaussians: 100,
            geometry_loads: 37,
            ..FrameStats::default()
        };
        assert!((s.geometry_load_fraction() - 0.37).abs() < 1e-12);
    }

    #[test]
    fn merge_add_is_associative_fieldwise() {
        let mk = |k: u64| FrameStats {
            total_gaussians: k,
            geometry_loads: 2 * k,
            projected: 3 * k,
            sh_loads: 4 * k,
            rendered: 5 * k,
            render_invocations: 6 * k,
            pixels_blended: 7 * k,
            sort_elements: 8 * k,
            windows: k,
            tiles: k,
            kv_pairs: 9 * k,
            tile_loads: 10 * k,
            unique_loaded: 11 * k,
            pixels_tested: 12 * k,
            pixels_tested_aabb: 13 * k,
            pixels_tested_obb: 14 * k,
            near_culled: 15 * k,
            groups_total: 16 * k,
            groups_processed: 17 * k,
            groups_skipped: 18 * k,
            blocks_dispatched: 19 * k,
            blocks_masked_skips: 20 * k,
            pixels_evaluated: 21 * k,
            alpha_lane_evals: 22 * k,
        };
        let mut left = mk(1);
        left.merge_add(&mk(2));
        left.merge_add(&mk(4));
        let mut right = mk(2);
        right.merge_add(&mk(4));
        let mut right_total = mk(1);
        right_total.merge_add(&right);
        assert_eq!(left, right_total);
        assert_eq!(left, mk(7));
    }
}
