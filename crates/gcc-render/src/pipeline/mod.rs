//! The stage-based frame pipeline: one [`Renderer`] interface over both
//! dataflows, shared stage primitives, and the parallel frame engine.
//!
//! The GCC paper's two dataflows — the decoupled tile-wise pipeline and
//! the Gaussian-wise cross-stage-conditional pipeline — are two *schedules*
//! over the same per-Gaussian stages (cull → project → SH → sort → blend).
//! This module is the seam that makes that literal in code:
//!
//! * [`stages`] holds the stage functions both schedules call,
//! * [`FrameStats`] is the unified workload-statistics view every
//!   schedule reports and `gcc-sim` consumes,
//! * [`Renderer`] is the one-frame interface (`Gaussians + Camera →`
//!   [`Frame`]) the simulators, the trajectory runner and the benches
//!   drive,
//! * [`StandardRenderer`] and [`GaussianWiseRenderer`] wrap the two
//!   schedules with a [`Parallelism`] knob: the engine parallelizes
//!   *inside* a frame (tiles for the standard path, Cmode sub-views for
//!   the Gaussian-wise path) with per-worker stats merged associatively,
//!   so multi-threaded renders reproduce single-threaded images and
//!   counters bit-for-bit.
//!
//! A third schedule (e.g. GSCore's hierarchical tile sorting) becomes a
//! new `Renderer` implementation over the same stages — no new stats
//! plumbing, no simulator changes.
//!
//! Since the request-model redesign, the primary entry point is
//! [`Renderer::render_job`]: a [`RenderJob`] carries the cloud, a resolved
//! [`Camera`], and per-request [`RenderOptions`] (schedule selection via
//! [`Schedule`], region-of-interest [`Roi`], background and quality
//! knobs). `render_frame` / `render_frame_reusing` are thin shims over a
//! default-options job.

mod job;
mod scratch;
pub mod stages;
mod stats;

pub use gcc_parallel::Parallelism;
pub(crate) use job::crop_image;
pub use job::{JobError, RenderJob, RenderOptions, Roi, Schedule};
pub use scratch::FrameScratch;
pub use stats::FrameStats;

use gcc_core::{Camera, Gaussian3D};

use crate::gaussian_wise::{render_gaussian_wise_job, GaussianWiseConfig};
use crate::standard::{render_standard_job, StandardConfig};
use crate::Image;

/// One rendered frame: the image plus the unified workload statistics.
#[derive(Debug, Clone)]
pub struct Frame {
    /// The rendered image.
    pub image: Image,
    /// Unified workload statistics.
    pub stats: FrameStats,
}

/// A frame renderer: any schedule of the per-Gaussian stages that turns a
/// Gaussian cloud and a camera into an image plus [`FrameStats`].
///
/// Implementations must be `Sync`: the trajectory runner renders frame
/// batches across threads through a shared renderer reference.
pub trait Renderer: Sync {
    /// Human-readable schedule name (report rows, bench labels).
    fn name(&self) -> &str;

    /// Renders one frame.
    fn render_frame(&self, gaussians: &[Gaussian3D], cam: &Camera) -> Frame;

    /// Renders one frame reusing `scratch` for the hot-path buffers. The
    /// output is bit-identical to [`Self::render_frame`] regardless of
    /// what earlier frames left in the scratch; batch drivers keep one
    /// scratch per worker to stop reallocating per frame.
    ///
    /// The default implementation ignores the scratch, so renderers that
    /// carry no reusable state only implement [`Self::render_frame`].
    fn render_frame_reusing(
        &self,
        gaussians: &[Gaussian3D],
        cam: &Camera,
        scratch: &mut FrameScratch,
    ) -> Frame {
        let _ = scratch;
        self.render_frame(gaussians, cam)
    }

    /// Renders one fully specified request — the primary entry point of
    /// the request-model API. A default-options job is identical to
    /// [`Self::render_frame_reusing`]; an ROI job's image is bit-identical
    /// to the crop of the full-frame render (see
    /// [`RenderOptions`]).
    ///
    /// The default implementation renders the full frame and crops the
    /// ROI; it ignores schedule-cooperative options (background override,
    /// quality knobs), which the in-tree schedules honor through their own
    /// overrides. `options.schedule` never changes which renderer runs —
    /// dispatch on it with [`Schedule::renderer`] or the serving layer.
    ///
    /// # Panics
    ///
    /// Panics when the job fails [`RenderJob::validate`] (serving-layer
    /// callers validate at submit and return typed errors instead).
    fn render_job(&self, job: &RenderJob<'_>, scratch: &mut FrameScratch) -> Frame {
        if let Err(e) = job.validate() {
            panic!("invalid render job: {e}");
        }
        let mut frame = self.render_frame_reusing(job.gaussians, job.camera, scratch);
        if let Some(roi) = &job.options.roi {
            frame.image = job::crop_image(&frame.image, roi);
        }
        frame
    }
}

/// The standard two-stage tile-wise schedule behind the [`Renderer`]
/// interface, with intra-frame tile parallelism.
#[derive(Debug, Clone)]
pub struct StandardRenderer {
    /// Schedule configuration.
    pub cfg: StandardConfig,
    /// Intra-frame parallelism (over image tiles).
    pub parallelism: Parallelism,
}

impl Default for StandardRenderer {
    /// Default configuration, sequential — consistent with [`Self::new`];
    /// opt into threads with [`Self::with_parallelism`].
    fn default() -> Self {
        Self::new(StandardConfig::default())
    }
}

impl StandardRenderer {
    /// Sequential renderer with the given configuration.
    pub fn new(cfg: StandardConfig) -> Self {
        Self {
            cfg,
            parallelism: Parallelism::Sequential,
        }
    }

    /// The GPU-reference configuration (exact arithmetic, AABB footprint).
    pub fn reference() -> Self {
        Self::new(StandardConfig::default())
    }

    /// GSCore's configuration (OBB footprint).
    pub fn gscore() -> Self {
        Self::new(StandardConfig::gscore())
    }

    /// Sets the parallelism policy.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }
}

impl Renderer for StandardRenderer {
    fn name(&self) -> &str {
        "standard"
    }

    fn render_frame(&self, gaussians: &[Gaussian3D], cam: &Camera) -> Frame {
        self.render_frame_reusing(gaussians, cam, &mut FrameScratch::new())
    }

    fn render_frame_reusing(
        &self,
        gaussians: &[Gaussian3D],
        cam: &Camera,
        scratch: &mut FrameScratch,
    ) -> Frame {
        self.render_job(&RenderJob::new(gaussians, cam), scratch)
    }

    fn render_job(&self, job: &RenderJob<'_>, scratch: &mut FrameScratch) -> Frame {
        if let Err(e) = job.validate() {
            panic!("invalid render job: {e}");
        }
        let cfg = self.cfg.with_options(&job.options);
        let out = render_standard_job(
            job.gaussians,
            job.camera,
            &cfg,
            job.options.roi,
            self.parallelism,
            scratch,
        );
        Frame {
            image: out.image,
            stats: out.stats,
        }
    }
}

/// The GCC Gaussian-wise cross-stage-conditional schedule behind the
/// [`Renderer`] interface, with intra-frame parallelism over Cmode
/// sub-views.
#[derive(Debug, Clone)]
pub struct GaussianWiseRenderer {
    /// Schedule configuration.
    pub cfg: GaussianWiseConfig,
    /// Intra-frame parallelism (over Compatibility-Mode sub-views; a
    /// full-frame render has a single window and stays sequential).
    pub parallelism: Parallelism,
}

impl Default for GaussianWiseRenderer {
    /// Default configuration, sequential — consistent with [`Self::new`];
    /// opt into threads with [`Self::with_parallelism`].
    fn default() -> Self {
        Self::new(GaussianWiseConfig::default())
    }
}

impl GaussianWiseRenderer {
    /// Sequential renderer with the given configuration.
    pub fn new(cfg: GaussianWiseConfig) -> Self {
        Self {
            cfg,
            parallelism: Parallelism::Sequential,
        }
    }

    /// The GCC hardware configuration (LUT-EXP datapath).
    pub fn gcc_hardware() -> Self {
        Self::new(GaussianWiseConfig::gcc_hardware())
    }

    /// Sets the parallelism policy.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }
}

impl Renderer for GaussianWiseRenderer {
    fn name(&self) -> &str {
        "gaussian-wise"
    }

    fn render_frame(&self, gaussians: &[Gaussian3D], cam: &Camera) -> Frame {
        self.render_frame_reusing(gaussians, cam, &mut FrameScratch::new())
    }

    fn render_frame_reusing(
        &self,
        gaussians: &[Gaussian3D],
        cam: &Camera,
        scratch: &mut FrameScratch,
    ) -> Frame {
        self.render_job(&RenderJob::new(gaussians, cam), scratch)
    }

    fn render_job(&self, job: &RenderJob<'_>, scratch: &mut FrameScratch) -> Frame {
        if let Err(e) = job.validate() {
            panic!("invalid render job: {e}");
        }
        let cfg = self.cfg.with_options(&job.options);
        let out = render_gaussian_wise_job(
            job.gaussians,
            job.camera,
            &cfg,
            job.options.roi,
            self.parallelism,
            scratch,
        );
        Frame {
            image: out.image,
            stats: out.stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcc_math::Vec3;

    fn cam() -> Camera {
        Camera::look_at(
            Vec3::new(0.0, 0.0, -4.0),
            Vec3::ZERO,
            Vec3::new(0.0, 1.0, 0.0),
            60.0,
            96,
            64,
        )
    }

    fn cloud(n: usize) -> Vec<Gaussian3D> {
        (0..n)
            .map(|i| {
                let t = i as f32 / n as f32;
                Gaussian3D::isotropic(
                    Vec3::new((t * 11.0).sin() * 0.7, (t * 6.0).cos() * 0.4, t * 1.5),
                    0.05 + 0.08 * t,
                    0.08f32.max(t),
                    Vec3::new(t, 1.0 - t, 0.6),
                )
            })
            .collect()
    }

    #[test]
    fn trait_objects_render_both_schedules() {
        let cam = cam();
        let cloud = cloud(80);
        let renderers: Vec<Box<dyn Renderer>> = vec![
            Box::new(StandardRenderer::reference()),
            Box::new(GaussianWiseRenderer::default()),
        ];
        let frames: Vec<Frame> = renderers
            .iter()
            .map(|r| r.render_frame(&cloud, &cam))
            .collect();
        assert_eq!(frames[0].image.width(), 96);
        // Both schedules agree on the scene-level core counters.
        assert_eq!(frames[0].stats.total_gaussians, 80);
        assert_eq!(frames[1].stats.total_gaussians, 80);
        // And draw the same picture.
        let mse = frames[0].image.mse(&frames[1].image);
        assert!(mse < 1e-5, "schedules diverge: MSE {mse}");
    }

    #[test]
    fn renderer_names_differ() {
        assert_ne!(
            StandardRenderer::gscore().name(),
            GaussianWiseRenderer::gcc_hardware().name()
        );
    }
}
