//! Shared per-Gaussian stage primitives.
//!
//! Both dataflows of the paper are *schedules* over the same five stages —
//! cull → project → SH → sort → blend (paper §2, Fig. 1). This module
//! holds the stage functions themselves, so `standard.rs` and
//! `gaussian_wise.rs` only decide *when* each stage runs and for *which*
//! Gaussians, never *how*:
//!
//! * [`project_one`] — frustum/near cull + EWA projection of one Gaussian
//!   (Stage II in GCC's numbering; "preprocess" step 1 in the standard
//!   pipeline),
//! * [`shade_one`] — SH color evaluation (Stage III / preprocess step 2),
//! * [`project_and_shade_all`] — the standard schedule's eager Stage 1:
//!   every Gaussian through both, order-preserving and parallelizable,
//! * [`view_depths`] — Stage I depth computation for grouping,
//! * [`sort_by_depth`] / [`sort_indices_by_depth`] — the depth-sort stage
//!   over survivors or over per-tile index lists,
//! * [`partition_windows`] — Compatibility-Mode sub-view partitioning,
//! * [`PixelPatch`] — a rectangular tile/window of blending state that a
//!   worker owns exclusively, resolved into the frame at merge time.
//!
//! Every function here is deterministic and free of interior ordering
//! choices, which is what makes the parallel engine's output bit-identical
//! to the sequential schedules.

use gcc_core::alpha::PixelState;
use gcc_core::bounds::BoundingLaw;
use gcc_core::projection::{map_color, project_gaussian};
use gcc_core::{Camera, Gaussian3D, ProjectedGaussian};
use gcc_math::Vec3;
use gcc_parallel::{par_filter_map_chunked, par_map_chunked};

use crate::Image;

/// Cull + project stage for one Gaussian: `None` when the Gaussian fails
/// the near-plane or frustum test under `law`.
pub fn project_one(
    g: &Gaussian3D,
    id: u32,
    cam: &Camera,
    law: BoundingLaw,
) -> Option<ProjectedGaussian> {
    project_gaussian(g, id, cam, law)
}

/// SH color stage: evaluates the view-dependent color of `g` into `p`.
pub fn shade_one(p: &mut ProjectedGaussian, g: &Gaussian3D, cam: &Camera) {
    map_color(p, g, cam);
}

/// The standard schedule's eager preprocessing: every Gaussian through
/// cull + project + SH. Survivors come back in scene order regardless of
/// `threads`, so downstream binning and sorting see the exact sequential
/// stream.
pub fn project_and_shade_all(
    gaussians: &[Gaussian3D],
    cam: &Camera,
    law: BoundingLaw,
    threads: usize,
) -> Vec<ProjectedGaussian> {
    par_filter_map_chunked(gaussians, threads, |i, g| {
        project_one(g, i as u32, cam, law).map(|mut p| {
            shade_one(&mut p, g, cam);
            p
        })
    })
}

/// Stage I of the Gaussian-wise schedule: view-space depths for all
/// Gaussians, in scene order (parallelized over chunks).
pub fn view_depths(gaussians: &[Gaussian3D], cam: &Camera, threads: usize) -> Vec<f32> {
    par_map_chunked(gaussians, threads, |_, g| cam.view_depth(g.mean))
}

/// Depth-sort stage over projected survivors (front to back).
pub fn sort_by_depth(survivors: &mut [ProjectedGaussian]) {
    survivors.sort_by(|a, b| a.depth.total_cmp(&b.depth));
}

/// Depth-sort stage over an index list into a projected array (the
/// standard schedule's per-tile sort).
pub fn sort_indices_by_depth(indices: &mut [u32], projected: &[ProjectedGaussian]) {
    indices.sort_by(|&a, &b| {
        projected[a as usize]
            .depth
            .total_cmp(&projected[b as usize].depth)
    });
}

/// Splits a `w × h` image into `subview × subview` windows `(x, y, w, h)`
/// in row-major order (the trailing row/column may be smaller). `None`
/// yields a single full-frame window.
///
/// # Panics
///
/// Panics when `subview` is `Some(0)`.
pub fn partition_windows(w: u32, h: u32, subview: Option<u32>) -> Vec<(u32, u32, u32, u32)> {
    match subview {
        None => vec![(0, 0, w, h)],
        Some(s) => {
            assert!(s > 0, "sub-view size must be positive");
            let mut out = Vec::new();
            let mut y = 0;
            while y < h {
                let wh = s.min(h - y);
                let mut x = 0;
                while x < w {
                    let ww = s.min(w - x);
                    out.push((x, y, ww, wh));
                    x += ww;
                }
                y += wh;
            }
            out
        }
    }
}

/// A rectangle of per-pixel blending state owned exclusively by one work
/// unit (a tile or a Cmode window). Workers blend into their patch;
/// the frame driver resolves patches into the output image in work-unit
/// order — the merge is trivially deterministic because patches never
/// overlap.
#[derive(Debug, Clone)]
pub struct PixelPatch {
    /// Frame-space x of the patch's left edge.
    pub x0: u32,
    /// Frame-space y of the patch's top edge.
    pub y0: u32,
    /// Patch width in pixels.
    pub w: u32,
    /// Patch height in pixels.
    pub h: u32,
    states: Vec<PixelState>,
}

impl PixelPatch {
    /// Fresh (fully transparent) patch covering `[x0, x0+w) × [y0, y0+h)`.
    pub fn new(x0: u32, y0: u32, w: u32, h: u32) -> Self {
        Self {
            x0,
            y0,
            w,
            h,
            states: vec![PixelState::new(); (w as usize) * (h as usize)],
        }
    }

    /// Blending state of the patch-local pixel `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics when `(x, y)` is outside the patch. The check is
    /// unconditional: a wrapped index could still land inside `states`
    /// and silently blend the wrong pixel, and this accessor is the
    /// module's safety seam for future schedules.
    pub fn state_mut(&mut self, x: u32, y: u32) -> &mut PixelState {
        assert!(x < self.w && y < self.h, "pixel ({x},{y}) outside patch");
        &mut self.states[(y * self.w + x) as usize]
    }

    /// Shared view of the patch-local pixel `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics when `(x, y)` is outside the patch.
    pub fn state(&self, x: u32, y: u32) -> &PixelState {
        assert!(x < self.w && y < self.h, "pixel ({x},{y}) outside patch");
        &self.states[(y * self.w + x) as usize]
    }

    /// Resolves every pixel against `background` and writes the patch into
    /// its frame-space rectangle of `image`.
    ///
    /// # Panics
    ///
    /// Panics when the patch extends past the image.
    pub fn resolve_into(&self, image: &mut Image, background: Vec3) {
        for y in 0..self.h {
            for x in 0..self.w {
                image.set(
                    self.x0 + x,
                    self.y0 + y,
                    self.state(x, y).resolve(background),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcc_math::Vec3;

    fn cam() -> Camera {
        Camera::look_at(
            Vec3::new(0.0, 0.0, -4.0),
            Vec3::ZERO,
            Vec3::new(0.0, 1.0, 0.0),
            60.0,
            64,
            48,
        )
    }

    fn cloud(n: usize) -> Vec<Gaussian3D> {
        (0..n)
            .map(|i| {
                let t = i as f32 / n as f32;
                Gaussian3D::isotropic(
                    Vec3::new((t * 9.0).sin(), (t * 5.0).cos() * 0.4, t),
                    0.05 + 0.05 * t,
                    0.1f32.max(t),
                    Vec3::new(t, 1.0 - t, 0.5),
                )
            })
            .collect()
    }

    #[test]
    fn parallel_preprocess_matches_sequential() {
        let cam = cam();
        let g = cloud(300);
        let seq = project_and_shade_all(&g, &cam, BoundingLaw::ThreeSigma, 1);
        for threads in [2, 5] {
            let par = project_and_shade_all(&g, &cam, BoundingLaw::ThreeSigma, threads);
            assert_eq!(seq.len(), par.len());
            for (a, b) in seq.iter().zip(&par) {
                assert_eq!(a.id, b.id);
                assert_eq!(a.depth.to_bits(), b.depth.to_bits());
                assert_eq!(a.color, b.color);
            }
        }
    }

    #[test]
    fn view_depths_preserve_order() {
        let cam = cam();
        let g = cloud(101);
        let seq = view_depths(&g, &cam, 1);
        let par = view_depths(&g, &cam, 4);
        assert_eq!(seq, par);
    }

    #[test]
    fn window_partition_covers_image_exactly() {
        let wins = partition_windows(100, 60, Some(32));
        assert_eq!(wins.len(), 4 * 2);
        let area: u32 = wins.iter().map(|w| w.2 * w.3).sum();
        assert_eq!(area, 100 * 60);
        assert_eq!(partition_windows(100, 60, None), vec![(0, 0, 100, 60)]);
    }

    #[test]
    fn pixel_patch_resolves_into_frame_rect() {
        let mut patch = PixelPatch::new(2, 1, 3, 2);
        patch.state_mut(0, 0).blend(0.9, Vec3::new(1.0, 0.0, 0.0));
        let mut img = Image::new(8, 4);
        patch.resolve_into(&mut img, Vec3::splat(0.5));
        // Blended pixel lands at frame (2, 1).
        assert!(img.get(2, 1).x > 0.8);
        // Untouched patch pixels resolve to background…
        assert_eq!(img.get(3, 1), Vec3::splat(0.5));
        // …and pixels outside the patch stay black.
        assert_eq!(img.get(0, 0), Vec3::ZERO);
    }

    #[test]
    fn index_sort_orders_front_to_back() {
        let cam = cam();
        let g = cloud(50);
        let projected = project_and_shade_all(&g, &cam, BoundingLaw::ThreeSigma, 1);
        let mut idx: Vec<u32> = (0..projected.len() as u32).collect();
        sort_indices_by_depth(&mut idx, &projected);
        for pair in idx.windows(2) {
            assert!(projected[pair[0] as usize].depth <= projected[pair[1] as usize].depth);
        }
    }
}
