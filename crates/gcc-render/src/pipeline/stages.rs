//! Shared per-Gaussian stage primitives.
//!
//! Both dataflows of the paper are *schedules* over the same five stages —
//! cull → project → SH → sort → blend (paper §2, Fig. 1). This module
//! holds the stage functions themselves, so `standard.rs` and
//! `gaussian_wise.rs` only decide *when* each stage runs and for *which*
//! Gaussians, never *how*:
//!
//! * [`project_one`] — frustum/near cull + EWA projection of one Gaussian
//!   (Stage II in GCC's numbering; "preprocess" step 1 in the standard
//!   pipeline),
//! * [`shade_one`] — SH color evaluation (Stage III / preprocess step 2),
//! * [`project_and_shade_all`] — the standard schedule's eager Stage 1:
//!   every Gaussian through both, order-preserving and parallelizable,
//! * [`view_depths`] — Stage I depth computation for grouping,
//! * [`sort_by_depth`] / [`sort_indices_by_depth`] — the depth-sort stage
//!   over survivors or over per-tile index lists,
//! * [`partition_windows`] — Compatibility-Mode sub-view partitioning,
//! * [`PixelPatch`] — a rectangular tile/window of blending state that a
//!   worker owns exclusively, resolved into the frame at merge time.
//!
//! Every function here is deterministic and free of interior ordering
//! choices, which is what makes the parallel engine's output bit-identical
//! to the sequential schedules.

use gcc_core::alpha::PixelState;
use gcc_core::bounds::{BoundingLaw, PixelRect};
use gcc_core::dispatch::KernelSet;
use gcc_core::projection::{map_color, map_color_deg, project_gaussian};
use gcc_core::sort::depth_key;
use gcc_core::{Camera, Gaussian3D, ProjectedGaussian};
use gcc_math::Vec3;
use gcc_parallel::{
    exclusive_prefix_sum, par_chunks_mut, par_filter_map_chunked, par_map_chunked,
    radix_sort_indices_into,
};

use crate::Image;

/// Cull + project stage for one Gaussian: `None` when the Gaussian fails
/// the near-plane or frustum test under `law`.
pub fn project_one(
    g: &Gaussian3D,
    id: u32,
    cam: &Camera,
    law: BoundingLaw,
) -> Option<ProjectedGaussian> {
    project_gaussian(g, id, cam, law)
}

/// SH color stage: evaluates the view-dependent color of `g` into `p`.
pub fn shade_one(p: &mut ProjectedGaussian, g: &Gaussian3D, cam: &Camera) {
    map_color(p, g, cam);
}

/// [`shade_one`] with the SH evaluation clamped to bands `l ≤ degree` —
/// the per-request SH degree quality knob. `degree = 3` is bit-identical
/// to [`shade_one`].
pub fn shade_one_deg(p: &mut ProjectedGaussian, g: &Gaussian3D, cam: &Camera, degree: u8) {
    map_color_deg(p, g, cam, degree);
}

/// The standard schedule's eager preprocessing: every Gaussian through
/// cull + project + SH. Survivors come back in scene order regardless of
/// `threads`, so downstream binning and sorting see the exact sequential
/// stream.
pub fn project_and_shade_all(
    gaussians: &[Gaussian3D],
    cam: &Camera,
    law: BoundingLaw,
    threads: usize,
) -> Vec<ProjectedGaussian> {
    project_and_shade_all_deg(gaussians, cam, law, 3, threads)
}

/// [`project_and_shade_all`] with the SH degree clamp of
/// [`shade_one_deg`]; `degree = 3` is bit-identical.
pub fn project_and_shade_all_deg(
    gaussians: &[Gaussian3D],
    cam: &Camera,
    law: BoundingLaw,
    degree: u8,
    threads: usize,
) -> Vec<ProjectedGaussian> {
    par_filter_map_chunked(gaussians, threads, |i, g| {
        project_one(g, i as u32, cam, law).map(|mut p| {
            shade_one_deg(&mut p, g, cam, degree);
            p
        })
    })
}

/// Cull + project only — the SoA schedule's Stage II, leaving SH to the
/// batched [`shade_all_soa`] pass. Survivors come back in scene order
/// regardless of `threads`.
pub fn project_all(
    gaussians: &[Gaussian3D],
    cam: &Camera,
    law: BoundingLaw,
    threads: usize,
) -> Vec<ProjectedGaussian> {
    par_filter_map_chunked(gaussians, threads, |i, g| {
        project_one(g, i as u32, cam, law)
    })
}

/// Batched SH color stage over SoA survivor fields: coefficients are
/// gathered in place from `gaussians[p.id].sh` (no packed copy — the
/// source array is already the coefficient store), `dir_x/y/z` are the
/// per-survivor view directions, and the evaluation itself runs through
/// `kernels.sh_colors` — scalar or SIMD, bit-identical either way (the
/// dispatch contract). Chunk-parallel over survivors; per-element results
/// are independent, so every thread count and every chunk boundary
/// produces the same colors as one sequential kernel call.
///
/// Bit-identical to [`shade_one_deg`] applied per survivor: the kernels
/// evaluate the exact [`gcc_core::sh::eval_color_deg`] arithmetic and the
/// directions are precomputed with the same [`Camera::view_dir`].
// Flat slices on purpose: the argument list is the kernel ABI
// (`gcc_core::dispatch::ShColorsFn`) plus threading, not a struct in
// disguise.
#[allow(clippy::too_many_arguments)]
pub fn shade_all_soa(
    projected: &mut [ProjectedGaussian],
    gaussians: &[Gaussian3D],
    dir_x: &[f32],
    dir_y: &[f32],
    dir_z: &[f32],
    degree: u8,
    threads: usize,
    kernels: &KernelSet,
) {
    par_chunks_mut(projected, threads, |off, chunk| {
        let n = chunk.len();
        (kernels.sh_colors)(
            gaussians,
            &dir_x[off..off + n],
            &dir_y[off..off + n],
            &dir_z[off..off + n],
            degree,
            chunk,
        );
    });
}

/// Stage I of the Gaussian-wise schedule: view-space depths for all
/// Gaussians, in scene order (parallelized over chunks).
pub fn view_depths(gaussians: &[Gaussian3D], cam: &Camera, threads: usize) -> Vec<f32> {
    par_map_chunked(gaussians, threads, |_, g| cam.view_depth(g.mean))
}

/// [`view_depths`] into a reusable buffer: the sequential path fills
/// `out` in place (no allocation once warm); the chunk-parallel path
/// replaces it.
pub fn view_depths_into(
    gaussians: &[Gaussian3D],
    cam: &Camera,
    threads: usize,
    out: &mut Vec<f32>,
) {
    if threads <= 1 {
        out.clear();
        out.extend(gaussians.iter().map(|g| cam.view_depth(g.mean)));
    } else {
        *out = view_depths(gaussians, cam, threads);
    }
}

/// Depth-sort stage over projected survivors (front to back).
pub fn sort_by_depth(survivors: &mut [ProjectedGaussian]) {
    survivors.sort_by(|a, b| a.depth.total_cmp(&b.depth));
}

/// Depth-sort stage over an index list into a projected array — the
/// standard schedule's *historical* per-tile sort, kept as the reference
/// ordering that [`global_depth_order_into`] + [`TileBins`] are pinned
/// against (equal depths keep scene order in both formulations).
pub fn sort_indices_by_depth(indices: &mut [u32], projected: &[ProjectedGaussian]) {
    indices.sort_by(|&a, &b| {
        projected[a as usize]
            .depth
            .total_cmp(&projected[b as usize].depth)
    });
}

/// The global depth-ordering stage: one monotone `u32` key per projected
/// survivor ([`depth_key`], chunk-parallel) and one stable LSD radix sort
/// over all of them. `order` receives the survivor indices front to back;
/// equal depths keep scene order, so any subsequence of `order` (e.g. a
/// tile bin filled in this order) is exactly what a stable per-tile
/// `total_cmp` sort would have produced. `keys` and `radix` are reusable
/// scratch.
pub fn global_depth_order_into(
    projected: &[ProjectedGaussian],
    threads: usize,
    keys: &mut Vec<u32>,
    order: &mut Vec<u32>,
    radix: &mut Vec<u32>,
) {
    if threads <= 1 {
        keys.clear();
        keys.extend(projected.iter().map(|p| depth_key(p.depth)));
    } else {
        *keys = par_map_chunked(projected, threads, |_, p| depth_key(p.depth));
    }
    radix_sort_indices_into(keys, threads, order, radix);
}

/// [`global_depth_order_into`] over a flat SoA depth array, with key
/// generation routed through `kernels.depth_keys` (scalar or SIMD — the
/// monotone sign-flip mapping is bit-identical in every backend, so the
/// resulting order is too). Chunk-parallel over the key buffer.
pub fn global_depth_order_soa(
    depths: &[f32],
    threads: usize,
    keys: &mut Vec<u32>,
    order: &mut Vec<u32>,
    radix: &mut Vec<u32>,
    kernels: &KernelSet,
) {
    keys.clear();
    keys.resize(depths.len(), 0);
    par_chunks_mut(keys, threads, |off, chunk| {
        (kernels.depth_keys)(&depths[off..off + chunk.len()], chunk);
    });
    radix_sort_indices_into(keys, threads, order, radix);
}

/// Screen-clipped AABB footprints of all projected survivors, in scene
/// order, into a reusable buffer — computed once per frame and shared by
/// binning and tile rendering.
pub fn footprint_rects_into(
    projected: &[ProjectedGaussian],
    width: u32,
    height: u32,
    threads: usize,
    rects: &mut Vec<PixelRect>,
) {
    if threads <= 1 {
        rects.clear();
        rects.extend(
            projected
                .iter()
                .map(|p| PixelRect::from_circle(p.mean2d, p.radius, width, height)),
        );
    } else {
        *rects = par_map_chunked(projected, threads, |_, p| {
            PixelRect::from_circle(p.mean2d, p.radius, width, height)
        });
    }
}

/// [`footprint_rects_into`] over flat SoA center/radius arrays — the same
/// `PixelRect::from_circle` per survivor, streaming three contiguous `f32`
/// arrays instead of strided projection records.
pub fn footprint_rects_soa_into(
    mean_x: &[f32],
    mean_y: &[f32],
    radius: &[f32],
    width: u32,
    height: u32,
    threads: usize,
    rects: &mut Vec<PixelRect>,
) {
    let rect = |i: usize| {
        PixelRect::from_circle(
            gcc_math::Vec2::new(mean_x[i], mean_y[i]),
            radius[i],
            width,
            height,
        )
    };
    if threads <= 1 {
        rects.clear();
        rects.extend((0..mean_x.len()).map(rect));
    } else {
        *rects = par_map_chunked(mean_x, threads, |i, _| rect(i));
    }
}

/// Flat CSR tile bins: every Gaussian→tile key-value pair lives in one
/// `entries` array, with per-tile extents tracked in `ends` — no
/// per-tile `Vec`s, no per-frame allocation once the buffers are warm.
///
/// Built in two passes (counts → exclusive prefix sum → fill). The fill
/// iterates survivors in **global depth order**, so every bin is *born*
/// front-to-back sorted and the per-tile sort stage disappears.
#[derive(Debug, Clone, Default)]
pub struct TileBins {
    /// After the fill, `ends[t]` is the exclusive end of tile `t`'s slice
    /// in `entries` (its start is `ends[t - 1]`, or 0 for tile 0).
    ends: Vec<u32>,
    entries: Vec<u32>,
}

impl TileBins {
    /// Empty bins (buffers grow on first build).
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuilds the bins for `n_tiles` tiles of edge `tile_size` on a grid
    /// `tiles_x` wide, from per-survivor footprints and the global depth
    /// order. Returns the number of key-value pairs created.
    pub fn build(
        &mut self,
        rects: &[PixelRect],
        order: &[u32],
        tile_size: u32,
        tiles_x: u32,
        n_tiles: usize,
    ) -> u64 {
        self.ends.clear();
        self.ends.resize(n_tiles, 0);
        for rect in rects {
            if rect.is_empty() {
                continue;
            }
            let (tx0, ty0, tx1, ty1) = rect.tile_range(tile_size);
            for ty in ty0..ty1 {
                for tx in tx0..tx1 {
                    self.ends[(ty * tiles_x + tx) as usize] += 1;
                }
            }
        }
        let total = exclusive_prefix_sum(&mut self.ends);
        self.entries.clear();
        self.entries.resize(total as usize, 0);
        // Fill in global depth order; `ends[t]` walks from tile t's start
        // to its end, leaving exactly the CSR extents behind.
        for &idx in order {
            let rect = &rects[idx as usize];
            if rect.is_empty() {
                continue;
            }
            let (tx0, ty0, tx1, ty1) = rect.tile_range(tile_size);
            for ty in ty0..ty1 {
                for tx in tx0..tx1 {
                    let t = (ty * tiles_x + tx) as usize;
                    self.entries[self.ends[t] as usize] = idx;
                    self.ends[t] += 1;
                }
            }
        }
        u64::from(total)
    }

    /// Number of tiles the bins were built for.
    pub fn tiles(&self) -> usize {
        self.ends.len()
    }

    /// Tile `t`'s bin: survivor indices front to back.
    pub fn bin(&self, t: usize) -> &[u32] {
        let start = if t == 0 { 0 } else { self.ends[t - 1] as usize };
        &self.entries[start..self.ends[t] as usize]
    }

    /// Number of Gaussians binned to tile `t`.
    pub fn count(&self, t: usize) -> u32 {
        let start = if t == 0 { 0 } else { self.ends[t - 1] };
        self.ends[t] - start
    }
}

/// Splits a `w × h` image into `subview × subview` windows `(x, y, w, h)`
/// in row-major order (the trailing row/column may be smaller). `None`
/// yields a single full-frame window.
///
/// # Panics
///
/// Panics when `subview` is `Some(0)`.
pub fn partition_windows(w: u32, h: u32, subview: Option<u32>) -> Vec<(u32, u32, u32, u32)> {
    match subview {
        None => vec![(0, 0, w, h)],
        Some(s) => {
            assert!(s > 0, "sub-view size must be positive");
            let mut out = Vec::new();
            let mut y = 0;
            while y < h {
                let wh = s.min(h - y);
                let mut x = 0;
                while x < w {
                    let ww = s.min(w - x);
                    out.push((x, y, ww, wh));
                    x += ww;
                }
                y += wh;
            }
            out
        }
    }
}

/// A rectangle of per-pixel blending state owned exclusively by one work
/// unit (a tile or a Cmode window). Workers blend into their patch;
/// the frame driver resolves patches into the output image in work-unit
/// order — the merge is trivially deterministic because patches never
/// overlap.
#[derive(Debug, Clone)]
pub struct PixelPatch {
    /// Frame-space x of the patch's left edge.
    pub x0: u32,
    /// Frame-space y of the patch's top edge.
    pub y0: u32,
    /// Patch width in pixels.
    pub w: u32,
    /// Patch height in pixels.
    pub h: u32,
    states: Vec<PixelState>,
}

impl PixelPatch {
    /// Fresh (fully transparent) patch covering `[x0, x0+w) × [y0, y0+h)`.
    pub fn new(x0: u32, y0: u32, w: u32, h: u32) -> Self {
        Self {
            x0,
            y0,
            w,
            h,
            states: vec![PixelState::new(); (w as usize) * (h as usize)],
        }
    }

    /// Blending state of the patch-local pixel `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics when `(x, y)` is outside the patch. The check is
    /// unconditional: a wrapped index could still land inside `states`
    /// and silently blend the wrong pixel, and this accessor is the
    /// module's safety seam for future schedules.
    pub fn state_mut(&mut self, x: u32, y: u32) -> &mut PixelState {
        assert!(x < self.w && y < self.h, "pixel ({x},{y}) outside patch");
        &mut self.states[(y * self.w + x) as usize]
    }

    /// Shared view of the patch-local pixel `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics when `(x, y)` is outside the patch.
    pub fn state(&self, x: u32, y: u32) -> &PixelState {
        assert!(x < self.w && y < self.h, "pixel ({x},{y}) outside patch");
        &self.states[(y * self.w + x) as usize]
    }

    /// Mutable view of one patch-local pixel row — the blend loops' bulk
    /// accessor: one bounds check per row instead of an asserting
    /// per-pixel [`Self::state_mut`] call.
    ///
    /// # Panics
    ///
    /// Panics when `y` is outside the patch.
    pub fn row_mut(&mut self, y: u32) -> &mut [PixelState] {
        assert!(y < self.h, "row {y} outside patch");
        let w = self.w as usize;
        &mut self.states[y as usize * w..(y as usize + 1) * w]
    }

    /// The whole backing store, row-major (`w` pixels per row). The batch
    /// blend sweeps address row spans as `y·w + x` directly into this
    /// slice — one offset and one bounds check per span instead of
    /// [`row_mut`](Self::row_mut)'s assert-plus-reslice.
    pub fn states_mut(&mut self) -> &mut [PixelState] {
        &mut self.states
    }

    /// Resolves every pixel against `background` and writes the patch into
    /// its frame-space rectangle of `image`, walking the `states` buffer
    /// row by row (one offset computation per row — this runs for every
    /// pixel of every tile/window merge).
    ///
    /// # Panics
    ///
    /// Panics when the patch extends past the image.
    pub fn resolve_into(&self, image: &mut Image, background: Vec3) {
        assert!(
            self.x0 + self.w <= image.width() && self.y0 + self.h <= image.height(),
            "patch {}x{}@({},{}) exceeds image {}x{}",
            self.w,
            self.h,
            self.x0,
            self.y0,
            image.width(),
            image.height()
        );
        if self.w == 0 || self.h == 0 {
            return;
        }
        let iw = image.width() as usize;
        let (x0, y0, w) = (self.x0 as usize, self.y0 as usize, self.w as usize);
        let pixels = image.pixels_mut();
        for (y, row) in self.states.chunks_exact(w).enumerate() {
            let dst = &mut pixels[(y0 + y) * iw + x0..][..w];
            for (d, s) in dst.iter_mut().zip(row) {
                *d = s.resolve(background);
            }
        }
    }

    /// [`Self::resolve_into`] for an image covering only the frame-space
    /// window starting at `(origin_x, origin_y)` (e.g. a region-of-interest
    /// output): writes the intersection of the patch with the window,
    /// silently clipping the rest. With origin `(0, 0)` and a full-frame
    /// image this resolves exactly the patch rectangle.
    pub fn resolve_into_clipped(
        &self,
        image: &mut Image,
        background: Vec3,
        origin_x: u32,
        origin_y: u32,
    ) {
        // Frame-space overlap of patch and window.
        let ox0 = self.x0.max(origin_x);
        let oy0 = self.y0.max(origin_y);
        let ox1 = (self.x0 + self.w).min(origin_x + image.width());
        let oy1 = (self.y0 + self.h).min(origin_y + image.height());
        if ox0 >= ox1 || oy0 >= oy1 {
            return;
        }
        let w = (ox1 - ox0) as usize;
        let iw = image.width() as usize;
        let pixels = image.pixels_mut();
        for y in oy0..oy1 {
            let src_off = ((y - self.y0) as usize) * self.w as usize + (ox0 - self.x0) as usize;
            let dst_off = ((y - origin_y) as usize) * iw + (ox0 - origin_x) as usize;
            let src = &self.states[src_off..src_off + w];
            let dst = &mut pixels[dst_off..dst_off + w];
            for (d, s) in dst.iter_mut().zip(src) {
                *d = s.resolve(background);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcc_math::Vec3;

    fn cam() -> Camera {
        Camera::look_at(
            Vec3::new(0.0, 0.0, -4.0),
            Vec3::ZERO,
            Vec3::new(0.0, 1.0, 0.0),
            60.0,
            64,
            48,
        )
    }

    fn cloud(n: usize) -> Vec<Gaussian3D> {
        (0..n)
            .map(|i| {
                let t = i as f32 / n as f32;
                Gaussian3D::isotropic(
                    Vec3::new((t * 9.0).sin(), (t * 5.0).cos() * 0.4, t),
                    0.05 + 0.05 * t,
                    0.1f32.max(t),
                    Vec3::new(t, 1.0 - t, 0.5),
                )
            })
            .collect()
    }

    #[test]
    fn parallel_preprocess_matches_sequential() {
        let cam = cam();
        let g = cloud(300);
        let seq = project_and_shade_all(&g, &cam, BoundingLaw::ThreeSigma, 1);
        for threads in [2, 5] {
            let par = project_and_shade_all(&g, &cam, BoundingLaw::ThreeSigma, threads);
            assert_eq!(seq.len(), par.len());
            for (a, b) in seq.iter().zip(&par) {
                assert_eq!(a.id, b.id);
                assert_eq!(a.depth.to_bits(), b.depth.to_bits());
                assert_eq!(a.color, b.color);
            }
        }
    }

    #[test]
    fn view_depths_preserve_order() {
        let cam = cam();
        let g = cloud(101);
        let seq = view_depths(&g, &cam, 1);
        let par = view_depths(&g, &cam, 4);
        assert_eq!(seq, par);
    }

    #[test]
    fn window_partition_covers_image_exactly() {
        let wins = partition_windows(100, 60, Some(32));
        assert_eq!(wins.len(), 4 * 2);
        let area: u32 = wins.iter().map(|w| w.2 * w.3).sum();
        assert_eq!(area, 100 * 60);
        assert_eq!(partition_windows(100, 60, None), vec![(0, 0, 100, 60)]);
    }

    #[test]
    fn pixel_patch_resolves_into_frame_rect() {
        let mut patch = PixelPatch::new(2, 1, 3, 2);
        patch.state_mut(0, 0).blend(0.9, Vec3::new(1.0, 0.0, 0.0));
        let mut img = Image::new(8, 4);
        patch.resolve_into(&mut img, Vec3::splat(0.5));
        // Blended pixel lands at frame (2, 1).
        assert!(img.get(2, 1).x > 0.8);
        // Untouched patch pixels resolve to background…
        assert_eq!(img.get(3, 1), Vec3::splat(0.5));
        // …and pixels outside the patch stay black.
        assert_eq!(img.get(0, 0), Vec3::ZERO);
    }

    #[test]
    fn clipped_resolve_matches_full_resolve_on_the_overlap() {
        let mut patch = PixelPatch::new(4, 2, 6, 5);
        patch.state_mut(1, 1).blend(0.8, Vec3::new(0.0, 1.0, 0.0));
        patch.state_mut(5, 4).blend(0.6, Vec3::new(1.0, 0.0, 0.0));
        let bg = Vec3::splat(0.25);
        // Full-frame reference.
        let mut full = Image::new(16, 12);
        patch.resolve_into(&mut full, bg);
        // Window covering frame rect [6, 14) x [3, 8): overlaps the patch
        // partially on the left/top.
        let mut win = Image::filled(8, 5, Vec3::ZERO);
        patch.resolve_into_clipped(&mut win, bg, 6, 3);
        for y in 0..5u32 {
            for x in 0..8u32 {
                let (fx, fy) = (6 + x, 3 + y);
                let inside_patch = (4..10).contains(&fx) && (2..7).contains(&fy);
                if inside_patch {
                    assert_eq!(win.get(x, y), full.get(fx, fy), "({fx},{fy})");
                } else {
                    assert_eq!(win.get(x, y), Vec3::ZERO, "({fx},{fy}) must be clipped");
                }
            }
        }
        // Disjoint window: nothing written.
        let mut far = Image::filled(4, 4, Vec3::splat(0.9));
        patch.resolve_into_clipped(&mut far, bg, 12, 10);
        assert_eq!(far.get(0, 0), Vec3::splat(0.9));
    }

    #[test]
    fn degree_clamped_preprocess_matches_full_at_degree_3() {
        let cam = cam();
        let mut g = cloud(120);
        // `isotropic` clouds are DC-only; add a degree-1 band so the clamp
        // has view-dependent terms to drop.
        for (i, gauss) in g.iter_mut().enumerate() {
            gauss.sh[2] = 0.3 + (i as f32) * 0.001;
        }
        let full = project_and_shade_all(&g, &cam, BoundingLaw::ThreeSigma, 1);
        let deg3 = project_and_shade_all_deg(&g, &cam, BoundingLaw::ThreeSigma, 3, 1);
        assert_eq!(full.len(), deg3.len());
        for (a, b) in full.iter().zip(&deg3) {
            assert_eq!(a.color, b.color);
        }
        // Degree 0 drops view dependence: colors differ somewhere.
        let deg0 = project_and_shade_all_deg(&g, &cam, BoundingLaw::ThreeSigma, 0, 1);
        assert!(full.iter().zip(&deg0).any(|(a, b)| a.color != b.color));
    }

    #[test]
    fn index_sort_orders_front_to_back() {
        let cam = cam();
        let g = cloud(50);
        let projected = project_and_shade_all(&g, &cam, BoundingLaw::ThreeSigma, 1);
        let mut idx: Vec<u32> = (0..projected.len() as u32).collect();
        sort_indices_by_depth(&mut idx, &projected);
        for pair in idx.windows(2) {
            assert!(projected[pair[0] as usize].depth <= projected[pair[1] as usize].depth);
        }
    }

    #[test]
    fn global_depth_order_equals_stable_comparison_sort() {
        let cam = cam();
        let mut g = cloud(400);
        // Duplicate a slab of Gaussians so equal depths exercise the
        // stability requirement.
        let dup: Vec<Gaussian3D> = g.iter().take(40).cloned().collect();
        g.extend(dup);
        let projected = project_and_shade_all(&g, &cam, BoundingLaw::ThreeSigma, 1);
        let mut expect: Vec<u32> = (0..projected.len() as u32).collect();
        sort_indices_by_depth(&mut expect, &projected); // stable total_cmp sort
        let (mut keys, mut order, mut radix) = (Vec::new(), Vec::new(), Vec::new());
        for threads in [1, 4] {
            global_depth_order_into(&projected, threads, &mut keys, &mut order, &mut radix);
            assert_eq!(order, expect, "threads={threads}");
        }
    }

    #[test]
    fn csr_bins_match_nested_vec_binning() {
        let cam = cam();
        let g = cloud(300);
        let projected = project_and_shade_all(&g, &cam, BoundingLaw::ThreeSigma, 1);
        let (w, h, ts) = (64u32, 48u32, 16u32);
        let tiles_x = w.div_ceil(ts);
        let n_tiles = (tiles_x * h.div_ceil(ts)) as usize;

        // Reference: the historical nested-Vec binning + per-tile sort.
        let mut nested: Vec<Vec<u32>> = vec![Vec::new(); n_tiles];
        for (idx, p) in projected.iter().enumerate() {
            let rect = PixelRect::from_circle(p.mean2d, p.radius, w, h);
            if rect.is_empty() {
                continue;
            }
            let (tx0, ty0, tx1, ty1) = rect.tile_range(ts);
            for ty in ty0..ty1 {
                for tx in tx0..tx1 {
                    nested[(ty * tiles_x + tx) as usize].push(idx as u32);
                }
            }
        }
        for bin in &mut nested {
            sort_indices_by_depth(bin, &projected);
        }

        let mut rects = Vec::new();
        footprint_rects_into(&projected, w, h, 1, &mut rects);
        let (mut keys, mut order, mut radix) = (Vec::new(), Vec::new(), Vec::new());
        global_depth_order_into(&projected, 1, &mut keys, &mut order, &mut radix);
        let mut bins = TileBins::new();
        let kv = bins.build(&rects, &order, ts, tiles_x, n_tiles);

        assert_eq!(kv, nested.iter().map(|b| b.len() as u64).sum::<u64>());
        assert_eq!(bins.tiles(), n_tiles);
        for (t, reference) in nested.iter().enumerate() {
            assert_eq!(bins.bin(t), reference.as_slice(), "tile {t}");
            assert_eq!(bins.count(t) as usize, reference.len(), "tile {t}");
        }
    }

    #[test]
    fn tile_bins_rebuild_resets_previous_state() {
        let rects = vec![
            PixelRect::from_circle(gcc_math::Vec2::new(8.0, 8.0), 4.0, 32, 32),
            PixelRect::from_circle(gcc_math::Vec2::new(24.0, 24.0), 4.0, 32, 32),
        ];
        let mut bins = TileBins::new();
        let kv1 = bins.build(&rects, &[0, 1], 16, 2, 4);
        assert_eq!(kv1, 2);
        // Rebuild on a smaller problem must fully reset extents.
        let kv2 = bins.build(&rects[..1], &[0], 16, 2, 4);
        assert_eq!(kv2, 1);
        assert_eq!(bins.bin(0), &[0]);
        assert!(bins.bin(3).is_empty());
    }

    #[test]
    fn patch_row_mut_aliases_state_mut() {
        let mut patch = PixelPatch::new(0, 0, 4, 3);
        patch.row_mut(1)[2].blend(0.5, Vec3::new(1.0, 0.0, 0.0));
        assert!(patch.state(2, 1).color.x > 0.4);
        assert_eq!(patch.row_mut(2).len(), 4);
    }
}
