//! The frame-request vocabulary: [`Schedule`], [`RenderOptions`], [`Roi`]
//! and [`RenderJob`] — one description of "render this view, like so"
//! shared by direct callers, the trajectory runner and the serving layer.
//!
//! A [`RenderJob`] bundles what every schedule consumes: the Gaussian
//! cloud, a fully resolved [`Camera`] (already at the requested output
//! resolution — resolution overrides are applied where the camera is
//! built, e.g. `gcc_scene::Scene::resolve_view`), and the per-request
//! [`RenderOptions`].
//!
//! # Region-of-interest semantics
//!
//! An ROI render is defined as *bit-identical to the corresponding crop of
//! the full-frame render*. This rules out shifting the principal point
//! with [`Camera::sub_view`] (floating-point addition is not associative,
//! so `fx·x/z + (cx − x0)` and `(fx·x/z + cx) − x0` differ in ulps and the
//! ulps reach the blend); instead the schedules keep full-frame arithmetic
//! and restrict *which work units run*:
//!
//! * the standard schedule renders only the 16×16 tiles intersecting the
//!   ROI (tiles are pure functions of the global depth order),
//! * the Gaussian-wise schedule restricts blending to the 8×8 blocks
//!   intersecting the ROI under [`MaskMode::Traverse`] (block dispatch is
//!   per-block local there); under `MaskMode::SkipAndBlock` the mask gates
//!   traversal *reachability*, so the schedule falls back to a full render
//!   plus crop rather than silently change pixels.
//!
//! `tests/roi_parity.rs` pins the crop identity for both schedules across
//! thread counts.
//!
//! [`MaskMode::Traverse`]: gcc_core::boundary::MaskMode::Traverse

use gcc_core::{Camera, Gaussian3D};
use gcc_math::Vec3;
use gcc_parallel::Parallelism;

use super::{GaussianWiseRenderer, Renderer, StandardRenderer};
use crate::Image;

/// The renderer schedules a request can select, i.e. every named
/// configuration of the two dataflows. The serving layer batches requests
/// by `(scene, schedule, resolution)` and keeps one renderer per variant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Schedule {
    /// The GPU reference: standard two-stage pipeline, exact arithmetic,
    /// AABB footprint (the Table 2 quality anchor).
    #[default]
    Reference,
    /// The standard tile-wise pipeline in its default configuration.
    Standard,
    /// GSCore: the standard pipeline with the tightened OBB footprint.
    Gscore,
    /// The GCC Gaussian-wise cross-stage-conditional dataflow (exact
    /// exponential datapath).
    GaussianWise,
    /// The GCC hardware configuration: Gaussian-wise with the fixed-point
    /// LUT-EXP datapath.
    GccHardware,
}

impl Schedule {
    /// Every schedule, in display order.
    pub const ALL: [Schedule; 5] = [
        Schedule::Reference,
        Schedule::Standard,
        Schedule::Gscore,
        Schedule::GaussianWise,
        Schedule::GccHardware,
    ];

    /// Stable identifier (stats keys, bench labels, JSON records).
    pub fn name(self) -> &'static str {
        match self {
            Self::Reference => "reference",
            Self::Standard => "standard",
            Self::Gscore => "gscore",
            Self::GaussianWise => "gaussian_wise",
            Self::GccHardware => "gcc_hardware",
        }
    }

    /// Parses [`Self::name`] back into a schedule.
    pub fn parse(s: &str) -> Option<Schedule> {
        Schedule::ALL.into_iter().find(|v| v.name() == s)
    }

    /// Builds the sequential renderer for this schedule — the serving
    /// layer's configuration (one frame per worker; parallelism comes from
    /// serving many requests at once).
    pub fn renderer(self) -> Box<dyn Renderer + Send + Sync> {
        self.renderer_with(Parallelism::Sequential)
    }

    /// Builds this schedule's renderer with an explicit intra-frame
    /// parallelism policy.
    pub fn renderer_with(self, parallelism: Parallelism) -> Box<dyn Renderer + Send + Sync> {
        match self {
            Self::Reference => {
                Box::new(StandardRenderer::reference().with_parallelism(parallelism))
            }
            Self::Standard => Box::new(StandardRenderer::default().with_parallelism(parallelism)),
            Self::Gscore => Box::new(StandardRenderer::gscore().with_parallelism(parallelism)),
            Self::GaussianWise => {
                Box::new(GaussianWiseRenderer::default().with_parallelism(parallelism))
            }
            Self::GccHardware => {
                Box::new(GaussianWiseRenderer::gcc_hardware().with_parallelism(parallelism))
            }
        }
    }
}

impl std::fmt::Display for Schedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A region of interest: a non-empty pixel rectangle of the full frame.
/// The rendered output image has exactly this size, and is bit-identical
/// to the same rectangle of the full-frame render (see the
/// [module docs](self)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Roi {
    /// Left edge in full-frame pixels.
    pub x0: u32,
    /// Top edge in full-frame pixels.
    pub y0: u32,
    /// Width in pixels (must be positive).
    pub width: u32,
    /// Height in pixels (must be positive).
    pub height: u32,
}

impl Roi {
    /// A region-of-interest rectangle.
    pub fn new(x0: u32, y0: u32, width: u32, height: u32) -> Self {
        Self {
            x0,
            y0,
            width,
            height,
        }
    }

    /// `true` when this ROI overlaps the half-open pixel rectangle
    /// `[x0, x1) × [y0, y1)` (frame coordinates).
    pub fn intersects(&self, x0: i64, y0: i64, x1: i64, y1: i64) -> bool {
        let (rx0, ry0) = (i64::from(self.x0), i64::from(self.y0));
        let (rx1, ry1) = (rx0 + i64::from(self.width), ry0 + i64::from(self.height));
        x0 < rx1 && rx0 < x1 && y0 < ry1 && ry0 < y1
    }

    /// Checks the ROI is non-empty and fits a `width × height` frame.
    ///
    /// # Errors
    ///
    /// [`JobError::EmptyRoi`] / [`JobError::RoiOutOfBounds`].
    pub fn validate_within(&self, width: u32, height: u32) -> Result<(), JobError> {
        if self.width == 0 || self.height == 0 {
            return Err(JobError::EmptyRoi);
        }
        let fits = u64::from(self.x0) + u64::from(self.width) <= u64::from(width)
            && u64::from(self.y0) + u64::from(self.height) <= u64::from(height);
        if !fits {
            return Err(JobError::RoiOutOfBounds {
                roi: *self,
                width,
                height,
            });
        }
        Ok(())
    }
}

/// Per-request rendering options: schedule selection, output shaping and
/// quality knobs. `RenderOptions::default()` reproduces a plain
/// `render_frame` call through the [`Schedule::Reference`] schedule.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RenderOptions {
    /// Which schedule renders the request (dispatch-level: concrete
    /// renderers render with their own configuration and leave schedule
    /// selection to the caller, e.g. [`Schedule::renderer`] or the
    /// serving layer's per-schedule renderer table).
    pub schedule: Schedule,
    /// Output resolution override; `None` keeps the scene's native
    /// resolution. Consumed where the camera is built (the job's camera
    /// already has the final resolution); part of the serve batching key.
    pub resolution: Option<(u32, u32)>,
    /// Region of interest — render only this sub-rectangle of the frame
    /// (bit-identical to the crop of the full render).
    pub roi: Option<Roi>,
    /// Background color override behind the splats.
    pub background: Option<Vec3>,
    /// Minimum alpha a contribution needs to be blended, in `[0, 1)`.
    /// The pipelines already drop `α < 1/255`; raising this skips faint
    /// contributions for speed at a quality cost.
    pub alpha_min: Option<f32>,
    /// Clamp on the SH degree used for color (`0..=3`); lower degrees
    /// drop view-dependent color terms for cheaper shading.
    pub sh_degree: Option<u8>,
}

impl RenderOptions {
    /// Selects the schedule.
    pub fn with_schedule(mut self, schedule: Schedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Overrides the output resolution.
    pub fn at_resolution(mut self, width: u32, height: u32) -> Self {
        self.resolution = Some((width, height));
        self
    }

    /// Restricts rendering to a region of interest.
    pub fn with_roi(mut self, roi: Roi) -> Self {
        self.roi = Some(roi);
        self
    }

    /// Overrides the background color.
    pub fn on_background(mut self, background: Vec3) -> Self {
        self.background = Some(background);
        self
    }

    /// Sets the minimum blended alpha.
    pub fn with_alpha_min(mut self, alpha_min: f32) -> Self {
        self.alpha_min = Some(alpha_min);
        self
    }

    /// Clamps the SH evaluation degree.
    pub fn with_sh_degree(mut self, degree: u8) -> Self {
        self.sh_degree = Some(degree);
        self
    }

    /// Camera-independent validation: resolution non-zero, ROI non-empty
    /// (bounds are checked against a frame size by
    /// [`Self::validate_for`]), knobs in range, everything finite.
    ///
    /// # Errors
    ///
    /// The first violated [`JobError`].
    pub fn validate(&self) -> Result<(), JobError> {
        if let Some((w, h)) = self.resolution {
            if w == 0 || h == 0 {
                return Err(JobError::ZeroResolution);
            }
        }
        if let Some(roi) = &self.roi {
            if roi.width == 0 || roi.height == 0 {
                return Err(JobError::EmptyRoi);
            }
        }
        if let Some(bg) = &self.background {
            if !(bg.x.is_finite() && bg.y.is_finite() && bg.z.is_finite()) {
                return Err(JobError::NonFinite {
                    field: "background",
                });
            }
        }
        if let Some(a) = self.alpha_min {
            if !a.is_finite() || !(0.0..1.0).contains(&a) {
                return Err(JobError::AlphaMinOutOfRange(a));
            }
        }
        if let Some(d) = self.sh_degree {
            if d > 3 {
                return Err(JobError::ShDegreeTooHigh(d));
            }
        }
        Ok(())
    }

    /// Full validation against the frame size the camera will render at.
    ///
    /// # Errors
    ///
    /// [`Self::validate`] errors plus ROI bounds violations.
    pub fn validate_for(&self, width: u32, height: u32) -> Result<(), JobError> {
        self.validate()?;
        if let Some(roi) = &self.roi {
            roi.validate_within(width, height)?;
        }
        Ok(())
    }
}

/// Why a [`RenderJob`] (or the [`RenderOptions`] inside a request) was
/// rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum JobError {
    /// A float field was NaN or infinite.
    NonFinite {
        /// Which field.
        field: &'static str,
    },
    /// A resolution override had a zero dimension.
    ZeroResolution,
    /// The ROI was zero-sized.
    EmptyRoi,
    /// The ROI does not fit the frame.
    RoiOutOfBounds {
        /// The offending region.
        roi: Roi,
        /// Frame width the ROI was checked against.
        width: u32,
        /// Frame height the ROI was checked against.
        height: u32,
    },
    /// SH degree clamp above the maximum of 3.
    ShDegreeTooHigh(u8),
    /// Alpha threshold outside `[0, 1)`.
    AlphaMinOutOfRange(f32),
    /// The options' resolution override disagrees with the job's camera.
    ResolutionMismatch {
        /// The camera's image size.
        camera: (u32, u32),
        /// The options' requested size.
        requested: (u32, u32),
    },
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NonFinite { field } => write!(f, "{field} is not finite"),
            Self::ZeroResolution => write!(f, "resolution override has a zero dimension"),
            Self::EmptyRoi => write!(f, "region of interest is zero-sized"),
            Self::RoiOutOfBounds { roi, width, height } => write!(
                f,
                "ROI {}x{}@({},{}) exceeds the {width}x{height} frame",
                roi.width, roi.height, roi.x0, roi.y0
            ),
            Self::ShDegreeTooHigh(d) => write!(f, "SH degree clamp {d} exceeds the maximum of 3"),
            Self::AlphaMinOutOfRange(a) => write!(f, "alpha_min {a} outside [0, 1)"),
            Self::ResolutionMismatch { camera, requested } => write!(
                f,
                "options request {}x{} but the job camera renders {}x{}",
                requested.0, requested.1, camera.0, camera.1
            ),
        }
    }
}

impl std::error::Error for JobError {}

/// One fully specified frame request: the Gaussian cloud, a resolved
/// camera (already at the output resolution) and the per-request options.
/// This is what [`Renderer::render_job`] consumes; `render_frame` /
/// `render_frame_reusing` are thin shims over a default-options job.
#[derive(Debug, Clone)]
pub struct RenderJob<'a> {
    /// The Gaussian cloud.
    pub gaussians: &'a [Gaussian3D],
    /// The full-frame camera (ROI restriction happens inside the
    /// schedules, on full-frame arithmetic).
    pub camera: &'a Camera,
    /// Per-request options.
    pub options: RenderOptions,
}

impl<'a> RenderJob<'a> {
    /// A default-options job: full frame, schedule defaults.
    pub fn new(gaussians: &'a [Gaussian3D], camera: &'a Camera) -> Self {
        Self {
            gaussians,
            camera,
            options: RenderOptions::default(),
        }
    }

    /// A job with explicit options.
    pub fn with_options(
        gaussians: &'a [Gaussian3D],
        camera: &'a Camera,
        options: RenderOptions,
    ) -> Self {
        Self {
            gaussians,
            camera,
            options,
        }
    }

    /// Validates the options against this job's camera: knob ranges, ROI
    /// bounds, and (when set) the resolution override matching the camera.
    ///
    /// # Errors
    ///
    /// The first violated [`JobError`].
    pub fn validate(&self) -> Result<(), JobError> {
        self.options
            .validate_for(self.camera.width, self.camera.height)?;
        if let Some((w, h)) = self.options.resolution {
            if (w, h) != (self.camera.width, self.camera.height) {
                return Err(JobError::ResolutionMismatch {
                    camera: (self.camera.width, self.camera.height),
                    requested: (w, h),
                });
            }
        }
        Ok(())
    }

    /// Output image size: the ROI if set, the full camera frame otherwise.
    pub fn output_size(&self) -> (u32, u32) {
        match &self.options.roi {
            Some(r) => (r.width, r.height),
            None => (self.camera.width, self.camera.height),
        }
    }
}

/// Crops `image` to `roi` (used by the default [`Renderer::render_job`]
/// full-render-then-crop path and the `SkipAndBlock` fallback).
///
/// # Panics
///
/// Panics when the ROI exceeds the image.
pub(crate) fn crop_image(image: &Image, roi: &Roi) -> Image {
    assert!(
        roi.x0 + roi.width <= image.width() && roi.y0 + roi.height <= image.height(),
        "ROI {}x{}@({},{}) exceeds {}x{} frame",
        roi.width,
        roi.height,
        roi.x0,
        roi.y0,
        image.width(),
        image.height()
    );
    let mut out = Image::new(roi.width, roi.height);
    for y in 0..roi.height {
        for x in 0..roi.width {
            out.set(x, y, image.get(roi.x0 + x, roi.y0 + y));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_names_round_trip() {
        for s in Schedule::ALL {
            assert_eq!(Schedule::parse(s.name()), Some(s));
            assert_eq!(format!("{s}"), s.name());
        }
        assert_eq!(Schedule::parse("nope"), None);
        assert_eq!(Schedule::default(), Schedule::Reference);
    }

    #[test]
    fn every_schedule_builds_a_renderer() {
        for s in Schedule::ALL {
            let r = s.renderer();
            // Standard-family schedules report "standard", Gaussian-wise
            // ones "gaussian-wise"; the Schedule name is the stable key.
            assert!(!r.name().is_empty());
        }
    }

    #[test]
    fn options_validate_knob_ranges() {
        assert!(RenderOptions::default().validate().is_ok());
        assert_eq!(
            RenderOptions::default().at_resolution(0, 64).validate(),
            Err(JobError::ZeroResolution)
        );
        assert_eq!(
            RenderOptions::default()
                .with_roi(Roi::new(0, 0, 0, 4))
                .validate(),
            Err(JobError::EmptyRoi)
        );
        assert_eq!(
            RenderOptions::default().with_alpha_min(1.5).validate(),
            Err(JobError::AlphaMinOutOfRange(1.5))
        );
        assert!(RenderOptions::default()
            .with_alpha_min(f32::NAN)
            .validate()
            .is_err());
        assert_eq!(
            RenderOptions::default().with_sh_degree(4).validate(),
            Err(JobError::ShDegreeTooHigh(4))
        );
        assert_eq!(
            RenderOptions::default()
                .on_background(Vec3::new(f32::NAN, 0.0, 0.0))
                .validate(),
            Err(JobError::NonFinite {
                field: "background"
            })
        );
    }

    #[test]
    fn roi_bounds_are_checked_against_the_frame() {
        let roi = Roi::new(60, 0, 10, 10);
        assert!(roi.validate_within(70, 10).is_ok());
        assert_eq!(
            roi.validate_within(64, 64),
            Err(JobError::RoiOutOfBounds {
                roi,
                width: 64,
                height: 64
            })
        );
        assert!(roi.intersects(0, 0, 64, 64));
        assert!(!roi.intersects(0, 0, 60, 64));
        assert!(!Roi::new(8, 8, 4, 4).intersects(12, 8, 20, 12));
    }

    #[test]
    fn job_checks_resolution_consistency_with_camera() {
        let cam = Camera::look_at(
            Vec3::new(0.0, 0.0, -4.0),
            Vec3::ZERO,
            Vec3::new(0.0, 1.0, 0.0),
            60.0,
            96,
            64,
        );
        let ok = RenderJob::with_options(&[], &cam, RenderOptions::default().at_resolution(96, 64));
        assert!(ok.validate().is_ok());
        assert_eq!(ok.output_size(), (96, 64));
        let bad =
            RenderJob::with_options(&[], &cam, RenderOptions::default().at_resolution(128, 128));
        assert_eq!(
            bad.validate(),
            Err(JobError::ResolutionMismatch {
                camera: (96, 64),
                requested: (128, 128)
            })
        );
        let roi_job = RenderJob::with_options(
            &[],
            &cam,
            RenderOptions::default().with_roi(Roi::new(16, 8, 32, 16)),
        );
        assert_eq!(roi_job.output_size(), (32, 16));
    }

    #[test]
    fn crop_extracts_the_frame_rectangle() {
        let mut img = Image::new(8, 6);
        img.set(3, 2, Vec3::splat(0.7));
        let cropped = crop_image(&img, &Roi::new(2, 1, 4, 3));
        assert_eq!(cropped.width(), 4);
        assert_eq!(cropped.height(), 3);
        assert_eq!(cropped.get(1, 1), Vec3::splat(0.7));
        assert_eq!(cropped.get(0, 0), Vec3::ZERO);
    }
}
