//! Image-quality metrics for Table 2: PSNR, SSIM, a perceptual-distance
//! proxy standing in for LPIPS, and the pseudo-ground-truth anchoring
//! described in `DESIGN.md` §1.
//!
//! Table 2's claim is *parity*: GPU, GSCore and GCC renders differ by
//! <0.1 dB PSNR and indistinguishable LPIPS. The deviation between our
//! three renderers is measured honestly; only the absolute anchor (the
//! held-out photographs we do not have) is synthesized.

use crate::Image;
use gcc_math::Vec3;

/// Peak signal-to-noise ratio in dB between two images (channel values in
/// `[0, 1]`, peak = 1). Identical images return `f64::INFINITY`.
///
/// # Panics
///
/// Panics on image size mismatch.
pub fn psnr(a: &Image, b: &Image) -> f64 {
    let mse = a.mse(b);
    if mse <= 0.0 {
        f64::INFINITY
    } else {
        -10.0 * mse.log10()
    }
}

/// Global SSIM (luma, single scale, Gaussian-free uniform 8×8 windows) —
/// a compact structural-similarity implementation adequate for parity
/// checks.
///
/// # Panics
///
/// Panics on image size mismatch.
pub fn ssim(a: &Image, b: &Image) -> f64 {
    assert_eq!((a.width(), a.height()), (b.width(), b.height()));
    const C1: f64 = 0.01 * 0.01;
    const C2: f64 = 0.03 * 0.03;
    let luma = |c: Vec3| f64::from(0.299 * c.x + 0.587 * c.y + 0.114 * c.z);
    let (w, h) = (a.width(), a.height());
    let win = 8u32;
    let mut acc = 0.0f64;
    let mut n = 0u64;
    let mut wy = 0;
    while wy < h {
        let mut wx = 0;
        while wx < w {
            let x1 = (wx + win).min(w);
            let y1 = (wy + win).min(h);
            let count = f64::from((x1 - wx) * (y1 - wy));
            let (mut ma, mut mb) = (0.0f64, 0.0f64);
            for y in wy..y1 {
                for x in wx..x1 {
                    ma += luma(a.get(x, y));
                    mb += luma(b.get(x, y));
                }
            }
            ma /= count;
            mb /= count;
            let (mut va, mut vb, mut cov) = (0.0f64, 0.0f64, 0.0f64);
            for y in wy..y1 {
                for x in wx..x1 {
                    let da = luma(a.get(x, y)) - ma;
                    let db = luma(b.get(x, y)) - mb;
                    va += da * da;
                    vb += db * db;
                    cov += da * db;
                }
            }
            va /= count;
            vb /= count;
            cov /= count;
            let s = ((2.0 * ma * mb + C1) * (2.0 * cov + C2))
                / ((ma * ma + mb * mb + C1) * (va + vb + C2));
            acc += s;
            n += 1;
            wx += win;
        }
        wy += win;
    }
    acc / n as f64
}

/// Multi-scale gradient-structure distance in `[0, 1]` — the LPIPS
/// stand-in. Zero for identical images; grows with structural differences
/// the way a perceptual metric does (it compares local gradient fields at
/// three scales rather than raw pixels).
///
/// # Panics
///
/// Panics on image size mismatch.
pub fn perceptual_distance(a: &Image, b: &Image) -> f64 {
    assert_eq!((a.width(), a.height()), (b.width(), b.height()));
    let mut ia = a.clone();
    let mut ib = b.clone();
    let mut acc = 0.0f64;
    let mut scales = 0u32;
    for _ in 0..3 {
        acc += gradient_dissimilarity(&ia, &ib);
        scales += 1;
        if ia.width() < 16 || ia.height() < 16 {
            break;
        }
        ia = ia.downsample2();
        ib = ib.downsample2();
    }
    acc / f64::from(scales)
}

/// One-scale gradient dissimilarity: 1 − normalized correlation of the
/// horizontal+vertical gradient magnitude fields, scaled into [0, 1].
fn gradient_dissimilarity(a: &Image, b: &Image) -> f64 {
    let ga = gradient_mag(a);
    let gb = gradient_mag(b);
    let n = ga.len();
    let (mut dot, mut na, mut nb) = (0.0f64, 0.0f64, 0.0f64);
    for i in 0..n {
        dot += ga[i] * gb[i];
        na += ga[i] * ga[i];
        nb += gb[i] * gb[i];
    }
    if na <= 0.0 && nb <= 0.0 {
        return 0.0; // both flat: identical structure
    }
    if na <= 0.0 || nb <= 0.0 {
        return 1.0;
    }
    let corr = dot / (na.sqrt() * nb.sqrt());
    (1.0 - corr).clamp(0.0, 1.0)
}

fn gradient_mag(img: &Image) -> Vec<f64> {
    let (w, h) = (img.width(), img.height());
    let luma = |x: u32, y: u32| {
        let c = img.get(x, y);
        f64::from(0.299 * c.x + 0.587 * c.y + 0.114 * c.z)
    };
    let mut out = vec![0.0f64; (w * h) as usize];
    for y in 0..h.saturating_sub(1) {
        for x in 0..w.saturating_sub(1) {
            let gx = luma(x + 1, y) - luma(x, y);
            let gy = luma(x, y + 1) - luma(x, y);
            out[(y * w + x) as usize] = (gx * gx + gy * gy).sqrt();
        }
    }
    out
}

/// Builds the pseudo ground truth for a scene: the reference render plus a
/// deterministic residual field whose magnitude is chosen so that
/// `psnr(reference, pseudo_gt) == target_psnr_db` (the paper's "GPU" row).
/// GSCore/GCC renders measured against the same pseudo-GT then land within
/// their true deviation of the GPU row — exactly what Table 2 reports.
///
/// # Panics
///
/// Panics if `target_psnr_db` is not finite and positive.
pub fn pseudo_ground_truth(reference: &Image, target_psnr_db: f64, seed: u64) -> Image {
    assert!(
        target_psnr_db.is_finite() && target_psnr_db > 0.0,
        "bad PSNR target {target_psnr_db}"
    );
    let sigma = (10.0f64.powf(-target_psnr_db / 20.0)) as f32;
    let mut img = reference.clone();
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
    let mut next = move || {
        // xorshift64* — deterministic, dependency-free noise.
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        let v = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
        // Map to roughly N(0,1) by summing 4 uniforms (Irwin–Hall).
        let mut acc = 0.0f32;
        for k in 0..4 {
            let u = ((v >> (k * 16)) & 0xFFFF) as f32 / 65535.0;
            acc += u;
        }
        (acc - 2.0) * (12.0f32 / 4.0).sqrt()
    };
    for p in img.pixels_mut() {
        *p = Vec3::new(
            (p.x + sigma * next()).clamp(0.0, 1.0),
            (p.y + sigma * next()).clamp(0.0, 1.0),
            (p.z + sigma * next()).clamp(0.0, 1.0),
        );
    }
    img
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gradient_image(w: u32, h: u32, phase: f32) -> Image {
        let mut img = Image::new(w, h);
        for y in 0..h {
            for x in 0..w {
                let v = ((x as f32 * 0.3 + phase).sin() * 0.5 + 0.5) * (y as f32 / h as f32);
                img.set(x, y, Vec3::new(v, v * 0.8, 1.0 - v));
            }
        }
        img
    }

    #[test]
    fn psnr_of_identical_is_infinite() {
        let img = gradient_image(32, 32, 0.0);
        assert!(psnr(&img, &img).is_infinite());
    }

    #[test]
    fn psnr_of_known_mse() {
        let a = Image::filled(16, 16, Vec3::splat(0.5));
        let b = Image::filled(16, 16, Vec3::splat(0.6));
        // MSE = 0.01 → PSNR = 20 dB (f32 accumulation leaves ~1e-4 slack).
        assert!((psnr(&a, &b) - 20.0).abs() < 1e-3);
    }

    #[test]
    fn psnr_decreases_with_more_noise() {
        let img = gradient_image(64, 64, 0.0);
        let mild = pseudo_ground_truth(&img, 35.0, 7);
        let heavy = pseudo_ground_truth(&img, 20.0, 7);
        assert!(psnr(&img, &mild) > psnr(&img, &heavy));
    }

    #[test]
    fn ssim_identical_is_one() {
        let img = gradient_image(40, 40, 0.5);
        assert!((ssim(&img, &img) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ssim_detects_structural_change() {
        let a = gradient_image(40, 40, 0.0);
        let b = gradient_image(40, 40, 2.0);
        assert!(ssim(&a, &b) < 0.99);
    }

    #[test]
    fn perceptual_distance_zero_for_identical_and_positive_otherwise() {
        let a = gradient_image(64, 48, 0.0);
        assert_eq!(perceptual_distance(&a, &a), 0.0);
        let b = gradient_image(64, 48, 1.5);
        assert!(perceptual_distance(&a, &b) > 1e-4);
    }

    #[test]
    fn pseudo_gt_hits_the_target_psnr() {
        let img = gradient_image(128, 96, 0.7);
        for target in [25.0, 30.0, 36.0] {
            let gt = pseudo_ground_truth(&img, target, 42);
            let got = psnr(&img, &gt);
            // Clamping at [0,1] and quantized noise leave ~1 dB slack.
            assert!((got - target).abs() < 1.5, "target {target} got {got}");
        }
    }

    #[test]
    fn pseudo_gt_is_deterministic() {
        let img = gradient_image(32, 32, 0.1);
        let a = pseudo_ground_truth(&img, 30.0, 9);
        let b = pseudo_ground_truth(&img, 30.0, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn nearly_identical_renders_have_near_identical_scores() {
        // The Table 2 scenario: two renders differing by sub-1% arithmetic
        // noise measured against one pseudo-GT give PSNRs within 0.1 dB.
        let gpu = gradient_image(96, 96, 0.0);
        let mut gcc = gpu.clone();
        for (i, p) in gcc.pixels_mut().iter_mut().enumerate() {
            let d = ((i % 97) as f32 / 97.0 - 0.5) * 0.002;
            *p += Vec3::splat(d);
        }
        let gt = pseudo_ground_truth(&gpu, 30.0, 5);
        let p_gpu = psnr(&gpu, &gt);
        let p_gcc = psnr(&gcc, &gt);
        assert!(
            (p_gpu - p_gcc).abs() < 0.1,
            "PSNR spread {} vs {}",
            p_gpu,
            p_gcc
        );
    }
}
