//! Scalar ≡ SIMD parity pins at the full-render level.
//!
//! The dispatch layer's contract is that every SIMD backend is
//! *bit-identical* to the scalar reference (see `gcc_core::dispatch`).
//! These tests pin that contract where it matters — whole frames through
//! both schedules — by rendering the same scene once per available
//! backend (via the `backend` config override, so no process-global env
//! is touched) and across thread counts, and requiring bitwise-equal
//! images and identical statistics.
//!
//! CI runs this suite twice: once dispatched (default) and once under
//! `GCC_FORCE_SCALAR=1` (the `simd-matrix` job). Because the per-backend
//! pins here compare every supported backend against scalar in-process,
//! both runs prove the same equality from opposite directions.

use gcc_core::dispatch::{self, Backend};
use gcc_core::{Camera, Gaussian3D};
use gcc_math::Vec3;
use gcc_parallel::Parallelism;
use gcc_render::gaussian_wise::{render_gaussian_wise_with, GaussianWiseConfig};
use gcc_render::standard::{render_standard_with, StandardConfig};
use gcc_render::Image;

fn test_cam() -> Camera {
    Camera::look_at(
        Vec3::new(0.0, 0.0, -4.0),
        Vec3::ZERO,
        Vec3::new(0.0, 1.0, 0.0),
        60.0,
        160,
        120,
    )
}

/// A cloud with full SH bands, mixed opacities (including some beyond the
/// saturation threshold) and depth ties — every clamp branch and the sort
/// stability both get exercised.
fn cloud(n: usize) -> Vec<Gaussian3D> {
    let mut out: Vec<Gaussian3D> = (0..n)
        .map(|i| {
            let t = i as f32 / n as f32;
            let mut g = Gaussian3D::isotropic(
                Vec3::new((t * 13.0).sin() * 0.9, (t * 7.0).cos() * 0.6, t * 2.0 - 0.5),
                0.05 + 0.12 * t,
                0.05f32.max(t),
                Vec3::new(t, 1.0 - t, 0.5 + 0.4 * (t * 31.0).sin()),
            );
            // Populate higher SH bands so the degree-3 evaluation path is
            // fully live.
            for (j, c) in g.sh.iter_mut().enumerate().skip(1) {
                *c = ((i * 48 + j) as f32 * 0.37).sin() * 0.25;
            }
            g
        })
        .collect();
    // Exact depth duplicates: stable-order ties.
    let dup: Vec<Gaussian3D> = out.iter().take(n / 8).cloned().collect();
    out.extend(dup);
    out
}

fn assert_images_bitwise_equal(a: &Image, b: &Image, what: &str) {
    assert_eq!(a.width(), b.width(), "{what}: width");
    assert_eq!(a.height(), b.height(), "{what}: height");
    for (i, (pa, pb)) in a.pixels().iter().zip(b.pixels()).enumerate() {
        assert_eq!(pa.x.to_bits(), pb.x.to_bits(), "{what}: pixel {i} (r)");
        assert_eq!(pa.y.to_bits(), pb.y.to_bits(), "{what}: pixel {i} (g)");
        assert_eq!(pa.z.to_bits(), pb.z.to_bits(), "{what}: pixel {i} (b)");
    }
}

#[test]
fn standard_render_is_bit_identical_across_backends_and_threads() {
    let cam = test_cam();
    let g = cloud(400);
    let scalar_cfg = StandardConfig {
        backend: Some(Backend::Scalar),
        ..StandardConfig::default()
    };
    let reference = render_standard_with(&g, &cam, &scalar_cfg, Parallelism::Sequential);
    assert!(reference.stats.rendered > 0, "scene must be non-trivial");
    for backend in dispatch::available() {
        for threads in [1usize, 2, 4] {
            let cfg = StandardConfig {
                backend: Some(backend),
                ..StandardConfig::default()
            };
            let out = render_standard_with(&g, &cam, &cfg, Parallelism::fixed(threads));
            let what = format!("standard {backend} threads={threads}");
            assert_images_bitwise_equal(&reference.image, &out.image, &what);
            assert_eq!(reference.stats, out.stats, "{what}: stats");
        }
    }
}

#[test]
fn gaussian_wise_render_is_bit_identical_across_backends_and_threads() {
    let cam = test_cam();
    let g = cloud(300);
    for subview in [None, Some(48)] {
        let scalar_cfg = GaussianWiseConfig {
            backend: Some(Backend::Scalar),
            subview,
            ..GaussianWiseConfig::default()
        };
        let reference = render_gaussian_wise_with(&g, &cam, &scalar_cfg, Parallelism::Sequential);
        assert!(reference.stats.rendered > 0, "scene must be non-trivial");
        for backend in dispatch::available() {
            for threads in [1usize, 2, 4] {
                let cfg = GaussianWiseConfig {
                    backend: Some(backend),
                    subview,
                    ..GaussianWiseConfig::default()
                };
                let out = render_gaussian_wise_with(&g, &cam, &cfg, Parallelism::fixed(threads));
                let what = format!("gaussian-wise {backend} subview={subview:?} threads={threads}");
                assert_images_bitwise_equal(&reference.image, &out.image, &what);
                assert_eq!(reference.stats, out.stats, "{what}: stats");
            }
        }
    }
}

#[test]
fn dispatched_default_matches_pinned_scalar() {
    // `backend: None` routes through the process-wide selection (whatever
    // CPU this runs on, plus `GCC_FORCE_SCALAR` if the harness set it) —
    // the production path. It must land bit-exactly on the scalar pin.
    let cam = test_cam();
    let g = cloud(250);
    let dispatched = render_standard_with(
        &g,
        &cam,
        &StandardConfig::default(),
        Parallelism::Sequential,
    );
    let scalar = render_standard_with(
        &g,
        &cam,
        &StandardConfig {
            backend: Some(Backend::Scalar),
            ..StandardConfig::default()
        },
        Parallelism::Sequential,
    );
    let what = format!("dispatched ({})", dispatch::active_backend());
    assert_images_bitwise_equal(&scalar.image, &dispatched.image, &what);
    assert_eq!(scalar.stats, dispatched.stats, "{what}: stats");

    let gw_dispatched = render_gaussian_wise_with(
        &g,
        &cam,
        &GaussianWiseConfig::default(),
        Parallelism::Sequential,
    );
    let gw_scalar = render_gaussian_wise_with(
        &g,
        &cam,
        &GaussianWiseConfig {
            backend: Some(Backend::Scalar),
            ..GaussianWiseConfig::default()
        },
        Parallelism::Sequential,
    );
    assert_images_bitwise_equal(&gw_scalar.image, &gw_dispatched.image, &what);
    assert_eq!(gw_scalar.stats, gw_dispatched.stats, "{what}: gw stats");
}

#[test]
fn lut_datapath_is_untouched_by_backend_pins() {
    // The LUT exponential keeps the per-pixel path in every backend; the
    // backend knob must be a no-op there too.
    let cam = test_cam();
    let g = cloud(200);
    let base = GaussianWiseConfig::gcc_hardware();
    let reference = render_gaussian_wise_with(&g, &cam, &base, Parallelism::Sequential);
    for backend in dispatch::available() {
        let cfg = GaussianWiseConfig {
            backend: Some(backend),
            ..GaussianWiseConfig::gcc_hardware()
        };
        let out = render_gaussian_wise_with(&g, &cam, &cfg, Parallelism::Sequential);
        let what = format!("lut {backend}");
        assert_images_bitwise_equal(&reference.image, &out.image, &what);
        assert_eq!(reference.stats, out.stats, "{what}: stats");
    }
}
