//! `GCC_FORCE_SCALAR` routing test.
//!
//! Lives in its own integration-test binary on purpose: the active kernel
//! set is resolved once per process (`OnceLock`), so the env var must be
//! set before anything touches the dispatcher, and no other test may run
//! in this process with a different expectation. Keep this file to this
//! single test.

use gcc_core::dispatch::{self, Backend};

#[test]
fn force_scalar_env_routes_to_scalar_backend() {
    // Set before the first `active()` call anywhere in this process.
    std::env::set_var(dispatch::FORCE_SCALAR_ENV, "1");
    assert_eq!(dispatch::active_backend(), Backend::Scalar);
    assert_eq!(dispatch::active().backend, Backend::Scalar);
    // The forced choice is sticky for the process lifetime.
    std::env::remove_var(dispatch::FORCE_SCALAR_ENV);
    assert_eq!(dispatch::active_backend(), Backend::Scalar);
}
