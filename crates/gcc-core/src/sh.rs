//! Third-order real spherical harmonics color evaluation (paper Eq. 2).
//!
//! 3DGS represents view-dependent color with 16 SH coefficients per channel.
//! The GCC SH Unit evaluates the basis once per Gaussian (for the direction
//! from the camera to the Gaussian center) and takes one dot product per
//! channel; this module is the arithmetic it performs.

use crate::gaussian::{SH_COEFFS_PER_CHANNEL, SH_FLOATS};
use gcc_math::Vec3;

/// Degree-0 SH constant (`1 / (2√π)`).
pub const SH_C0: f32 = 0.282_094_79;

/// Degree-1 SH constant.
pub const SH_C1: f32 = 0.488_602_51;

/// Degree-2 SH constants.
pub const SH_C2: [f32; 5] = [
    1.092_548_4,
    -1.092_548_4,
    0.315_391_57,
    -1.092_548_4,
    0.546_274_2,
];

/// Degree-3 SH constants.
pub const SH_C3: [f32; 7] = [
    -0.590_043_6,
    2.890_611_4,
    -0.457_045_8,
    0.373_176_3,
    -0.457_045_8,
    1.445_305_7,
    -0.590_043_6,
];

/// Evaluates the 16 third-order real SH basis functions at unit direction
/// `d`, in the 3DGS coefficient order (l-major, then m).
///
/// # Panics
///
/// Debug builds panic when `d` is far from unit length.
pub fn basis(d: Vec3) -> [f32; SH_COEFFS_PER_CHANNEL] {
    debug_assert!(
        (d.norm() - 1.0).abs() < 1e-3,
        "SH basis expects a unit direction, |d| = {}",
        d.norm()
    );
    let (x, y, z) = (d.x, d.y, d.z);
    let (xx, yy, zz) = (x * x, y * y, z * z);
    let (xy, yz, xz) = (x * y, y * z, x * z);
    [
        SH_C0,
        -SH_C1 * y,
        SH_C1 * z,
        -SH_C1 * x,
        SH_C2[0] * xy,
        SH_C2[1] * yz,
        SH_C2[2] * (2.0 * zz - xx - yy),
        SH_C2[3] * xz,
        SH_C2[4] * (xx - yy),
        SH_C3[0] * y * (3.0 * xx - yy),
        SH_C3[1] * xy * z,
        SH_C3[2] * y * (4.0 * zz - xx - yy),
        SH_C3[3] * z * (2.0 * zz - 3.0 * xx - 3.0 * yy),
        SH_C3[4] * x * (4.0 * zz - xx - yy),
        SH_C3[5] * z * (xx - yy),
        SH_C3[6] * x * (xx - 3.0 * yy),
    ]
}

/// Evaluates the RGB color of a Gaussian for view direction `dir`
/// (unit vector from the camera position toward the Gaussian center),
/// reproducing the 3DGS convention `color = Σ c·f + 0.5`, clamped to be
/// non-negative.
pub fn eval_color(sh: &[f32; SH_FLOATS], dir: Vec3) -> Vec3 {
    eval_color_deg(sh, dir, 3)
}

/// [`eval_color`] truncated to SH bands `l ≤ degree`: only the leading
/// `(degree + 1)²` coefficients per channel contribute, in the same
/// accumulation order as the full evaluation — at `degree = 3` the result
/// is bit-identical to [`eval_color`]. Degrees above 3 clamp to 3. This is
/// the arithmetic behind the per-request SH degree clamp quality knob.
pub fn eval_color_deg(sh: &[f32; SH_FLOATS], dir: Vec3, degree: u8) -> Vec3 {
    let b = basis(dir);
    let n =
        ((degree.min(3) as usize + 1) * (degree.min(3) as usize + 1)).min(SH_COEFFS_PER_CHANNEL);
    let mut rgb = [0.0f32; 3];
    for (c, out) in rgb.iter_mut().enumerate() {
        let coeffs = &sh[c * SH_COEFFS_PER_CHANNEL..(c + 1) * SH_COEFFS_PER_CHANNEL];
        let mut acc = 0.0f32;
        for (cf, bf) in coeffs[..n].iter().zip(b.iter()) {
            acc += cf * bf;
        }
        *out = (acc + 0.5).max(0.0);
    }
    Vec3::new(rgb[0], rgb[1], rgb[2])
}

/// Evaluates only the degree-0 (view-independent) color term — what a
/// pipeline would see if it skipped the 45 higher-order coefficients.
/// Used by ablation benches to quantify the value of full SH.
pub fn eval_color_dc(sh: &[f32; SH_FLOATS], _dir: Vec3) -> Vec3 {
    let mut rgb = [0.0f32; 3];
    for (c, out) in rgb.iter_mut().enumerate() {
        *out = (sh[c * SH_COEFFS_PER_CHANNEL] * SH_C0 + 0.5).max(0.0);
    }
    Vec3::new(rgb[0], rgb[1], rgb[2])
}

/// Number of fused multiply-adds one full RGB SH evaluation costs
/// (16 basis dot 3 channels plus basis construction), used by the cycle
/// and energy models.
pub const FMA_PER_EVAL: u64 = 16 * 3 + 24;

#[cfg(test)]
mod tests {
    use super::*;
    use gcc_math::approx_eq;

    fn unit(v: Vec3) -> Vec3 {
        v.normalized()
    }

    #[test]
    fn dc_term_is_direction_independent() {
        let mut sh = [0.0f32; SH_FLOATS];
        sh[0] = 1.0;
        sh[16] = -0.5;
        sh[32] = 0.25;
        let a = eval_color(&sh, unit(Vec3::new(1.0, 0.3, -0.2)));
        let b = eval_color(&sh, unit(Vec3::new(-0.7, 0.1, 0.9)));
        assert!((a - b).norm() < 1e-6);
    }

    #[test]
    fn degree1_term_flips_with_direction() {
        let mut sh = [0.0f32; SH_FLOATS];
        sh[2] = 1.0; // R channel, z-linear basis
        let plus = eval_color(&sh, Vec3::new(0.0, 0.0, 1.0));
        let minus = eval_color(&sh, Vec3::new(0.0, 0.0, -1.0));
        // color = ±C1 + 0.5 (clamped at 0).
        assert!(approx_eq(plus.x, SH_C1 + 0.5, 1e-5));
        assert!(approx_eq(minus.x, (0.5 - SH_C1).max(0.0), 1e-5));
    }

    #[test]
    fn basis_orthogonality_monte_carlo() {
        // ∫ f_i f_j dΩ = δ_ij; a fixed lattice of directions approximates
        // the integral well enough to check orthonormality to ~5%.
        let n_theta = 64;
        let n_phi = 128;
        let mut gram = [[0.0f64; 4]; 4]; // spot-check first 4 functions
        for it in 0..n_theta {
            let theta = std::f64::consts::PI * (it as f64 + 0.5) / n_theta as f64;
            for ip in 0..n_phi {
                let phi = 2.0 * std::f64::consts::PI * ip as f64 / n_phi as f64;
                let d = Vec3::new(
                    (theta.sin() * phi.cos()) as f32,
                    (theta.sin() * phi.sin()) as f32,
                    theta.cos() as f32,
                );
                let b = basis(d);
                let w = theta.sin() * std::f64::consts::PI / n_theta as f64
                    * 2.0
                    * std::f64::consts::PI
                    / n_phi as f64;
                for i in 0..4 {
                    for j in 0..4 {
                        gram[i][j] += f64::from(b[i]) * f64::from(b[j]) * w;
                    }
                }
            }
        }
        for (i, row) in gram.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!(
                    (v - expect).abs() < 0.05,
                    "gram[{i}][{j}] = {v}, expected {expect}"
                );
            }
        }
    }

    #[test]
    fn negative_colors_clamp_to_zero() {
        let mut sh = [0.0f32; SH_FLOATS];
        sh[0] = -10.0;
        let c = eval_color(&sh, Vec3::new(0.0, 0.0, 1.0));
        assert_eq!(c.x, 0.0);
    }

    #[test]
    fn dc_only_eval_matches_full_eval_for_dc_only_sh() {
        let mut sh = [0.0f32; SH_FLOATS];
        sh[0] = 0.9;
        sh[16] = 0.4;
        sh[32] = -0.1;
        let d = unit(Vec3::new(0.2, -0.5, 0.8));
        let full = eval_color(&sh, d);
        let dc = eval_color_dc(&sh, d);
        assert!((full - dc).norm() < 1e-6);
    }

    #[test]
    fn degree3_clamp_is_bit_identical_to_full_eval() {
        let mut sh = [0.0f32; SH_FLOATS];
        for (i, v) in sh.iter_mut().enumerate() {
            *v = ((i as f32) * 0.37).sin() * 0.4;
        }
        let d = unit(Vec3::new(0.2, -0.5, 0.8));
        let full = eval_color(&sh, d);
        let clamped = eval_color_deg(&sh, d, 3);
        assert_eq!(full.x.to_bits(), clamped.x.to_bits());
        assert_eq!(full.y.to_bits(), clamped.y.to_bits());
        assert_eq!(full.z.to_bits(), clamped.z.to_bits());
        // Degrees above 3 clamp to 3.
        assert_eq!(eval_color_deg(&sh, d, 7), clamped);
    }

    #[test]
    fn degree0_clamp_matches_dc_eval() {
        let mut sh = [0.0f32; SH_FLOATS];
        for (i, v) in sh.iter_mut().enumerate() {
            *v = ((i as f32) * 0.61).cos() * 0.3;
        }
        let d = unit(Vec3::new(-0.4, 0.9, 0.1));
        let dc = eval_color_dc(&sh, d);
        let deg0 = eval_color_deg(&sh, d, 0);
        assert!((dc - deg0).norm() < 1e-6);
        // Lower degrees drop view dependence monotonically: degree 1 uses
        // strictly fewer coefficients than degree 2.
        let d1 = eval_color_deg(&sh, d, 1);
        let d2 = eval_color_deg(&sh, d, 2);
        assert_ne!(d1, d2);
    }

    #[test]
    fn basis_values_are_finite_everywhere() {
        for i in 0..100 {
            let t = i as f32 / 100.0 * std::f32::consts::PI;
            for j in 0..100 {
                let p = j as f32 / 100.0 * 2.0 * std::f32::consts::PI;
                let d = Vec3::new(t.sin() * p.cos(), t.sin() * p.sin(), t.cos());
                for v in basis(d) {
                    assert!(v.is_finite());
                }
            }
        }
    }
}
