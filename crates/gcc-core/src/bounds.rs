//! Gaussian footprint bounding: the 3σ rule (paper Eq. 6), GCC's
//! opacity-aware ω-σ law (Eq. 8), AABB/OBB footprints (Fig. 4, Table 1) and
//! the exact alpha ellipse test (Eq. 7).

use crate::{ALPHA_MAX, ALPHA_MIN};
use gcc_math::{SymMat2, Vec2};

/// Which law converts a projected covariance into a bounding radius.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BoundingLaw {
    /// The conventional fixed `3σ` envelope: `r = ⌈3·√λmax⌉` (Eq. 6),
    /// used by GPU 3DGS and GSCore regardless of opacity.
    ThreeSigma,
    /// GCC's ω-σ law: `r = ⌈√(2·ln(255ω)·λmax)⌉` (Eq. 8) — the envelope
    /// inside which `α` can still reach `1/255` given the opacity.
    OmegaSigma,
}

/// Squared Mahalanobis extent of the `3σ` envelope (Eq. 5's right side).
pub const THREE_SIGMA_SQ: f32 = 9.0;

/// Squared Mahalanobis extent of the ω-σ envelope for opacity `ω`
/// (Eq. 7's right side): `2·ln(255·ω)`. Non-positive when `ω ≤ 1/255`,
/// meaning the Gaussian can never contribute a visible alpha.
pub fn omega_sigma_extent_sq(opacity: f32) -> f32 {
    2.0 * (255.0 * opacity).ln()
}

/// Bounding radius in pixels for a projected covariance with maximum
/// eigenvalue `lambda_max`, under the chosen law. Returns `0.0` when the
/// envelope is empty (ω-σ with `ω ≤ 1/255`).
pub fn bounding_radius(law: BoundingLaw, lambda_max: f32, opacity: f32) -> f32 {
    let extent_sq = match law {
        BoundingLaw::ThreeSigma => THREE_SIGMA_SQ,
        BoundingLaw::OmegaSigma => omega_sigma_extent_sq(opacity),
    };
    if extent_sq <= 0.0 || lambda_max <= 0.0 {
        return 0.0;
    }
    (extent_sq * lambda_max).sqrt().ceil()
}

/// Integer pixel rectangle, clipped to the screen: the AABB footprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PixelRect {
    /// Inclusive minimum x.
    pub x0: i32,
    /// Inclusive minimum y.
    pub y0: i32,
    /// Exclusive maximum x.
    pub x1: i32,
    /// Exclusive maximum y.
    pub y1: i32,
}

impl PixelRect {
    /// Empty rectangle.
    pub const EMPTY: Self = Self {
        x0: 0,
        y0: 0,
        x1: 0,
        y1: 0,
    };

    /// Builds the screen-clipped AABB of a circle at `center` with
    /// radius `r` on a `width × height` screen.
    pub fn from_circle(center: Vec2, r: f32, width: u32, height: u32) -> Self {
        if r <= 0.0 {
            return Self::EMPTY;
        }
        let x0 = (center.x - r).floor().max(0.0) as i32;
        let y0 = (center.y - r).floor().max(0.0) as i32;
        let x1 = ((center.x + r).ceil() as i32 + 1).min(width as i32);
        let y1 = ((center.y + r).ceil() as i32 + 1).min(height as i32);
        if x0 >= x1 || y0 >= y1 {
            return Self::EMPTY;
        }
        Self { x0, y0, x1, y1 }
    }

    /// `true` when the rectangle contains no pixels.
    pub fn is_empty(&self) -> bool {
        self.x0 >= self.x1 || self.y0 >= self.y1
    }

    /// Number of pixels covered.
    pub fn area(&self) -> u64 {
        if self.is_empty() {
            0
        } else {
            (self.x1 - self.x0) as u64 * (self.y1 - self.y0) as u64
        }
    }

    /// Iterates over `(x, y)` pixel coordinates in scanline order.
    pub fn pixels(&self) -> impl Iterator<Item = (i32, i32)> + '_ {
        let (x0, x1) = (self.x0, self.x1);
        (self.y0..self.y1).flat_map(move |y| (x0..x1).map(move |x| (x, y)))
    }

    /// Range of 16×16 tiles this rectangle overlaps (used for tile binning
    /// in the standard dataflow). Returns `(tx0, ty0, tx1, ty1)` with
    /// exclusive upper bounds.
    pub fn tile_range(&self, tile: u32) -> (u32, u32, u32, u32) {
        if self.is_empty() {
            return (0, 0, 0, 0);
        }
        let t = tile as i32;
        (
            (self.x0 / t) as u32,
            (self.y0 / t) as u32,
            ((self.x1 - 1) / t + 1) as u32,
            ((self.y1 - 1) / t + 1) as u32,
        )
    }
}

/// Oriented bounding box of a splat ellipse (GSCore's tightened footprint):
/// centered at the projected mean, axes along the covariance eigenvectors,
/// half-lengths set by the bounding law applied per-eigenvalue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Obb {
    /// Projected Gaussian center.
    pub center: Vec2,
    /// Unit major-axis direction.
    pub axis_major: Vec2,
    /// Half-length along the major axis.
    pub half_major: f32,
    /// Half-length along the minor axis.
    pub half_minor: f32,
}

impl Obb {
    /// Builds the OBB of the ellipse defined by covariance `cov` (screen
    /// space) at `center`, under `law` with opacity `opacity`.
    /// Returns `None` when the envelope is empty.
    pub fn from_cov(center: Vec2, cov: SymMat2, law: BoundingLaw, opacity: f32) -> Option<Self> {
        let (l1, l2) = cov.eigenvalues();
        let extent_sq = match law {
            BoundingLaw::ThreeSigma => THREE_SIGMA_SQ,
            BoundingLaw::OmegaSigma => omega_sigma_extent_sq(opacity),
        };
        if extent_sq <= 0.0 || l1 <= 0.0 {
            return None;
        }
        Some(Self {
            center,
            axis_major: cov.major_axis(),
            half_major: (extent_sq * l1).sqrt(),
            half_minor: (extent_sq * l2.max(0.0)).sqrt(),
        })
    }

    /// `true` when the pixel center `(x + 0.5, y + 0.5)` lies inside.
    pub fn contains(&self, x: i32, y: i32) -> bool {
        let p = Vec2::new(x as f32 + 0.5, y as f32 + 0.5) - self.center;
        let along = p.dot(self.axis_major).abs();
        let across = p.cross(self.axis_major).abs();
        along <= self.half_major && across <= self.half_minor
    }

    /// Half-open pixel-x interval of row `y`, clipped to `[x0, x1)`, whose
    /// pixel centers lie inside the OBB — the analytic counterpart of
    /// testing [`Self::contains`] per pixel. Both OBB coordinates are
    /// linear in `x`, so containment is the intersection of two slabs:
    /// two divisions per row replace two products and two comparisons per
    /// pixel. The span is tight (boundary pixels may differ from the
    /// per-pixel test by at most the last-ulp rounding of the slab edge),
    /// deterministic, and identical across thread counts.
    pub fn row_span(&self, x0: i32, x1: i32, y: i32) -> (i32, i32) {
        // v(x) = s·(x + 0.5 − cx) + t0 with |v| ≤ h, for both coordinates.
        fn slab(s: f64, t0: f64, h: f64, span: (f64, f64)) -> (f64, f64) {
            if s == 0.0 {
                if t0.abs() <= h {
                    span
                } else {
                    // Properly inverted (lo > hi): a failed axis-aligned
                    // gate excludes the whole row, not all-but-one pixel.
                    (f64::INFINITY, f64::NEG_INFINITY)
                }
            } else {
                let (a, b) = ((-h - t0) / s, (h - t0) / s);
                let (lo, hi) = if s > 0.0 { (a, b) } else { (b, a) };
                (span.0.max(lo), span.1.min(hi))
            }
        }
        let dy = f64::from(y) + 0.5 - f64::from(self.center.y);
        let ax = f64::from(self.axis_major.x);
        let ay = f64::from(self.axis_major.y);
        // Solve over u = x + 0.5 − cx: along = ax·u + ay·dy, across = ay·u − ax·dy.
        let u0 = f64::from(x0) + 0.5 - f64::from(self.center.x);
        let u1 = f64::from(x1 - 1) + 0.5 - f64::from(self.center.x);
        let mut span = (u0, u1); // inclusive real interval over u
        span = slab(ax, ay * dy, f64::from(self.half_major), span);
        span = slab(ay, -ax * dy, f64::from(self.half_minor), span);
        if span.0 > span.1 {
            return (x0, x0);
        }
        let cx = f64::from(self.center.x);
        let lo = (span.0 + cx - 0.5).ceil().max(f64::from(x0)) as i32;
        let hi = ((span.1 + cx - 0.5).floor() + 1.0).min(f64::from(x1)) as i32;
        if lo >= hi {
            (x0, x0)
        } else {
            (lo, hi)
        }
    }

    /// Builds a multi-row span walker starting at row `y0`: successive
    /// [`ObbSpanWalker::next_span`] calls return the [`Self::row_span`]
    /// result for `y0`, `y0 + 1`, … with the slab endpoints advanced by
    /// forward differences (they are linear in `y`), replacing the
    /// per-row divisions with adds. Endpoints are stepped in `f64`, so
    /// the drift across a tile's ≤16 rows is far below the half-pixel
    /// granularity of the span rounding.
    pub fn span_walker(&self, x0: i32, x1: i32, y0: i32) -> ObbSpanWalker {
        let dy = f64::from(y0) + 0.5 - f64::from(self.center.y);
        let ax = f64::from(self.axis_major.x);
        let ay = f64::from(self.axis_major.y);
        // Slab i: |sᵢ·u + tᵢ(dy)| ≤ hᵢ over u = x + 0.5 − cx, with
        // t₁ = ay·dy (along) and t₂ = −ax·dy (across). For sᵢ ≠ 0 the
        // interval endpoints (±hᵢ − tᵢ)/sᵢ are linear in dy; an exactly
        // axis-aligned slab (sᵢ = 0) constrains the row as a whole
        // instead, via |tᵢ| ≤ hᵢ.
        let mut slabs = [ObbSlab::default(); 2];
        for (slab, (s, t0, dt, h)) in slabs.iter_mut().zip([
            (ax, ay * dy, ay, f64::from(self.half_major)),
            (ay, -ax * dy, -ax, f64::from(self.half_minor)),
        ]) {
            *slab = if s == 0.0 {
                ObbSlab {
                    lo: f64::NEG_INFINITY,
                    hi: f64::INFINITY,
                    step: 0.0,
                    gate: Some((t0, dt, h)),
                }
            } else {
                let (a, b) = ((-h - t0) / s, (h - t0) / s);
                let (lo, hi) = if s > 0.0 { (a, b) } else { (b, a) };
                ObbSlab {
                    lo,
                    hi,
                    step: -dt / s,
                    gate: None,
                }
            };
        }
        ObbSpanWalker {
            slabs,
            x0,
            x1,
            u_to_x: f64::from(self.center.x) - 0.5,
        }
    }

    /// Enclosing AABB, clipped to the screen.
    pub fn enclosing_rect(&self, width: u32, height: u32) -> PixelRect {
        let a = self.axis_major * self.half_major;
        let b = Vec2::new(-self.axis_major.y, self.axis_major.x) * self.half_minor;
        let ext = Vec2::new(a.x.abs() + b.x.abs(), a.y.abs() + b.y.abs());
        let r = ext.max_component().max(ext.x.max(ext.y));
        let _ = r;
        let x0 = (self.center.x - ext.x).floor().max(0.0) as i32;
        let y0 = (self.center.y - ext.y).floor().max(0.0) as i32;
        let x1 = ((self.center.x + ext.x).ceil() as i32 + 1).min(width as i32);
        let y1 = ((self.center.y + ext.y).ceil() as i32 + 1).min(height as i32);
        if x0 >= x1 || y0 >= y1 {
            PixelRect::EMPTY
        } else {
            PixelRect { x0, y0, x1, y1 }
        }
    }

    /// Number of screen pixels inside the OBB (Table 1's "OBB" row).
    pub fn pixel_count(&self, width: u32, height: u32) -> u64 {
        let rect = self.enclosing_rect(width, height);
        rect.pixels().filter(|&(x, y)| self.contains(x, y)).count() as u64
    }
}

/// One slab constraint of an [`ObbSpanWalker`], as a `u`-interval with a
/// per-row forward-difference step. An exactly axis-aligned slab instead
/// gates whole rows through `|t| ≤ h` with `t` stepping per row.
#[derive(Debug, Clone, Copy, Default)]
struct ObbSlab {
    lo: f64,
    hi: f64,
    step: f64,
    gate: Option<(f64, f64, f64)>,
}

/// Multi-row OBB span walker built by [`Obb::span_walker`]: yields the
/// per-row pixel spans of consecutive rows with adds instead of divisions.
#[derive(Debug, Clone, Copy)]
pub struct ObbSpanWalker {
    slabs: [ObbSlab; 2],
    x0: i32,
    x1: i32,
    u_to_x: f64,
}

impl ObbSpanWalker {
    /// Span of the current row (half-open, clipped to `[x0, x1)`), then
    /// advances to the next row.
    #[inline]
    pub fn next_span(&mut self) -> (i32, i32) {
        let mut lo = f64::from(self.x0) - self.u_to_x;
        let mut hi = f64::from(self.x1 - 1) - self.u_to_x;
        let mut gated_out = false;
        for slab in &mut self.slabs {
            if let Some((t, dt, h)) = slab.gate.as_mut() {
                if t.abs() > *h {
                    gated_out = true;
                }
                *t += *dt;
            } else {
                lo = lo.max(slab.lo);
                hi = hi.min(slab.hi);
                slab.lo += slab.step;
                slab.hi += slab.step;
            }
        }
        if gated_out || lo > hi {
            return (self.x0, self.x0);
        }
        let px_lo = ((lo + self.u_to_x).ceil().max(f64::from(self.x0))) as i32;
        let px_hi = (((hi + self.u_to_x).floor() + 1.0).min(f64::from(self.x1))) as i32;
        if px_lo >= px_hi {
            (self.x0, self.x0)
        } else {
            (px_lo, px_hi)
        }
    }
}

/// The exact per-pixel effectiveness test `E(p)` of Eq. 7 / Algorithm 1:
/// `true` when the alpha at pixel `(x, y)` can reach `ALPHA_MIN`, i.e.
/// `(p − μ′)ᵀ Σ′⁻¹ (p − μ′) ≤ 2·ln(255·ω)`.
#[derive(Debug, Clone, Copy)]
pub struct EffectiveTest {
    /// Projected center μ′.
    pub mean: Vec2,
    /// Conic Σ′⁻¹.
    pub conic: SymMat2,
    /// Right-hand side `2·ln(255·ω)`.
    pub extent_sq: f32,
}

impl EffectiveTest {
    /// Builds the test for a projected Gaussian.
    pub fn new(mean: Vec2, conic: SymMat2, opacity: f32) -> Self {
        Self {
            mean,
            conic,
            extent_sq: omega_sigma_extent_sq(opacity),
        }
    }

    /// Evaluates `E` at the pixel center.
    pub fn passes(&self, x: i32, y: i32) -> bool {
        if self.extent_sq <= 0.0 {
            return false;
        }
        let d = Vec2::new(x as f32 + 0.5, y as f32 + 0.5) - self.mean;
        self.conic.quad_form(d) <= self.extent_sq
    }

    /// Counts effective pixels by exhaustive scan of `rect`
    /// (Table 1's "Rendered" row at the per-Gaussian level).
    pub fn count_in_rect(&self, rect: PixelRect) -> u64 {
        rect.pixels().filter(|&(x, y)| self.passes(x, y)).count() as u64
    }
}

/// Alpha value at a pixel for a projected Gaussian (deterministic
/// exponential, [`gcc_math::exp::det_exp`]):
/// `α = min(0.99, exp(lnω − ½·dᵀΣ′⁻¹d))` (Eq. 9). Contributions below
/// `1/255` are reported as `0.0` — the rasterizer skips them.
pub fn alpha_at(mean: Vec2, conic: SymMat2, ln_opacity: f32, x: i32, y: i32) -> f32 {
    let d = Vec2::new(x as f32 + 0.5, y as f32 + 0.5) - mean;
    let power = ln_opacity - 0.5 * conic.quad_form(d);
    // Same clamp sequence as `ExpMode::Exact` (det_exp needs its input
    // confined to the alpha domain; see its docs).
    let e = if power < gcc_math::exp::EXP_INPUT_MIN {
        0.0
    } else if power >= 0.0 {
        1.0
    } else {
        gcc_math::exp::det_exp(power)
    };
    let a = e.min(ALPHA_MAX);
    if a < ALPHA_MIN {
        0.0
    } else {
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcc_math::approx_eq;

    #[test]
    fn omega_sigma_crossover_at_omega_0_35() {
        // 2·ln(255ω) = 9 at ω = e^4.5/255 ≈ 0.353: below that the ω-σ
        // envelope is tighter than 3σ (Fig. 4(b)); at ω = 1 it is slightly
        // larger (√(2·ln255) ≈ 3.33σ, Fig. 4(a)).
        for op in [0.3, 0.1, 0.01, 0.005] {
            let r_fixed = bounding_radius(BoundingLaw::ThreeSigma, 4.0, op);
            let r_dyn = bounding_radius(BoundingLaw::OmegaSigma, 4.0, op);
            assert!(
                r_dyn <= r_fixed,
                "ω-σ radius {r_dyn} > 3σ radius {r_fixed} at ω = {op}"
            );
        }
        let r_full = bounding_radius(BoundingLaw::OmegaSigma, 4.0, 1.0);
        let r_3s = bounding_radius(BoundingLaw::ThreeSigma, 4.0, 1.0);
        assert!(r_full >= r_3s, "ω = 1 envelope should reach ≥ 3σ");
    }

    #[test]
    fn omega_sigma_at_full_opacity_is_about_3_3_sigma() {
        // 2·ln(255) ≈ 11.08, √11.08 ≈ 3.33σ — slightly larger than 3σ,
        // exactly as Fig. 4(a) shows for ω = 1.
        let e = omega_sigma_extent_sq(1.0);
        assert!(approx_eq(e.sqrt(), 3.33, 0.01));
    }

    #[test]
    fn invisible_opacity_gives_empty_envelope() {
        assert_eq!(
            bounding_radius(BoundingLaw::OmegaSigma, 10.0, 1.0 / 255.0),
            0.0
        );
        assert_eq!(bounding_radius(BoundingLaw::OmegaSigma, 10.0, 0.001), 0.0);
    }

    #[test]
    fn radius_is_ceiled() {
        let r = bounding_radius(BoundingLaw::ThreeSigma, 1.0, 1.0);
        assert_eq!(r, 3.0);
        let r2 = bounding_radius(BoundingLaw::ThreeSigma, 1.1, 1.0);
        assert_eq!(r2, (3.0f32 * 1.1f32.sqrt()).ceil());
    }

    #[test]
    fn rect_clipping_to_screen() {
        let r = PixelRect::from_circle(Vec2::new(5.0, 5.0), 10.0, 64, 64);
        assert_eq!(r.x0, 0);
        assert_eq!(r.y0, 0);
        assert!(r.x1 <= 64 && r.y1 <= 64);
        let off = PixelRect::from_circle(Vec2::new(-20.0, -20.0), 5.0, 64, 64);
        assert!(off.is_empty());
        assert_eq!(off.area(), 0);
    }

    #[test]
    fn rect_pixels_iterates_area() {
        let r = PixelRect {
            x0: 2,
            y0: 3,
            x1: 5,
            y1: 5,
        };
        let v: Vec<_> = r.pixels().collect();
        assert_eq!(v.len() as u64, r.area());
        assert_eq!(v[0], (2, 3));
        assert_eq!(*v.last().unwrap(), (4, 4));
    }

    #[test]
    fn tile_range_covers_rect() {
        let r = PixelRect {
            x0: 10,
            y0: 16,
            x1: 33,
            y1: 48,
        };
        let (tx0, ty0, tx1, ty1) = r.tile_range(16);
        assert_eq!((tx0, ty0), (0, 1));
        assert_eq!((tx1, ty1), (3, 3));
    }

    #[test]
    fn obb_is_tighter_than_aabb_for_diagonal_ellipse() {
        // Long thin ellipse at 45°: the AABB wastes most of its area.
        let cov = SymMat2::new(50.0, 45.0, 50.0); // eigen ~95, ~5
        let center = Vec2::new(100.0, 100.0);
        let obb = Obb::from_cov(center, cov, BoundingLaw::ThreeSigma, 1.0).unwrap();
        let aabb_r = bounding_radius(BoundingLaw::ThreeSigma, 95.0, 1.0);
        let aabb = PixelRect::from_circle(center, aabb_r, 256, 256);
        let obb_pixels = obb.pixel_count(256, 256);
        assert!(
            obb_pixels < aabb.area() / 2,
            "OBB {obb_pixels} vs AABB {}",
            aabb.area()
        );
    }

    #[test]
    fn obb_contains_its_center() {
        let obb = Obb::from_cov(
            Vec2::new(50.0, 50.0),
            SymMat2::new(9.0, 0.0, 4.0),
            BoundingLaw::ThreeSigma,
            1.0,
        )
        .unwrap();
        assert!(obb.contains(50, 50));
        assert!(!obb.contains(80, 50));
    }

    #[test]
    fn obb_row_span_matches_containment_away_from_edges() {
        // The analytic span and the per-pixel test may disagree only for
        // pixels within float rounding of the OBB edge; everything clearly
        // inside must be in the span and everything clearly outside must
        // not be.
        for (ca, cb, cc) in [(30.0, 18.0, 20.0), (50.0, -35.0, 40.0), (9.0, 0.0, 4.0)] {
            let obb = Obb::from_cov(
                Vec2::new(40.3, 37.8),
                SymMat2::new(ca, cb, cc),
                BoundingLaw::ThreeSigma,
                0.8,
            )
            .unwrap();
            for y in 0..80 {
                let (sx0, sx1) = obb.row_span(0, 80, y);
                for x in 0..80 {
                    let p = Vec2::new(x as f32 + 0.5, y as f32 + 0.5) - obb.center;
                    let margin = (p.dot(obb.axis_major).abs() / obb.half_major)
                        .max(p.cross(obb.axis_major).abs() / obb.half_minor);
                    if margin < 1.0 - 1e-4 {
                        assert!(
                            (sx0..sx1).contains(&x),
                            "inside pixel ({x},{y}) not in span [{sx0},{sx1}) for ({ca},{cb},{cc})"
                        );
                    } else if margin > 1.0 + 1e-4 {
                        assert!(
                            !(sx0..sx1).contains(&x),
                            "outside pixel ({x},{y}) in span [{sx0},{sx1}) for ({ca},{cb},{cc})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn axis_aligned_obb_rows_outside_are_empty() {
        // Regression: a failed axis-aligned slab gate must exclude the
        // whole row — not collapse to a one-pixel point interval. This
        // vertical-major OBB (half_major 30 along y) has no pixels on
        // row 0, which sits ~49 px above it.
        let obb = Obb::from_cov(
            Vec2::new(8.0, 50.0),
            SymMat2::new(16.0, 0.0, 100.0),
            BoundingLaw::ThreeSigma,
            0.8,
        )
        .unwrap();
        assert!((0..16).all(|x| !obb.contains(x, 0)));
        let (lo, hi) = obb.row_span(0, 16, 0);
        assert_eq!(lo, hi, "row 0 must be empty, got [{lo},{hi})");
        let mut walker = obb.span_walker(0, 16, 0);
        let (wlo, whi) = walker.next_span();
        assert_eq!(wlo, whi);
    }

    #[test]
    fn obb_span_walker_matches_per_row_solve() {
        // Rotated, near-axis-aligned, and exactly axis-aligned ellipses;
        // the forward-differenced walker must reproduce row_span (the two
        // only share algebra, not rounding — but over ≤80 rows the f64
        // drift cannot move a span edge a full pixel).
        for (ca, cb, cc) in [
            (30.0, 18.0, 20.0),
            (50.0, -35.0, 40.0),
            (9.0, 0.0, 4.0),  // axis-aligned: a degenerate slab
            (4.0, 0.0, 25.0), // axis-aligned, major axis vertical
        ] {
            let obb = Obb::from_cov(
                Vec2::new(40.3, 37.8),
                SymMat2::new(ca, cb, cc),
                BoundingLaw::ThreeSigma,
                0.8,
            )
            .unwrap();
            let mut walker = obb.span_walker(0, 80, 0);
            for y in 0..80 {
                let direct = obb.row_span(0, 80, y);
                let walked = walker.next_span();
                assert_eq!(walked, direct, "row {y} for cov ({ca},{cb},{cc})");
            }
        }
    }

    #[test]
    fn obb_empty_for_invisible_opacity() {
        assert!(Obb::from_cov(
            Vec2::ZERO,
            SymMat2::IDENTITY,
            BoundingLaw::OmegaSigma,
            0.003
        )
        .is_none());
    }

    #[test]
    fn effective_test_matches_alpha_threshold() {
        // Pixels passing E(p) are exactly those with alpha ≥ 1/255.
        let mean = Vec2::new(32.0, 32.0);
        let cov = SymMat2::new(6.0, 1.5, 3.0);
        let conic = cov.inverse().unwrap();
        let opacity = 0.42f32;
        let test = EffectiveTest::new(mean, conic, opacity);
        let rect = PixelRect {
            x0: 0,
            y0: 0,
            x1: 64,
            y1: 64,
        };
        for (x, y) in rect.pixels() {
            // Pixels sitting on the threshold itself can flip between the
            // two formulations: E(p) is the exact quadratic against
            // 2·ln(255ω), while alpha_at clamps at the hardware's −5.54
            // input edge (ln(1/255) ≈ −5.5413) and rounds through det_exp.
            // Exclude that sliver (≈0.0025 wide in q) and require exact
            // agreement everywhere else.
            let d = Vec2::new(x as f32 + 0.5, y as f32 + 0.5) - mean;
            let q = conic.quad_form(d);
            if (q - test.extent_sq).abs() < 5e-3 {
                continue;
            }
            let a = alpha_at(mean, conic, opacity.ln(), x, y);
            assert_eq!(
                test.passes(x, y),
                a > 0.0,
                "mismatch at ({x},{y}): alpha {a}"
            );
        }
    }

    #[test]
    fn alpha_is_saturated_at_099() {
        let mean = Vec2::new(10.0, 10.0);
        let conic = SymMat2::new(0.01, 0.0, 0.01);
        // Opacity 1.0 at the exact center would give alpha 1.0 → clamped.
        let a = alpha_at(mean, conic, 0.0, 9, 9); // pixel center (9.5,9.5), tiny offset
        assert!(a <= ALPHA_MAX + 1e-6);
        assert!(a > 0.9);
    }

    #[test]
    fn effective_region_shrinks_with_opacity() {
        // Fig. 4: at ω = 1 the effective region slightly exceeds 3σ; at
        // ω = 0.01 it is far smaller.
        let cov = SymMat2::new(25.0, 0.0, 25.0);
        let conic = cov.inverse().unwrap();
        let mean = Vec2::new(128.0, 128.0);
        let rect = PixelRect {
            x0: 0,
            y0: 0,
            x1: 256,
            y1: 256,
        };
        let high = EffectiveTest::new(mean, conic, 1.0).count_in_rect(rect);
        let low = EffectiveTest::new(mean, conic, 0.01).count_in_rect(rect);
        assert!(
            low * 5 < high,
            "low-opacity region {low} should be ≪ high-opacity {high}"
        );
    }
}
