//! The 3DGS Gaussian primitive: 59 floating-point parameters per point
//! (paper §2.2, Challenge 1 — "each 3D Gaussian is represented by 59
//! floating-point parameters, among which 48 out of 59 are SH
//! coefficients").

use crate::sh;
use gcc_math::{Quat, Vec3};

/// SH coefficients per color channel (third-order real SH: (3+1)² = 16).
pub const SH_COEFFS_PER_CHANNEL: usize = 16;

/// Total SH floats per Gaussian (three channels × 16).
pub const SH_FLOATS: usize = 3 * SH_COEFFS_PER_CHANNEL;

/// Total floats per Gaussian: μ(3) + s(3) + q(4) + lnω(1) + SH(48) = 59.
pub const PARAM_FLOATS: usize = 3 + 3 + 4 + 1 + SH_FLOATS;

/// One trained 3D Gaussian.
///
/// The opacity is stored in log-space (`ln ω`) exactly as the GCC Screen
/// Culling Unit consumes it: "the opacity ω is computed offline in
/// log-space … and the Alpha Unit directly consumes the log-space ω values"
/// (paper §4.3).
///
/// SH coefficients are channel-major: `sh[c * 16 + k]` is coefficient `k`
/// of channel `c` (0 = R, 1 = G, 2 = B).
#[derive(Debug, Clone, PartialEq)]
pub struct Gaussian3D {
    /// World-space mean position μ.
    pub mean: Vec3,
    /// Per-axis standard deviations s (linear scale, not log).
    pub scale: Vec3,
    /// Rotation quaternion q (normalized on use).
    pub rot: Quat,
    /// Log-space opacity `ln ω` with `ω ∈ (0, 1]`.
    pub ln_opacity: f32,
    /// 48 spherical-harmonics coefficients, channel-major.
    pub sh: [f32; SH_FLOATS],
}

impl Default for Gaussian3D {
    fn default() -> Self {
        Self {
            mean: Vec3::ZERO,
            scale: Vec3::splat(1.0),
            rot: Quat::IDENTITY,
            ln_opacity: 0.0,
            sh: [0.0; SH_FLOATS],
        }
    }
}

impl Gaussian3D {
    /// Builds a Gaussian from linear opacity.
    ///
    /// # Panics
    ///
    /// Panics if `opacity` is not in `(0, 1]`.
    pub fn new(mean: Vec3, scale: Vec3, rot: Quat, opacity: f32, sh: [f32; SH_FLOATS]) -> Self {
        assert!(
            opacity > 0.0 && opacity <= 1.0,
            "opacity {opacity} outside (0, 1]"
        );
        Self {
            mean,
            scale,
            rot,
            ln_opacity: opacity.ln(),
            sh,
        }
    }

    /// Convenience constructor: an isotropic Gaussian with a flat
    /// (view-independent) base color, handy in tests and examples.
    ///
    /// # Panics
    ///
    /// Panics if `opacity` is not in `(0, 1]`.
    pub fn isotropic(mean: Vec3, radius: f32, opacity: f32, base_rgb: Vec3) -> Self {
        let mut sh = [0.0f32; SH_FLOATS];
        for (c, v) in [base_rgb.x, base_rgb.y, base_rgb.z].into_iter().enumerate() {
            // Invert the DC term of Eq. 2 so the rendered color equals
            // `base_rgb` from every direction: color = C0·sh0 + 0.5.
            sh[c * SH_COEFFS_PER_CHANNEL] = (v - 0.5) / sh::SH_C0;
        }
        Self::new(mean, Vec3::splat(radius), Quat::IDENTITY, opacity, sh)
    }

    /// Linear opacity ω.
    pub fn opacity(&self) -> f32 {
        self.ln_opacity.exp()
    }

    /// SH coefficients of one color channel.
    ///
    /// # Panics
    ///
    /// Panics if `channel > 2`.
    pub fn sh_channel(&self, channel: usize) -> &[f32] {
        assert!(channel < 3, "channel {channel} out of range");
        &self.sh[channel * SH_COEFFS_PER_CHANNEL..(channel + 1) * SH_COEFFS_PER_CHANNEL]
    }

    /// Flattens to the 59-float wire format the accelerators stream from
    /// DRAM: `[μ(3) | s(3) | q(4) | lnω(1) | sh(48)]`.
    pub fn to_floats(&self) -> [f32; PARAM_FLOATS] {
        let mut out = [0.0f32; PARAM_FLOATS];
        out[0..3].copy_from_slice(&self.mean.to_array());
        out[3..6].copy_from_slice(&self.scale.to_array());
        out[6..10].copy_from_slice(&self.rot.to_array());
        out[10] = self.ln_opacity;
        out[11..].copy_from_slice(&self.sh);
        out
    }

    /// Parses the 59-float wire format produced by [`Self::to_floats`].
    pub fn from_floats(f: &[f32; PARAM_FLOATS]) -> Self {
        let mut sh = [0.0f32; SH_FLOATS];
        sh.copy_from_slice(&f[11..]);
        Self {
            mean: Vec3::new(f[0], f[1], f[2]),
            scale: Vec3::new(f[3], f[4], f[5]),
            rot: Quat::new(f[6], f[7], f[8], f[9]),
            ln_opacity: f[10],
            sh,
        }
    }

    /// Bytes occupied by the non-SH ("geometry") parameters in FP32:
    /// μ + s + q + lnω = 11 floats. This is what GCC's conditional loading
    /// fetches before it knows whether the Gaussian will be rendered.
    pub const GEOMETRY_BYTES: usize = 11 * 4;

    /// Bytes occupied by the SH block in FP32 (48 floats) — deferred by
    /// GCC's cross-stage conditional loading until the Gaussian is known
    /// to contribute.
    pub const SH_BYTES: usize = SH_FLOATS * 4;

    /// Total FP32 bytes per Gaussian (59 × 4 = 236).
    pub const TOTAL_BYTES: usize = PARAM_FLOATS * 4;
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcc_math::approx_eq;

    #[test]
    fn param_count_is_59() {
        assert_eq!(PARAM_FLOATS, 59);
        assert_eq!(Gaussian3D::TOTAL_BYTES, 236);
        assert_eq!(Gaussian3D::GEOMETRY_BYTES + Gaussian3D::SH_BYTES, 236);
    }

    #[test]
    fn sh_fraction_matches_papers_81_percent() {
        // "a staggering 81.4% (48 out of 59) of the SH coefficients remain
        // unused before alpha-blending begins".
        let frac = SH_FLOATS as f32 / PARAM_FLOATS as f32;
        assert!((frac - 0.814).abs() < 0.001, "SH fraction {frac}");
    }

    #[test]
    fn opacity_round_trip() {
        let g = Gaussian3D::new(
            Vec3::ZERO,
            Vec3::splat(1.0),
            Quat::IDENTITY,
            0.37,
            [0.0; SH_FLOATS],
        );
        assert!(approx_eq(g.opacity(), 0.37, 1e-5));
    }

    #[test]
    #[should_panic(expected = "outside (0, 1]")]
    fn zero_opacity_rejected() {
        let _ = Gaussian3D::new(
            Vec3::ZERO,
            Vec3::splat(1.0),
            Quat::IDENTITY,
            0.0,
            [0.0; SH_FLOATS],
        );
    }

    #[test]
    fn float_round_trip_preserves_everything() {
        let mut sh = [0.0f32; SH_FLOATS];
        for (i, v) in sh.iter_mut().enumerate() {
            *v = i as f32 * 0.01 - 0.2;
        }
        let g = Gaussian3D::new(
            Vec3::new(1.0, -2.0, 3.0),
            Vec3::new(0.1, 0.2, 0.3),
            Quat::new(0.5, 0.5, 0.5, 0.5),
            0.8,
            sh,
        );
        let back = Gaussian3D::from_floats(&g.to_floats());
        assert_eq!(g, back);
    }

    #[test]
    fn isotropic_base_color_is_recovered_by_sh_eval() {
        let g = Gaussian3D::isotropic(Vec3::ZERO, 0.5, 0.9, Vec3::new(0.7, 0.3, 0.1));
        let dir = Vec3::new(0.0, 0.0, 1.0);
        let rgb = crate::sh::eval_color(&g.sh, dir);
        assert!(approx_eq(rgb.x, 0.7, 1e-5));
        assert!(approx_eq(rgb.y, 0.3, 1e-5));
        assert!(approx_eq(rgb.z, 0.1, 1e-5));
    }

    #[test]
    fn sh_channel_slices_are_disjoint() {
        let mut g = Gaussian3D::default();
        g.sh[0] = 1.0; // R, coeff 0
        g.sh[16] = 2.0; // G, coeff 0
        g.sh[32] = 3.0; // B, coeff 0
        assert_eq!(g.sh_channel(0)[0], 1.0);
        assert_eq!(g.sh_channel(1)[0], 2.0);
        assert_eq!(g.sh_channel(2)[0], 3.0);
    }
}
