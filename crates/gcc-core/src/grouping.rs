//! Stage I — Gaussian grouping by depth (paper §3 Stage I, §4.2).
//!
//! At the start of each frame the accelerator computes every Gaussian's
//! view-space depth with the shared MVMs, culls those in front of the
//! near pivot (`z′ < 0.2`), and partitions the rest into depth-ordered
//! groups. Coarse bins holding more than `N = 256` Gaussians are
//! recursively subdivided so that every group fits the on-chip sort unit.
//! Groups are emitted near-to-far; blending then only needs a sort
//! *within* each group to obtain a global front-to-back order.

use crate::{MAX_GROUP_SIZE, NEAR_DEPTH};

/// One depth group: the indices of its member Gaussians and its depth span.
#[derive(Debug, Clone, PartialEq)]
pub struct DepthGroup {
    /// Indices into the scene's Gaussian array (unsorted within the group;
    /// Stage III sorts them).
    pub members: Vec<u32>,
    /// Minimum view depth of the group's bin (inclusive).
    pub depth_min: f32,
    /// Maximum view depth of the group's bin (exclusive).
    pub depth_max: f32,
}

/// The output of Stage I: near-to-far depth groups plus culling stats.
#[derive(Debug, Clone, PartialEq)]
pub struct DepthGroups {
    /// Groups ordered near → far; member counts never exceed the group
    /// capacity used at construction.
    pub groups: Vec<DepthGroup>,
    /// Gaussians culled by the near-plane pivot.
    pub near_culled: u32,
    /// Capacity the grouping honoured.
    pub capacity: usize,
}

impl DepthGroups {
    /// Total Gaussians across all groups.
    pub fn total_members(&self) -> usize {
        self.groups.iter().map(|g| g.members.len()).sum()
    }

    /// Iterates over groups near → far.
    pub fn iter(&self) -> impl Iterator<Item = &DepthGroup> {
        self.groups.iter()
    }
}

/// Configuration of the grouping pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupingConfig {
    /// Near-plane pivot (paper: 0.2).
    pub near: f32,
    /// Number of coarse bins the RCA splits the depth range into.
    /// The paper uses "tens of thousands" at million-Gaussian scale; the
    /// default here scales with scene size (see [`GroupingConfig::for_count`]).
    pub coarse_bins: usize,
    /// Maximum Gaussians per group after recursive subdivision
    /// (paper: N = 256).
    pub capacity: usize,
}

impl Default for GroupingConfig {
    fn default() -> Self {
        Self {
            near: NEAR_DEPTH,
            coarse_bins: 1024,
            capacity: MAX_GROUP_SIZE,
        }
    }
}

impl GroupingConfig {
    /// Picks a coarse-bin count proportional to the scene size, mirroring
    /// the paper's ratio of ~tens of thousands of bins for millions of
    /// Gaussians (≈ 1 bin per 64 Gaussians, min 64 bins).
    pub fn for_count(n: usize) -> Self {
        Self {
            coarse_bins: (n / 64).max(64),
            ..Self::default()
        }
    }
}

/// Groups Gaussians by precomputed view depths.
///
/// `depths[i]` is the view-space depth of Gaussian `i`. Gaussians with
/// depth `< config.near` (or non-finite depth) are culled and counted.
///
/// # Panics
///
/// Panics if `config.capacity` is zero or `config.coarse_bins` is zero.
pub fn group_by_depth(depths: &[f32], config: &GroupingConfig) -> DepthGroups {
    assert!(config.capacity > 0, "group capacity must be positive");
    assert!(config.coarse_bins > 0, "need at least one coarse bin");

    let mut near_culled = 0u32;
    let mut max_depth = config.near;
    let mut survivors: Vec<(u32, f32)> = Vec::with_capacity(depths.len());
    for (i, &d) in depths.iter().enumerate() {
        if !d.is_finite() || d < config.near {
            near_culled += 1;
            continue;
        }
        max_depth = max_depth.max(d);
        survivors.push((i as u32, d));
    }

    if survivors.is_empty() {
        return DepthGroups {
            groups: Vec::new(),
            near_culled,
            capacity: config.capacity,
        };
    }

    // Coarse binning: uniform bins over [near, max_depth].
    let span = (max_depth - config.near).max(1e-6);
    let bin_width = span / config.coarse_bins as f32;
    let mut bins: Vec<Vec<(u32, f32)>> = vec![Vec::new(); config.coarse_bins];
    for &(id, d) in &survivors {
        let idx = (((d - config.near) / bin_width) as usize).min(config.coarse_bins - 1);
        bins[idx].push((id, d));
    }

    // Recursive subdivision of overfull bins (paper §4.2: bins with
    // N′ > N are split until every subgroup holds ≤ N Gaussians).
    let mut groups = Vec::new();
    for (b, members) in bins.into_iter().enumerate() {
        if members.is_empty() {
            continue;
        }
        let lo = config.near + b as f32 * bin_width;
        let hi = lo + bin_width;
        subdivide(members, lo, hi, config.capacity, &mut groups);
    }

    DepthGroups {
        groups,
        near_culled,
        capacity: config.capacity,
    }
}

/// Splits `members` (all inside `[lo, hi)`) into groups of at most
/// `capacity`, bisecting the depth range. When a range stops separating
/// members (identical depths), falls back to chunking the sorted list so
/// termination is guaranteed.
fn subdivide(
    mut members: Vec<(u32, f32)>,
    lo: f32,
    hi: f32,
    capacity: usize,
    out: &mut Vec<DepthGroup>,
) {
    if members.len() <= capacity {
        out.push(DepthGroup {
            members: members.into_iter().map(|(id, _)| id).collect(),
            depth_min: lo,
            depth_max: hi,
        });
        return;
    }
    let mid = 0.5 * (lo + hi);
    let (near_half, far_half): (Vec<_>, Vec<_>) = members.iter().partition(|&&(_, d)| d < mid);
    if near_half.is_empty() || far_half.is_empty() || (hi - lo) < 1e-5 {
        // Degenerate split (e.g. many identical depths): chunk in sorted
        // order, which preserves global ordering because all members share
        // (nearly) one depth.
        members.sort_by(|a, b| a.1.total_cmp(&b.1));
        for chunk in members.chunks(capacity) {
            out.push(DepthGroup {
                members: chunk.iter().map(|&(id, _)| id).collect(),
                depth_min: lo,
                depth_max: hi,
            });
        }
        return;
    }
    subdivide(near_half, lo, mid, capacity, out);
    subdivide(far_half, mid, hi, capacity, out);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn depths_linear(n: usize, lo: f32, hi: f32) -> Vec<f32> {
        (0..n)
            .map(|i| lo + (hi - lo) * i as f32 / n.max(1) as f32)
            .collect()
    }

    #[test]
    fn near_plane_culling_counts() {
        let depths = vec![0.1, 0.19, 0.2, 0.5, -1.0, f32::NAN, 3.0];
        let g = group_by_depth(&depths, &GroupingConfig::default());
        assert_eq!(g.near_culled, 4);
        assert_eq!(g.total_members(), 3);
    }

    #[test]
    fn every_survivor_appears_exactly_once() {
        let depths = depths_linear(10_000, 0.3, 50.0);
        let g = group_by_depth(&depths, &GroupingConfig::default());
        let mut seen = vec![false; depths.len()];
        for grp in g.iter() {
            for &id in &grp.members {
                assert!(!seen[id as usize], "duplicate id {id}");
                seen[id as usize] = true;
            }
        }
        assert_eq!(seen.iter().filter(|&&s| s).count(), 10_000);
    }

    #[test]
    fn groups_respect_capacity() {
        // Heavily clustered depths force recursive subdivision.
        let mut depths = vec![1.0f32; 5_000];
        depths.extend(depths_linear(5_000, 0.3, 100.0));
        let cfg = GroupingConfig {
            coarse_bins: 32,
            ..GroupingConfig::default()
        };
        let g = group_by_depth(&depths, &cfg);
        for grp in g.iter() {
            assert!(
                grp.members.len() <= cfg.capacity,
                "group of {} exceeds capacity {}",
                grp.members.len(),
                cfg.capacity
            );
        }
        assert_eq!(g.total_members(), 10_000);
    }

    #[test]
    fn groups_are_ordered_near_to_far() {
        let depths = depths_linear(20_000, 0.25, 80.0);
        let g = group_by_depth(&depths, &GroupingConfig::default());
        let mut prev_max = f32::NEG_INFINITY;
        for grp in g.iter() {
            assert!(
                grp.depth_min >= prev_max - 1e-4,
                "group [{}, {}) not after previous max {prev_max}",
                grp.depth_min,
                grp.depth_max
            );
            prev_max = grp.depth_max.max(prev_max);
        }
    }

    #[test]
    fn members_fall_inside_their_groups_bin() {
        let depths = depths_linear(3_000, 0.5, 10.0);
        let g = group_by_depth(&depths, &GroupingConfig::default());
        for grp in g.iter() {
            for &id in &grp.members {
                let d = depths[id as usize];
                assert!(
                    d >= grp.depth_min - 1e-4 && d <= grp.depth_max + 1e-4,
                    "depth {d} outside bin [{}, {})",
                    grp.depth_min,
                    grp.depth_max
                );
            }
        }
    }

    #[test]
    fn identical_depths_still_terminate_and_chunk() {
        let depths = vec![2.0f32; 1_000];
        let cfg = GroupingConfig {
            coarse_bins: 4,
            capacity: 256,
            ..GroupingConfig::default()
        };
        let g = group_by_depth(&depths, &cfg);
        assert_eq!(g.total_members(), 1_000);
        for grp in g.iter() {
            assert!(grp.members.len() <= 256);
        }
    }

    #[test]
    fn empty_input_gives_empty_groups() {
        let g = group_by_depth(&[], &GroupingConfig::default());
        assert!(g.groups.is_empty());
        assert_eq!(g.near_culled, 0);
    }

    #[test]
    fn cross_group_ordering_enables_global_sort() {
        // Sorting within each group must yield a globally sorted sequence.
        let depths = depths_linear(5_000, 0.21, 42.0);
        let g = group_by_depth(&depths, &GroupingConfig::for_count(depths.len()));
        let mut prev = f32::NEG_INFINITY;
        for grp in g.iter() {
            let mut ds: Vec<f32> = grp.members.iter().map(|&i| depths[i as usize]).collect();
            ds.sort_by(f32::total_cmp);
            for d in ds {
                assert!(d >= prev - 1e-4, "global order violated: {d} after {prev}");
                prev = d;
            }
        }
    }

    #[test]
    fn for_count_scales_bins() {
        assert_eq!(GroupingConfig::for_count(64_000).coarse_bins, 1_000);
        assert_eq!(GroupingConfig::for_count(100).coarse_bins, 64);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let cfg = GroupingConfig {
            capacity: 0,
            ..GroupingConfig::default()
        };
        let _ = group_by_depth(&[1.0], &cfg);
    }
}
