//! Pinhole camera model in the 3DGS convention: camera-space `+z` is the
//! viewing direction, so view-space depth is simply `z′` (paper Stage I).

use gcc_math::{Mat4, Vec2, Vec3};

/// A posed pinhole camera with pixel-space intrinsics.
#[derive(Debug, Clone, PartialEq)]
pub struct Camera {
    /// World → camera rigid transform (rotation block `W` + translation).
    pub view: Mat4,
    /// World-space camera center (used for SH view directions).
    pub position: Vec3,
    /// Focal length in pixels, horizontal.
    pub fx: f32,
    /// Focal length in pixels, vertical.
    pub fy: f32,
    /// Principal point, horizontal.
    pub cx: f32,
    /// Principal point, vertical.
    pub cy: f32,
    /// Image width in pixels.
    pub width: u32,
    /// Image height in pixels.
    pub height: u32,
    /// EWA guard-band limit on `x/z` (1.3× the full-frustum half-extent).
    /// Stored explicitly so Compatibility-Mode sub-views keep the full
    /// camera's frustum: the Jacobian clamp must not shrink with the
    /// window, or off-center sub-views would distort every covariance.
    pub lim_x: f32,
    /// EWA guard-band limit on `y/z` (see [`Camera::lim_x`]).
    pub lim_y: f32,
}

impl Camera {
    /// Builds a camera at `eye` looking at `target` with vertical field of
    /// view `fov_y_deg` (degrees) and the given image size.
    ///
    /// # Panics
    ///
    /// Panics if `width`/`height` are zero or the field of view is not in
    /// `(0, 180)`.
    pub fn look_at(
        eye: Vec3,
        target: Vec3,
        up: Vec3,
        fov_y_deg: f32,
        width: u32,
        height: u32,
    ) -> Self {
        assert!(width > 0 && height > 0, "degenerate image size");
        assert!(
            fov_y_deg > 0.0 && fov_y_deg < 180.0,
            "field of view {fov_y_deg} out of range"
        );
        let view = Mat4::look_at(eye, target, up);
        let fov_y = fov_y_deg.to_radians();
        let fy = height as f32 / (2.0 * (fov_y * 0.5).tan());
        let fx = fy; // square pixels
        Self {
            view,
            position: eye,
            fx,
            fy,
            cx: width as f32 * 0.5,
            cy: height as f32 * 0.5,
            width,
            height,
            lim_x: 1.3 * (width as f32 * 0.5) / fx,
            lim_y: 1.3 * (height as f32 * 0.5) / fy,
        }
    }

    /// Total pixels in the image.
    pub fn pixel_count(&self) -> u64 {
        u64::from(self.width) * u64::from(self.height)
    }

    /// Transforms a world point into camera space; its `z` component is the
    /// view-space depth `d` used by Stage I grouping.
    pub fn to_camera(&self, p: Vec3) -> Vec3 {
        self.view.transform_point(p)
    }

    /// View-space depth of a world point (the Stage I `d` value).
    pub fn view_depth(&self, p: Vec3) -> f32 {
        let r = &self.view.m[2];
        r[0] * p.x + r[1] * p.y + r[2] * p.z + r[3]
    }

    /// Projects a camera-space point to pixel coordinates.
    /// Returns `None` behind (or extremely close to) the camera plane.
    pub fn cam_to_pixel(&self, pc: Vec3) -> Option<Vec2> {
        if pc.z < 1e-6 {
            return None;
        }
        Some(Vec2::new(
            self.fx * pc.x / pc.z + self.cx,
            self.fy * pc.y / pc.z + self.cy,
        ))
    }

    /// Projects a world point to pixel coordinates plus depth.
    pub fn project_point(&self, p: Vec3) -> Option<(Vec2, f32)> {
        let pc = self.to_camera(p);
        self.cam_to_pixel(pc).map(|px| (px, pc.z))
    }

    /// Unit direction from the camera center toward world point `p`
    /// (the SH evaluation direction of paper Eq. 2).
    pub fn view_dir(&self, p: Vec3) -> Vec3 {
        let d = p - self.position;
        if d.norm_sq() < 1e-18 {
            Vec3::new(0.0, 0.0, 1.0)
        } else {
            d.normalized()
        }
    }

    /// `true` when pixel coordinates fall inside the image.
    pub fn in_bounds(&self, px: Vec2) -> bool {
        px.x >= 0.0 && px.y >= 0.0 && px.x < self.width as f32 && px.y < self.height as f32
    }

    /// Half-extent of the visible frustum at unit depth, with the 1.3×
    /// guard band the 3DGS rasterizer uses to keep the EWA Jacobian
    /// stable. Sub-view cameras report the *full* camera's limits.
    pub fn frustum_limits(&self) -> (f32, f32) {
        (self.lim_x, self.lim_y)
    }

    /// Returns a copy of the camera restricted to a sub-view window
    /// (Compatibility Mode, paper §4.6): same pose and focal lengths, but
    /// the principal point shifted so the window `(x0, y0, w, h)` of the
    /// full image becomes the whole image of the sub-camera.
    ///
    /// # Panics
    ///
    /// Panics if the window is empty or exceeds the full image.
    pub fn sub_view(&self, x0: u32, y0: u32, w: u32, h: u32) -> Self {
        assert!(w > 0 && h > 0, "empty sub-view");
        assert!(
            x0 + w <= self.width && y0 + h <= self.height,
            "sub-view ({x0},{y0},{w},{h}) exceeds {}x{}",
            self.width,
            self.height
        );
        let mut cam = self.clone();
        cam.cx = self.cx - x0 as f32;
        cam.cy = self.cy - y0 as f32;
        cam.width = w;
        cam.height = h;
        cam
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcc_math::approx_eq;

    fn test_cam() -> Camera {
        Camera::look_at(
            Vec3::new(0.0, 0.0, -5.0),
            Vec3::ZERO,
            Vec3::new(0.0, 1.0, 0.0),
            60.0,
            640,
            360,
        )
    }

    #[test]
    fn target_projects_to_image_center() {
        let cam = test_cam();
        let (px, depth) = cam.project_point(Vec3::ZERO).unwrap();
        assert!(approx_eq(px.x, 320.0, 1e-3));
        assert!(approx_eq(px.y, 180.0, 1e-3));
        assert!(approx_eq(depth, 5.0, 1e-4));
    }

    #[test]
    fn view_depth_matches_camera_space_z() {
        let cam = test_cam();
        for p in [
            Vec3::new(1.0, 2.0, 3.0),
            Vec3::new(-0.5, 0.2, -1.0),
            Vec3::ZERO,
        ] {
            assert!(approx_eq(cam.view_depth(p), cam.to_camera(p).z, 1e-5));
        }
    }

    #[test]
    fn points_behind_camera_do_not_project() {
        let cam = test_cam();
        assert!(cam.project_point(Vec3::new(0.0, 0.0, -10.0)).is_none());
    }

    #[test]
    fn fov_controls_focal_length() {
        let cam = test_cam();
        // fy = (h/2) / tan(30°)
        let expect = 180.0 / (30.0f32).to_radians().tan();
        assert!(approx_eq(cam.fy, expect, 1e-3));
    }

    #[test]
    fn view_dir_is_unit_and_points_at_target() {
        let cam = test_cam();
        let d = cam.view_dir(Vec3::ZERO);
        assert!(approx_eq(d.norm(), 1.0, 1e-5));
        // Camera at -5z looking at origin: direction is +z.
        assert!(approx_eq(d.z, 1.0, 1e-5));
    }

    #[test]
    fn in_bounds_edges() {
        let cam = test_cam();
        assert!(cam.in_bounds(Vec2::new(0.0, 0.0)));
        assert!(cam.in_bounds(Vec2::new(639.9, 359.9)));
        assert!(!cam.in_bounds(Vec2::new(640.0, 100.0)));
        assert!(!cam.in_bounds(Vec2::new(-0.1, 100.0)));
    }

    #[test]
    fn sub_view_projects_consistently() {
        let cam = test_cam();
        let sub = cam.sub_view(128, 64, 128, 128);
        let p = Vec3::new(0.3, 0.2, 0.0);
        let (full_px, d_full) = cam.project_point(p).unwrap();
        let (sub_px, d_sub) = sub.project_point(p).unwrap();
        assert!(approx_eq(sub_px.x, full_px.x - 128.0, 1e-4));
        assert!(approx_eq(sub_px.y, full_px.y - 64.0, 1e-4));
        assert!(approx_eq(d_full, d_sub, 1e-6));
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_sub_view_panics() {
        let _ = test_cam().sub_view(600, 0, 128, 128);
    }

    #[test]
    fn off_center_point_projects_to_expected_quadrant() {
        let cam = test_cam();
        // A point up and to the right in camera space (camera looks +z;
        // +x is world -x here because the camera flips handedness via up).
        let pc = Vec3::new(1.0, -1.0, 5.0);
        let px = cam.cam_to_pixel(pc).unwrap();
        assert!(px.x > cam.cx);
        assert!(px.y < cam.cy);
    }
}
