//! 3D Gaussian Splatting algorithm layer for the GCC accelerator
//! reproduction (Pei et al., MICRO 2025).
//!
//! This crate implements, from scratch, every algorithmic ingredient the
//! paper's pipeline is built from:
//!
//! * the 59-parameter Gaussian representation ([`Gaussian3D`]) and camera
//!   model ([`Camera`]),
//! * third-order real spherical harmonics color evaluation ([`sh`],
//!   paper Eq. 2),
//! * the EWA covariance projection chain Σ = R S Sᵀ Rᵀ, Σ′ = J W Σ Wᵀ Jᵀ
//!   ([`projection`], paper Eq. 1),
//! * bounding laws: the conventional 3σ rule (Eq. 6), GCC's opacity-aware
//!   ω-σ law (Eq. 8), AABB and OBB footprints, and the exact alpha ellipse
//!   ([`bounds`], Fig. 4 / Table 1),
//! * alpha evaluation and front-to-back compositing with early termination
//!   ([`alpha`], Eqs. 3, 4, 9),
//! * Stage I depth grouping with near-plane culling and recursive
//!   subdivision to the hardware group size N = 256 ([`grouping`]),
//! * Algorithm 1, the runtime Alpha-based Gaussian Boundary Identification,
//!   at both pixel and 8×8-block granularity with T-mask interaction
//!   ([`boundary`]).
//!
//! The crate is pure software: renderers built on it live in `gcc-render`,
//! and the cycle/energy models live in `gcc-sim`.
//!
//! # Example
//!
//! ```
//! use gcc_core::{Camera, Gaussian3D};
//! use gcc_core::projection::project_gaussian;
//! use gcc_core::bounds::BoundingLaw;
//! use gcc_math::Vec3;
//!
//! let cam = Camera::look_at(
//!     Vec3::new(0.0, 0.0, -4.0),
//!     Vec3::ZERO,
//!     Vec3::new(0.0, 1.0, 0.0),
//!     60.0,
//!     640,
//!     360,
//! );
//! let g = Gaussian3D::isotropic(Vec3::ZERO, 0.1, 0.8, Vec3::new(1.0, 0.2, 0.2));
//! let p = project_gaussian(&g, 0, &cam, BoundingLaw::OmegaSigma).expect("visible");
//! assert!(p.depth > 0.0);
//! assert!(p.radius > 0.0);
//! ```

// `deny` rather than `forbid`: the SIMD kernels in [`dispatch`] are the one
// sanctioned `unsafe` island (intrinsics), opted in with a module-level
// `#[allow(unsafe_code)]`. Everything else stays unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod alpha;
pub mod boundary;
pub mod bounds;
mod camera;
pub mod dispatch;
mod gaussian;
pub mod grouping;
pub mod projection;
pub mod sh;
pub mod sort;

pub use camera::Camera;
pub use gaussian::{Gaussian3D, PARAM_FLOATS, SH_COEFFS_PER_CHANNEL, SH_FLOATS};
pub use projection::ProjectedGaussian;

/// Minimum alpha a pixel contribution must reach to be blended
/// (`1/255`, the 3DGS numerical-stability threshold; paper Eqs. 7, 9).
pub const ALPHA_MIN: f32 = 1.0 / 255.0;

/// Alpha saturation ceiling applied by the rasterizer (paper Eqs. 3, 9).
pub const ALPHA_MAX: f32 = 0.99;

/// Transmittance early-termination threshold: once a pixel's accumulated
/// transmittance falls below this value, further Gaussians are skipped
/// (the 3DGS `T < 1e-4` criterion the paper builds its conditional
/// processing on).
pub const TRANSMITTANCE_EPS: f32 = 1e-4;

/// Near-plane visibility threshold on view-space depth: Gaussians with
/// `z′ < 0.2` are culled in Stage I (paper §3, Stage I; §4.2's Z-axis
/// pivot of 0.2).
pub const NEAR_DEPTH: f32 = 0.2;

/// Hardware depth-group capacity: coarse bins holding more than `N = 256`
/// Gaussians are recursively subdivided (paper §4.2).
pub const MAX_GROUP_SIZE: usize = 256;
