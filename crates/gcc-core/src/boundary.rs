//! Algorithm 1 — runtime Alpha-based Gaussian Boundary Identification
//! (paper §3 "Alpha-based Gaussian Boundary Identification" and §4.4).
//!
//! Two granularities are provided:
//!
//! * [`PixelTracer`] — the textbook Algorithm 1: a breadth-first pixel
//!   traversal from the projected center that expands only through pixels
//!   passing the elliptical alpha condition `E(p)`. Convexity of the
//!   Gaussian footprint guarantees the BFS recovers *exactly* the pixels
//!   with `α ≥ 1/255` (tested against an exhaustive scan).
//! * [`BlockTracer`] — the hardware variant: the screen is divided into
//!   `n × n` pixel blocks (n = 8 in GCC), an `n × n` PE array evaluates a
//!   whole block per dispatch, and traversal expands block-wise. The
//!   transmittance mask ([`TMask`]) from the Blending Unit pre-marks
//!   fully-terminated blocks in the status map `S` so they are never
//!   dispatched again (paper §4.5).
//!
//! When the projected center falls outside the image, traversal starts
//! from the nearest in-bounds pixel; if that seed fails `E` the tracer
//! scans the image border for an entry point (by convexity, a footprint
//! whose center is off-screen can only reach the interior through the
//! border).

use crate::bounds::EffectiveTest;
use std::collections::VecDeque;

/// Statistics from one pixel-level trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PixelTraceStats {
    /// Pixels found inside the influence region.
    pub pixels_in_region: u64,
    /// `E(p)` evaluations performed (region + boundary shell + seed scan).
    pub pixels_tested: u64,
}

/// Reusable pixel-level Algorithm 1 tracer.
///
/// Holds a stamped visited map so repeated traces cost O(region), not
/// O(image).
#[derive(Debug, Clone)]
pub struct PixelTracer {
    width: i32,
    height: i32,
    visited: Vec<u32>,
    stamp: u32,
    queue: VecDeque<(i32, i32)>,
}

impl PixelTracer {
    /// Creates a tracer for a `width × height` image.
    ///
    /// # Panics
    ///
    /// Panics on a zero-sized image.
    pub fn new(width: u32, height: u32) -> Self {
        assert!(width > 0 && height > 0, "degenerate image");
        Self {
            width: width as i32,
            height: height as i32,
            visited: vec![0; (width * height) as usize],
            stamp: 0,
            queue: VecDeque::new(),
        }
    }

    fn idx(&self, x: i32, y: i32) -> usize {
        (y * self.width + x) as usize
    }

    fn in_bounds(&self, x: i32, y: i32) -> bool {
        x >= 0 && y >= 0 && x < self.width && y < self.height
    }

    /// Runs Algorithm 1 for one projected Gaussian, appending the influence
    /// pixels to `out` (cleared first) and returning trace statistics.
    pub fn trace(&mut self, test: &EffectiveTest, out: &mut Vec<(i32, i32)>) -> PixelTraceStats {
        out.clear();
        let mut stats = PixelTraceStats::default();
        self.stamp = self.stamp.wrapping_add(1);
        if self.stamp == 0 {
            self.visited.fill(0);
            self.stamp = 1;
        }

        let seed = match self.find_seed(test, &mut stats) {
            Some(s) => s,
            None => return stats,
        };

        self.queue.clear();
        self.queue.push_back(seed);
        let seed_idx = self.idx(seed.0, seed.1);
        self.visited[seed_idx] = self.stamp;
        out.push(seed);
        stats.pixels_in_region += 1;

        while let Some((x, y)) = self.queue.pop_front() {
            for (dx, dy) in NEIGHBORS8 {
                let (nx, ny) = (x + dx, y + dy);
                if !self.in_bounds(nx, ny) {
                    continue;
                }
                let i = self.idx(nx, ny);
                if self.visited[i] == self.stamp {
                    continue;
                }
                self.visited[i] = self.stamp;
                stats.pixels_tested += 1;
                if test.passes(nx, ny) {
                    out.push((nx, ny));
                    stats.pixels_in_region += 1;
                    self.queue.push_back((nx, ny));
                }
            }
        }
        stats
    }

    /// Seed selection: clamped center first, then a border scan.
    fn find_seed(&self, test: &EffectiveTest, stats: &mut PixelTraceStats) -> Option<(i32, i32)> {
        let cx = (test.mean.x.floor() as i32).clamp(0, self.width - 1);
        let cy = (test.mean.y.floor() as i32).clamp(0, self.height - 1);
        stats.pixels_tested += 1;
        if test.passes(cx, cy) {
            return Some((cx, cy));
        }
        // Center in bounds and failing ⇒ no pixel can pass (alpha peaks at
        // the center, modulo sub-pixel quantization handled by also probing
        // the 3×3 neighborhood).
        let center_in_bounds = test.mean.x >= 0.0
            && test.mean.y >= 0.0
            && test.mean.x < self.width as f32
            && test.mean.y < self.height as f32;
        if center_in_bounds {
            for (dx, dy) in NEIGHBORS8 {
                let (nx, ny) = (cx + dx, cy + dy);
                if self.in_bounds(nx, ny) {
                    stats.pixels_tested += 1;
                    if test.passes(nx, ny) {
                        return Some((nx, ny));
                    }
                }
            }
            return None;
        }
        // Off-screen center: the footprint can only enter through the
        // border; scan it.
        for x in 0..self.width {
            for y in [0, self.height - 1] {
                stats.pixels_tested += 1;
                if test.passes(x, y) {
                    return Some((x, y));
                }
            }
        }
        for y in 0..self.height {
            for x in [0, self.width - 1] {
                stats.pixels_tested += 1;
                if test.passes(x, y) {
                    return Some((x, y));
                }
            }
        }
        None
    }
}

const NEIGHBORS8: [(i32, i32); 8] = [
    (-1, -1),
    (0, -1),
    (1, -1),
    (-1, 0),
    (1, 0),
    (-1, 1),
    (0, 1),
    (1, 1),
];

/// How a [`BlockTracer`] treats transmittance-masked blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaskMode {
    /// Paper behaviour (§4.5): masked blocks initialize the status map as
    /// visited — they are neither dispatched nor expanded through.
    SkipAndBlock,
    /// Ablation: masked blocks are not dispatched to the PE array but the
    /// traversal still expands through them (no reachability loss).
    Traverse,
}

/// Geometry of the block grid the Alpha Unit operates on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockGrid {
    /// Block edge length in pixels (GCC: 8).
    pub block: u32,
    /// Image width in pixels.
    pub width: u32,
    /// Image height in pixels.
    pub height: u32,
}

impl BlockGrid {
    /// Creates a grid.
    ///
    /// # Panics
    ///
    /// Panics for zero block size or image dimensions.
    pub fn new(block: u32, width: u32, height: u32) -> Self {
        assert!(block > 0 && width > 0 && height > 0, "degenerate grid");
        Self {
            block,
            width,
            height,
        }
    }

    /// Blocks per row.
    pub fn blocks_x(&self) -> u32 {
        self.width.div_ceil(self.block)
    }

    /// Blocks per column.
    pub fn blocks_y(&self) -> u32 {
        self.height.div_ceil(self.block)
    }

    /// Total block count.
    pub fn block_count(&self) -> usize {
        (self.blocks_x() * self.blocks_y()) as usize
    }

    /// Linear index of the block containing pixel `(x, y)`.
    pub fn block_of(&self, x: i32, y: i32) -> usize {
        let bx = (x.clamp(0, self.width as i32 - 1) as u32) / self.block;
        let by = (y.clamp(0, self.height as i32 - 1) as u32) / self.block;
        (by * self.blocks_x() + bx) as usize
    }

    /// Pixel rectangle of block `b`, clipped to the image:
    /// `(x0, y0, x1, y1)` with exclusive upper bounds.
    pub fn block_rect(&self, b: usize) -> (i32, i32, i32, i32) {
        let bx = (b as u32) % self.blocks_x();
        let by = (b as u32) / self.blocks_x();
        let x0 = bx * self.block;
        let y0 = by * self.block;
        (
            x0 as i32,
            y0 as i32,
            (x0 + self.block).min(self.width) as i32,
            (y0 + self.block).min(self.height) as i32,
        )
    }
}

/// Per-block transmittance mask maintained by the Blending Unit: a block is
/// masked once *all* of its pixels have terminated (`T < 1e-4`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TMask {
    bits: Vec<bool>,
}

impl TMask {
    /// All-clear mask for `grid`.
    pub fn new(grid: &BlockGrid) -> Self {
        Self {
            bits: vec![false; grid.block_count()],
        }
    }

    /// Marks block `b` as fully terminated.
    pub fn set(&mut self, b: usize) {
        self.bits[b] = true;
    }

    /// `true` when block `b` is fully terminated.
    pub fn is_set(&self, b: usize) -> bool {
        self.bits[b]
    }

    /// Number of masked blocks.
    pub fn count(&self) -> usize {
        self.bits.iter().filter(|&&b| b).count()
    }
}

/// Statistics from one block-level trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlockTraceStats {
    /// Blocks dispatched to the PE array (alpha computed for each lane).
    pub blocks_dispatched: u64,
    /// Dispatched blocks in which at least one pixel passed `E`.
    pub blocks_effective: u64,
    /// Alpha-lane evaluations (in-bounds pixels of dispatched blocks).
    pub pixels_evaluated: u64,
    /// Blocks skipped because their `TMask` bit was set.
    pub blocks_masked: u64,
}

/// Reusable block-level tracer mirroring the Alpha Unit's runtime
/// identifier (status map `S`, search queue `Q`, block dispatch).
#[derive(Debug, Clone)]
pub struct BlockTracer {
    grid: BlockGrid,
    visited: Vec<u32>,
    stamp: u32,
    queue: VecDeque<usize>,
}

impl BlockTracer {
    /// Creates a tracer over `grid`.
    pub fn new(grid: BlockGrid) -> Self {
        Self {
            visited: vec![0; grid.block_count()],
            grid,
            stamp: 0,
            queue: VecDeque::new(),
        }
    }

    /// The grid this tracer operates on.
    pub fn grid(&self) -> &BlockGrid {
        &self.grid
    }

    /// Identifies the blocks a Gaussian influences, appending block indices
    /// of *effective* blocks (≥ 1 passing pixel, not masked) to `out`.
    ///
    /// `mask` and `mode` model the T-mask interaction; pass `None` to trace
    /// without termination masking.
    pub fn trace(
        &mut self,
        test: &EffectiveTest,
        mask: Option<&TMask>,
        mode: MaskMode,
        out: &mut Vec<usize>,
    ) -> BlockTraceStats {
        out.clear();
        let mut stats = BlockTraceStats::default();
        self.stamp = self.stamp.wrapping_add(1);
        if self.stamp == 0 {
            self.visited.fill(0);
            self.stamp = 1;
        }

        let seed = match self.find_seed_block(test) {
            Some(b) => b,
            None => return stats,
        };

        self.queue.clear();
        self.push_block(seed);
        while let Some(b) = self.queue.pop_front() {
            if let Some(m) = mask {
                if m.is_set(b) {
                    stats.blocks_masked += 1;
                    match mode {
                        MaskMode::SkipAndBlock => continue,
                        MaskMode::Traverse => {
                            // Expand through without dispatching: treat the
                            // block as effective for reachability only when
                            // its geometry passes E.
                            if self.block_passes_geometry(test, b) {
                                self.expand_neighbors(b);
                            }
                            continue;
                        }
                    }
                }
            }
            // Dispatch to the PE array: evaluate every in-bounds lane in
            // parallel and keep the pass pattern — the boundary lanes
            // drive the octant-direction pruning (paper §4.4: "if all
            // alpha values on the boundary of a direction fall below the
            // threshold, the corresponding region ... is marked as
            // pruned").
            let (x0, y0, x1, y1) = self.grid.block_rect(b);
            stats.blocks_dispatched += 1;
            stats.pixels_evaluated += ((x1 - x0) * (y1 - y0)) as u64;
            let mut any = false;
            let (mut north, mut south, mut west, mut east) = (false, false, false, false);
            for y in y0..y1 {
                for x in x0..x1 {
                    if test.passes(x, y) {
                        any = true;
                        north |= y == y0;
                        south |= y == y1 - 1;
                        west |= x == x0;
                        east |= x == x1 - 1;
                    }
                }
            }
            if any {
                stats.blocks_effective += 1;
                out.push(b);
                // Convexity: the footprint reaches a neighbor block only
                // through the facing boundary lanes (or the corner lane
                // for diagonal neighbors).
                let nw = test.passes(x0, y0);
                let ne = test.passes(x1 - 1, y0);
                let sw = test.passes(x0, y1 - 1);
                let se = test.passes(x1 - 1, y1 - 1);
                self.expand_directional(b, [north, south, west, east, nw, ne, sw, se]);
            }
        }
        stats
    }

    /// Cheap geometric version of the block test used when traversing
    /// masked blocks: does the ellipse touch the block?
    fn block_passes_geometry(&self, test: &EffectiveTest, b: usize) -> bool {
        let (x0, y0, x1, y1) = self.grid.block_rect(b);
        for y in y0..y1 {
            for x in x0..x1 {
                if test.passes(x, y) {
                    return true;
                }
            }
        }
        false
    }

    fn push_block(&mut self, b: usize) {
        if self.visited[b] != self.stamp {
            self.visited[b] = self.stamp;
            self.queue.push_back(b);
        }
    }

    fn expand_neighbors(&mut self, b: usize) {
        let bx = (b as u32 % self.grid.blocks_x()) as i32;
        let by = (b as u32 / self.grid.blocks_x()) as i32;
        for (dx, dy) in NEIGHBORS8 {
            self.push_offset(bx, by, dx, dy);
        }
    }

    /// Octant-pruned expansion: `[N, S, W, E, NW, NE, SW, SE]` flags say
    /// which directions the footprint's boundary lanes reached.
    fn expand_directional(&mut self, b: usize, dirs: [bool; 8]) {
        let bx = (b as u32 % self.grid.blocks_x()) as i32;
        let by = (b as u32 / self.grid.blocks_x()) as i32;
        let [n, s, w, e, nw, ne, sw, se] = dirs;
        if n {
            self.push_offset(bx, by, 0, -1);
        }
        if s {
            self.push_offset(bx, by, 0, 1);
        }
        if w {
            self.push_offset(bx, by, -1, 0);
        }
        if e {
            self.push_offset(bx, by, 1, 0);
        }
        if nw {
            self.push_offset(bx, by, -1, -1);
        }
        if ne {
            self.push_offset(bx, by, 1, -1);
        }
        if sw {
            self.push_offset(bx, by, -1, 1);
        }
        if se {
            self.push_offset(bx, by, 1, 1);
        }
    }

    fn push_offset(&mut self, bx: i32, by: i32, dx: i32, dy: i32) {
        let (nx, ny) = (bx + dx, by + dy);
        if nx < 0
            || ny < 0
            || nx >= self.grid.blocks_x() as i32
            || ny >= self.grid.blocks_y() as i32
        {
            return;
        }
        let nb = (ny as u32 * self.grid.blocks_x() + nx as u32) as usize;
        self.push_block(nb);
    }

    /// Seed block: the block containing the clamped center; if the center
    /// block's pixels all fail, probe the image border blocks (off-screen
    /// center case — the paper starts "from the nearest image corner").
    fn find_seed_block(&self, test: &EffectiveTest) -> Option<usize> {
        let cx = test.mean.x.floor() as i32;
        let cy = test.mean.y.floor() as i32;
        let seed = self.grid.block_of(cx, cy);
        if self.block_passes_geometry(test, seed) {
            return Some(seed);
        }
        let center_in_bounds = test.mean.x >= 0.0
            && test.mean.y >= 0.0
            && test.mean.x < self.grid.width as f32
            && test.mean.y < self.grid.height as f32;
        if center_in_bounds {
            return None;
        }
        let (bw, bh) = (self.grid.blocks_x() as i32, self.grid.blocks_y() as i32);
        for bx in 0..bw {
            for by in [0, bh - 1] {
                let b = (by * bw + bx) as usize;
                if self.block_passes_geometry(test, b) {
                    return Some(b);
                }
            }
        }
        for by in 0..bh {
            for bx in [0, bw - 1] {
                let b = (by * bw + bx) as usize;
                if self.block_passes_geometry(test, b) {
                    return Some(b);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcc_math::{SymMat2, Vec2};

    fn make_test(mean: Vec2, a: f32, b: f32, c: f32, opacity: f32) -> EffectiveTest {
        let cov = SymMat2::new(a, b, c);
        EffectiveTest::new(mean, cov.inverse().unwrap(), opacity)
    }

    fn exhaustive(test: &EffectiveTest, w: i32, h: i32) -> Vec<(i32, i32)> {
        let mut v = Vec::new();
        for y in 0..h {
            for x in 0..w {
                if test.passes(x, y) {
                    v.push((x, y));
                }
            }
        }
        v
    }

    #[test]
    fn bfs_matches_exhaustive_scan_centered() {
        let test = make_test(Vec2::new(32.0, 32.0), 12.0, 3.0, 6.0, 0.8);
        let mut tracer = PixelTracer::new(64, 64);
        let mut out = Vec::new();
        tracer.trace(&test, &mut out);
        let mut expect = exhaustive(&test, 64, 64);
        out.sort_unstable();
        expect.sort_unstable();
        assert_eq!(out, expect);
    }

    #[test]
    fn bfs_matches_exhaustive_for_anisotropic_offcenter() {
        let test = make_test(Vec2::new(5.0, 58.0), 40.0, 20.0, 15.0, 0.5);
        let mut tracer = PixelTracer::new(64, 64);
        let mut out = Vec::new();
        tracer.trace(&test, &mut out);
        let mut expect = exhaustive(&test, 64, 64);
        out.sort_unstable();
        expect.sort_unstable();
        assert_eq!(out, expect);
    }

    #[test]
    fn offscreen_center_region_is_found_via_border() {
        // Center left of the image, big footprint reaching in.
        let test = make_test(Vec2::new(-10.0, 32.0), 200.0, 0.0, 50.0, 0.9);
        let mut tracer = PixelTracer::new(64, 64);
        let mut out = Vec::new();
        tracer.trace(&test, &mut out);
        let expect = exhaustive(&test, 64, 64);
        assert!(!expect.is_empty(), "test fixture should reach the screen");
        assert_eq!(out.len(), expect.len());
    }

    #[test]
    fn faint_gaussian_yields_empty_region() {
        let test = make_test(Vec2::new(32.0, 32.0), 9.0, 0.0, 9.0, 0.0039);
        let mut tracer = PixelTracer::new(64, 64);
        let mut out = Vec::new();
        let stats = tracer.trace(&test, &mut out);
        assert!(out.is_empty());
        assert_eq!(stats.pixels_in_region, 0);
    }

    #[test]
    fn tested_pixels_are_region_plus_shell() {
        // BFS should test roughly region + its one-pixel boundary, far less
        // than the whole image.
        let test = make_test(Vec2::new(128.0, 128.0), 16.0, 0.0, 16.0, 1.0);
        let mut tracer = PixelTracer::new(256, 256);
        let mut out = Vec::new();
        let stats = tracer.trace(&test, &mut out);
        assert!(stats.pixels_in_region > 0);
        assert!(
            stats.pixels_tested < 8 * stats.pixels_in_region + 64,
            "tested {} for region {}",
            stats.pixels_tested,
            stats.pixels_in_region
        );
        assert!(stats.pixels_tested < 256 * 256 / 4);
    }

    #[test]
    fn tracer_is_reusable_across_gaussians() {
        let mut tracer = PixelTracer::new(64, 64);
        let mut out = Vec::new();
        let t1 = make_test(Vec2::new(10.0, 10.0), 4.0, 0.0, 4.0, 0.9);
        let t2 = make_test(Vec2::new(50.0, 50.0), 4.0, 0.0, 4.0, 0.9);
        tracer.trace(&t1, &mut out);
        let n1 = out.len();
        tracer.trace(&t2, &mut out);
        let n2 = out.len();
        assert!(n1 > 0 && n2 > 0);
        // Regions are congruent ellipses → same size.
        assert_eq!(n1, n2);
    }

    #[test]
    fn block_grid_geometry() {
        let g = BlockGrid::new(8, 100, 50);
        assert_eq!(g.blocks_x(), 13);
        assert_eq!(g.blocks_y(), 7);
        assert_eq!(g.block_count(), 91);
        // Edge blocks are clipped.
        let (x0, _y0, x1, _y1) = g.block_rect(12);
        assert_eq!(x0, 96);
        assert_eq!(x1, 100);
    }

    #[test]
    fn block_trace_covers_all_effective_pixels() {
        let grid = BlockGrid::new(8, 64, 64);
        let test = make_test(Vec2::new(30.0, 30.0), 30.0, 10.0, 20.0, 0.7);
        let mut tracer = BlockTracer::new(grid);
        let mut blocks = Vec::new();
        tracer.trace(&test, None, MaskMode::SkipAndBlock, &mut blocks);
        // Every effective pixel must live in a reported block.
        let expect = exhaustive(&test, 64, 64);
        assert!(!expect.is_empty());
        for (x, y) in expect {
            let b = grid.block_of(x, y);
            assert!(blocks.contains(&b), "pixel ({x},{y}) in unreported block");
        }
    }

    #[test]
    fn block_trace_dispatch_is_bounded_by_region_shell() {
        let grid = BlockGrid::new(8, 256, 256);
        let test = make_test(Vec2::new(128.0, 128.0), 64.0, 0.0, 64.0, 1.0);
        let mut tracer = BlockTracer::new(grid);
        let mut blocks = Vec::new();
        let stats = tracer.trace(&test, None, MaskMode::SkipAndBlock, &mut blocks);
        assert_eq!(stats.blocks_effective, blocks.len() as u64);
        // Dispatched = effective + boundary shell; shell of a convex region
        // is small relative to its interior at this size.
        assert!(stats.blocks_dispatched <= stats.blocks_effective * 3 + 16);
        assert!(stats.blocks_dispatched < grid.block_count() as u64);
    }

    #[test]
    fn tmask_skip_blocks_dispatch() {
        let grid = BlockGrid::new(8, 64, 64);
        let test = make_test(Vec2::new(32.0, 32.0), 60.0, 0.0, 60.0, 0.9);
        let mut tracer = BlockTracer::new(grid);

        let mut unmasked = Vec::new();
        let s0 = tracer.trace(&test, None, MaskMode::SkipAndBlock, &mut unmasked);

        // Mask the center block: with SkipAndBlock the whole region is cut
        // off at the seed (an extreme, correctness-relevant case).
        let mut mask = TMask::new(&grid);
        let center_block = grid.block_of(32, 32);
        mask.set(center_block);
        let mut masked_out = Vec::new();
        let s1 = tracer.trace(&test, Some(&mask), MaskMode::SkipAndBlock, &mut masked_out);
        assert!(s1.blocks_dispatched < s0.blocks_dispatched);
        assert_eq!(s1.blocks_masked, 1);

        // Traverse mode keeps reachability: all unmasked effective blocks
        // are still found.
        let mut traversed = Vec::new();
        let s2 = tracer.trace(&test, Some(&mask), MaskMode::Traverse, &mut traversed);
        assert_eq!(s2.blocks_masked, 1);
        assert_eq!(
            traversed.len(),
            unmasked.len() - 1,
            "traverse mode should only lose the masked block"
        );
    }

    #[test]
    fn empty_offscreen_gaussian_dispatches_nothing() {
        let grid = BlockGrid::new(8, 64, 64);
        // Tiny footprint far off-screen.
        let test = make_test(Vec2::new(-100.0, -100.0), 2.0, 0.0, 2.0, 0.9);
        let mut tracer = BlockTracer::new(grid);
        let mut blocks = Vec::new();
        let stats = tracer.trace(&test, None, MaskMode::SkipAndBlock, &mut blocks);
        assert_eq!(stats.blocks_dispatched, 0);
        assert!(blocks.is_empty());
    }
}
