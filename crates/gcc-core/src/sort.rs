//! The hardware depth-sorting substrate: a 16-element bitonic sorting
//! network plus the merge scheduler that sorts a full depth group through
//! it — "the Sort Unit determines the rendering order using a 16-element
//! bitonic sorting network, following the design in GSCore" (paper §4.1).
//!
//! The functional renderers use `slice::sort_by` for speed; this module is
//! the cycle-faithful model the simulator's sort-throughput constant is
//! derived from, and tests pin the two against each other.

/// Width of the hardware sorting network (GSCore/GCC: 16).
pub const NETWORK_WIDTH: usize = 16;

/// Monotone `u32` sort key of an `f32` depth: ascending key order is
/// exactly ascending [`f32::total_cmp`] order (including `-0.0 < +0.0`,
/// denormals, and infinities).
///
/// The transform is the classic sign-flip trick: negative floats have
/// their bits inverted (reversing their descending bit order), positive
/// floats get the sign bit set (placing them above all negatives). This is
/// what lets the frame pipeline replace comparison sorts over depths with
/// one LSD radix sort over keys.
#[inline]
pub fn depth_key(depth: f32) -> u32 {
    let bits = depth.to_bits();
    if bits & 0x8000_0000 != 0 {
        !bits
    } else {
        bits | 0x8000_0000
    }
}

/// A key-index pair flowing through the sorter (depth + Gaussian ID).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SortRecord {
    /// Sort key (view depth).
    pub key: f32,
    /// Payload (Gaussian index).
    pub id: u32,
}

/// Statistics of one sort: how much work the hardware network did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SortStats {
    /// Compare-exchange operations executed.
    pub compare_exchanges: u64,
    /// Passes through the 16-wide network.
    pub network_passes: u64,
    /// Merge steps performed on sorted runs.
    pub merge_steps: u64,
}

impl SortStats {
    /// Cycles for this sort assuming one network pass per cycle and a
    /// 2-element-per-cycle merge datapath — the basis of the simulator's
    /// `sort_throughput` constant.
    pub fn cycles(&self) -> u64 {
        self.network_passes + self.merge_steps
    }
}

/// One pass of a 16-element bitonic sorting network: sorts `chunk`
/// ascending by key, counting compare-exchanges exactly as the wired
/// network executes them (all ⌈log²n·n/4⌉ comparators fire regardless of
/// data).
///
/// # Panics
///
/// Panics if `chunk.len() > NETWORK_WIDTH`.
pub fn bitonic16(chunk: &mut [SortRecord], stats: &mut SortStats) {
    assert!(
        chunk.len() <= NETWORK_WIDTH,
        "network width exceeded: {}",
        chunk.len()
    );
    stats.network_passes += 1;
    // Short chunks are padded with +∞-keyed sentinels — exactly what the
    // hardware feeds unused lanes — which sort to the tail and are
    // discarded. All comparators fire every pass regardless of occupancy.
    let n = NETWORK_WIDTH;
    let mut lanes = [SortRecord {
        key: f32::INFINITY,
        id: u32::MAX,
    }; NETWORK_WIDTH];
    lanes[..chunk.len()].copy_from_slice(chunk);
    let mut k = 2;
    while k <= n {
        let mut j = k / 2;
        while j > 0 {
            for i in 0..n {
                let l = i ^ j;
                if l > i {
                    stats.compare_exchanges += 1;
                    let ascending = (i & k) == 0;
                    let out_of_order = if ascending {
                        lanes[i].key > lanes[l].key
                    } else {
                        lanes[i].key < lanes[l].key
                    };
                    if out_of_order {
                        lanes.swap(i, l);
                    }
                }
            }
            j /= 2;
        }
        k *= 2;
    }
    let len = chunk.len();
    chunk.copy_from_slice(&lanes[..len]);
}

/// Sorts an arbitrary-length record list the way the hardware does: cut
/// into 16-element runs, sort each through the bitonic network, then
/// 2-way-merge runs until one remains. Returns the work statistics.
///
/// The network passes run in place and the merge tree ping-pongs between
/// the record buffer and one reused scratch buffer (the hardware's double
/// buffer) — no per-run or per-merge-step allocations. The bottom-up
/// width-doubling sweep visits runs in exactly the order the pairwise
/// merge tree does (runs are contiguous, each round merges neighbors left
/// to right, an odd tail run is carried unmerged), so the statistics are
/// bit-identical to the allocating formulation — tests pin this.
pub fn sort_group(records: &mut Vec<SortRecord>, stats: &mut SortStats) {
    let n = records.len();
    if n <= 1 {
        return;
    }
    // Phase 1: network passes over 16-element runs, in place.
    for chunk in records.chunks_mut(NETWORK_WIDTH) {
        bitonic16(chunk, stats);
    }
    if n <= NETWORK_WIDTH {
        return;
    }
    // Phase 2: binary merge tree, bottom-up over the flat buffer.
    let mut src = std::mem::take(records);
    let mut dst: Vec<SortRecord> = Vec::with_capacity(n);
    let mut width = NETWORK_WIDTH;
    while width < n {
        dst.clear();
        let mut start = 0;
        while start < n {
            let mid = (start + width).min(n);
            let end = (start + 2 * width).min(n);
            if mid < end {
                merge_into(&src[start..mid], &src[mid..end], &mut dst, stats);
            } else {
                // Odd tail run: carried to the next round unmerged (no
                // merge work, exactly as the pairwise tree carries it).
                dst.extend_from_slice(&src[start..end]);
            }
            start = end;
        }
        std::mem::swap(&mut src, &mut dst);
        width *= 2;
    }
    *records = src;
}

fn merge_into(
    a: &[SortRecord],
    b: &[SortRecord],
    out: &mut Vec<SortRecord>,
    stats: &mut SortStats,
) {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        stats.merge_steps += 1;
        if a[i].key <= b[j].key {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    stats.merge_steps += (a.len() - i + b.len() - j) as u64;
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
}

/// Convenience: sorts a `(depth, id)` list and returns the IDs in
/// front-to-back order plus statistics — the Sort Unit's external
/// interface in Stage III.
pub fn sort_by_depth(pairs: &[(f32, u32)]) -> (Vec<u32>, SortStats) {
    let mut records: Vec<SortRecord> = pairs
        .iter()
        .map(|&(key, id)| SortRecord { key, id })
        .collect();
    let mut stats = SortStats::default();
    sort_group(&mut records, &mut stats);
    (records.into_iter().map(|r| r.id).collect(), stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(records: &[SortRecord]) -> Vec<f32> {
        records.iter().map(|r| r.key).collect()
    }

    fn make(keys: &[f32]) -> Vec<SortRecord> {
        keys.iter()
            .enumerate()
            .map(|(i, &key)| SortRecord { key, id: i as u32 })
            .collect()
    }

    #[test]
    fn network_sorts_full_width() {
        let mut v = make(&[
            5.0, 1.0, 9.0, -2.0, 7.5, 0.0, 3.3, 8.1, 2.2, 6.6, 4.4, -1.0, 10.0, 0.5, 9.9, 1.1,
        ]);
        let mut stats = SortStats::default();
        bitonic16(&mut v, &mut stats);
        let k = keys(&v);
        assert!(k.windows(2).all(|w| w[0] <= w[1]), "{k:?}");
        assert_eq!(stats.network_passes, 1);
        // A 16-wide bitonic network has n/2 · log²n / ... = 8 · 10 = 80
        // comparators; all fire each pass.
        assert_eq!(stats.compare_exchanges, 80);
    }

    #[test]
    fn network_handles_partial_chunks() {
        for len in 1..=16usize {
            let src: Vec<f32> = (0..len).map(|i| ((i * 7919) % 97) as f32).collect();
            let mut v = make(&src);
            let mut stats = SortStats::default();
            bitonic16(&mut v, &mut stats);
            let k = keys(&v);
            assert!(k.windows(2).all(|w| w[0] <= w[1]), "len {len}: {k:?}");
            assert_eq!(v.len(), len);
        }
    }

    #[test]
    #[should_panic(expected = "network width exceeded")]
    fn oversized_chunk_panics() {
        let mut v = make(&[0.0; 17]);
        bitonic16(&mut v, &mut SortStats::default());
    }

    #[test]
    fn group_sort_matches_std_sort() {
        let src: Vec<f32> = (0..256)
            .map(|i| (((i * 2654435761u64 as usize) % 1000) as f32) * 0.1)
            .collect();
        let pairs: Vec<(f32, u32)> = src
            .iter()
            .enumerate()
            .map(|(i, &k)| (k, i as u32))
            .collect();
        let (ids, stats) = sort_by_depth(&pairs);
        let mut expect: Vec<(f32, u32)> = pairs.clone();
        expect.sort_by(|a, b| a.0.total_cmp(&b.0));
        // Keys in hardware order must equal std-sorted keys.
        let got_keys: Vec<f32> = ids.iter().map(|&id| src[id as usize]).collect();
        let expect_keys: Vec<f32> = expect.iter().map(|&(k, _)| k).collect();
        assert_eq!(got_keys, expect_keys);
        assert!(stats.cycles() > 0);
    }

    #[test]
    fn group_sort_is_stable_enough_for_blending() {
        // Equal depths: any order is valid for blending, but every element
        // must survive exactly once.
        let pairs: Vec<(f32, u32)> = (0..100).map(|i| (1.0, i)).collect();
        let (ids, _) = sort_by_depth(&pairs);
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn work_scales_near_linearithmic() {
        let small: Vec<(f32, u32)> = (0..64).map(|i| ((i * 31 % 64) as f32, i)).collect();
        let large: Vec<(f32, u32)> = (0..1024).map(|i| ((i * 31 % 1024) as f32, i)).collect();
        let (_, s_small) = sort_by_depth(&small);
        let (_, s_large) = sort_by_depth(&large);
        let ratio = s_large.cycles() as f64 / s_small.cycles() as f64;
        // 16x the elements with log-factor growth: between 16x and ~40x.
        assert!((16.0..48.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn max_group_sorts_within_simulator_budget() {
        // A full 256-element depth group (the Stage I capacity) must cost
        // on the order of elements/sort_throughput cycles — this anchors
        // the simulator's sort_throughput = 4 elements/cycle constant.
        let pairs: Vec<(f32, u32)> = (0..256).map(|i| (((i * 97) % 256) as f32, i)).collect();
        let (_, stats) = sort_by_depth(&pairs);
        let cycles = stats.cycles() as f64;
        let implied_throughput = 256.0 / cycles;
        assert!(
            implied_throughput > 0.15 && implied_throughput < 4.0,
            "implied throughput {implied_throughput} el/cycle"
        );
    }

    /// The pre-optimization formulation of [`sort_group`]: a `Vec` per
    /// 16-run and per merge step. Kept as the behavioral reference the
    /// buffer-reusing implementation is pinned against.
    fn sort_group_reference(records: &mut Vec<SortRecord>, stats: &mut SortStats) {
        fn merge(a: Vec<SortRecord>, b: Vec<SortRecord>, stats: &mut SortStats) -> Vec<SortRecord> {
            let mut out = Vec::with_capacity(a.len() + b.len());
            let (mut i, mut j) = (0, 0);
            while i < a.len() && j < b.len() {
                stats.merge_steps += 1;
                if a[i].key <= b[j].key {
                    out.push(a[i]);
                    i += 1;
                } else {
                    out.push(b[j]);
                    j += 1;
                }
            }
            stats.merge_steps += (a.len() - i + b.len() - j) as u64;
            out.extend_from_slice(&a[i..]);
            out.extend_from_slice(&b[j..]);
            out
        }
        if records.len() <= 1 {
            return;
        }
        let mut runs: Vec<Vec<SortRecord>> = Vec::new();
        for chunk in records.chunks(NETWORK_WIDTH) {
            let mut run = chunk.to_vec();
            bitonic16(&mut run, stats);
            runs.push(run);
        }
        while runs.len() > 1 {
            let mut next = Vec::with_capacity(runs.len().div_ceil(2));
            let mut it = runs.into_iter();
            while let Some(a) = it.next() {
                match it.next() {
                    Some(b) => next.push(merge(a, b, stats)),
                    None => next.push(a),
                }
            }
            runs = next;
        }
        *records = runs.pop().unwrap_or_default();
    }

    #[test]
    fn ping_pong_sort_matches_allocating_reference_bit_for_bit() {
        // Lengths straddling run boundaries and odd merge-tree shapes:
        // the output order AND every statistic must match the reference.
        for len in [
            0usize, 1, 2, 15, 16, 17, 31, 32, 33, 48, 100, 256, 257, 1000,
        ] {
            let src: Vec<SortRecord> = (0..len)
                .map(|i| SortRecord {
                    key: (((i * 2654435761usize) % 1997) as f32) * 0.25 - 100.0,
                    id: i as u32,
                })
                .collect();
            let mut fast = src.clone();
            let mut fast_stats = SortStats::default();
            sort_group(&mut fast, &mut fast_stats);
            let mut reference = src;
            let mut ref_stats = SortStats::default();
            sort_group_reference(&mut reference, &mut ref_stats);
            assert_eq!(fast, reference, "order diverged at len {len}");
            assert_eq!(fast_stats, ref_stats, "stats diverged at len {len}");
        }
    }

    #[test]
    fn depth_key_order_matches_total_cmp_on_edge_values() {
        // ±0.0, denormals, near/far extremes, infinities — the exact value
        // classes projected depths and sort keys can hit.
        let values = [
            f32::NEG_INFINITY,
            f32::MIN,
            -1.0e30,
            -2.5,
            -1.0e-40, // negative denormal
            -f32::MIN_POSITIVE,
            -0.0,
            0.0,
            f32::MIN_POSITIVE,
            1.0e-40, // positive denormal
            0.2,
            1.0,
            1.0e30,
            f32::MAX,
            f32::INFINITY,
        ];
        for &a in &values {
            for &b in &values {
                assert_eq!(
                    depth_key(a).cmp(&depth_key(b)),
                    a.total_cmp(&b),
                    "key order diverges from total_cmp for {a} vs {b}"
                );
            }
        }
        // -0.0 and +0.0 map to distinct, ordered keys.
        assert!(depth_key(-0.0) < depth_key(0.0));
    }

    #[test]
    fn depth_key_is_monotone_on_sorted_sweep() {
        let mut depths: Vec<f32> = (0..10_000)
            .map(|i| (i as f32 - 5_000.0) * 0.37 + 0.01 * (i as f32).sin())
            .collect();
        depths.sort_by(f32::total_cmp);
        for w in depths.windows(2) {
            assert!(depth_key(w[0]) <= depth_key(w[1]), "{} vs {}", w[0], w[1]);
        }
    }

    #[test]
    fn empty_and_singleton_are_noops() {
        let (ids, stats) = sort_by_depth(&[]);
        assert!(ids.is_empty());
        assert_eq!(stats.cycles(), 0);
        let (ids1, _) = sort_by_depth(&[(3.0, 42)]);
        assert_eq!(ids1, vec![42]);
    }
}
