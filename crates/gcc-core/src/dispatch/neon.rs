//! aarch64 NEON kernels (4-lane f32, baseline on every aarch64 CPU).
//!
//! Same bit-exactness contract as the x86 kernels: per-lane operation
//! sequences mirror the scalar twins exactly, with min/max expressed as
//! compare-and-select (`a < b ? a : b`) so NaN propagation matches the
//! scalar `f32::min`/`f32::max` results on every input the renderers can
//! produce. SH evaluation has no NEON gather, so it routes to the scalar
//! twin.

use core::arch::aarch64::*;

use crate::{ALPHA_MAX, ALPHA_MIN};
use gcc_math::exp::{DET_EXP_LN2_HI, DET_EXP_LN2_LO, DET_EXP_LOG2E, DET_EXP_POLY, EXP_INPUT_MIN};

use super::scalar;
use super::KernelSet;

/// The NEON dispatch table.
pub(super) static NEON: KernelSet = KernelSet {
    backend: super::Backend::Neon,
    depth_keys: depth_keys_neon,
    alpha_powers: alpha_powers_neon,
    sh_colors: scalar::sh_colors,
};

fn depth_keys_neon(depths: &[f32], keys: &mut [u32]) {
    assert_eq!(depths.len(), keys.len());
    // SAFETY: NEON is part of the aarch64 baseline.
    unsafe { depth_keys_neon_impl(depths, keys) }
}

#[target_feature(enable = "neon")]
unsafe fn depth_keys_neon_impl(depths: &[f32], keys: &mut [u32]) {
    let n = depths.len();
    let mut i = 0;
    unsafe {
        let top = vdupq_n_u32(0x8000_0000);
        while i + 4 <= n {
            let v = vreinterpretq_u32_f32(vld1q_f32(depths.as_ptr().add(i)));
            // All-ones where the sign bit is set.
            let sign = vreinterpretq_u32_s32(vshrq_n_s32(vreinterpretq_s32_u32(v), 31));
            let flip = vorrq_u32(sign, top);
            vst1q_u32(keys.as_mut_ptr().add(i), veorq_u32(v, flip));
            i += 4;
        }
    }
    for j in i..n {
        keys[j] = crate::sort::depth_key(depths[j]);
    }
}

fn alpha_powers_neon(buf: &mut [f32]) {
    // SAFETY: NEON is part of the aarch64 baseline.
    unsafe { alpha_from_powers_neon(buf) }
}

/// In-place power → clamped-alpha, mirroring the x86 kernels lane for
/// lane: `det_exp` sequence, input clamps, `min(ALPHA_MAX)`, `< ALPHA_MIN
/// → 0`. Selects are `vbslq` on explicit comparisons so clamp semantics
/// (including NaN behavior) match the scalar reference.
#[target_feature(enable = "neon")]
unsafe fn alpha_from_powers_neon(buf: &mut [f32]) {
    let n = buf.len();
    let mut i = 0;
    unsafe {
        while i + 4 <= n {
            let x = vld1q_f32(buf.as_ptr().add(i));
            vst1q_f32(buf.as_mut_ptr().add(i), alpha4_neon(x));
            i += 4;
        }
        if i < n {
            // Padded tail: the same 4-lane body on a zero-padded stack
            // copy (zeros are benign `det_exp` inputs; pad lanes are
            // discarded). Per lane this is the identical operation
            // sequence, so the tail stays bit-exact — and the hot path
            // never calls the scalar exponential at all.
            let mut pad = [0.0f32; 4];
            pad[..n - i].copy_from_slice(&buf[i..]);
            vst1q_f32(pad.as_mut_ptr(), alpha4_neon(vld1q_f32(pad.as_ptr())));
            buf[i..].copy_from_slice(&pad[..n - i]);
        }
    }
}

/// One 4-lane power → alpha step of [`alpha_from_powers_neon`].
#[inline]
#[target_feature(enable = "neon")]
unsafe fn alpha4_neon(x: float32x4_t) -> float32x4_t {
    {
        let log2e = vdupq_n_f32(DET_EXP_LOG2E);
        let half = vdupq_n_f32(0.5);
        let one = vdupq_n_f32(1.0);
        let ln2_hi = vdupq_n_f32(DET_EXP_LN2_HI);
        let ln2_lo = vdupq_n_f32(DET_EXP_LN2_LO);
        let bias = vdupq_n_s32(127);
        let exp_min = vdupq_n_f32(EXP_INPUT_MIN);
        let zero = vdupq_n_f32(0.0);
        let alpha_max = vdupq_n_f32(ALPHA_MAX);
        let alpha_min = vdupq_n_f32(ALPHA_MIN);
        // k = floor(x·log2e + ½) — vrndmq rounds toward −∞.
        let k = vrndmq_f32(vaddq_f32(vmulq_f32(x, log2e), half));
        // r = x − k·ln2_hi − k·ln2_lo, two separate mul+sub (no FMA).
        let r = vsubq_f32(vsubq_f32(x, vmulq_f32(k, ln2_hi)), vmulq_f32(k, ln2_lo));
        let mut p = vdupq_n_f32(DET_EXP_POLY[0]);
        p = vaddq_f32(vmulq_f32(p, r), vdupq_n_f32(DET_EXP_POLY[1]));
        p = vaddq_f32(vmulq_f32(p, r), vdupq_n_f32(DET_EXP_POLY[2]));
        p = vaddq_f32(vmulq_f32(p, r), vdupq_n_f32(DET_EXP_POLY[3]));
        p = vaddq_f32(vmulq_f32(p, r), vdupq_n_f32(DET_EXP_POLY[4]));
        p = vaddq_f32(vmulq_f32(p, r), vdupq_n_f32(DET_EXP_POLY[5]));
        let y = vaddq_f32(vaddq_f32(vmulq_f32(p, vmulq_f32(r, r)), r), one);
        // 2^k through the exponent bits (k is integer-valued here).
        let ki = vcvtq_s32_f32(k);
        let scale = vreinterpretq_f32_s32(vshlq_n_s32(vaddq_s32(ki, bias), 23));
        let e = vmulq_f32(y, scale);
        // Input clamps: x < −5.54 → 0, x ≥ 0 → 1.
        let lo = vcltq_f32(x, exp_min);
        let hi = vcgeq_f32(x, zero);
        let mut a = vbslq_f32(lo, zero, e);
        a = vbslq_f32(hi, one, a);
        // a = min(a, ALPHA_MAX) as compare-select (NaN → ALPHA_MAX,
        // matching scalar f32::min with a non-NaN second operand).
        a = vbslq_f32(vcltq_f32(a, alpha_max), a, alpha_max);
        // a < ALPHA_MIN → 0.
        vbslq_f32(vcltq_f32(a, alpha_min), zero, a)
    }
}
