//! x86-64 SSE2 and AVX2 kernels.
//!
//! Every kernel mirrors its scalar twin's IEEE-754 operation sequence per
//! lane — same multiplies, same adds, same comparison-select clamps, no
//! FMA, no re-association — so results are bit-identical to the scalar
//! reference (see the module docs of [`crate::dispatch`] for the
//! contract). SSE2 is unconditionally available on x86-64; the AVX2 table
//! must only be handed out after `is_x86_feature_detected!("avx2")`, which
//! [`crate::dispatch::kernel_set`] enforces.

use core::arch::x86_64::*;

use crate::{Gaussian3D, ProjectedGaussian, ALPHA_MAX, ALPHA_MIN};
use gcc_math::exp::{DET_EXP_LN2_HI, DET_EXP_LN2_LO, DET_EXP_LOG2E, DET_EXP_POLY, EXP_INPUT_MIN};
use gcc_math::Vec3;

use super::scalar;
use super::KernelSet;

/// The SSE2 dispatch table (baseline on every x86-64 CPU). SH evaluation
/// has no profitable SSE2 form (no gathers), so it routes to the scalar
/// twin — bit-identical either way.
pub(super) static SSE2: KernelSet = KernelSet {
    backend: super::Backend::Sse2,
    depth_keys: depth_keys_sse2,
    alpha_powers: alpha_powers_sse2,
    sh_colors: scalar::sh_colors,
};

/// The AVX2 dispatch table. Only reachable through
/// [`crate::dispatch::kernel_set`]'s feature check.
pub(super) static AVX2: KernelSet = KernelSet {
    backend: super::Backend::Avx2,
    depth_keys: depth_keys_avx2,
    alpha_powers: alpha_powers_avx2,
    sh_colors: sh_colors_avx2,
};

fn depth_keys_sse2(depths: &[f32], keys: &mut [u32]) {
    assert_eq!(depths.len(), keys.len());
    // SAFETY: SSE2 is part of the x86-64 baseline.
    unsafe { depth_keys_sse2_impl(depths, keys) }
}

#[target_feature(enable = "sse2")]
unsafe fn depth_keys_sse2_impl(depths: &[f32], keys: &mut [u32]) {
    let n = depths.len();
    let mut i = 0;
    unsafe {
        let top = _mm_set1_epi32(0x8000_0000u32 as i32);
        while i + 4 <= n {
            let v = _mm_loadu_si128(depths.as_ptr().add(i).cast());
            let sign = _mm_srai_epi32(v, 31); // all-ones where negative
            let flip = _mm_or_si128(sign, top); // !bits ⟷ bits | top
            let k = _mm_xor_si128(v, flip);
            _mm_storeu_si128(keys.as_mut_ptr().add(i).cast(), k);
            i += 4;
        }
    }
    for j in i..n {
        keys[j] = crate::sort::depth_key(depths[j]);
    }
}

fn depth_keys_avx2(depths: &[f32], keys: &mut [u32]) {
    assert_eq!(depths.len(), keys.len());
    debug_assert!(std::arch::is_x86_feature_detected!("avx2"));
    // SAFETY: the AVX2 table is only handed out after feature detection.
    unsafe { depth_keys_avx2_impl(depths, keys) }
}

#[target_feature(enable = "avx2")]
unsafe fn depth_keys_avx2_impl(depths: &[f32], keys: &mut [u32]) {
    let n = depths.len();
    let mut i = 0;
    unsafe {
        let top = _mm256_set1_epi32(0x8000_0000u32 as i32);
        while i + 8 <= n {
            let v = _mm256_loadu_si256(depths.as_ptr().add(i).cast());
            let sign = _mm256_srai_epi32(v, 31);
            let flip = _mm256_or_si256(sign, top);
            let k = _mm256_xor_si256(v, flip);
            _mm256_storeu_si256(keys.as_mut_ptr().add(i).cast(), k);
            i += 8;
        }
    }
    for j in i..n {
        keys[j] = crate::sort::depth_key(depths[j]);
    }
}

fn alpha_powers_sse2(buf: &mut [f32]) {
    // SAFETY: SSE2 is part of the x86-64 baseline.
    unsafe { alpha_from_powers_sse2(buf) }
}

/// In-place power → clamped-alpha over a buffer, 4 lanes at a time. Per
/// lane this is exactly [`alpha_from_power`]: the `det_exp` operation
/// sequence plus the `[−5.54, 0)` input clamps and the
/// `min(ALPHA_MAX)` / `< ALPHA_MIN → 0` output clamps, evaluated
/// branchlessly (clamped lanes compute a discarded `det_exp`, which is
/// wasted work but cannot change selected results).
#[target_feature(enable = "sse2")]
unsafe fn alpha_from_powers_sse2(buf: &mut [f32]) {
    let n = buf.len();
    let mut i = 0;
    unsafe {
        while i + 4 <= n {
            let x = _mm_loadu_ps(buf.as_ptr().add(i));
            _mm_storeu_ps(buf.as_mut_ptr().add(i), alpha4_sse2(x));
            i += 4;
        }
        if i < n {
            // Padded tail: the same 4-lane body on a zero-padded stack
            // copy (zeros are benign `det_exp` inputs; pad lanes are
            // discarded). Per lane this is the identical operation
            // sequence, so the tail stays bit-exact — and the hot path
            // never calls the scalar exponential at all.
            let mut pad = [0.0f32; 4];
            pad[..n - i].copy_from_slice(&buf[i..]);
            _mm_storeu_ps(pad.as_mut_ptr(), alpha4_sse2(_mm_loadu_ps(pad.as_ptr())));
            buf[i..].copy_from_slice(&pad[..n - i]);
        }
    }
}

/// One 4-lane power → alpha step of [`alpha_from_powers_sse2`].
#[inline]
#[target_feature(enable = "sse2")]
unsafe fn alpha4_sse2(x: __m128) -> __m128 {
    {
        let log2e = _mm_set1_ps(DET_EXP_LOG2E);
        let half = _mm_set1_ps(0.5);
        let one = _mm_set1_ps(1.0);
        let ln2_hi = _mm_set1_ps(DET_EXP_LN2_HI);
        let ln2_lo = _mm_set1_ps(DET_EXP_LN2_LO);
        let bias = _mm_set1_epi32(127);
        let exp_min = _mm_set1_ps(EXP_INPUT_MIN);
        let zero = _mm_setzero_ps();
        let alpha_max = _mm_set1_ps(ALPHA_MAX);
        let alpha_min = _mm_set1_ps(ALPHA_MIN);
        // k = floor(x·log2e + ½); SSE2 has no floor, so truncate and
        // step down where truncation rounded up (negative inputs).
        let t = _mm_add_ps(_mm_mul_ps(x, log2e), half);
        let tf = _mm_cvtepi32_ps(_mm_cvttps_epi32(t));
        let k = _mm_sub_ps(tf, _mm_and_ps(_mm_cmplt_ps(t, tf), one));
        // r = x − k·ln2_hi − k·ln2_lo, two separate mul+sub (no FMA).
        let r = _mm_sub_ps(_mm_sub_ps(x, _mm_mul_ps(k, ln2_hi)), _mm_mul_ps(k, ln2_lo));
        // Horner, same order as det_exp.
        let mut p = _mm_set1_ps(DET_EXP_POLY[0]);
        p = _mm_add_ps(_mm_mul_ps(p, r), _mm_set1_ps(DET_EXP_POLY[1]));
        p = _mm_add_ps(_mm_mul_ps(p, r), _mm_set1_ps(DET_EXP_POLY[2]));
        p = _mm_add_ps(_mm_mul_ps(p, r), _mm_set1_ps(DET_EXP_POLY[3]));
        p = _mm_add_ps(_mm_mul_ps(p, r), _mm_set1_ps(DET_EXP_POLY[4]));
        p = _mm_add_ps(_mm_mul_ps(p, r), _mm_set1_ps(DET_EXP_POLY[5]));
        let y = _mm_add_ps(_mm_add_ps(_mm_mul_ps(p, _mm_mul_ps(r, r)), r), one);
        // 2^k through the exponent bits (k is integer-valued here).
        let ki = _mm_cvttps_epi32(k);
        let scale = _mm_castsi128_ps(_mm_slli_epi32(_mm_add_epi32(ki, bias), 23));
        let e = _mm_mul_ps(y, scale);
        // Input clamps: x < −5.54 → 0, x ≥ 0 → 1 (mutually exclusive).
        let lo = _mm_cmplt_ps(x, exp_min);
        let hi = _mm_cmpge_ps(x, zero);
        let mut a = _mm_andnot_ps(lo, e);
        a = _mm_or_ps(_mm_and_ps(hi, one), _mm_andnot_ps(hi, a));
        // Output clamps, matching scalar `min` NaN/order semantics.
        a = _mm_min_ps(a, alpha_max);
        _mm_andnot_ps(_mm_cmplt_ps(a, alpha_min), a)
    }
}

fn alpha_powers_avx2(buf: &mut [f32]) {
    debug_assert!(std::arch::is_x86_feature_detected!("avx2"));
    // SAFETY: the AVX2 table is only handed out after feature detection.
    unsafe { alpha_from_powers_avx2(buf) }
}

/// 8-lane twin of [`alpha_from_powers_sse2`] (identical per-lane sequence;
/// AVX has a real floor).
#[target_feature(enable = "avx2")]
unsafe fn alpha_from_powers_avx2(buf: &mut [f32]) {
    let n = buf.len();
    let mut i = 0;
    unsafe {
        while i + 8 <= n {
            let x = _mm256_loadu_ps(buf.as_ptr().add(i));
            _mm256_storeu_ps(buf.as_mut_ptr().add(i), alpha8_avx2(x));
            i += 8;
        }
        if i < n {
            // Padded tail: the same 8-lane body on a zero-padded stack
            // copy (zeros are benign `det_exp` inputs; pad lanes are
            // discarded). Per lane this is the identical operation
            // sequence, so the tail stays bit-exact — and the hot path
            // never calls the scalar exponential at all.
            let mut pad = [0.0f32; 8];
            pad[..n - i].copy_from_slice(&buf[i..]);
            _mm256_storeu_ps(pad.as_mut_ptr(), alpha8_avx2(_mm256_loadu_ps(pad.as_ptr())));
            buf[i..].copy_from_slice(&pad[..n - i]);
        }
    }
}

/// One 8-lane power → alpha step of [`alpha_from_powers_avx2`].
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn alpha8_avx2(x: __m256) -> __m256 {
    const FLOOR: i32 = _MM_FROUND_TO_NEG_INF | _MM_FROUND_NO_EXC;
    {
        let log2e = _mm256_set1_ps(DET_EXP_LOG2E);
        let half = _mm256_set1_ps(0.5);
        let one = _mm256_set1_ps(1.0);
        let ln2_hi = _mm256_set1_ps(DET_EXP_LN2_HI);
        let ln2_lo = _mm256_set1_ps(DET_EXP_LN2_LO);
        let bias = _mm256_set1_epi32(127);
        let exp_min = _mm256_set1_ps(EXP_INPUT_MIN);
        let zero = _mm256_setzero_ps();
        let alpha_max = _mm256_set1_ps(ALPHA_MAX);
        let alpha_min = _mm256_set1_ps(ALPHA_MIN);
        let k = _mm256_round_ps::<FLOOR>(_mm256_add_ps(_mm256_mul_ps(x, log2e), half));
        let r = _mm256_sub_ps(
            _mm256_sub_ps(x, _mm256_mul_ps(k, ln2_hi)),
            _mm256_mul_ps(k, ln2_lo),
        );
        let mut p = _mm256_set1_ps(DET_EXP_POLY[0]);
        p = _mm256_add_ps(_mm256_mul_ps(p, r), _mm256_set1_ps(DET_EXP_POLY[1]));
        p = _mm256_add_ps(_mm256_mul_ps(p, r), _mm256_set1_ps(DET_EXP_POLY[2]));
        p = _mm256_add_ps(_mm256_mul_ps(p, r), _mm256_set1_ps(DET_EXP_POLY[3]));
        p = _mm256_add_ps(_mm256_mul_ps(p, r), _mm256_set1_ps(DET_EXP_POLY[4]));
        p = _mm256_add_ps(_mm256_mul_ps(p, r), _mm256_set1_ps(DET_EXP_POLY[5]));
        let y = _mm256_add_ps(_mm256_add_ps(_mm256_mul_ps(p, _mm256_mul_ps(r, r)), r), one);
        let ki = _mm256_cvttps_epi32(k);
        let scale = _mm256_castsi256_ps(_mm256_slli_epi32(_mm256_add_epi32(ki, bias), 23));
        let e = _mm256_mul_ps(y, scale);
        let lo = _mm256_cmp_ps::<_CMP_LT_OQ>(x, exp_min);
        let hi = _mm256_cmp_ps::<_CMP_GE_OQ>(x, zero);
        let mut a = _mm256_andnot_ps(lo, e);
        a = _mm256_or_ps(_mm256_and_ps(hi, one), _mm256_andnot_ps(hi, a));
        a = _mm256_min_ps(a, alpha_max);
        _mm256_andnot_ps(_mm256_cmp_ps::<_CMP_LT_OQ>(a, alpha_min), a)
    }
}

fn sh_colors_avx2(
    gaussians: &[Gaussian3D],
    dir_x: &[f32],
    dir_y: &[f32],
    dir_z: &[f32],
    degree: u8,
    out: &mut [ProjectedGaussian],
) {
    assert_eq!(dir_x.len(), out.len());
    assert_eq!(dir_y.len(), out.len());
    assert_eq!(dir_z.len(), out.len());
    debug_assert!(std::arch::is_x86_feature_detected!("avx2"));
    let d = degree.min(3) as usize;
    let n_coeffs = ((d + 1) * (d + 1)).min(crate::SH_COEFFS_PER_CHANNEL);
    let n = out.len();
    let mut i = 0;
    while i + 8 <= n {
        // Bounds of every lane's source record, checked before the raw
        // gathers (the scalar twin's `gaussians[p.id]` indexing).
        for p in &out[i..i + 8] {
            assert!((p.id as usize) < gaussians.len(), "survivor id in range");
        }
        // SAFETY: the AVX2 table is only handed out after feature
        // detection; every gathered id was just bounds-checked.
        unsafe {
            sh_colors8_avx2(
                gaussians,
                dir_x.as_ptr().add(i),
                dir_y.as_ptr().add(i),
                dir_z.as_ptr().add(i),
                n_coeffs,
                &mut out[i..i + 8],
            );
        }
        i += 8;
    }
    scalar::sh_colors(
        gaussians,
        &dir_x[i..],
        &dir_y[i..],
        &dir_z[i..],
        degree,
        &mut out[i..],
    );
}

/// One 8-survivor SH batch: lane `l` evaluates survivor `l`. The basis is
/// built with the exact expression tree of [`crate::sh::basis`], and the
/// per-channel accumulation runs coefficient-by-coefficient in
/// [`crate::sh::eval_color_deg`]'s order — the only data-parallel axis is
/// the survivor, so every lane reproduces the scalar arithmetic verbatim.
/// Coefficients come straight from the source records via per-coefficient
/// gathers: lane `l` reads float `id_l·stride + sh_offset + c·16 + j` of
/// the [`Gaussian3D`] array reinterpreted as floats (the struct is all
/// `f32` fields, so stride and field offset are whole floats — asserted
/// below). The caller bounds-checks every lane's id.
#[target_feature(enable = "avx2")]
unsafe fn sh_colors8_avx2(
    gaussians: &[Gaussian3D],
    dx: *const f32,
    dy: *const f32,
    dz: *const f32,
    n_coeffs: usize,
    out: &mut [ProjectedGaussian],
) {
    use crate::sh::{SH_C0, SH_C1, SH_C2, SH_C3};
    let mut rgb = [[0.0f32; 8]; 3];
    unsafe {
        let x = _mm256_loadu_ps(dx);
        let y = _mm256_loadu_ps(dy);
        let z = _mm256_loadu_ps(dz);
        let xx = _mm256_mul_ps(x, x);
        let yy = _mm256_mul_ps(y, y);
        let zz = _mm256_mul_ps(z, z);
        let xy = _mm256_mul_ps(x, y);
        let yz = _mm256_mul_ps(y, z);
        let xz = _mm256_mul_ps(x, z);
        let two = _mm256_set1_ps(2.0);
        let three = _mm256_set1_ps(3.0);
        let four = _mm256_set1_ps(4.0);
        let b: [__m256; 16] = [
            _mm256_set1_ps(SH_C0),
            _mm256_mul_ps(_mm256_set1_ps(-SH_C1), y),
            _mm256_mul_ps(_mm256_set1_ps(SH_C1), z),
            _mm256_mul_ps(_mm256_set1_ps(-SH_C1), x),
            _mm256_mul_ps(_mm256_set1_ps(SH_C2[0]), xy),
            _mm256_mul_ps(_mm256_set1_ps(SH_C2[1]), yz),
            _mm256_mul_ps(
                _mm256_set1_ps(SH_C2[2]),
                _mm256_sub_ps(_mm256_sub_ps(_mm256_mul_ps(two, zz), xx), yy),
            ),
            _mm256_mul_ps(_mm256_set1_ps(SH_C2[3]), xz),
            _mm256_mul_ps(_mm256_set1_ps(SH_C2[4]), _mm256_sub_ps(xx, yy)),
            _mm256_mul_ps(
                _mm256_mul_ps(_mm256_set1_ps(SH_C3[0]), y),
                _mm256_sub_ps(_mm256_mul_ps(three, xx), yy),
            ),
            _mm256_mul_ps(_mm256_mul_ps(_mm256_set1_ps(SH_C3[1]), xy), z),
            _mm256_mul_ps(
                _mm256_mul_ps(_mm256_set1_ps(SH_C3[2]), y),
                _mm256_sub_ps(_mm256_sub_ps(_mm256_mul_ps(four, zz), xx), yy),
            ),
            _mm256_mul_ps(
                _mm256_mul_ps(_mm256_set1_ps(SH_C3[3]), z),
                _mm256_sub_ps(
                    _mm256_sub_ps(_mm256_mul_ps(two, zz), _mm256_mul_ps(three, xx)),
                    _mm256_mul_ps(three, yy),
                ),
            ),
            _mm256_mul_ps(
                _mm256_mul_ps(_mm256_set1_ps(SH_C3[4]), x),
                _mm256_sub_ps(_mm256_sub_ps(_mm256_mul_ps(four, zz), xx), yy),
            ),
            _mm256_mul_ps(
                _mm256_mul_ps(_mm256_set1_ps(SH_C3[5]), z),
                _mm256_sub_ps(xx, yy),
            ),
            _mm256_mul_ps(
                _mm256_mul_ps(_mm256_set1_ps(SH_C3[6]), x),
                _mm256_sub_ps(xx, _mm256_mul_ps(three, yy)),
            ),
        ];
        // Lane l's coefficient block starts at float
        // `id_l·stride + sh_offset` of the record array viewed as floats.
        const STRIDE: usize = std::mem::size_of::<Gaussian3D>() / 4;
        const SH_OFF: usize = std::mem::offset_of!(Gaussian3D, sh) / 4;
        const _: () = assert!(std::mem::size_of::<Gaussian3D>().is_multiple_of(4));
        const _: () = assert!(std::mem::offset_of!(Gaussian3D, sh).is_multiple_of(4));
        let sh = gaussians.as_ptr().cast::<f32>();
        let ids = [
            out[0].id, out[1].id, out[2].id, out[3].id, out[4].id, out[5].id, out[6].id, out[7].id,
        ];
        let lane_off = _mm256_add_epi32(
            _mm256_mullo_epi32(
                _mm256_loadu_si256(ids.as_ptr().cast()),
                _mm256_set1_epi32(STRIDE as i32),
            ),
            _mm256_set1_epi32(SH_OFF as i32),
        );
        let half = _mm256_set1_ps(0.5);
        let zero = _mm256_setzero_ps();
        for (c, chan) in rgb.iter_mut().enumerate() {
            let mut acc = _mm256_setzero_ps();
            for (j, bf) in b.iter().enumerate().take(n_coeffs) {
                let idx = _mm256_add_epi32(
                    lane_off,
                    _mm256_set1_epi32((c * crate::SH_COEFFS_PER_CHANNEL + j) as i32),
                );
                let cf = _mm256_i32gather_ps::<4>(sh, idx);
                acc = _mm256_add_ps(acc, _mm256_mul_ps(cf, *bf));
            }
            // (acc + 0.5).max(0.0), NaN/zero semantics matching scalar max.
            let v = _mm256_max_ps(_mm256_add_ps(acc, half), zero);
            _mm256_storeu_ps(chan.as_mut_ptr(), v);
        }
    }
    for (l, p) in out.iter_mut().enumerate() {
        p.color = Vec3::new(rgb[0][l], rgb[1][l], rgb[2][l]);
    }
}
