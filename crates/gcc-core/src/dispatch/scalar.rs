//! Scalar reference kernels: the bit-exactness anchors every SIMD backend
//! is pinned against. These are *definitions*, not fallbacks — each is the
//! exact arithmetic the renderers used before dispatch existed, expressed
//! over the flat SoA slices the kernel ABI takes.

use crate::sort::depth_key;
use crate::{Gaussian3D, ProjectedGaussian};
use gcc_math::Vec3;

/// Scalar [`crate::dispatch::DepthKeysFn`].
pub fn depth_keys(depths: &[f32], keys: &mut [u32]) {
    assert_eq!(depths.len(), keys.len());
    for (k, d) in keys.iter_mut().zip(depths) {
        *k = depth_key(*d);
    }
}

/// Scalar [`crate::dispatch::AlphaPowersFn`]: [`alpha_from_power`] applied
/// in place to every slot.
pub fn alpha_powers(buf: &mut [f32]) {
    for slot in buf {
        *slot = alpha_from_power(*slot);
    }
}

/// Alpha-from-raw-power: `RowAlpha::alpha(&ExpMode::Exact)` applied to a
/// power value directly — the per-element body of [`alpha_powers`] and the
/// scalar tail the SIMD alpha kernels use for the last `len % lanes`
/// elements.
#[inline]
pub(super) fn alpha_from_power(power: f32) -> f32 {
    let e = if power < gcc_math::exp::EXP_INPUT_MIN {
        0.0
    } else if power >= 0.0 {
        1.0
    } else {
        gcc_math::exp::det_exp(power)
    };
    let a = e.min(crate::ALPHA_MAX);
    if a < crate::ALPHA_MIN {
        0.0
    } else {
        a
    }
}

/// Scalar [`crate::dispatch::ShColorsFn`]: per-survivor
/// [`crate::sh::eval_color_deg`] over the source records' coefficients.
pub fn sh_colors(
    gaussians: &[Gaussian3D],
    dir_x: &[f32],
    dir_y: &[f32],
    dir_z: &[f32],
    degree: u8,
    out: &mut [ProjectedGaussian],
) {
    assert_eq!(dir_x.len(), out.len());
    assert_eq!(dir_y.len(), out.len());
    assert_eq!(dir_z.len(), out.len());
    for (i, p) in out.iter_mut().enumerate() {
        let coeffs = &gaussians[p.id as usize].sh;
        let dir = Vec3::new(dir_x[i], dir_y[i], dir_z[i]);
        p.color = crate::sh::eval_color_deg(coeffs, dir, degree);
    }
}
