//! Runtime-dispatched SIMD kernels for the frame hot path.
//!
//! The renderers in `gcc-render` spend almost their entire frame budget in
//! three flat loops: depth-key generation before the radix sort, the
//! exponential/clamp chain of the alpha span walkers, and SH color
//! evaluation. This module provides explicitly vectorized `core::arch`
//! implementations of those loops (SSE2/AVX2 on x86-64, NEON on aarch64)
//! behind a one-time runtime dispatch table, with the scalar path kept as
//! the bit-exactness reference.
//!
//! # Bit-exactness contract
//!
//! Every kernel in a [`KernelSet`] is **bit-identical** to its scalar twin
//! on all inputs the renderers produce. This is by construction, not by
//! tolerance:
//!
//! * the exponential is [`gcc_math::exp::det_exp`] — a fixed sequence of
//!   IEEE-754 single-precision operations with no FMA and no libm call —
//!   and the SIMD kernels perform the same per-lane operation sequence;
//! * sequentially-dependent arithmetic (the [`RowAlpha`] forward-difference
//!   chain) stays scalar in both paths; only the independent per-element
//!   tail (exp + clamps) is vectorized;
//! * kernels never use horizontal reductions, re-association, or FMA
//!   contraction, so lane results equal scalar results bit for bit.
//!
//! Any future kernel that cannot preserve operation order must stay behind
//! an off-by-default fast-math-style opt-in rather than joining the default
//! dispatch table. The `tests/simd_parity.rs` suite in `gcc-render` pins
//! the contract (kernel-level sweeps over awkward lengths plus whole-frame
//! image comparisons), and the `simd-matrix` CI job runs the entire test
//! suite both dispatched and with [`FORCE_SCALAR_ENV`] set.
//!
//! # Selection
//!
//! [`active`] resolves the best supported backend once (cached): AVX2 if
//! the CPU reports it, else SSE2 on x86-64, NEON on aarch64, scalar
//! elsewhere. Setting the environment variable `GCC_FORCE_SCALAR` to
//! anything but `0`/empty forces the scalar reference. Renderer configs can
//! also pin a backend per call (`StandardConfig::backend`), which is what
//! the in-process parity tests use — no global state involved.

mod scalar;

// The SIMD modules are the crate's sanctioned `unsafe` islands
// (intrinsics only — no raw-pointer data structures).
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod x86;

#[cfg(target_arch = "aarch64")]
#[allow(unsafe_code)]
mod neon;

use crate::alpha::RowAlpha;
use crate::{Gaussian3D, ProjectedGaussian};
use std::sync::OnceLock;

/// Environment variable that forces the scalar reference kernels
/// (`GCC_FORCE_SCALAR=1`). Values `0` and the empty string leave dispatch
/// untouched; anything else forces scalar.
pub const FORCE_SCALAR_ENV: &str = "GCC_FORCE_SCALAR";

/// A vectorization backend the dispatch table can route to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Portable scalar Rust — the bit-exactness reference.
    Scalar,
    /// x86-64 SSE2 (baseline on every x86-64 CPU): 4-lane f32.
    Sse2,
    /// x86-64 AVX2: 8-lane f32 with gathers (requires CPU support).
    Avx2,
    /// aarch64 NEON (baseline on every aarch64 CPU): 4-lane f32.
    Neon,
}

impl Backend {
    /// Stable lowercase name (used in logs, stats, and test assertions).
    pub fn name(self) -> &'static str {
        match self {
            Self::Scalar => "scalar",
            Self::Sse2 => "sse2",
            Self::Avx2 => "avx2",
            Self::Neon => "neon",
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Fills `keys[i]` with the radix-sortable order-preserving key of
/// `depths[i]` ([`crate::sort::depth_key`]). Slices must be equal length.
pub type DepthKeysFn = fn(depths: &[f32], keys: &mut [u32]);

/// Converts a buffer of raw [`RowAlpha`] power values into clamped alphas
/// **in place**, in `ExpMode::Exact` semantics: `x < −5.54 → 0`,
/// `x ≥ 0 → 1`, else `det_exp(x)`, then `min(ALPHA_MAX)` and the
/// `< ALPHA_MIN → 0` cutoff. The power fill itself (the
/// sequentially-dependent forward-difference chain) always runs scalar in
/// the caller — see [`AlphaBatch`] — so kernels only see the independent
/// per-element exp/clamp tail, which is what vectorizes.
pub type AlphaPowersFn = fn(powers: &mut [f32]);

/// Evaluates SH colors for a batch of survivors and writes
/// `out[i].color`. Coefficients are read in place from
/// `gaussians[out[i].id].sh` (48 floats: 16 per channel, channel-major) —
/// survivors are culled source records, so the coefficient "SoA" is the
/// source array itself, indexed by survivor id; copying 48 floats per
/// survivor into a packed side buffer costs more than the evaluation
/// saves. `dir_x/y/z` are the unit view directions, `degree` clamps the
/// SH band exactly like [`crate::sh::eval_color_deg`]. The direction
/// slices must match `out.len()`, and every `out[i].id` must index
/// `gaussians`.
pub type ShColorsFn = fn(
    gaussians: &[Gaussian3D],
    dir_x: &[f32],
    dir_y: &[f32],
    dir_z: &[f32],
    degree: u8,
    out: &mut [ProjectedGaussian],
);

/// The dispatch table: one function pointer per vectorized hot loop, all
/// from the same backend (except where a backend has no profitable
/// implementation of a kernel, in which case the scalar twin is wired in —
/// bit-identical either way).
#[derive(Debug, Clone, Copy)]
pub struct KernelSet {
    /// Which backend this table routes to.
    pub backend: Backend,
    /// Depth-key generation kernel.
    pub depth_keys: DepthKeysFn,
    /// Power → clamped-alpha kernel (`ExpMode::Exact` datapath).
    pub alpha_powers: AlphaPowersFn,
    /// SH color evaluation kernel.
    pub sh_colors: ShColorsFn,
}

/// The scalar reference table.
static SCALAR: KernelSet = KernelSet {
    backend: Backend::Scalar,
    depth_keys: scalar::depth_keys,
    alpha_powers: scalar::alpha_powers,
    sh_colors: scalar::sh_colors,
};

/// Best backend the current CPU supports, ignoring any override.
pub fn detected() -> Backend {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            Backend::Avx2
        } else {
            Backend::Sse2
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        Backend::Neon
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        Backend::Scalar
    }
}

/// Whether the current process can execute kernels of backend `b`.
pub fn supported(b: Backend) -> bool {
    kernel_set(b).is_some()
}

/// All backends the current process can execute, scalar first.
pub fn available() -> Vec<Backend> {
    [Backend::Scalar, Backend::Sse2, Backend::Avx2, Backend::Neon]
        .into_iter()
        .filter(|&b| supported(b))
        .collect()
}

/// Pure selection rule: the backend [`active`] resolves to, given whether
/// the scalar override is in force and what the CPU supports. Split out so
/// tests can pin the routing without touching process environment.
pub fn select(force_scalar: bool, detected: Backend) -> Backend {
    if force_scalar {
        Backend::Scalar
    } else {
        detected
    }
}

/// Parses a `GCC_FORCE_SCALAR` value: unset, empty, and `0` mean "no
/// override"; anything else forces scalar.
pub fn force_scalar_requested(value: Option<&str>) -> bool {
    !matches!(value, None | Some("") | Some("0"))
}

/// The kernel table for backend `b`, or `None` when the current
/// process cannot execute it (wrong architecture or missing CPU feature).
pub fn kernel_set(b: Backend) -> Option<&'static KernelSet> {
    match b {
        Backend::Scalar => Some(&SCALAR),
        #[cfg(target_arch = "x86_64")]
        Backend::Sse2 => Some(&x86::SSE2),
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => {
            if std::arch::is_x86_feature_detected!("avx2") {
                Some(&x86::AVX2)
            } else {
                None
            }
        }
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => Some(&neon::NEON),
        #[allow(unreachable_patterns)]
        _ => None,
    }
}

/// The process-wide active kernel table: the best supported backend, or
/// scalar when `GCC_FORCE_SCALAR` is set. Resolved once on first call and
/// cached for the lifetime of the process.
pub fn active() -> &'static KernelSet {
    static ACTIVE: OnceLock<&'static KernelSet> = OnceLock::new();
    ACTIVE.get_or_init(|| {
        let force = force_scalar_requested(std::env::var(FORCE_SCALAR_ENV).ok().as_deref());
        let backend = select(force, detected());
        kernel_set(backend).unwrap_or(&SCALAR)
    })
}

/// Backend of the process-wide active kernel table.
pub fn active_backend() -> Backend {
    active().backend
}

/// One row span collected by [`AlphaBatch::collect_row`]: row `y`, first
/// pixel x `x`, and the slice `[start, start + len)` of the shared power
/// buffer.
#[derive(Debug, Clone, Copy)]
struct Segment {
    y: i32,
    x: i32,
    start: u32,
    len: u32,
}

/// Batched alpha evaluation across a Gaussian's whole tile/block
/// footprint — the bridge between the blend loops' early-out structure
/// and the vectorized exp/clamp kernel.
///
/// A single blend row is short (≤16 px tile spans, 8 px block rows), far
/// too few lanes to amortize a kernel call, but one Gaussian touches many
/// rows of its tile or block. The batch therefore runs in three phases
/// per (Gaussian, tile/block):
///
/// 1. [`collect_row`](Self::collect_row) per row — run the scalar
///    forward-difference chain across the whole span and append every
///    pixel's power to one flat buffer. The fill is liveness-*blind*: no
///    per-pixel branch, no pixel-state read, just two adds and a store
///    per lane, which is what lets the compiler keep the chain in
///    registers;
/// 2. [`eval`](Self::eval) — one `kernels.alpha_powers` pass over the
///    whole buffer (tens to hundreds of lanes), scalar or SIMD,
///    bit-identical either way;
/// 3. [`segments`](Self::segments) — the caller sweeps each span back
///    into its pixels, *skipping terminated pixels* and otherwise
///    blending and updating stats exactly as the per-pixel loop would
///    have.
///
/// Correctness of the phase split: a Gaussian touches each pixel at most
/// once, so a pixel's termination state cannot change between the start
/// of the batch and the sweep's visit to that pixel — the sweep's
/// `terminated()` reads see exactly what the per-pixel reference loop
/// would have seen, and the alphas it blends are the same chain values.
/// Alphas computed for terminated pixels are discarded unread (the
/// reference loop never computes them; computing-and-discarding is
/// unobservable).
#[derive(Debug, Default)]
pub struct AlphaBatch {
    powers: Vec<f32>,
    segs: Vec<Segment>,
}

impl AlphaBatch {
    /// An empty batch (buffers grow on first use and are then reused).
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops all collected rows, keeping capacity. Call once per
    /// (Gaussian, tile/block) before the collect phase.
    #[inline]
    pub fn clear(&mut self) {
        self.powers.clear();
        self.segs.clear();
    }

    /// True when no row has been collected since [`clear`](Self::clear).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.segs.is_empty()
    }

    /// Number of row spans collected so far. Callers that collect several
    /// disjoint regions (e.g. the Gaussian-wise blocks) snapshot this
    /// around each region so the sweep can be grouped per region via
    /// [`segments_in`](Self::segments_in).
    #[inline]
    pub fn seg_count(&self) -> usize {
        self.segs.len()
    }

    /// Phase 1: runs the scalar power chain across `len` pixels of row
    /// `y` starting at pixel x `x0`, recording every pixel's power —
    /// branchless, two adds and a store per lane.
    #[inline]
    pub fn collect_row(&mut self, row: &mut RowAlpha, y: i32, x0: i32, len: usize) {
        if len == 0 {
            return;
        }
        let start = self.powers.len() as u32;
        // `(0..len).map(..)` is an exact-size iterator, so `extend`
        // reserves once and writes without per-push growth checks.
        self.powers.extend((0..len).map(|_| {
            let v = row.power;
            row.advance();
            v
        }));
        self.segs.push(Segment {
            y,
            x: x0,
            start,
            len: len as u32,
        });
    }

    /// Phase 2: one kernel pass turning every collected power into its
    /// clamped `ExpMode::Exact` alpha, in place.
    #[inline]
    pub fn eval(&mut self, kernels: &KernelSet) {
        (kernels.alpha_powers)(&mut self.powers);
    }

    /// Phase 3: the collected row spans as `(y, x_start, alphas)`, in
    /// collection order — i.e. exactly the order the per-pixel reference
    /// loop visits pixels.
    #[inline]
    pub fn segments(&self) -> impl Iterator<Item = (i32, i32, &[f32])> {
        self.segments_in(0..self.segs.len())
    }

    /// Phase 3 over the row spans collected between two [`seg_count`]
    /// (Self::seg_count) snapshots (one disjoint region's worth).
    #[inline]
    pub fn segments_in(
        &self,
        range: std::ops::Range<usize>,
    ) -> impl Iterator<Item = (i32, i32, &[f32])> {
        self.segs[range].iter().map(|s| {
            (
                s.y,
                s.x,
                &self.powers[s.start as usize..(s.start + s.len) as usize],
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alpha::{ExpMode, PixelState, RowAlpha};
    use crate::ALPHA_MIN;
    use gcc_math::{SymMat2, Vec2, Vec3};

    fn proj(mean: Vec2, cov: SymMat2, opacity: f32) -> ProjectedGaussian {
        ProjectedGaussian {
            id: 7,
            mean2d: mean,
            cov2d: cov,
            conic: cov.inverse().unwrap(),
            depth: 2.5,
            opacity,
            ln_opacity: opacity.ln(),
            radius: 8.0,
            color: Vec3::ZERO,
        }
    }

    #[test]
    fn select_is_pure_and_total() {
        for b in [Backend::Scalar, Backend::Sse2, Backend::Avx2, Backend::Neon] {
            assert_eq!(select(true, b), Backend::Scalar);
            assert_eq!(select(false, b), b);
        }
    }

    #[test]
    fn force_scalar_parsing_matches_the_documented_rule() {
        assert!(!force_scalar_requested(None));
        assert!(!force_scalar_requested(Some("")));
        assert!(!force_scalar_requested(Some("0")));
        assert!(force_scalar_requested(Some("1")));
        assert!(force_scalar_requested(Some("true")));
        assert!(force_scalar_requested(Some("yes")));
    }

    #[test]
    fn scalar_is_always_supported_and_first_in_available() {
        assert!(supported(Backend::Scalar));
        assert_eq!(available()[0], Backend::Scalar);
        // The detected backend must itself be executable.
        assert!(supported(detected()));
    }

    #[test]
    fn kernel_set_backend_field_matches_the_requested_backend() {
        for b in available() {
            assert_eq!(kernel_set(b).unwrap().backend, b);
        }
    }

    #[test]
    fn active_backend_is_supported() {
        assert!(supported(active_backend()));
    }

    /// Fills `out` with the walker's powers, advancing once per element —
    /// the fill phase every alpha test shares.
    fn fill_powers(row: &mut RowAlpha, out: &mut [f32]) {
        for slot in out.iter_mut() {
            *slot = row.power;
            row.advance();
        }
    }

    #[test]
    fn scalar_alpha_powers_matches_row_alpha_bitwise() {
        // The scalar kernel must be *the same arithmetic* as the per-pixel
        // RowAlpha::alpha(Exact) loop it replaces — bitwise.
        let p = proj(Vec2::new(9.3, 7.1), SymMat2::new(6.0, 1.5, 4.0), 0.87);
        let exact = ExpMode::Exact;
        for y in 0..12 {
            let mut k_row = RowAlpha::new(&p, 0, y);
            let mut r_row = RowAlpha::new(&p, 0, y);
            let mut buf = [0.0f32; 17];
            fill_powers(&mut k_row, &mut buf);
            (SCALAR.alpha_powers)(&mut buf);
            for a in buf {
                let want = r_row.alpha(&exact);
                r_row.advance();
                assert_eq!(a.to_bits(), want.to_bits());
            }
        }
    }

    #[test]
    fn scalar_alpha_powers_applies_the_alpha_min_cutoff() {
        // Far from the mean every alpha must be exactly 0.0, not merely
        // small: the kernel bakes in the 1/255 cutoff.
        let p = proj(Vec2::new(500.0, 500.0), SymMat2::new(4.0, 0.0, 4.0), 0.9);
        let mut row = RowAlpha::new(&p, 0, 0);
        let mut buf = [1.0f32; 9];
        fill_powers(&mut row, &mut buf);
        (SCALAR.alpha_powers)(&mut buf);
        for a in buf {
            assert_eq!(a, 0.0);
        }
        // And near the mean, alphas are inside [ALPHA_MIN, ALPHA_MAX].
        let mut row = RowAlpha::new(&p, 498, 500);
        let mut buf = [0.0f32; 4];
        fill_powers(&mut row, &mut buf);
        (SCALAR.alpha_powers)(&mut buf);
        assert!(buf.iter().any(|&a| a >= ALPHA_MIN));
    }

    #[test]
    fn scalar_depth_keys_matches_depth_key() {
        let depths = [0.2f32, 1.0, -3.5, 0.0, -0.0, f32::MAX, 1e-40];
        let mut keys = [0u32; 7];
        (SCALAR.depth_keys)(&depths, &mut keys);
        for (d, k) in depths.iter().zip(keys) {
            assert_eq!(k, crate::sort::depth_key(*d));
        }
    }

    /// Awkward batch sizes around every backend's lane width, plus two
    /// large primes so multi-chunk paths and tails are both exercised.
    const AWKWARD_LENS: [usize; 13] = [0, 1, 3, 4, 5, 7, 8, 9, 15, 16, 17, 251, 1009];

    #[test]
    fn depth_keys_kernels_match_scalar_bitwise_on_awkward_lengths() {
        for &len in &AWKWARD_LENS {
            let depths: Vec<f32> = (0..len)
                .map(|i| ((i as f32 * 0.737).sin() * 50.0) - 10.0)
                .collect();
            let mut want = vec![0u32; len];
            (SCALAR.depth_keys)(&depths, &mut want);
            for b in available() {
                let ks = kernel_set(b).unwrap();
                let mut got = vec![0u32; len];
                (ks.depth_keys)(&depths, &mut got);
                assert_eq!(got, want, "depth_keys {b} diverges at len {len}");
            }
        }
    }

    #[test]
    fn alpha_powers_kernels_match_scalar_bitwise_on_awkward_lengths() {
        // The walker crosses the Gaussian so lanes hit every clamp branch:
        // below −5.54, the live (det_exp) range, and ≥ 0 saturation (via
        // the >1 pseudo-opacity).
        for opacity in [0.87f32, 1.3] {
            let mut p = proj(Vec2::new(64.0, 3.0), SymMat2::new(180.0, 20.0, 120.0), 0.87);
            p.ln_opacity = opacity.ln();
            for &len in &AWKWARD_LENS {
                let mut powers = vec![0.0f32; len];
                let mut row = RowAlpha::new(&p, 0, 3);
                fill_powers(&mut row, &mut powers);
                let mut want = powers.clone();
                (SCALAR.alpha_powers)(&mut want);
                for b in available() {
                    let ks = kernel_set(b).unwrap();
                    let mut got = powers.clone();
                    (ks.alpha_powers)(&mut got);
                    for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                        assert_eq!(
                            g.to_bits(),
                            w.to_bits(),
                            "alpha_powers {b} diverges at len {len} index {i}: {g} vs {w}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn sh_colors_kernels_match_scalar_bitwise_on_awkward_lengths() {
        for &len in &AWKWARD_LENS {
            // Survivor ids deliberately reverse the array order so the
            // kernels' id-indexed coefficient gathers are exercised on a
            // non-identity mapping.
            let gaussians: Vec<Gaussian3D> = (0..len.max(1))
                .map(|g| {
                    let mut sh = [0.0f32; crate::SH_FLOATS];
                    for (i, v) in sh.iter_mut().enumerate() {
                        *v = (((g * crate::SH_FLOATS + i) as f32) * 0.193).sin() * 0.6;
                    }
                    Gaussian3D {
                        sh,
                        ..Default::default()
                    }
                })
                .collect();
            let dirs: Vec<Vec3> = (0..len)
                .map(|i| {
                    Vec3::new(
                        (i as f32 * 0.41).sin(),
                        (i as f32 * 0.29).cos(),
                        0.5 + (i as f32 * 0.13).sin() * 0.4,
                    )
                    .normalized()
                })
                .collect();
            let dx: Vec<f32> = dirs.iter().map(|d| d.x).collect();
            let dy: Vec<f32> = dirs.iter().map(|d| d.y).collect();
            let dz: Vec<f32> = dirs.iter().map(|d| d.z).collect();
            let blank = |i: usize| {
                let mut p = proj(Vec2::new(1.0, 1.0), SymMat2::new(4.0, 0.0, 4.0), 0.5);
                p.id = (len - 1 - i) as u32;
                p
            };
            for degree in 0..=3u8 {
                let mut want: Vec<ProjectedGaussian> = (0..len).map(blank).collect();
                (SCALAR.sh_colors)(&gaussians, &dx, &dy, &dz, degree, &mut want);
                for b in available() {
                    let ks = kernel_set(b).unwrap();
                    let mut got: Vec<ProjectedGaussian> = (0..len).map(blank).collect();
                    (ks.sh_colors)(&gaussians, &dx, &dy, &dz, degree, &mut got);
                    for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                        assert_eq!(
                            (
                                g.color.x.to_bits(),
                                g.color.y.to_bits(),
                                g.color.z.to_bits()
                            ),
                            (
                                w.color.x.to_bits(),
                                w.color.y.to_bits(),
                                w.color.z.to_bits()
                            ),
                            "sh_colors {b} diverges at len {len} deg {degree} index {i}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn alpha_batch_matches_the_per_pixel_reference_loop() {
        // Seeded terminated patterns carve multi-row spans into liveness
        // shapes of every kind; the batch sweep must blend exactly the
        // live pixels with bit-identical alphas, in the per-pixel loop's
        // order, on every available backend.
        let p = proj(Vec2::new(40.0, 5.0), SymMat2::new(300.0, 25.0, 200.0), 0.95);
        let exact = ExpMode::Exact;
        for (pat, width) in [
            (0x0u64, 16),
            (0x5a5a_92c4_ffff_0001u64, 16),
            (0xffff_ffff_ffff_ffffu64, 16),
            (0x8000_0000_0001u64, 8),
            (0x0123_4567_89ab_cdefu64, 8),
        ] {
            let rows = 4usize;
            let make_grid = || -> Vec<Vec<PixelState>> {
                (0..rows)
                    .map(|r| {
                        (0..width)
                            .map(|i| {
                                let mut st = PixelState::new();
                                if pat >> ((r * width + i) % 64) & 1 == 1 {
                                    st.transmittance = 0.0; // pre-terminated
                                }
                                st
                            })
                            .collect()
                    })
                    .collect()
            };
            // Reference: the pre-dispatch per-pixel loop over all rows.
            let mut want_grid = make_grid();
            let mut want_visits: Vec<(i32, i32, u32)> = Vec::new();
            for (r, span) in want_grid.iter_mut().enumerate() {
                let mut row = RowAlpha::new(&p, 3, r as i32);
                for (i, st) in span.iter_mut().enumerate() {
                    if !st.terminated() {
                        let a = row.alpha(&exact);
                        want_visits.push((r as i32, 3 + i as i32, a.to_bits()));
                        st.blend(a, Vec3::new(0.3, 0.2, 0.1));
                    }
                    row.advance();
                }
            }
            for b in available() {
                let ks = kernel_set(b).unwrap();
                let mut got_grid = make_grid();
                let mut batch = AlphaBatch::new();
                for r in 0..rows {
                    let mut row = RowAlpha::new(&p, 3, r as i32);
                    batch.collect_row(&mut row, r as i32, 3, width);
                }
                batch.eval(ks);
                let mut got_visits: Vec<(i32, i32, u32)> = Vec::new();
                for (y, x, alphas) in batch.segments() {
                    let span = &mut got_grid[y as usize];
                    for (i, &a) in alphas.iter().enumerate() {
                        let px = (x - 3) as usize + i;
                        if span[px].terminated() {
                            continue;
                        }
                        got_visits.push((y, x + i as i32, a.to_bits()));
                        span[px].blend(a, Vec3::new(0.3, 0.2, 0.1));
                    }
                }
                assert_eq!(got_visits, want_visits, "{b} visits diverge, pat {pat:#x}");
                assert!(!batch.is_empty());
                for (gr, wr) in got_grid.iter().zip(&want_grid) {
                    for (g, w) in gr.iter().zip(wr) {
                        assert_eq!(g.color.x.to_bits(), w.color.x.to_bits());
                        assert_eq!(g.transmittance.to_bits(), w.transmittance.to_bits());
                    }
                }
            }
        }
    }

    #[test]
    fn scalar_sh_colors_matches_eval_color_deg() {
        let n = 5usize;
        let gaussians: Vec<Gaussian3D> = (0..n)
            .map(|g| {
                let mut sh = [0.0f32; crate::SH_FLOATS];
                for (i, v) in sh.iter_mut().enumerate() {
                    *v = (((g * crate::SH_FLOATS + i) as f32) * 0.193).sin() * 0.6;
                }
                Gaussian3D {
                    sh,
                    ..Default::default()
                }
            })
            .collect();
        let dirs: Vec<Vec3> = (0..n)
            .map(|i| Vec3::new(0.3 + i as f32, -0.2, 0.9 - 0.1 * i as f32).normalized())
            .collect();
        let dx: Vec<f32> = dirs.iter().map(|d| d.x).collect();
        let dy: Vec<f32> = dirs.iter().map(|d| d.y).collect();
        let dz: Vec<f32> = dirs.iter().map(|d| d.z).collect();
        for degree in 0..=3u8 {
            let mut out: Vec<ProjectedGaussian> = (0..n)
                .map(|i| {
                    let mut p = proj(Vec2::new(1.0, 1.0), SymMat2::new(4.0, 0.0, 4.0), 0.5);
                    p.id = i as u32;
                    p
                })
                .collect();
            (SCALAR.sh_colors)(&gaussians, &dx, &dy, &dz, degree, &mut out);
            for (i, p) in out.iter().enumerate() {
                let want = crate::sh::eval_color_deg(&gaussians[i].sh, dirs[i], degree);
                assert_eq!(p.color.x.to_bits(), want.x.to_bits());
                assert_eq!(p.color.y.to_bits(), want.y.to_bits());
                assert_eq!(p.color.z.to_bits(), want.z.to_bits());
            }
        }
    }
}
