//! Alpha evaluation and front-to-back compositing (paper Eqs. 3, 4, 9) with
//! the early-termination rule that the whole GCC dataflow is built around.

use crate::{ProjectedGaussian, ALPHA_MAX, ALPHA_MIN, TRANSMITTANCE_EPS};
use gcc_math::{PwlExp, Vec2, Vec3};

/// Which exponential the alpha evaluation uses.
#[derive(Debug, Clone, Default)]
pub enum ExpMode {
    /// The deterministic software exponential
    /// ([`gcc_math::exp::det_exp`]) — the GPU-reference datapath. Its
    /// fixed IEEE-754 operation sequence (~2 ulp of `f32::exp`) is what
    /// lets the [`crate::dispatch`] SIMD kernels reproduce this mode
    /// bit-for-bit lane by lane.
    #[default]
    Exact,
    /// GCC's 16-segment fixed-point LUT (paper §4.4).
    Lut(PwlExp),
}

impl ExpMode {
    /// The GCC hardware LUT.
    pub fn lut() -> Self {
        Self::Lut(PwlExp::new())
    }

    /// Evaluates `e^x` with the unit's clamping rules: `x < -5.54 → 0`,
    /// `x ≥ 0 → 1` (both modes share the clamps so they are comparable).
    pub fn exp(&self, x: f32) -> f32 {
        match self {
            Self::Exact => {
                if x < gcc_math::exp::EXP_INPUT_MIN {
                    0.0
                } else if x >= 0.0 {
                    1.0
                } else {
                    gcc_math::exp::det_exp(x)
                }
            }
            Self::Lut(lut) => lut.eval(x),
        }
    }
}

/// Computes the alpha contribution of a projected Gaussian at a pixel
/// (Eq. 9), returning `0.0` for contributions below `1/255`.
pub fn gaussian_alpha(p: &ProjectedGaussian, x: i32, y: i32, exp: &ExpMode) -> f32 {
    let d = Vec2::new(x as f32 + 0.5, y as f32 + 0.5) - p.mean2d;
    let power = p.ln_opacity - 0.5 * p.conic.quad_form(d);
    let a = exp.exp(power).min(ALPHA_MAX);
    if a < ALPHA_MIN {
        0.0
    } else {
        a
    }
}

/// Row-incremental alpha evaluation: walks one pixel row of a projected
/// Gaussian with the conic quadratic form hoisted out of the x-loop.
///
/// The exponent `power(x) = lnω − ½·dᵀΣ′⁻¹d` is a quadratic in `x` along a
/// row (fixed `y`), so second-order forward differences advance it with
/// **two adds per pixel** instead of a full [`SymMat2::quad_form`]
/// (`SymMat2` = the conic): with `d = (dx, dy)` and conic `(a, b, c)`,
///
/// ```text
/// Δpower(x→x+1) = −½·(a·(2·dx + 1) + 2·b·dy),   Δ²power = −a.
/// ```
///
/// The start-of-row value is the exact quadratic form, so the forward
/// differences only accumulate rounding across one row's width (a ≤16 px
/// tile span or an 8 px block span in the renderers) — tests pin the
/// drift against the exact path at well below the `1/255` alpha
/// quantization.
///
/// [`SymMat2::quad_form`]: gcc_math::SymMat2::quad_form
#[derive(Debug, Clone, Copy)]
pub struct RowAlpha {
    /// Current exponent value (read by the dispatch alpha-span kernels).
    pub(crate) power: f32,
    /// First-order forward difference.
    pub(crate) step: f32,
    /// Second-order forward difference (constant along a row).
    pub(crate) curve: f32,
}

impl RowAlpha {
    /// Positions the evaluator at pixel `(x0, y)` (center-sampled) for the
    /// projected Gaussian `p`.
    #[inline]
    pub fn new(p: &ProjectedGaussian, x0: i32, y: i32) -> Self {
        let dx = x0 as f32 + 0.5 - p.mean2d.x;
        let dy = y as f32 + 0.5 - p.mean2d.y;
        let conic = p.conic;
        let q = conic.a * dx * dx + 2.0 * conic.b * dx * dy + conic.c * dy * dy;
        Self {
            power: p.ln_opacity - 0.5 * q,
            step: -0.5 * (conic.a * (2.0 * dx + 1.0) + 2.0 * conic.b * dy),
            curve: -conic.a,
        }
    }

    /// Alpha at the current pixel (Eq. 9 with the unit's clamps), `0.0`
    /// below the `1/255` cutoff — same contract as [`gaussian_alpha`].
    #[inline]
    pub fn alpha(&self, exp: &ExpMode) -> f32 {
        let a = exp.exp(self.power).min(ALPHA_MAX);
        if a < ALPHA_MIN {
            0.0
        } else {
            a
        }
    }

    /// Advances one pixel to the right: two adds.
    #[inline]
    pub fn advance(&mut self) {
        self.power += self.step;
        self.step += self.curve;
    }
}

/// Half-open pixel-x interval of row `y`, clipped to `[x0, x1)`, outside
/// which the Gaussian's alpha is guaranteed zero — both exponential modes
/// clamp inputs below [`EXP_INPUT_MIN`](gcc_math::exp::EXP_INPUT_MIN) to
/// `α = 0`, so `power(x) ≥ EXP_INPUT_MIN` is a quadratic inequality in
/// `x` solved once per row (`f64`, padded one pixel per side against
/// rounding). Blend loops walk only this span; pixels inside it still go
/// through the exact incremental evaluation, so the image is unchanged —
/// the span only skips work that provably produces nothing.
pub fn effective_row_span(p: &ProjectedGaussian, y: i32, x0: i32, x1: i32) -> (i32, i32) {
    let a = f64::from(p.conic.a);
    if a <= 0.0 {
        // Degenerate conic: no restriction (projection culls these, but
        // stay conservative).
        return (x0, x1);
    }
    let dy = f64::from(y) + 0.5 - f64::from(p.mean2d.y);
    let b_dy = f64::from(p.conic.b) * dy;
    let c = f64::from(p.conic.c);
    // power = lnω − ½q ≥ m  ⟺  a·dx² + 2·b·dy·dx + c·dy² ≤ 2(lnω − m).
    let rhs = 2.0 * (f64::from(p.ln_opacity) - f64::from(gcc_math::exp::EXP_INPUT_MIN));
    let disc = b_dy * b_dy - a * (c * dy * dy - rhs);
    if disc < 0.0 {
        return (x0, x0); // the whole row is below the cutoff
    }
    let sq = disc.sqrt();
    let mx = f64::from(p.mean2d.x);
    // Pixel x samples at center x + 0.5, i.e. dx = x + 0.5 − mx.
    let lo = ((-b_dy - sq) / a + mx - 0.5 - 1.0)
        .floor()
        .max(f64::from(x0));
    let hi = (((-b_dy + sq) / a + mx - 0.5 + 1.0).ceil() + 1.0).min(f64::from(x1));
    if lo >= hi {
        (x0, x0)
    } else {
        (lo as i32, hi as i32)
    }
}

/// Multi-row effective-span walker: yields [`effective_row_span`] for
/// consecutive rows `y0, y0 + 1, …` with the quadratic solved by
/// second-order forward differences — the discriminant is itself a
/// quadratic in `dy` and the interval center is linear, so a row costs a
/// handful of adds plus one square root (only on non-empty rows), instead
/// of rebuilding the full formula. Stepping runs in `f64`; the drift over
/// a tile's ≤16 rows is orders of magnitude below the one-pixel safety
/// pad, so the conservative-coverage guarantee is preserved.
#[derive(Debug, Clone, Copy)]
pub struct EffectiveSpanWalker {
    x0: i32,
    x1: i32,
    /// Interval center in `dx`, linear in `dy`.
    center: f64,
    dcenter: f64,
    /// Discriminant `a·rhs − det·dy²`, quadratic in `dy`.
    disc: f64,
    ddisc: f64,
    dddisc: f64,
    inv_a: f64,
    /// `μ′.x − 0.5`: converts `dx` to pixel x.
    mx_off: f64,
    /// Degenerate conic: every row falls back to the full `[x0, x1)`.
    degenerate: bool,
}

impl EffectiveSpanWalker {
    /// Walker over rows `y0, y0 + 1, …` of the projected Gaussian `p`,
    /// spans clipped to `[x0, x1)`.
    pub fn new(p: &ProjectedGaussian, x0: i32, x1: i32, y0: i32) -> Self {
        let a = f64::from(p.conic.a);
        let b = f64::from(p.conic.b);
        let c = f64::from(p.conic.c);
        let dy = f64::from(y0) + 0.5 - f64::from(p.mean2d.y);
        let rhs = 2.0 * (f64::from(p.ln_opacity) - f64::from(gcc_math::exp::EXP_INPUT_MIN));
        let det = a * c - b * b;
        Self {
            x0,
            x1,
            center: -b * dy / a,
            dcenter: -b / a,
            disc: a * rhs - det * dy * dy,
            ddisc: -det * (2.0 * dy + 1.0),
            dddisc: -2.0 * det,
            inv_a: 1.0 / a,
            mx_off: f64::from(p.mean2d.x) - 0.5,
            degenerate: a <= 0.0,
        }
    }

    /// Span of the current row (half-open, clipped to `[x0, x1)`), then
    /// advances to the next row.
    #[inline]
    pub fn next_span(&mut self) -> (i32, i32) {
        if self.degenerate {
            return (self.x0, self.x1);
        }
        let (center, disc) = (self.center, self.disc);
        self.center += self.dcenter;
        self.disc += self.ddisc;
        self.ddisc += self.dddisc;
        if disc < 0.0 {
            return (self.x0, self.x0);
        }
        let half = disc.sqrt() * self.inv_a;
        let lo = (center - half + self.mx_off - 1.0)
            .floor()
            .max(f64::from(self.x0));
        let hi = ((center + half + self.mx_off + 1.0).ceil() + 1.0).min(f64::from(self.x1));
        if lo >= hi {
            (self.x0, self.x0)
        } else {
            (lo as i32, hi as i32)
        }
    }
}

/// Per-pixel compositing state: accumulated color `C` and transmittance `T`
/// (Eq. 4: `Tᵢ = Π (1 − αⱼ)`, `C = Σ Tᵢ αᵢ cᵢ`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PixelState {
    /// Accumulated RGB.
    pub color: Vec3,
    /// Remaining transmittance, starts at 1.
    pub transmittance: f32,
}

impl Default for PixelState {
    fn default() -> Self {
        Self::new()
    }
}

impl PixelState {
    /// Fresh pixel: black, fully transmissive.
    pub fn new() -> Self {
        Self {
            color: Vec3::ZERO,
            transmittance: 1.0,
        }
    }

    /// Front-to-back blend of one contribution. Returns the alpha actually
    /// blended (zero if the pixel had already terminated).
    #[inline]
    pub fn blend(&mut self, alpha: f32, color: Vec3) -> f32 {
        if self.terminated() || alpha <= 0.0 {
            return 0.0;
        }
        self.color += color * (alpha * self.transmittance);
        self.transmittance *= 1.0 - alpha;
        alpha
    }

    /// Early-termination check: `T < 1e-4` (paper §2.1).
    #[inline]
    pub fn terminated(&self) -> bool {
        self.transmittance < TRANSMITTANCE_EPS
    }

    /// Composites over a background color (3DGS uses black or white).
    #[inline]
    pub fn resolve(&self, background: Vec3) -> Vec3 {
        self.color + background * self.transmittance
    }
}

/// Blends an ordered front-to-back sequence of `(alpha, color)` pairs and
/// returns the final state — the per-pixel inner loop of every renderer in
/// this repository.
pub fn composite<I>(contributions: I) -> PixelState
where
    I: IntoIterator<Item = (f32, Vec3)>,
{
    let mut st = PixelState::new();
    for (a, c) in contributions {
        if st.terminated() {
            break;
        }
        st.blend(a, c);
    }
    st
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcc_math::{approx_eq, SymMat2};

    fn proj(mean: Vec2, opacity: f32) -> ProjectedGaussian {
        let cov = SymMat2::new(4.0, 0.0, 4.0);
        ProjectedGaussian {
            id: 0,
            mean2d: mean,
            cov2d: cov,
            conic: cov.inverse().unwrap(),
            depth: 1.0,
            opacity,
            ln_opacity: opacity.ln(),
            radius: 6.0,
            color: Vec3::new(1.0, 0.0, 0.0),
        }
    }

    #[test]
    fn alpha_peaks_at_center_and_decays() {
        let p = proj(Vec2::new(10.5, 10.5), 0.9);
        let e = ExpMode::Exact;
        let center = gaussian_alpha(&p, 10, 10, &e);
        let off = gaussian_alpha(&p, 13, 10, &e);
        let far = gaussian_alpha(&p, 30, 10, &e);
        assert!(approx_eq(center, 0.9, 1e-4));
        assert!(off < center && off > 0.0);
        assert_eq!(far, 0.0);
    }

    #[test]
    fn lut_alpha_tracks_exact_within_one_percent() {
        let p = proj(Vec2::new(10.5, 10.5), 0.7);
        let exact = ExpMode::Exact;
        let lut = ExpMode::lut();
        for x in 0..21 {
            for y in 0..21 {
                let a = gaussian_alpha(&p, x, y, &exact);
                let b = gaussian_alpha(&p, x, y, &lut);
                if a > 0.0 {
                    assert!(
                        (a - b).abs() / a < 0.015,
                        "LUT deviates at ({x},{y}): {a} vs {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn row_alpha_matches_quad_form_at_row_start() {
        // At x0 the power is the exact quadratic form — bit-identical to
        // gaussian_alpha.
        let mut p = proj(Vec2::new(17.3, 9.8), 0.83);
        p.conic = SymMat2::new(0.21, -0.07, 0.33).inverse().unwrap();
        let e = ExpMode::Exact;
        for y in 0..24 {
            for x0 in [0, 5, 16] {
                let row = RowAlpha::new(&p, x0, y);
                assert_eq!(
                    row.alpha(&e).to_bits(),
                    gaussian_alpha(&p, x0, y, &e).to_bits()
                );
            }
        }
    }

    #[test]
    fn row_alpha_drift_is_far_below_alpha_quantization() {
        // Forward differences across a 16-px tile row (the widest span the
        // renderers walk) must track the exact path to ≪ 1/255 — the pin
        // that lets both blend loops use the incremental evaluator.
        let exact = ExpMode::Exact;
        for (ca, cb, cc) in [(4.0, 0.0, 4.0), (9.0, 3.5, 2.0), (0.8, -0.3, 1.7)] {
            let cov = SymMat2::new(ca, cb, cc);
            let mut p = proj(Vec2::new(8.1, 7.6), 0.97);
            p.cov2d = cov;
            p.conic = cov.inverse().unwrap();
            p.ln_opacity = 0.97f32.ln();
            for y in 0..16 {
                let mut row = RowAlpha::new(&p, 0, y);
                for x in 0..16 {
                    let incremental = row.alpha(&exact);
                    let reference = gaussian_alpha(&p, x, y, &exact);
                    assert!(
                        (incremental - reference).abs() < 2e-4,
                        "cov ({ca},{cb},{cc}) pixel ({x},{y}): {incremental} vs {reference}"
                    );
                    row.advance();
                }
            }
        }
    }

    #[test]
    fn effective_row_span_covers_every_nonzero_alpha_pixel() {
        // The span is a conservative work restriction: any pixel with
        // alpha > 0 (either exp mode) must fall inside it.
        let exact = ExpMode::Exact;
        let lut = ExpMode::lut();
        for (ca, cb, cc) in [(4.0, 0.0, 4.0), (12.0, 5.0, 3.0), (0.6, -0.25, 2.0)] {
            for opacity in [0.99f32, 0.35, 0.02] {
                let cov = SymMat2::new(ca, cb, cc);
                let mut p = proj(Vec2::new(21.4, 18.7), opacity);
                p.cov2d = cov;
                p.conic = cov.inverse().unwrap();
                p.ln_opacity = opacity.ln();
                for y in 0..40 {
                    let (sx0, sx1) = effective_row_span(&p, y, 0, 48);
                    for x in 0..48 {
                        let a = gaussian_alpha(&p, x, y, &exact);
                        let b = gaussian_alpha(&p, x, y, &lut);
                        if a > 0.0 || b > 0.0 {
                            assert!(
                                (sx0..sx1).contains(&x),
                                "α({x},{y}) = {a}/{b} outside span [{sx0},{sx1}) \
                                 (cov ({ca},{cb},{cc}), ω {opacity})"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn effective_span_walker_covers_every_nonzero_alpha_pixel() {
        // The forward-differenced walker must preserve the conservative
        // guarantee of the direct per-row solve.
        let exact = ExpMode::Exact;
        for (ca, cb, cc) in [(4.0, 0.0, 4.0), (12.0, 5.0, 3.0), (0.6, -0.25, 2.0)] {
            for opacity in [0.99f32, 0.35, 0.02] {
                let cov = SymMat2::new(ca, cb, cc);
                let mut p = proj(Vec2::new(21.4, 18.7), opacity);
                p.cov2d = cov;
                p.conic = cov.inverse().unwrap();
                p.ln_opacity = opacity.ln();
                let mut walker = EffectiveSpanWalker::new(&p, 0, 48, 0);
                for y in 0..40 {
                    let (sx0, sx1) = walker.next_span();
                    let (dx0, dx1) = effective_row_span(&p, y, 0, 48);
                    for x in 0..48 {
                        if gaussian_alpha(&p, x, y, &exact) > 0.0 {
                            assert!(
                                (sx0..sx1).contains(&x),
                                "α({x},{y}) outside walker span [{sx0},{sx1})"
                            );
                        }
                    }
                    // Walker and direct solve agree to ≤1 px at the edges
                    // (identical algebra, different rounding paths).
                    assert!(
                        (sx0 - dx0).abs() <= 1 && (sx1 - dx1).abs() <= 1,
                        "walker [{sx0},{sx1}) vs direct [{dx0},{dx1}) at row {y}"
                    );
                }
            }
        }
    }

    #[test]
    fn effective_row_span_skips_far_rows_entirely() {
        let p = proj(Vec2::new(10.0, 10.0), 0.9);
        // A row 40σ away can contribute nothing.
        let (sx0, sx1) = effective_row_span(&p, 90, 0, 64);
        assert_eq!(sx0, sx1);
        // Invisible opacity ⇒ empty everywhere.
        let mut faint = proj(Vec2::new(10.0, 10.0), 0.003);
        faint.ln_opacity = 0.003f32.ln();
        let (fx0, fx1) = effective_row_span(&faint, 10, 0, 64);
        assert_eq!(fx0, fx1);
    }

    #[test]
    fn row_alpha_tracks_lut_mode_too() {
        let lut = ExpMode::lut();
        let p = proj(Vec2::new(10.5, 10.5), 0.7);
        for y in 8..13 {
            let mut row = RowAlpha::new(&p, 6, y);
            for x in 6..15 {
                let a = row.alpha(&lut);
                let b = gaussian_alpha(&p, x, y, &lut);
                assert!((a - b).abs() < 2e-3, "({x},{y}): {a} vs {b}");
                row.advance();
            }
        }
    }

    #[test]
    fn single_opaque_layer_dominates() {
        let mut st = PixelState::new();
        st.blend(0.99, Vec3::new(1.0, 1.0, 1.0));
        assert!(approx_eq(st.color.x, 0.99, 1e-6));
        assert!(approx_eq(st.transmittance, 0.01, 1e-6));
        assert!(!st.terminated());
    }

    #[test]
    fn transmittance_product_rule() {
        // T after blending α₁, α₂ is (1−α₁)(1−α₂).
        let mut st = PixelState::new();
        st.blend(0.5, Vec3::ZERO);
        st.blend(0.25, Vec3::ZERO);
        assert!(approx_eq(st.transmittance, 0.5 * 0.75, 1e-6));
    }

    #[test]
    fn blend_weights_match_equation4() {
        // C = Σ Tᵢ αᵢ cᵢ with T₁ = 1, T₂ = (1 − α₁)…
        let c1 = Vec3::new(1.0, 0.0, 0.0);
        let c2 = Vec3::new(0.0, 1.0, 0.0);
        let st = composite([(0.6, c1), (0.5, c2)]);
        assert!(approx_eq(st.color.x, 0.6, 1e-6));
        assert!(approx_eq(st.color.y, 0.4 * 0.5, 1e-6));
    }

    #[test]
    fn terminated_pixel_rejects_further_blending() {
        let mut st = PixelState::new();
        for _ in 0..10 {
            st.blend(0.9, Vec3::new(0.1, 0.1, 0.1));
        }
        assert!(st.terminated());
        let before = st.color;
        let blended = st.blend(0.5, Vec3::new(5.0, 5.0, 5.0));
        assert_eq!(blended, 0.0);
        assert_eq!(st.color, before);
    }

    #[test]
    fn composite_stops_at_termination() {
        // Infinite iterator: composite must terminate on its own.
        let contributions = std::iter::repeat((0.9f32, Vec3::splat(0.5)));
        let st = composite(contributions.take(10_000));
        assert!(st.terminated());
        // Color converges to 0.5 (weighted average of identical layers).
        assert!(approx_eq(st.color.x, 0.5, 1e-3));
    }

    #[test]
    fn resolve_adds_background_through_remaining_transmittance() {
        let mut st = PixelState::new();
        st.blend(0.5, Vec3::new(1.0, 0.0, 0.0));
        let out = st.resolve(Vec3::new(0.0, 0.0, 1.0));
        assert!(approx_eq(out.x, 0.5, 1e-6));
        assert!(approx_eq(out.z, 0.5, 1e-6));
    }

    #[test]
    fn exact_mode_applies_hardware_clamps() {
        let e = ExpMode::Exact;
        assert_eq!(e.exp(-6.0), 0.0);
        assert_eq!(e.exp(0.1), 1.0);
        assert!(approx_eq(e.exp(-1.0), (-1.0f32).exp(), 1e-6));
    }
}
