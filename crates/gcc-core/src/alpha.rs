//! Alpha evaluation and front-to-back compositing (paper Eqs. 3, 4, 9) with
//! the early-termination rule that the whole GCC dataflow is built around.

use crate::{ProjectedGaussian, ALPHA_MAX, ALPHA_MIN, TRANSMITTANCE_EPS};
use gcc_math::{PwlExp, Vec2, Vec3};

/// Which exponential the alpha evaluation uses.
#[derive(Debug, Clone, Default)]
pub enum ExpMode {
    /// Exact `f32::exp` — the GPU reference datapath.
    #[default]
    Exact,
    /// GCC's 16-segment fixed-point LUT (paper §4.4).
    Lut(PwlExp),
}

impl ExpMode {
    /// The GCC hardware LUT.
    pub fn lut() -> Self {
        Self::Lut(PwlExp::new())
    }

    /// Evaluates `e^x` with the unit's clamping rules: `x < -5.54 → 0`,
    /// `x ≥ 0 → 1` (both modes share the clamps so they are comparable).
    pub fn exp(&self, x: f32) -> f32 {
        match self {
            Self::Exact => {
                if x < gcc_math::exp::EXP_INPUT_MIN {
                    0.0
                } else if x >= 0.0 {
                    1.0
                } else {
                    x.exp()
                }
            }
            Self::Lut(lut) => lut.eval(x),
        }
    }
}

/// Computes the alpha contribution of a projected Gaussian at a pixel
/// (Eq. 9), returning `0.0` for contributions below `1/255`.
pub fn gaussian_alpha(p: &ProjectedGaussian, x: i32, y: i32, exp: &ExpMode) -> f32 {
    let d = Vec2::new(x as f32 + 0.5, y as f32 + 0.5) - p.mean2d;
    let power = p.ln_opacity - 0.5 * p.conic.quad_form(d);
    let a = exp.exp(power).min(ALPHA_MAX);
    if a < ALPHA_MIN {
        0.0
    } else {
        a
    }
}

/// Per-pixel compositing state: accumulated color `C` and transmittance `T`
/// (Eq. 4: `Tᵢ = Π (1 − αⱼ)`, `C = Σ Tᵢ αᵢ cᵢ`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PixelState {
    /// Accumulated RGB.
    pub color: Vec3,
    /// Remaining transmittance, starts at 1.
    pub transmittance: f32,
}

impl Default for PixelState {
    fn default() -> Self {
        Self::new()
    }
}

impl PixelState {
    /// Fresh pixel: black, fully transmissive.
    pub fn new() -> Self {
        Self {
            color: Vec3::ZERO,
            transmittance: 1.0,
        }
    }

    /// Front-to-back blend of one contribution. Returns the alpha actually
    /// blended (zero if the pixel had already terminated).
    pub fn blend(&mut self, alpha: f32, color: Vec3) -> f32 {
        if self.terminated() || alpha <= 0.0 {
            return 0.0;
        }
        self.color += color * (alpha * self.transmittance);
        self.transmittance *= 1.0 - alpha;
        alpha
    }

    /// Early-termination check: `T < 1e-4` (paper §2.1).
    pub fn terminated(&self) -> bool {
        self.transmittance < TRANSMITTANCE_EPS
    }

    /// Composites over a background color (3DGS uses black or white).
    pub fn resolve(&self, background: Vec3) -> Vec3 {
        self.color + background * self.transmittance
    }
}

/// Blends an ordered front-to-back sequence of `(alpha, color)` pairs and
/// returns the final state — the per-pixel inner loop of every renderer in
/// this repository.
pub fn composite<I>(contributions: I) -> PixelState
where
    I: IntoIterator<Item = (f32, Vec3)>,
{
    let mut st = PixelState::new();
    for (a, c) in contributions {
        if st.terminated() {
            break;
        }
        st.blend(a, c);
    }
    st
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcc_math::{approx_eq, SymMat2};

    fn proj(mean: Vec2, opacity: f32) -> ProjectedGaussian {
        let cov = SymMat2::new(4.0, 0.0, 4.0);
        ProjectedGaussian {
            id: 0,
            mean2d: mean,
            cov2d: cov,
            conic: cov.inverse().unwrap(),
            depth: 1.0,
            opacity,
            ln_opacity: opacity.ln(),
            radius: 6.0,
            color: Vec3::new(1.0, 0.0, 0.0),
        }
    }

    #[test]
    fn alpha_peaks_at_center_and_decays() {
        let p = proj(Vec2::new(10.5, 10.5), 0.9);
        let e = ExpMode::Exact;
        let center = gaussian_alpha(&p, 10, 10, &e);
        let off = gaussian_alpha(&p, 13, 10, &e);
        let far = gaussian_alpha(&p, 30, 10, &e);
        assert!(approx_eq(center, 0.9, 1e-4));
        assert!(off < center && off > 0.0);
        assert_eq!(far, 0.0);
    }

    #[test]
    fn lut_alpha_tracks_exact_within_one_percent() {
        let p = proj(Vec2::new(10.5, 10.5), 0.7);
        let exact = ExpMode::Exact;
        let lut = ExpMode::lut();
        for x in 0..21 {
            for y in 0..21 {
                let a = gaussian_alpha(&p, x, y, &exact);
                let b = gaussian_alpha(&p, x, y, &lut);
                if a > 0.0 {
                    assert!(
                        (a - b).abs() / a < 0.015,
                        "LUT deviates at ({x},{y}): {a} vs {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn single_opaque_layer_dominates() {
        let mut st = PixelState::new();
        st.blend(0.99, Vec3::new(1.0, 1.0, 1.0));
        assert!(approx_eq(st.color.x, 0.99, 1e-6));
        assert!(approx_eq(st.transmittance, 0.01, 1e-6));
        assert!(!st.terminated());
    }

    #[test]
    fn transmittance_product_rule() {
        // T after blending α₁, α₂ is (1−α₁)(1−α₂).
        let mut st = PixelState::new();
        st.blend(0.5, Vec3::ZERO);
        st.blend(0.25, Vec3::ZERO);
        assert!(approx_eq(st.transmittance, 0.5 * 0.75, 1e-6));
    }

    #[test]
    fn blend_weights_match_equation4() {
        // C = Σ Tᵢ αᵢ cᵢ with T₁ = 1, T₂ = (1 − α₁)…
        let c1 = Vec3::new(1.0, 0.0, 0.0);
        let c2 = Vec3::new(0.0, 1.0, 0.0);
        let st = composite([(0.6, c1), (0.5, c2)]);
        assert!(approx_eq(st.color.x, 0.6, 1e-6));
        assert!(approx_eq(st.color.y, 0.4 * 0.5, 1e-6));
    }

    #[test]
    fn terminated_pixel_rejects_further_blending() {
        let mut st = PixelState::new();
        for _ in 0..10 {
            st.blend(0.9, Vec3::new(0.1, 0.1, 0.1));
        }
        assert!(st.terminated());
        let before = st.color;
        let blended = st.blend(0.5, Vec3::new(5.0, 5.0, 5.0));
        assert_eq!(blended, 0.0);
        assert_eq!(st.color, before);
    }

    #[test]
    fn composite_stops_at_termination() {
        // Infinite iterator: composite must terminate on its own.
        let contributions = std::iter::repeat((0.9f32, Vec3::splat(0.5)));
        let st = composite(contributions.take(10_000));
        assert!(st.terminated());
        // Color converges to 0.5 (weighted average of identical layers).
        assert!(approx_eq(st.color.x, 0.5, 1e-3));
    }

    #[test]
    fn resolve_adds_background_through_remaining_transmittance() {
        let mut st = PixelState::new();
        st.blend(0.5, Vec3::new(1.0, 0.0, 0.0));
        let out = st.resolve(Vec3::new(0.0, 0.0, 1.0));
        assert!(approx_eq(out.x, 0.5, 1e-6));
        assert!(approx_eq(out.z, 0.5, 1e-6));
    }

    #[test]
    fn exact_mode_applies_hardware_clamps() {
        let e = ExpMode::Exact;
        assert_eq!(e.exp(-6.0), 0.0);
        assert_eq!(e.exp(0.1), 1.0);
        assert!(approx_eq(e.exp(-1.0), (-1.0f32).exp(), 1e-6));
    }
}
