//! The EWA projection chain (paper Eq. 1 and §3 Stage II):
//! Σ = R S Sᵀ Rᵀ reconstructed from scale + quaternion, then
//! Σ′ = J W Σ Wᵀ Jᵀ projected through the view rotation `W` and the local
//! affine Jacobian `J` of the perspective mapping.

use crate::bounds::{bounding_radius, BoundingLaw};
use crate::{Camera, Gaussian3D};
use gcc_math::{Mat3, SymMat2, Vec2, Vec3};

/// Screen-space dilation added to the projected covariance diagonal — the
/// low-pass filter of the 3DGS rasterizer ensuring every splat covers at
/// least a pixel.
pub const COV2D_DILATION: f32 = 0.3;

/// A Gaussian that survived projection: everything the rendering stages
/// need (paper Fig. 3's Stage II/III outputs — μ′ 2 floats, Σ′ 3 floats,
/// plus depth, color and opacity).
#[derive(Debug, Clone, PartialEq)]
pub struct ProjectedGaussian {
    /// Index of the source Gaussian in its scene.
    pub id: u32,
    /// Projected center μ′ in pixel coordinates.
    pub mean2d: Vec2,
    /// Screen-space covariance Σ′ (3 floats).
    pub cov2d: SymMat2,
    /// Conic Σ′⁻¹ consumed by the Alpha Unit.
    pub conic: SymMat2,
    /// View-space depth `d` (Stage I key).
    pub depth: f32,
    /// Linear opacity ω.
    pub opacity: f32,
    /// Log-space opacity lnω (Alpha Unit input).
    pub ln_opacity: f32,
    /// Bounding radius in pixels under the law used at projection time.
    pub radius: f32,
    /// RGB color from SH evaluation (Stage III); zero until color mapping.
    pub color: Vec3,
}

/// Reconstructs the world-space covariance Σ = (R·S)(R·S)ᵀ — the
/// Reconstruction Unit's job (paper §4.3).
pub fn covariance3d(scale: Vec3, rot: gcc_math::Quat) -> Mat3 {
    let m = rot.to_mat3() * Mat3::from_diagonal(scale);
    m * m.transposed()
}

/// The EWA perspective Jacobian at camera-space position `pc`
/// (paper Fig. 8(c)'s "Jacobian Reconstruction"). The `x/z`, `y/z` terms
/// are clamped to the 1.3× frustum guard band for numerical stability,
/// mirroring the reference rasterizer.
pub fn ewa_jacobian(cam: &Camera, pc: Vec3) -> Mat3 {
    let (lim_x, lim_y) = cam.frustum_limits();
    let inv_z = 1.0 / pc.z;
    let tx = (pc.x * inv_z).clamp(-lim_x, lim_x) * pc.z;
    let ty = (pc.y * inv_z).clamp(-lim_y, lim_y) * pc.z;
    Mat3::from_rows(
        [cam.fx * inv_z, 0.0, -cam.fx * tx * inv_z * inv_z],
        [0.0, cam.fy * inv_z, -cam.fy * ty * inv_z * inv_z],
        [0.0, 0.0, 0.0],
    )
}

/// Projects a world-space covariance to the dilated screen-space Σ′.
pub fn project_covariance(cam: &Camera, cov3d: Mat3, pc: Vec3) -> SymMat2 {
    let j = ewa_jacobian(cam, pc);
    let w = cam.view.upper_left_3x3();
    let t = j * w;
    let cov = t * cov3d * t.transposed();
    SymMat2::from_mat2(cov.upper_left_2x2()).dilated(COV2D_DILATION)
}

/// Full Stage II projection of one Gaussian: position projection (PPU),
/// shape reconstruction + projection (RU + shared MVM), and screen culling
/// (SCU).
///
/// Returns `None` when the Gaussian is culled:
/// * behind the near plane (`depth < NEAR_DEPTH`),
/// * its footprint (under `law`) does not intersect the screen,
/// * its ω-σ envelope is empty (`ω ≤ 1/255` under [`BoundingLaw::OmegaSigma`]),
/// * its projected covariance is not positive definite.
///
/// The returned Gaussian's `color` is zero — Stage III fills it in.
pub fn project_gaussian(
    g: &Gaussian3D,
    id: u32,
    cam: &Camera,
    law: BoundingLaw,
) -> Option<ProjectedGaussian> {
    let pc = cam.to_camera(g.mean);
    if pc.z < crate::NEAR_DEPTH {
        return None;
    }
    let mean2d = cam.cam_to_pixel(pc)?;
    let cov2d = project_covariance(cam, covariance3d(g.scale, g.rot), pc);
    if !cov2d.is_positive_definite() {
        return None;
    }
    let conic = cov2d.inverse()?;
    let opacity = g.opacity();
    let (l1, _) = cov2d.eigenvalues();
    let radius = bounding_radius(law, l1, opacity);
    if radius <= 0.0 {
        return None;
    }
    // Screen culling: the circumscribing circle must touch the image.
    if mean2d.x + radius < 0.0
        || mean2d.y + radius < 0.0
        || mean2d.x - radius >= cam.width as f32
        || mean2d.y - radius >= cam.height as f32
    {
        return None;
    }
    Some(ProjectedGaussian {
        id,
        mean2d,
        cov2d,
        conic,
        depth: pc.z,
        opacity,
        ln_opacity: g.ln_opacity,
        radius,
        color: Vec3::ZERO,
    })
}

/// Stage III color mapping: evaluates SH for the view direction toward the
/// Gaussian center and writes the RGB color into the projection record.
pub fn map_color(p: &mut ProjectedGaussian, g: &Gaussian3D, cam: &Camera) {
    p.color = crate::sh::eval_color(&g.sh, cam.view_dir(g.mean));
}

/// [`map_color`] with the SH evaluation truncated to bands `l ≤ degree`
/// ([`crate::sh::eval_color_deg`]) — the per-request SH degree clamp.
/// `degree = 3` is bit-identical to [`map_color`].
pub fn map_color_deg(p: &mut ProjectedGaussian, g: &Gaussian3D, cam: &Camera, degree: u8) {
    p.color = crate::sh::eval_color_deg(&g.sh, cam.view_dir(g.mean), degree);
}

/// FMA cost of one position+shape projection in the cycle model
/// (view transform, quaternion expansion, two 3×3 covariance products,
/// Jacobian application, conic inversion).
pub const FMA_PER_PROJECTION: u64 = 12 + 18 + 54 + 54 + 30;

#[cfg(test)]
mod tests {
    use super::*;
    use gcc_math::{approx_eq, Quat};

    fn test_cam() -> Camera {
        Camera::look_at(
            Vec3::new(0.0, 0.0, -5.0),
            Vec3::ZERO,
            Vec3::new(0.0, 1.0, 0.0),
            60.0,
            640,
            360,
        )
    }

    #[test]
    fn covariance3d_of_unit_sphere_is_identity() {
        let cov = covariance3d(Vec3::splat(1.0), Quat::IDENTITY);
        assert!((cov - Mat3::IDENTITY).frob_norm() < 1e-5);
    }

    #[test]
    fn covariance3d_is_rotation_invariant_for_isotropic_scale() {
        let q = Quat::from_axis_angle(Vec3::new(1.0, 2.0, 3.0), 0.7);
        let cov = covariance3d(Vec3::splat(2.0), q);
        assert!((cov - Mat3::from_diagonal(Vec3::splat(4.0))).frob_norm() < 1e-4);
    }

    #[test]
    fn covariance3d_diagonal_squares_scales() {
        let cov = covariance3d(Vec3::new(1.0, 2.0, 3.0), Quat::IDENTITY);
        assert!(approx_eq(cov.m[0][0], 1.0, 1e-5));
        assert!(approx_eq(cov.m[1][1], 4.0, 1e-5));
        assert!(approx_eq(cov.m[2][2], 9.0, 1e-5));
    }

    #[test]
    fn projected_center_gaussian_is_visible_and_centered() {
        let cam = test_cam();
        let g = Gaussian3D::isotropic(Vec3::ZERO, 0.1, 0.9, Vec3::splat(0.5));
        let p = project_gaussian(&g, 7, &cam, BoundingLaw::ThreeSigma).unwrap();
        assert_eq!(p.id, 7);
        assert!(approx_eq(p.mean2d.x, 320.0, 0.01));
        assert!(approx_eq(p.mean2d.y, 180.0, 0.01));
        assert!(approx_eq(p.depth, 5.0, 1e-3));
        assert!(p.cov2d.is_positive_definite());
    }

    #[test]
    fn projected_size_scales_with_inverse_depth() {
        // A Gaussian twice as far should have about half the radius.
        let cam = Camera::look_at(
            Vec3::new(0.0, 0.0, -10.0),
            Vec3::ZERO,
            Vec3::new(0.0, 1.0, 0.0),
            60.0,
            640,
            360,
        );
        let near = Gaussian3D::isotropic(Vec3::new(0.0, 0.0, -5.0), 0.2, 0.9, Vec3::splat(0.5));
        let far = Gaussian3D::isotropic(Vec3::new(0.0, 0.0, 10.0), 0.2, 0.9, Vec3::splat(0.5));
        let pn = project_gaussian(&near, 0, &cam, BoundingLaw::ThreeSigma).unwrap();
        let pf = project_gaussian(&far, 1, &cam, BoundingLaw::ThreeSigma).unwrap();
        let ratio = pn.radius / pf.radius;
        assert!(
            ratio > 2.5 && ratio < 6.0,
            "near/far radius ratio {ratio} (near {} far {})",
            pn.radius,
            pf.radius
        );
    }

    #[test]
    fn behind_camera_is_culled() {
        let cam = test_cam();
        let g = Gaussian3D::isotropic(Vec3::new(0.0, 0.0, -20.0), 0.1, 0.9, Vec3::splat(0.5));
        assert!(project_gaussian(&g, 0, &cam, BoundingLaw::ThreeSigma).is_none());
    }

    #[test]
    fn near_plane_cull_at_0_2() {
        let cam = test_cam();
        // Camera at z=-5 looking +z: depth 0.1 means world z = -4.9.
        let g = Gaussian3D::isotropic(Vec3::new(0.0, 0.0, -4.9), 0.01, 0.9, Vec3::splat(0.5));
        assert!(project_gaussian(&g, 0, &cam, BoundingLaw::ThreeSigma).is_none());
        let g2 = Gaussian3D::isotropic(Vec3::new(0.0, 0.0, -4.7), 0.01, 0.9, Vec3::splat(0.5));
        assert!(project_gaussian(&g2, 0, &cam, BoundingLaw::ThreeSigma).is_some());
    }

    #[test]
    fn off_screen_gaussian_is_culled() {
        let cam = test_cam();
        // Far off to the side at modest depth: projects way outside.
        let g = Gaussian3D::isotropic(Vec3::new(100.0, 0.0, 0.0), 0.1, 0.9, Vec3::splat(0.5));
        assert!(project_gaussian(&g, 0, &cam, BoundingLaw::ThreeSigma).is_none());
    }

    #[test]
    fn omega_sigma_culls_faint_gaussians_three_sigma_keeps_them() {
        let cam = test_cam();
        let g = Gaussian3D::isotropic(Vec3::ZERO, 0.1, 0.0038, Vec3::splat(0.5));
        assert!(project_gaussian(&g, 0, &cam, BoundingLaw::ThreeSigma).is_some());
        assert!(project_gaussian(&g, 0, &cam, BoundingLaw::OmegaSigma).is_none());
    }

    #[test]
    fn conic_is_inverse_of_cov2d() {
        let cam = test_cam();
        let g = Gaussian3D::isotropic(Vec3::new(0.5, 0.2, 0.0), 0.3, 0.8, Vec3::splat(0.5));
        let p = project_gaussian(&g, 0, &cam, BoundingLaw::ThreeSigma).unwrap();
        let prod = p.cov2d.to_mat2() * p.conic.to_mat2();
        assert!(approx_eq(prod.m[0][0], 1.0, 1e-3));
        assert!(approx_eq(prod.m[1][1], 1.0, 1e-3));
    }

    #[test]
    fn dilation_keeps_tiny_gaussians_visible() {
        let cam = test_cam();
        // Microscopic world-space footprint still produces a ≥1px splat.
        let g = Gaussian3D::isotropic(Vec3::ZERO, 1e-4, 0.9, Vec3::splat(0.5));
        let p = project_gaussian(&g, 0, &cam, BoundingLaw::ThreeSigma).unwrap();
        assert!(p.radius >= 1.0);
    }

    #[test]
    fn map_color_fills_color_from_sh() {
        let cam = test_cam();
        let g = Gaussian3D::isotropic(Vec3::ZERO, 0.1, 0.9, Vec3::new(0.9, 0.1, 0.3));
        let mut p = project_gaussian(&g, 0, &cam, BoundingLaw::ThreeSigma).unwrap();
        assert_eq!(p.color, Vec3::ZERO);
        map_color(&mut p, &g, &cam);
        assert!(approx_eq(p.color.x, 0.9, 1e-4));
        assert!(approx_eq(p.color.y, 0.1, 1e-4));
        assert!(approx_eq(p.color.z, 0.3, 1e-4));
    }

    #[test]
    fn anisotropic_gaussian_has_anisotropic_cov2d() {
        let cam = test_cam();
        let g = Gaussian3D::new(
            Vec3::ZERO,
            Vec3::new(1.0, 0.05, 0.05),
            Quat::IDENTITY,
            0.9,
            [0.0; 48],
        );
        let p = project_gaussian(&g, 0, &cam, BoundingLaw::ThreeSigma).unwrap();
        let (l1, l2) = p.cov2d.eigenvalues();
        assert!(l1 / l2 > 10.0, "expected strong anisotropy, got {l1}/{l2}");
    }
}
