//! `gcc-shard` — the consistent-hash sharding proxy.
//!
//! ```text
//! gcc-shard --addr 127.0.0.1:0 \
//!           --backend 127.0.0.1:7401 --backend 127.0.0.1:7402 \
//!           --probe-ms 200
//! ```
//!
//! Prints exactly one line `gcc-shard listening on <addr>` once ready,
//! proxies wire sessions to the backend owning each scene id (see
//! [`gcc_wire::ShardRing`]), and drains on the wire `Shutdown` request.
//! Shutting the proxy down leaves the backends running — they belong to
//! their own operators.

use std::net::SocketAddr;
use std::process::exit;
use std::time::Duration;

use gcc_wire::{ShardProxy, ShardProxyConfig};

fn usage(err: &str) -> ! {
    eprintln!("gcc-shard: {err}");
    eprintln!(
        "usage: gcc-shard --addr HOST:PORT --backend HOST:PORT [--backend HOST:PORT ...]\n\
         \x20                [--handlers N] [--probe-ms N]"
    );
    exit(2);
}

fn parse_flag<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    let Some(value) = value else {
        usage(&format!("{flag} needs a value"));
    };
    match value.parse() {
        Ok(v) => v,
        Err(_) => usage(&format!("bad {flag} value {value:?}")),
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut addr = "127.0.0.1:0".to_string();
    let mut backends: Vec<SocketAddr> = Vec::new();
    let mut cfg = ShardProxyConfig::default();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = parse_flag("--addr", args.next()),
            "--backend" => backends.push(parse_flag("--backend", args.next())),
            "--handlers" => cfg.handlers = parse_flag("--handlers", args.next()),
            "--probe-ms" => {
                cfg.probe_interval = Duration::from_millis(parse_flag("--probe-ms", args.next()))
            }
            other => usage(&format!("unknown flag {other:?}")),
        }
    }
    if backends.is_empty() {
        usage("at least one --backend is required");
    }

    let proxy = match ShardProxy::bind(addr.as_str(), backends, cfg) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("gcc-shard: bind {addr} failed: {e}");
            exit(1);
        }
    };
    println!("gcc-shard listening on {}", proxy.local_addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    while !proxy.shutdown_requested() {
        std::thread::sleep(Duration::from_millis(50));
    }
    proxy.shutdown();
    println!("gcc-shard: drained");
}
