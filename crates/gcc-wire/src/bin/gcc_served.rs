//! `gcc-served` — a standalone wire server in front of one
//! [`RenderService`].
//!
//! ```text
//! gcc-served --addr 127.0.0.1:0 \
//!            --scene palace=preset:palace:0.05 \
//!            --scene lego=/tmp/lego.bin \
//!            --workers 2 --handlers 8 --cache-mb 256
//! ```
//!
//! Prints exactly one line `gcc-served listening on <addr>` once ready
//! (parent processes — the bench harness, scripts — parse it to learn an
//! ephemeral port), serves until some client sends the wire `Shutdown`
//! request, then drains and prints a short stats summary.

use std::process::exit;

use gcc_scene::ALL_PRESETS;
use gcc_serve::{RenderService, SceneSource, ServeConfig};
use gcc_wire::{WireServer, WireServerConfig};

fn usage(err: &str) -> ! {
    eprintln!("gcc-served: {err}");
    eprintln!(
        "usage: gcc-served --addr HOST:PORT --scene ID=SPEC [--scene ID=SPEC ...]\n\
         \x20                 [--workers N] [--handlers N] [--cache-mb N]\n\
         \x20 SPEC is `preset:<name>:<scale>` (name from the paper's six scenes)\n\
         \x20 or a scene file path (binary or JSON)."
    );
    exit(2);
}

/// Parses one `ID=SPEC` registry entry.
fn parse_scene(arg: &str) -> (String, SceneSource) {
    let Some((id, spec)) = arg.split_once('=') else {
        usage(&format!("--scene needs ID=SPEC, got {arg:?}"));
    };
    if let Some(rest) = spec.strip_prefix("preset:") {
        let Some((name, scale)) = rest.split_once(':') else {
            usage(&format!(
                "preset spec needs preset:<name>:<scale>, got {spec:?}"
            ));
        };
        let Some(preset) = ALL_PRESETS
            .into_iter()
            .find(|p| p.params().name.eq_ignore_ascii_case(name))
        else {
            usage(&format!("unknown preset {name:?}"));
        };
        let Ok(scale) = scale.parse::<f32>() else {
            usage(&format!("bad preset scale {scale:?}"));
        };
        (id.to_string(), SceneSource::Preset { preset, scale })
    } else {
        (id.to_string(), SceneSource::File(spec.into()))
    }
}

fn parse_flag<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    let Some(value) = value else {
        usage(&format!("{flag} needs a value"));
    };
    match value.parse() {
        Ok(v) => v,
        Err(_) => usage(&format!("bad {flag} value {value:?}")),
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut addr = "127.0.0.1:0".to_string();
    let mut registry: Vec<(String, SceneSource)> = Vec::new();
    let mut workers = 0usize;
    let mut handlers = WireServerConfig::default().handlers;
    let mut cache_mb = 256usize;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = parse_flag("--addr", args.next()),
            "--scene" => {
                let Some(spec) = args.next() else {
                    usage("--scene needs ID=SPEC");
                };
                registry.push(parse_scene(&spec));
            }
            "--workers" => workers = parse_flag("--workers", args.next()),
            "--handlers" => handlers = parse_flag("--handlers", args.next()),
            "--cache-mb" => cache_mb = parse_flag("--cache-mb", args.next()),
            other => usage(&format!("unknown flag {other:?}")),
        }
    }
    if registry.is_empty() {
        usage("at least one --scene is required");
    }

    let service = RenderService::new(
        ServeConfig {
            workers,
            cache_budget_bytes: cache_mb << 20,
            ..ServeConfig::default()
        },
        registry,
    );
    let server = match WireServer::bind(
        addr.as_str(),
        service,
        WireServerConfig {
            handlers,
            ..WireServerConfig::default()
        },
    ) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("gcc-served: bind {addr} failed: {e}");
            exit(1);
        }
    };
    // The parent parses this exact line to learn the (possibly
    // ephemeral) port; stdout is line-buffered to a pipe only after a
    // flush.
    println!("gcc-served listening on {}", server.local_addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    while !server.shutdown_requested() {
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    let stats = server.shutdown();
    println!(
        "gcc-served: served {} frames in {} batches ({} streams, {} shed), hit rate {:.2}",
        stats.frames,
        stats.batches,
        stats.streams.opened,
        stats.turned_away(),
        stats.hit_rate(),
    );
}
