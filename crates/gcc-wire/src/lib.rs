//! TCP wire protocol, standalone server and consistent-hash sharding
//! proxy for [`gcc_serve`].
//!
//! `gcc-serve` turns the renderers into an in-process service; this crate
//! puts that service behind a socket without adding a single dependency —
//! `std::net` TCP, hand-rolled binary codecs in the style of
//! [`gcc_scene::io`], and the workspace's own supervision and hashing
//! primitives:
//!
//! * [`frame`] — the transport: length-prefixed, versioned frames over any
//!   `Read`/`Write`, with resync-or-fail rules for malformed input.
//! * [`proto`] — typed [`Request`]/[`Response`] messages covering the full
//!   session surface (open with priority/deadline/window, in-order pulls,
//!   cancel, stats, shutdown) and [`WireRejection`], the serializable
//!   image of [`gcc_serve::ServeError`] — `Overloaded`/`Quarantined`
//!   retry hints survive the trip.
//! * [`client`] — a blocking [`WireClient`] with [`RemoteStream`] pulls.
//! * [`server`] — [`WireServer`]: an accept loop feeding a supervised
//!   handler pool (a panicking connection handler is respawned, the
//!   listener survives) multiplexing every connection onto one
//!   [`gcc_serve::RenderService`], with graceful drain on shutdown.
//! * [`shard`] — [`ShardRing`] + [`ShardProxy`]: consistent hashing of
//!   scene ids over N backends (SplitMix64 ring, session affinity),
//!   health-probed failover, typed rejections forwarded verbatim.
//!
//! Two binaries ship with the crate: `gcc-served` (a standalone server)
//! and `gcc-shard` (the proxy). `gcc-bench`'s `bench_serve --wire` drives
//! both as real processes over loopback and gates bit-identical frames.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod frame;
pub mod proto;
pub mod server;
pub mod shard;

pub use client::{RemoteStream, WireClient};
pub use frame::{read_event, write_frame, FrameEvent, WireError, MAX_FRAME_LEN, WIRE_VERSION};
pub use proto::{Request, Response, WireRejection};
pub use server::{WireServer, WireServerConfig};
pub use shard::{ShardProxy, ShardProxyConfig, ShardRing};
