//! Consistent-hash sharding: a SplitMix64 ring over N backends and a TCP
//! proxy that routes wire sessions by scene id.
//!
//! # Ring semantics
//!
//! Each backend owns [`ShardRing::VNODES`] pseudo-random points on a
//! `u64` ring; a scene id hashes to a point and is owned by the first
//! backend point at or clockwise-after it. Routing around a dead backend
//! walks further clockwise to the next *alive* owner, so:
//!
//! * scene → backend assignment is stable across proxy restarts and
//!   across proxies (the hash is [`gcc_scene::rng::splitmix64`], a pinned
//!   cross-process contract — no `DefaultHasher`, whose output may change
//!   between Rust releases);
//! * killing one of N backends remaps only the dead backend's scenes
//!   (≈ 1/N of them), and they return home when it recovers;
//! * adding a backend to the *configuration* moves ≈ 1/(N+1) of the
//!   scenes — but membership is fixed for a proxy's lifetime; only
//!   liveness changes at runtime.
//!
//! # The proxy
//!
//! [`ShardProxy`] speaks the same wire protocol on both sides: clients
//! talk to it exactly as they would to one big `gcc-served`, and it opens
//! one upstream [`WireClient`] per (connection, backend) — session
//! affinity falls out of routing by scene id over a fixed ring. Backend
//! rejections ([`crate::proto::WireRejection`]) are forwarded verbatim,
//! retry hints intact. A health prober pings every backend on an
//! interval; opens routed at a dead backend fail over clockwise, and
//! when no owner is alive the client gets a typed
//! [`WireRejection::Unavailable`] instead of a hung connect.

use std::collections::{HashMap, VecDeque};
use std::io::{self, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use gcc_parallel::{RestartPolicy, WorkerPool, WorkerStep};
use gcc_scene::rng::splitmix64;
use gcc_serve::ServeStats;

use crate::client::{RemoteStream, WireClient};
use crate::frame::{read_event, write_frame, FrameEvent, WireError};
use crate::proto::{Request, Response, WireRejection};

/// How long a proxy handler blocks in a socket read before polling stop.
const READ_TICK: Duration = Duration::from_millis(200);

/// How long a handler waits for a queued connection before re-checking.
const QUEUE_TICK: Duration = Duration::from_millis(100);

/// Backoff hint attached to [`WireRejection::Unavailable`] — roughly two
/// probe intervals, after which a recovered backend would be visible.
const UNAVAILABLE_RETRY: Duration = Duration::from_millis(500);

// ---------------------------------------------------------------------------
// The ring
// ---------------------------------------------------------------------------

/// A consistent-hash ring mapping scene ids onto backend indices.
#[derive(Debug, Clone)]
pub struct ShardRing {
    /// `(point, backend)` sorted by point — the ring, unrolled.
    points: Vec<(u64, usize)>,
    backends: usize,
}

impl ShardRing {
    /// Virtual points per backend. 64 keeps the ownership split of a
    /// handful of backends within a few percent of even without making
    /// the ring walk measurable.
    pub const VNODES: usize = 64;

    /// A ring over `backends` members (indices `0..backends`).
    pub fn new(backends: usize) -> Self {
        let mut points = Vec::with_capacity(backends * Self::VNODES);
        for b in 0..backends {
            for v in 0..Self::VNODES {
                points.push((Self::point(b, v), b));
            }
        }
        points.sort_unstable();
        Self { points, backends }
    }

    /// Number of ring members.
    pub fn backends(&self) -> usize {
        self.backends
    }

    /// The ring point of backend `b`'s virtual node `v`: two chained
    /// SplitMix64 rounds over the packed pair, so points are pseudo-random
    /// yet identical in every process that builds the same ring.
    fn point(b: usize, v: usize) -> u64 {
        splitmix64(splitmix64(((b as u64) << 32) | v as u64))
    }

    /// The stable hash of a scene id: SplitMix64 folded over the UTF-8
    /// bytes in 8-byte little-endian chunks, with the length mixed in so
    /// zero-padded tails of different lengths cannot collide trivially.
    pub fn scene_key(scene: &str) -> u64 {
        let bytes = scene.as_bytes();
        let mut h = splitmix64(bytes.len() as u64);
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            h = splitmix64(h ^ u64::from_le_bytes(word));
        }
        h
    }

    /// The backend owning `scene`, skipping members whose `alive` slot is
    /// `false`. `None` when every backend is dead (or the ring is empty).
    ///
    /// # Panics
    ///
    /// Panics if `alive` is shorter than the member count.
    pub fn route(&self, scene: &str, alive: &[bool]) -> Option<usize> {
        assert!(alive.len() >= self.backends, "alive vector too short");
        if self.points.is_empty() {
            return None;
        }
        let key = Self::scene_key(scene);
        // First point at or clockwise-after the key, wrapping at the top.
        let start = self.points.partition_point(|(p, _)| *p < key) % self.points.len();
        // Walk clockwise; each backend appears VNODES times, so scanning
        // every point visits every backend.
        for i in 0..self.points.len() {
            let (_, b) = self.points[(start + i) % self.points.len()];
            if alive[b] {
                return Some(b);
            }
        }
        None
    }
}

// ---------------------------------------------------------------------------
// The proxy
// ---------------------------------------------------------------------------

/// Tuning for [`ShardProxy`].
#[derive(Debug, Clone)]
pub struct ShardProxyConfig {
    /// Connection-handler threads (the concurrent-client ceiling).
    pub handlers: usize,
    /// How often the health prober pings every backend.
    pub probe_interval: Duration,
    /// Connect + response budget for one probe; a dead backend costs the
    /// prober at most this per round instead of an OS connect timeout.
    pub probe_timeout: Duration,
    /// How long [`ShardProxy::shutdown`] waits for live connections.
    pub drain: Duration,
}

impl Default for ShardProxyConfig {
    fn default() -> Self {
        Self {
            handlers: 8,
            probe_interval: Duration::from_millis(200),
            probe_timeout: Duration::from_millis(500),
            drain: Duration::from_secs(5),
        }
    }
}

struct ProxyShared {
    backends: Vec<SocketAddr>,
    ring: ShardRing,
    /// Health-prober verdicts; handlers also clear a slot on hard
    /// upstream failures so the next open fails over immediately.
    alive: Vec<AtomicBool>,
    conns: Mutex<VecDeque<TcpStream>>,
    available: Condvar,
    stop: AtomicBool,
    draining: AtomicBool,
    shutdown_requested: AtomicBool,
    active: AtomicUsize,
    probe_timeout: Duration,
}

impl ProxyShared {
    fn alive_snapshot(&self) -> Vec<bool> {
        self.alive
            .iter()
            .map(|a| a.load(Ordering::Acquire))
            .collect()
    }
}

/// A running sharding proxy bound to a TCP address.
pub struct ShardProxy {
    shared: Option<Arc<ProxyShared>>,
    addr: SocketAddr,
    drain: Duration,
    accept: Option<JoinHandle<()>>,
    prober: Option<JoinHandle<()>>,
    pool: Option<WorkerPool>,
}

impl std::fmt::Debug for ShardProxy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardProxy")
            .field("addr", &self.addr)
            .finish()
    }
}

impl ShardProxy {
    /// Binds the proxy and starts its accept loop, handler pool and
    /// health prober. Backends start presumed-alive; the first probe
    /// round corrects that within one `probe_interval`.
    ///
    /// # Errors
    ///
    /// Propagates bind failures. An empty backend list is an
    /// `InvalidInput` error — a proxy with nothing behind it is a
    /// misconfiguration, not a degraded state.
    pub fn bind(
        addr: impl ToSocketAddrs,
        backends: Vec<SocketAddr>,
        cfg: ShardProxyConfig,
    ) -> io::Result<Self> {
        if backends.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "a shard proxy needs at least one backend",
            ));
        }
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(ProxyShared {
            ring: ShardRing::new(backends.len()),
            alive: backends.iter().map(|_| AtomicBool::new(true)).collect(),
            backends,
            conns: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            stop: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            shutdown_requested: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            probe_timeout: cfg.probe_timeout,
        });

        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("gcc-shard-accept".into())
                .spawn(move || accept_loop(&listener, &shared))?
        };

        let prober = {
            let shared = Arc::clone(&shared);
            let interval = cfg.probe_interval;
            std::thread::Builder::new()
                .name("gcc-shard-probe".into())
                .spawn(move || probe_loop(&shared, interval))?
        };

        let pool = {
            let shared = Arc::clone(&shared);
            WorkerPool::spawn_supervised(
                cfg.handlers.max(1),
                || (),
                move |_worker, ()| handler_step(&shared),
                RestartPolicy::default(),
            )
        };

        Ok(Self {
            shared: Some(shared),
            addr,
            drain: cfg.drain,
            accept: Some(accept),
            prober: Some(prober),
            pool: Some(pool),
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Which backends the last health information considers alive.
    pub fn alive(&self) -> Vec<bool> {
        self.shared
            .as_ref()
            .map(|s| s.alive_snapshot())
            .unwrap_or_default()
    }

    /// Whether any client has sent [`Request::Shutdown`]. Shutting down
    /// the proxy drains the proxy only — backends belong to their own
    /// operators (the bench harness shuts them down explicitly).
    pub fn shutdown_requested(&self) -> bool {
        self.shared
            .as_ref()
            .is_some_and(|s| s.shutdown_requested.load(Ordering::Acquire))
    }

    /// Drains and stops the proxy: waits up to the drain window for live
    /// client connections, then stops the accept loop, prober and
    /// handler pool.
    pub fn shutdown(mut self) {
        let shared = self.shared.take().expect("shutdown runs once");
        shared.draining.store(true, Ordering::Release);
        let deadline = Instant::now() + self.drain;
        while Instant::now() < deadline {
            let quiesced = shared.active.load(Ordering::Acquire) == 0
                && shared.conns.lock().expect("conns lock").is_empty();
            if quiesced {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        self.stop_threads(&shared);
    }

    fn stop_threads(&mut self, shared: &Arc<ProxyShared>) {
        shared.stop.store(true, Ordering::Release);
        shared.available.notify_all();
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.prober.take() {
            let _ = h.join();
        }
        if let Some(pool) = self.pool.take() {
            pool.join();
        }
    }
}

impl Drop for ShardProxy {
    fn drop(&mut self) {
        if let Some(shared) = self.shared.take() {
            self.stop_threads(&shared);
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &ProxyShared) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if shared.stop.load(Ordering::Acquire) {
                    return;
                }
                let mut conns = shared.conns.lock().expect("conns lock");
                conns.push_back(stream);
                drop(conns);
                shared.available.notify_one();
            }
            Err(_) if shared.stop.load(Ordering::Acquire) => return,
            Err(_) => {}
        }
    }
}

/// Pings every backend, updating its alive slot; sleeps the interval in
/// short ticks so proxy shutdown is not gated on a probe round.
fn probe_loop(shared: &ProxyShared, interval: Duration) {
    while !shared.stop.load(Ordering::Acquire) {
        for (i, addr) in shared.backends.iter().enumerate() {
            let healthy = probe_one(addr, shared.probe_timeout);
            shared.alive[i].store(healthy, Ordering::Release);
        }
        let deadline = Instant::now() + interval;
        while Instant::now() < deadline && !shared.stop.load(Ordering::Acquire) {
            std::thread::sleep(Duration::from_millis(20));
        }
    }
}

fn probe_one(addr: &SocketAddr, timeout: Duration) -> bool {
    let Ok(mut client) = WireClient::connect_timeout(addr, timeout) else {
        return false;
    };
    if client.set_read_timeout(Some(timeout)).is_err() {
        return false;
    }
    client.ping().is_ok()
}

fn handler_step(shared: &Arc<ProxyShared>) -> WorkerStep {
    let stream = {
        let conns = shared.conns.lock().expect("conns lock");
        let (mut conns, _timeout) = shared
            .available
            .wait_timeout_while(conns, QUEUE_TICK, |q| {
                q.is_empty() && !shared.stop.load(Ordering::Acquire)
            })
            .expect("conns lock");
        if shared.stop.load(Ordering::Acquire) {
            return WorkerStep::Stop;
        }
        match conns.pop_front() {
            Some(s) => s,
            None => return WorkerStep::Continue,
        }
    };
    shared.active.fetch_add(1, Ordering::AcqRel);
    struct ActiveGuard<'a>(&'a AtomicUsize);
    impl Drop for ActiveGuard<'_> {
        fn drop(&mut self) {
            self.0.fetch_sub(1, Ordering::AcqRel);
        }
    }
    let _guard = ActiveGuard(&shared.active);
    handle_connection(shared, stream);
    WorkerStep::Continue
}

/// Per-client-connection proxy state: one upstream client per backend
/// (session affinity), and the proxy-id → (backend, upstream stream)
/// table.
struct ProxyConn {
    upstreams: HashMap<usize, WireClient>,
    streams: HashMap<u64, (usize, RemoteStream)>,
    next_id: u64,
}

impl ProxyConn {
    /// The upstream client for backend `b`, connecting on first use.
    fn upstream(&mut self, shared: &ProxyShared, b: usize) -> Result<&mut WireClient, WireError> {
        if let std::collections::hash_map::Entry::Vacant(e) = self.upstreams.entry(b) {
            let client = WireClient::connect_timeout(&shared.backends[b], shared.probe_timeout)
                .map_err(WireError::Io)?;
            e.insert(client);
        }
        Ok(self.upstreams.get_mut(&b).expect("just inserted"))
    }

    /// Drops the upstream to backend `b` and fails its streams: the next
    /// pull on any of them answers `StreamEnd` (their frames are gone
    /// with the backend).
    fn drop_backend(&mut self, b: usize) {
        self.upstreams.remove(&b);
        self.streams.retain(|_, (owner, _)| *owner != b);
    }
}

fn handle_connection(shared: &Arc<ProxyShared>, stream: TcpStream) {
    if stream.set_nodelay(true).is_err() || stream.set_read_timeout(Some(READ_TICK)).is_err() {
        return;
    }
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = std::io::BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    let mut conn = ProxyConn {
        upstreams: HashMap::new(),
        streams: HashMap::new(),
        next_id: 1,
    };

    loop {
        if shared.stop.load(Ordering::Acquire) {
            return;
        }
        let resp = match read_event(&mut reader) {
            Ok(FrameEvent::Frame { kind, payload }) => match Request::decode(kind, &payload) {
                Ok(req) => dispatch(shared, &mut conn, req),
                Err(e) => Response::Error {
                    message: e.to_string(),
                },
            },
            Ok(FrameEvent::Eof) => return,
            Ok(FrameEvent::Idle) => continue,
            Err(e @ (WireError::BadVersion { .. } | WireError::Oversized { .. })) => {
                Response::Error {
                    message: e.to_string(),
                }
            }
            Err(_) => return,
        };
        if respond(&mut writer, &resp).is_err() {
            return;
        }
    }
}

fn unavailable(message: impl Into<String>) -> Response {
    Response::Rejected(WireRejection::Unavailable {
        message: message.into(),
        retry_after: UNAVAILABLE_RETRY,
    })
}

fn dispatch(shared: &Arc<ProxyShared>, conn: &mut ProxyConn, req: Request) -> Response {
    match req {
        Request::Open {
            scene,
            defaults,
            spec,
            config,
        } => {
            if shared.draining.load(Ordering::Acquire) {
                return Response::Rejected(WireRejection::ShuttingDown);
            }
            // Fail over at most once per backend: a connect/transport
            // failure marks the target dead (the prober will re-admit it)
            // and re-routes clockwise.
            for _attempt in 0..shared.backends.len() {
                let Some(b) = shared.ring.route(&scene, &shared.alive_snapshot()) else {
                    return unavailable("no alive backend");
                };
                let open = conn
                    .upstream(shared, b)
                    .and_then(|up| up.open(&scene, defaults.clone(), spec.clone(), config));
                match open {
                    Ok(remote) => {
                        let id = conn.next_id;
                        conn.next_id += 1;
                        let frames = remote.len();
                        conn.streams.insert(id, (b, remote));
                        return Response::Opened { stream: id, frames };
                    }
                    // A typed refusal means the backend is healthy and
                    // said no — forward it verbatim, hints intact.
                    Err(WireError::Rejected(rej)) => return Response::Rejected(rej),
                    Err(_) => {
                        shared.alive[b].store(false, Ordering::Release);
                        conn.drop_backend(b);
                    }
                }
            }
            unavailable("every backend failed the open")
        }
        Request::NextFrame { stream } => {
            let Some((b, mut remote)) = conn.streams.remove(&stream) else {
                return Response::StreamEnd { stream };
            };
            let pulled = match conn.upstream(shared, b) {
                Ok(up) => up.next_frame(&mut remote),
                Err(e) => Err(e),
            };
            match pulled {
                Ok(Some(frame)) => {
                    let index = remote.delivered() - 1;
                    conn.streams.insert(stream, (b, remote));
                    Response::Frame {
                        stream,
                        index,
                        frame,
                    }
                }
                Ok(None) => Response::StreamEnd { stream },
                Err(WireError::Rejected(error)) => {
                    let index = remote.delivered() - 1;
                    conn.streams.insert(stream, (b, remote));
                    Response::FrameError {
                        stream,
                        index,
                        error,
                    }
                }
                // The backend died mid-stream. Its undelivered frames are
                // gone; new opens will fail over, but this stream cannot
                // (frames must stay in order and the replacement backend
                // never saw the stream).
                Err(_) => {
                    shared.alive[b].store(false, Ordering::Release);
                    conn.drop_backend(b);
                    Response::FrameError {
                        stream,
                        index: remote.delivered(),
                        error: WireRejection::Unavailable {
                            message: format!("backend {b} lost mid-stream"),
                            retry_after: UNAVAILABLE_RETRY,
                        },
                    }
                }
            }
        }
        Request::Cancel { stream } => {
            if let Some((b, mut remote)) = conn.streams.remove(&stream) {
                if let Ok(up) = conn.upstream(shared, b) {
                    let _ = up.cancel(&mut remote);
                }
            }
            Response::Cancelled { stream }
        }
        Request::Stats => {
            // Merged view over every alive backend, through this
            // connection's affine upstreams.
            let mut merged = ServeStats::default();
            let mut reached = 0usize;
            for b in 0..shared.backends.len() {
                if !shared.alive[b].load(Ordering::Acquire) {
                    continue;
                }
                let snap = match conn.upstream(shared, b) {
                    Ok(up) => up.stats(),
                    Err(e) => Err(e),
                };
                match snap {
                    Ok(s) => {
                        merge_stats(&mut merged, &s);
                        reached += 1;
                    }
                    Err(_) => {
                        shared.alive[b].store(false, Ordering::Release);
                        conn.drop_backend(b);
                    }
                }
            }
            if reached == 0 {
                unavailable("no alive backend for stats")
            } else {
                Response::Stats(Box::new(merged))
            }
        }
        Request::Ping => Response::Pong,
        Request::Shutdown => {
            shared.draining.store(true, Ordering::Release);
            shared.shutdown_requested.store(true, Ordering::Release);
            Response::ShutdownAck
        }
    }
}

/// Folds one backend's snapshot into a fleet-wide view: counters add,
/// gauges add (`queue_depth`, residency — each backend holds distinct
/// scenes), and latency percentiles take the worst backend (a merged
/// percentile of percentiles has no exact answer; the max is the
/// conservative bound an operator alarms on).
fn merge_stats(acc: &mut ServeStats, s: &ServeStats) {
    for (scene, c) in &s.per_scene {
        let e = acc.per_scene.entry(scene.clone()).or_default();
        e.requests += c.requests;
        e.hits += c.hits;
        e.misses += c.misses;
        e.loads += c.loads;
        e.evictions += c.evictions;
        e.frames += c.frames;
        e.batches += c.batches;
        e.retries += c.retries;
        e.quarantines += c.quarantines;
    }
    for (sched, c) in &s.per_schedule {
        let e = acc.per_schedule.entry(*sched).or_default();
        e.requests += c.requests;
        e.frames += c.frames;
        e.batches += c.batches;
    }
    for (p, c) in &s.per_priority {
        let e = acc.per_priority.entry(*p).or_default();
        e.requests += c.requests;
        e.frames += c.frames;
        e.completed += c.completed;
        e.queued += c.queued;
        e.max_queued += c.max_queued;
        e.with_deadline += c.with_deadline;
        e.deadline_misses += c.deadline_misses;
        e.rejected += c.rejected;
        e.shed += c.shed;
        e.latency_p50_ms = e.latency_p50_ms.max(c.latency_p50_ms);
        e.latency_p95_ms = e.latency_p95_ms.max(c.latency_p95_ms);
    }
    acc.streams.opened += s.streams.opened;
    acc.streams.completed += s.streams.completed;
    acc.streams.cancelled += s.streams.cancelled;
    acc.streams.frames_discarded += s.streams.frames_discarded;
    acc.completed += s.completed;
    acc.queue_depth += s.queue_depth;
    acc.max_queue_depth += s.max_queue_depth;
    acc.batches += s.batches;
    acc.frames += s.frames;
    acc.latency_p50_ms = acc.latency_p50_ms.max(s.latency_p50_ms);
    acc.latency_p95_ms = acc.latency_p95_ms.max(s.latency_p95_ms);
    acc.frame_stats.merge_add(&s.frame_stats);
    acc.resident_bytes += s.resident_bytes;
    acc.resident_scenes += s.resident_scenes;
    acc.respawns += s.respawns;
    acc.lost_workers += s.lost_workers;
    acc.quarantined_scenes += s.quarantined_scenes;
    acc.lod.merge_add(&s.lod);
}

fn respond(writer: &mut BufWriter<TcpStream>, resp: &Response) -> Result<(), WireError> {
    let (kind, payload) = resp.encode();
    match write_frame(writer, kind, &payload) {
        Ok(()) => {}
        Err(WireError::Oversized { len, max }) => {
            let fallback = Response::Error {
                message: format!("response frame of {len} bytes exceeds the {max}-byte ceiling"),
            };
            let (kind, payload) = fallback.encode();
            write_frame(writer, kind, &payload)?;
        }
        Err(e) => return Err(e),
    }
    writer.flush().map_err(WireError::Io)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_stats_folds_lod_counters() {
        // A fleet where only some backends run the ladder must still
        // surface it in the merged snapshot (regression: the lod field
        // was once dropped by the fold entirely).
        let mut acc = ServeStats::default();
        let mut on = ServeStats::default();
        on.lod.enabled = true;
        on.lod.frames_by_rung = vec![10, 3];
        on.lod.degraded_frames = 3;
        on.lod.degradations = 2;
        on.lod.recoveries = 1;
        on.lod.recent.push(gcc_serve::LodDecision {
            rung: 1,
            predicted_us: 900,
            actual_us: 1000,
            budget_us: 4000,
            missed: false,
        });
        merge_stats(&mut acc, &ServeStats::default()); // ladder-off backend
        merge_stats(&mut acc, &on);
        assert!(acc.lod.enabled);
        assert_eq!(acc.lod.frames_by_rung, vec![10, 3]);
        assert_eq!(acc.lod.degraded_frames, 3);
        assert_eq!(acc.lod.degradations, 2);
        assert_eq!(acc.lod.recoveries, 1);
        assert_eq!(acc.lod.recent.len(), 1);
        merge_stats(&mut acc, &on);
        assert_eq!(acc.lod.frames_by_rung, vec![20, 6]);
    }

    #[test]
    fn routing_is_deterministic_and_total() {
        let ring = ShardRing::new(3);
        let alive = [true, true, true];
        for scene in ["palace", "lego", "train", "truck", "playroom", "drjohnson"] {
            let a = ring.route(scene, &alive).unwrap();
            let b = ring.route(scene, &alive).unwrap();
            assert_eq!(a, b, "route of {scene} not stable");
            assert!(a < 3);
        }
        // A fresh ring over the same member count agrees (cross-process
        // stability stands in for cross-restart stability here).
        let other = ShardRing::new(3);
        for scene in ["palace", "lego", "train"] {
            assert_eq!(ring.route(scene, &alive), other.route(scene, &alive));
        }
    }

    #[test]
    fn dead_backends_remap_only_their_scenes() {
        let ring = ShardRing::new(3);
        let all = [true, true, true];
        let scenes: Vec<String> = (0..200).map(|i| format!("scene-{i}")).collect();
        let home: Vec<usize> = scenes
            .iter()
            .map(|s| ring.route(s, &all).unwrap())
            .collect();
        // Every backend owns something (the vnode spread is working).
        for b in 0..3 {
            assert!(home.contains(&b), "backend {b} owns nothing");
        }
        // Kill backend 1: its scenes move, everyone else's stay put.
        let degraded = [true, false, true];
        for (scene, h) in scenes.iter().zip(&home) {
            let now = ring.route(scene, &degraded).unwrap();
            if *h == 1 {
                assert_ne!(now, 1, "{scene} routed to the dead backend");
            } else {
                assert_eq!(now, *h, "{scene} moved although its owner is alive");
            }
        }
        // All dead: typed None, not a spin.
        assert_eq!(ring.route("palace", &[false, false, false]), None);
    }

    #[test]
    fn scene_keys_disperse() {
        // Not a hash-quality suite — just that obviously-related ids do
        // not collide, which the chunk-fold with length mixing ensures.
        let keys: Vec<u64> = (0..64)
            .map(|i| ShardRing::scene_key(&format!("s{i}")))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), keys.len(), "scene keys collided");
        assert_ne!(ShardRing::scene_key(""), ShardRing::scene_key("\0"));
    }
}
